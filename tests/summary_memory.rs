//! Memory discipline of the streaming summary path: `run_summary`
//! must hold `O(chunks + jobs × batch)` heap, never a per-die vector,
//! so a 10⁶–10⁷-die fleet runs in a few hundred kilobytes. Pinned
//! with a counting global allocator: growing the population 10× must
//! not grow the summary path's peak heap by even one byte per extra
//! die, while the materializing `run()` path (the scalar reference)
//! demonstrably scales with the population.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use subvt_core::study::StudyConfig;
use subvt_core::DieOutcome;
use subvt_exec::ExecConfig;

/// System allocator wrapped with live/peak byte counters.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak heap growth (bytes above the starting live set) while `f`
/// runs.
fn peak_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let result = f();
    (PEAK.load(Ordering::Relaxed).saturating_sub(base), result)
}

fn config(dies: usize) -> StudyConfig<'static> {
    // Serial keeps the measurement single-threaded; the scheduler's
    // per-worker state is exercised (and bounded) elsewhere.
    StudyConfig::new(dies, 11).exec(ExecConfig::serial())
}

// One test function on purpose: the counters are process-global, so
// concurrent tests in this binary would pollute each other's peaks.
#[test]
fn summary_peak_heap_does_not_scale_with_the_population() {
    let small = 1_000;
    let large = 10_000;

    let (peak_small, s_small) = peak_during(|| config(small).run_summary());
    let (peak_large, s_large) = peak_during(|| config(large).run_summary());
    assert_eq!(s_small.dies, small as u64);
    assert_eq!(s_large.dies, large as u64);

    // 10× the dies must cost less than one byte of peak heap per
    // extra die — the chunk-state snapshots and per-chunk seed
    // scratch are the only things allowed to grow, and they are two
    // orders of magnitude below this budget.
    let budget = (large - small) + 32 * 1024;
    assert!(
        peak_large < peak_small + budget,
        "summary peak grew {peak_small} -> {peak_large} bytes for {small} -> {large} dies"
    );

    // Control: the materializing scalar path must visibly scale (one
    // DieOutcome per die), proving the allocator hook sees per-die
    // vectors when they exist.
    let (peak_run, report) = peak_during(|| config(large).run());
    assert_eq!(report.dies.len(), large);
    assert!(
        peak_run >= large * std::mem::size_of::<DieOutcome>(),
        "run() peak {peak_run} bytes is below its own outcome vector"
    );
    assert!(
        peak_run > peak_large + large * std::mem::size_of::<DieOutcome>() / 2,
        "materializing peak {peak_run} should exceed streaming peak {peak_large} \
         by the outcome vector"
    );

    // And the streamed summary still matches the materialized one.
    assert_eq!(
        report.summarize().encode_state(),
        s_large.encode_state(),
        "streaming and materializing paths diverged"
    );
}
