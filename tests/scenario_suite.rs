//! The scenario pipeline end to end: the golden corpus under
//! `docs/scenarios/` stays canonical, the `suite` subcommand runs it
//! on the fused engine, and the rendered reports are byte-stable
//! against runtime knobs.
//!
//! The full-size corpus (500-die shoot-out) regenerates in CI from the
//! release binary and is diffed byte-for-byte against
//! `docs/results/`; these tests pin the mechanics at small die counts.

use std::fs;
use std::path::{Path, PathBuf};

use subvt::cli::Command;
use subvt_scenario::{Scenario, ScenarioError};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn parse(words: &[&str]) -> Command {
    let args: Vec<String> = words.iter().map(|s| (*s).to_owned()).collect();
    Command::parse(&args).expect("suite invocation parses")
}

/// A scratch directory unique to one test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("subvt-suite-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, rel: &str) -> PathBuf {
        self.0.join(rel)
    }

    fn str(&self, rel: &str) -> String {
        self.path(rel).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// The committed shoot-out scenario is exactly the canonical encoding
/// of [`Scenario::supply_shootout`] — the document alone reconstructs
/// the full 18-cell study with no code-level cell construction.
///
/// Regenerate with `SUBVT_BLESS=1 cargo test -q shootout_scenario`.
#[test]
fn shootout_scenario_toml_is_pinned() {
    let expected = Scenario::supply_shootout().to_toml();
    let path = repo_path("docs/scenarios/supply_shootout.toml");
    if std::env::var_os("SUBVT_BLESS").is_some() {
        fs::write(&path, &expected).expect("bless scenario");
    }
    let committed = fs::read_to_string(&path).expect("committed scenario");
    assert_eq!(
        committed, expected,
        "docs/scenarios/supply_shootout.toml drifted from Scenario::supply_shootout(); \
         regenerate with SUBVT_BLESS=1"
    );
}

/// Every committed scenario parses, re-encodes to a model-identical
/// document, and its serialized form is a fixed point of the codec.
#[test]
fn committed_scenarios_parse_and_round_trip() {
    let dir = repo_path("docs/scenarios");
    let mut seen = 0;
    for entry in fs::read_dir(&dir).expect("docs/scenarios") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "toml") {
            continue;
        }
        seen += 1;
        let text = fs::read_to_string(&path).expect("scenario text");
        let scenario =
            Scenario::from_toml(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let canonical = scenario.to_toml();
        let back = Scenario::from_toml(&canonical)
            .unwrap_or_else(|e| panic!("{} (canonical): {e}", path.display()));
        assert_eq!(back, scenario, "{}", path.display());
        assert_eq!(back.to_toml(), canonical, "{}", path.display());
        assert!(!scenario.name.is_empty(), "{}", path.display());
    }
    assert!(seen >= 3, "golden corpus shrank to {seen} scenarios");
}

/// `suite <dir> --out` runs every scenario and writes both backends;
/// the bytes are identical at any `--jobs`.
#[test]
fn suite_runs_a_corpus_and_is_jobs_invariant() {
    let scratch = Scratch::new("corpus");
    let mut small = Scenario::supply_shootout();
    small.study.dies = 24;
    small.matrix.supplies = Some(vec![subvt_core::SupplyBackendKind::Dldo]);
    small.name = "mini-shootout".to_owned();
    fs::write(scratch.path("mini_shootout.toml"), small.to_toml()).expect("write scenario");
    fs::write(
        scratch.path("single.toml"),
        "name = \"single\"\n\n[study]\ndies = 16\n",
    )
    .expect("write scenario");

    let mut outputs = Vec::new();
    for jobs in ["1", "4"] {
        let out = scratch.str(&format!("out-{jobs}"));
        let summary = parse(&["suite", &scratch.str(""), "--out", &out, "--jobs", jobs])
            .run()
            .expect("suite runs");
        assert!(summary.contains("mini_shootout: 6 cells"), "{summary}");
        assert!(summary.contains("single: 1 cells"), "{summary}");
        let txt = fs::read_to_string(scratch.path(&format!("out-{jobs}/mini_shootout.txt")))
            .expect("text report");
        let json = fs::read_to_string(scratch.path(&format!("out-{jobs}/mini_shootout.json")))
            .expect("json report");
        assert!(
            txt.starts_with("Supply-backend shoot-out (24 dies per cell, seed 1)\n"),
            "{txt}"
        );
        assert!(json.contains("\"schema\": \"subvt-report-v1\""), "{json}");
        assert!(json.contains("\"scenario\": \"mini-shootout\""), "{json}");
        outputs.push((txt, json));
    }
    assert_eq!(outputs[0], outputs[1], "report bytes drift with --jobs");
}

/// Without `--out`, a single-file suite prints the text report itself.
#[test]
fn suite_prints_a_single_scenario_report() {
    let scratch = Scratch::new("single");
    fs::write(
        scratch.path("one.toml"),
        "name = \"one\"\n\n[study]\ndies = 16\nseed = 3\n",
    )
    .expect("write scenario");
    let out = parse(&["suite", &scratch.str("one.toml")])
        .run()
        .expect("suite runs");
    assert!(
        out.starts_with("Study (16 dies per cell, seed 3)\n"),
        "{out}"
    );
    assert!(out.contains("| backend | corner |"), "{out}");
}

/// Scenario errors surface with the file name and the line/column of
/// the offending token.
#[test]
fn suite_errors_carry_the_file_and_line() {
    let scratch = Scratch::new("errors");
    fs::write(
        scratch.path("bad.toml"),
        "name = \"bad\"\n\n[study]\ndise = 40\n",
    )
    .expect("write scenario");
    let e = parse(&["suite", &scratch.str("bad.toml")])
        .run()
        .expect_err("unknown key rejected");
    assert!(e.contains("bad.toml"), "{e}");
    assert!(e.contains("line 4"), "{e}");
    assert!(e.contains("unknown key `dise`"), "{e}");

    let e = parse(&["suite", &scratch.str("missing.toml")])
        .run()
        .expect_err("missing path rejected");
    assert!(e.contains("no such file or directory"), "{e}");
}

/// `--checkpoint-dir` arms one `.svcp` per scenario; a finished file
/// replays the identical report.
#[test]
fn suite_checkpoints_per_scenario_and_replays() {
    let scratch = Scratch::new("ckpt");
    fs::write(
        scratch.path("ck.toml"),
        "name = \"ck\"\n\n[study]\ndies = 20\n",
    )
    .expect("write scenario");
    let ckdir = scratch.str("checkpoints");
    let invocation = ["suite", &scratch.str("ck.toml"), "--checkpoint-dir", &ckdir];
    let first = parse(&invocation).run().expect("first run");
    assert!(scratch.path("checkpoints/ck.svcp").is_file());
    let replay = parse(&invocation).run().expect("replay run");
    assert_eq!(first, replay, "checkpoint replay changed the report");
}

/// The decode path and the flag path reject with the same vocabulary.
#[test]
fn scenario_errors_are_scenario_errors() {
    let e: ScenarioError = Scenario::from_toml("[study]\nfault_rate = 2.0\n").unwrap_err();
    assert_eq!(e.line, 2);
    assert!(e.to_string().contains("probability in [0, 1]"), "{e}");
}
