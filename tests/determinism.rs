//! Bit-level reproducibility of the stochastic stack: the same seed
//! must give the same simulation, down to the last f64 bit, run after
//! run. This is the contract the in-tree RNG exists to provide — every
//! figure in EXPERIMENTS.md is re-derivable from its seed.

use subvt::prelude::*;
use subvt_bench::savings::savings_rows;
use subvt_dcdc::SolverMode;
use subvt_device::tabulate::{EvalMode, ACCURACY_BUDGET};
use subvt_rng::{Rng, StdRng};
use subvt_sim::analog::{IntegrationMethod, OdeSystem};
use subvt_sim::kernel::{run_cosim, CoSimConfig, TickOutcome};
use subvt_sim::time::{SimDuration, SimTime};

/// Runs the paper controller end to end and returns its full per-cycle
/// history (word, vout, deviation, shift, ops — the voltage trajectory
/// and everything that shaped it).
fn controller_history(seed: u64) -> Vec<subvt_core::CycleRecord> {
    let tech = Technology::st_130nm();
    let rate = design_rate_controller(&tech, Environment::nominal()).unwrap();
    let mut c = AdaptiveController::new(
        tech,
        RingOscillator::paper_circuit(),
        rate,
        Environment::nominal(),
        Environment::at_corner(ProcessCorner::Ss),
        GateMismatch::NOMINAL,
        SupplyPolicy::AdaptiveCompensated,
        SupplyKind::Switched,
        ControllerConfig::default(),
    );
    let mut wl = WorkloadSource::new(WorkloadPattern::Poisson { mean: 0.4 });
    let mut rng = StdRng::seed_from_u64(seed);
    let _ = c.run(&mut wl, 300, &mut rng);
    c.history().to_vec()
}

#[test]
fn controller_voltage_trajectory_is_bit_identical_across_runs() {
    let a = controller_history(2009);
    let b = controller_history(2009);
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        // Compare the voltage in bit space: `==` on f64 would also
        // accept -0.0 vs 0.0 or hide a NaN.
        assert_eq!(ra.vout.volts().to_bits(), rb.vout.volts().to_bits());
        assert_eq!(ra, rb, "cycle {} diverged", ra.cycle);
    }
    // And a different seed must actually change the run (the workload
    // draws are live, not ignored).
    let c = controller_history(2010);
    assert!(
        a.iter().zip(&c).any(|(ra, rc)| ra != rc),
        "seed change had no effect on the trajectory"
    );
}

/// A supply filter driven by a digitally chosen target — the smallest
/// mixed-mode system that exercises the kernel with RNG in the loop.
struct NoisyRc {
    target: f64,
}

impl OdeSystem for NoisyRc {
    fn dim(&self) -> usize {
        1
    }
    fn derivatives(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        dydt[0] = (self.target - y[0]) / 1e-6;
    }
}

fn cosim_trace(seed: u64) -> (Vec<u64>, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sys = NoisyRc { target: 0.0 };
    let config = CoSimConfig {
        clock_period: SimDuration::from_nanos(100),
        substeps: 8,
        method: IntegrationMethod::Rk4,
        stop_at: SimTime::ZERO + SimDuration::from_micros(20),
    };
    let mut trace = Vec::new();
    let (y, stats) = run_cosim(&mut sys, &[0.3], config, |tick, _t, y, sys| {
        // Each tick retargets from its own forked stream, like the
        // controller's per-cycle workload draws.
        let mut tick_rng = rng.fork(&format!("tick-{tick}"));
        sys.target = tick_rng.gen_range(0.2..1.1);
        trace.push(y[0].to_bits());
        TickOutcome::Continue
    });
    trace.push(y[0].to_bits());
    (trace, stats.ticks)
}

#[test]
fn sim_kernel_trajectory_is_bit_identical_across_runs() {
    let (ta, na) = cosim_trace(41);
    let (tb, nb) = cosim_trace(41);
    assert_eq!(na, nb);
    assert_eq!(ta, tb, "analog trajectory diverged between identical runs");
    let (tc, _) = cosim_trace(42);
    assert_ne!(ta, tc, "seed change had no effect on the kernel run");
}

/// The default study (paper spec, words 11/11) with workers from the
/// environment — what the removed `yield_study` entry point computed.
fn mc_yield(seed: u64, dies: usize) -> YieldReport {
    StudyConfig::new(dies, seed).run()
}

/// The rendered statistics of a Monte-Carlo yield run — byte-for-byte
/// what a report or plot script would consume.
fn mc_stats_text(report: &YieldReport) -> String {
    format!(
        "fixed={:.17e} adaptive={:.17e} dithered={:.17e} mean_energy={:.17e}",
        report.fixed_yield(),
        report.adaptive_yield(),
        report.dithered_yield(),
        report
            .mean_adaptive_energy()
            .map(|e| e.value())
            .unwrap_or(f64::NAN),
    )
}

#[test]
fn monte_carlo_energy_statistics_are_byte_identical_across_runs() {
    let a = mc_yield(77, 120);
    let b = mc_yield(77, 120);
    assert_eq!(a, b, "per-die outcomes diverged between identical runs");
    assert_eq!(
        mc_stats_text(&a).into_bytes(),
        mc_stats_text(&b).into_bytes()
    );
}

fn mc_yield_jobs(jobs: usize, seed: u64, dies: usize) -> YieldReport {
    StudyConfig::new(dies, seed)
        .exec(ExecConfig::with_jobs(jobs))
        .run()
}

#[test]
fn parallel_yield_study_is_bit_identical_to_the_serial_reference() {
    let reference = StudyConfig::new(120, 77).exec(ExecConfig::serial()).run();
    for jobs in [1, 2, 7] {
        let parallel = mc_yield_jobs(jobs, 77, 120);
        assert_eq!(
            reference, parallel,
            "yield study diverged from the serial reference at {jobs} jobs"
        );
        assert_eq!(
            mc_stats_text(&reference).into_bytes(),
            mc_stats_text(&parallel).into_bytes()
        );
    }
}

#[test]
fn summary_only_yield_study_is_thread_count_invariant() {
    let report = mc_yield_jobs(1, 77, 120);
    let expected = report.summarize();
    for jobs in [1, 2, 7] {
        let summary = StudyConfig::new(120, 77)
            .exec(ExecConfig::with_jobs(jobs))
            .run_summary();
        assert_eq!(
            expected, summary,
            "summary-only path diverged from summarize() at {jobs} jobs"
        );
    }
}

fn mc_yield_eval(mode: EvalMode, jobs: usize, seed: u64, dies: usize) -> YieldReport {
    StudyConfig::new(dies, seed)
        .eval_mode(mode)
        .exec(ExecConfig::with_jobs(jobs))
        .run()
}

#[test]
fn tabulated_yield_study_is_bit_identical_across_job_counts() {
    // The tabulated surfaces are a pure function of the technology and
    // grid, and interpolation is a pure function of the table — so the
    // PR 2 determinism contract must hold unchanged with tabulation on.
    let reference = StudyConfig::new(120, 77)
        .eval_mode(EvalMode::Tabulated)
        .exec(ExecConfig::serial())
        .run();
    for jobs in [1, 2, 7] {
        let parallel = mc_yield_eval(EvalMode::Tabulated, jobs, 77, 120);
        assert_eq!(
            reference, parallel,
            "tabulated yield study diverged from the serial reference at {jobs} jobs"
        );
        assert_eq!(
            mc_stats_text(&reference).into_bytes(),
            mc_stats_text(&parallel).into_bytes()
        );
    }
}

#[test]
fn tabulated_yield_study_divergence_from_analytic_is_bounded() {
    // Interpolation error is ≤1% on delay/energy; through the
    // LSB-quantized settle loop that leaves almost every die's settled
    // word identical (18.75 mV steps dwarf sub-1% model error) and
    // keeps per-die adaptive energy within a small multiple of the
    // budget. Only dies whose rate/energy sits exactly on the spec
    // boundary may flip pass/fail.
    let analytic = mc_yield_eval(EvalMode::Analytic, 4, 77, 120);
    let tabulated = mc_yield_eval(EvalMode::Tabulated, 4, 77, 120);
    assert_eq!(analytic.dies.len(), tabulated.dies.len());
    let mut word_diffs = 0usize;
    let mut flips = 0usize;
    for (a, t) in analytic.dies.iter().zip(&tabulated.dies) {
        assert_eq!(
            a.corner_units.to_bits(),
            t.corner_units.to_bits(),
            "die sampling must not depend on the eval mode"
        );
        if a.adaptive_word != t.adaptive_word {
            word_diffs += 1;
            assert!(
                a.adaptive_word.abs_diff(t.adaptive_word) <= 1,
                "settled words diverged by more than one LSB: {} vs {}",
                a.adaptive_word,
                t.adaptive_word
            );
        } else {
            let rel = (t.adaptive_energy.value() - a.adaptive_energy.value()).abs()
                / a.adaptive_energy.value();
            assert!(
                rel < 3.0 * ACCURACY_BUDGET,
                "adaptive energy diverged by {rel:.2e} at equal words"
            );
        }
        if a.adaptive_passes != t.adaptive_passes {
            flips += 1;
        }
    }
    assert!(word_diffs <= 6, "{word_diffs} of 120 settled words moved");
    assert!(flips <= 6, "{flips} of 120 dies flipped pass/fail");
    let dy = (analytic.adaptive_yield() - tabulated.adaptive_yield()).abs();
    assert!(dy <= 0.05, "adaptive yield moved by {dy:.3}");
}

#[test]
fn regulated_supply_yield_studies_are_bit_identical_across_job_counts() {
    // Every backend's table (per-word droop/ripple) is built serially
    // before the fan-out and only read by workers, so the
    // `subvt yield --supply {buck,dldo,dlr} --jobs N` contract is the
    // same as the ideal rail's: bit-identical to the serial reference
    // at any N — and a freshly built supply model must also reproduce
    // exactly (the table itself is deterministic, not just its use).
    for kind in [
        SupplyBackendKind::Buck,
        SupplyBackendKind::Dldo,
        SupplyBackendKind::Dlr,
    ] {
        let reference = StudyConfig::new(120, 77)
            .supply(kind.build_sim(SolverMode::ClosedForm))
            .exec(ExecConfig::serial())
            .run();
        for jobs in [2usize, 7] {
            let parallel = StudyConfig::new(120, 77)
                .supply(kind.build_sim(SolverMode::ClosedForm))
                .exec(ExecConfig::with_jobs(jobs))
                .run();
            assert_eq!(
                reference,
                parallel,
                "{} yield diverged from the serial reference at {jobs} jobs",
                kind.label()
            );
            assert_eq!(
                mc_stats_text(&reference).into_bytes(),
                mc_stats_text(&parallel).into_bytes()
            );
        }
        // The kind-built path (what `--supply` uses) and an explicitly
        // built model agree bit-for-bit.
        let by_kind = StudyConfig::new(120, 77).supply_backend(kind).run();
        assert_eq!(reference, by_kind, "{} kind vs model", kind.label());
    }
}

#[test]
fn parallel_savings_rows_match_the_serial_reference() {
    let reference = savings_rows(
        &StudyConfig::new(24, 2026).exec(ExecConfig::serial()),
        EvalMode::Analytic,
    );
    for jobs in [1, 2, 7] {
        let rows = savings_rows(
            &StudyConfig::new(24, 2026).exec(ExecConfig::with_jobs(jobs)),
            EvalMode::Analytic,
        );
        assert_eq!(
            reference, rows,
            "savings MC diverged from the serial reference at {jobs} jobs"
        );
    }
}

#[test]
fn fault_study_is_bit_identical_across_job_counts() {
    // Fault injection adds a third stream (the per-die fault draws)
    // forked off each die's own generator, so the jobs-invariance
    // contract must survive it for both mitigation arms.
    for mitigation in [false, true] {
        let plan = FaultPlan::uniform(0.05).with_mitigation(mitigation);
        let reference = StudyConfig::new(60, 77)
            .faults(plan)
            .exec(ExecConfig::with_jobs(1))
            .run_faults();
        assert!(reference.faults_injected > 0, "the plan never fired");
        for jobs in [2usize, 7] {
            let parallel = StudyConfig::new(60, 77)
                .faults(plan)
                .exec(ExecConfig::with_jobs(jobs))
                .run_faults();
            assert_eq!(
                reference, parallel,
                "fault study (mitigation {mitigation}) diverged at {jobs} jobs"
            );
        }
    }
}

#[test]
fn zero_rate_fault_plan_is_byte_identical_to_no_plan() {
    // Arming a plan that never fires must not perturb a single bit of
    // the study: the fault stream is forked off the die stream *after*
    // every variation draw, and the degradation machinery is designed
    // to be exactly transparent on clean samples.
    let clean = StudyConfig::new(60, 77).run();
    for mitigation in [false, true] {
        let armed = StudyConfig::new(60, 77)
            .faults(FaultPlan::uniform(0.0).with_mitigation(mitigation))
            .run();
        assert_eq!(
            clean, armed,
            "a zero-rate plan (mitigation {mitigation}) changed the study"
        );
    }
}

#[test]
fn forked_die_streams_make_mc_prefixes_stable() {
    // Because every die draws from its own label-addressed stream,
    // growing the population must not perturb the dies already
    // sampled: run 40 dies and 120 dies, the first 40 outcomes agree.
    let small = mc_yield(77, 40);
    let large = mc_yield(77, 120);
    assert_eq!(small.dies.as_slice(), &large.dies[..40]);
}
