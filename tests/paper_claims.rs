//! Integration tests pinning every quantitative claim of the paper to
//! the reproduction, in paper order.

use subvt::prelude::*;
use subvt_tdc::PAPER_SIGNATURES;

fn tech() -> Technology {
    Technology::st_130nm()
}

// --- Abstract -------------------------------------------------------------

#[test]
fn abstract_dcdc_range_and_resolution() {
    // "generating an operating Vdd from 0V to 1.2V with a resolution of
    // 18.75mV"
    let mut ideal = IdealConverter::new();
    ideal.set_word(0);
    assert_eq!(ideal.vout(), Volts(0.0));
    ideal.set_word(63);
    assert!((ideal.vout().volts() - 1.18125).abs() < 1e-12);
    ideal.set_word(32);
    let low = ideal.vout();
    ideal.set_word(33);
    assert!((ideal.vout() - low).millivolts() - 18.75 < 1e-9);
}

#[test]
fn abstract_energy_improvement_up_to_55_percent() {
    // "energy improvement of upto 55% compared to when no controller is
    // employed"
    let report = savings_experiment(&Scenario::paper_worked_example()).expect("designable");
    let savings = report.savings_vs_fixed();
    assert!(
        (0.40..0.70).contains(&savings),
        "headline savings {:.1}%",
        savings * 100.0
    );
}

// --- Sec. II: process and temperature effects ------------------------------

#[test]
fn sec2_nmos_vth_by_corner() {
    // "The nmos Vth is 302mV for slow, 287mV for typical and 272mV for
    // a fast process corner"
    let t = tech();
    let base = t.nmos.vth0;
    assert!((base.millivolts() - 287.0).abs() < 1e-9);
    assert!(((base + ProcessCorner::Ss.nmos_vth_shift()).millivolts() - 302.0).abs() < 1e-9);
    assert!(((base + ProcessCorner::Ff.nmos_vth_shift()).millivolts() - 272.0).abs() < 1e-9);
}

#[test]
fn sec2_fig1_mep_loci() {
    // "the Vopt is 200mV at typical corner, 220mV at slow and 250mV for
    // FS corner. The minimum energy is 2.65fJ for typical, 1.7fJ for
    // slow and 2.42fJ for fast-slow."
    let t = tech();
    let ring = CircuitProfile::ring_oscillator();
    let cases = [
        (ProcessCorner::Tt, 200.0, 2.65),
        (ProcessCorner::Ss, 220.0, 1.70),
        (ProcessCorner::Fs, 250.0, 2.42),
    ];
    for (corner, vopt_mv, e_fj) in cases {
        let mep = find_mep(
            &t,
            &ring,
            Environment::at_corner(corner),
            Volts(0.12),
            Volts(0.6),
        )
        .expect("range valid");
        assert!(
            (mep.vopt.millivolts() - vopt_mv).abs() < vopt_mv * 0.02,
            "{corner}: {} mV",
            mep.vopt.millivolts()
        );
        assert!(
            (mep.energy.femtos() - e_fj).abs() < e_fj * 0.02,
            "{corner}: {} fJ",
            mep.energy.femtos()
        );
    }
}

#[test]
fn sec2_vopt_and_energy_spread() {
    // "This shows a variation in the Vopt of 25% and the energy
    // variation of 55%."
    let t = tech();
    let ring = CircuitProfile::ring_oscillator();
    let meps: Vec<_> = ProcessCorner::FIGURE_CORNERS
        .iter()
        .map(|&c| {
            find_mep(
                &t,
                &ring,
                Environment::at_corner(c),
                Volts(0.12),
                Volts(0.6),
            )
            .unwrap()
        })
        .collect();
    let vs: Vec<f64> = meps.iter().map(|m| m.vopt.volts()).collect();
    let es: Vec<f64> = meps.iter().map(|m| m.energy.value()).collect();
    let spread = |v: &[f64]| {
        let lo = v.iter().copied().fold(f64::MAX, f64::min);
        let hi = v.iter().copied().fold(f64::MIN, f64::max);
        (hi - lo) / lo
    };
    assert!(
        (spread(&vs) - 0.25).abs() < 0.03,
        "Vopt spread {}",
        spread(&vs)
    );
    assert!(
        (spread(&es) - 0.55).abs() < 0.05,
        "E spread {}",
        spread(&es)
    );
}

#[test]
fn sec2_fig2_temperature_moves_the_mep_up() {
    // "the Vopt at T=25C is 200mV and at T=85C is 250mV" (our physics
    // gives 247 mV; the energy rises steeper than the paper's +25% —
    // see EXPERIMENTS.md).
    let t = tech();
    let ring = CircuitProfile::ring_oscillator();
    let cold = find_mep(
        &t,
        &ring,
        Environment::at_celsius(25.0),
        Volts(0.12),
        Volts(0.9),
    )
    .unwrap();
    let hot = find_mep(
        &t,
        &ring,
        Environment::at_celsius(85.0),
        Volts(0.12),
        Volts(0.9),
    )
    .unwrap();
    assert!((cold.vopt.millivolts() - 200.0).abs() < 5.0);
    assert!((hot.vopt.millivolts() - 250.0).abs() < 10.0);
    assert!(hot.energy.value() > 1.2 * cold.energy.value());
}

#[test]
fn sec2a_published_inverter_delays() {
    // "the delay of inverter at full Vdd is 102 ps and at 0.6V is
    // 442 ps and at 200mV is 79430 ps"
    let t = tech();
    let timing = GateTiming::new(&t);
    let env = Environment::nominal();
    for (v, ps) in [(1.2, 102.0), (0.6, 442.0), (0.2, 79_430.0)] {
        let d = timing
            .gate_delay(GateKind::Inverter, Volts(v), env)
            .expect("in range");
        assert!(
            (d.picos() - ps).abs() / ps < 0.05,
            "{v} V: {} ps",
            d.picos()
        );
    }
}

#[test]
fn sec2a_table1_structure() {
    // Table I: clean signatures at high Vdd, 16 shifts per 200 mV,
    // double-latch at 0.6 V.
    let rows = reproduce_table1(&tech(), Environment::nominal()).expect("published voltages");
    assert_eq!(rows.len(), PAPER_SIGNATURES.len());
    let c12 = rows[0].code.expect("1.2 V decodes");
    let c10 = rows[1].code.expect("1.0 V decodes");
    assert!((14..=18).contains(&(c12 - c10)), "shift {}", c12 - c10);
    assert!(rows[3].bursts >= 2, "0.6 V must double-latch");
    assert_eq!(rows[3].code, None);
}

// --- Sec. III: the controller blocks ---------------------------------------

#[test]
fn sec3_word_to_voltage_examples() {
    // "a 6-bit value '001111' will mean the desired output from DC-DC
    // will be 15 × 18.75 ≈ 282mV" and "a digital word '19' ... gets
    // translated to 19 × 18.75 ≈ 356mV".
    assert!((word_voltage(0b001111).millivolts() - 281.25).abs() < 1e-9);
    assert!((word_voltage(19).millivolts() - 356.25).abs() < 1e-9);
}

#[test]
fn sec3_comparator_encoding() {
    // "less than ('01') or equal to ('10') or greater than ('11')"
    let cmp = MagnitudeComparator::new();
    assert_eq!(cmp.compare(10, 19).to_bits(), 0b01);
    assert_eq!(cmp.compare(19, 19).to_bits(), 0b10);
    assert_eq!(cmp.compare(25, 19).to_bits(), 0b11);
}

#[test]
fn sec3_pwm_duty_ratio() {
    // "PWM controller generates the modulated signal with a duty ratio
    // of N/2^6=64"
    let mut pwm = PwmGenerator::new(6);
    pwm.load_duty(40);
    let mut high = 0;
    for _ in 0..64 {
        if pwm.tick().0.is_high() {
            high += 1;
        }
    }
    assert_eq!(high, 40);
}

// --- Sec. IV: system validation --------------------------------------------

#[test]
fn sec4_system_timing() {
    // "The operational frequency of the clock is 64 MHz and the system
    // cycle is 1 MHz (64 MHz/2^6)"
    let c = DcDcConverter::new(ConverterParams::default(), Box::new(NoLoad));
    assert!((c.system_cycle().value() - 1e-6).abs() < 1e-12);
}

#[test]
fn sec4_fig6_voltage_steps() {
    // Fig. 6: 350 mV initial, step to 220 mV, step to 880 mV.
    let result = run_transient(
        ConverterParams::default(),
        Box::new(NoLoad),
        &fig6_schedule(),
    );
    let settled: Vec<f64> = result
        .segments
        .iter()
        .map(|s| s.settled.millivolts())
        .collect();
    assert!((settled[0] - 356.25).abs() < 10.0, "{settled:?}");
    assert!((settled[1] - 225.0).abs() < 10.0, "{settled:?}");
    assert!((settled[2] - 881.25).abs() < 10.0, "{settled:?}");
}

#[test]
fn sec4_one_bit_correction_to_the_slow_mep() {
    // "because of the 1-bit shift the corrected value will be
    // ~200+18.75 = 218.75 which is the optimal voltage for MEP for the
    // slow process" — within 2 system-cycle confirmation.
    let report = savings_experiment(&Scenario::paper_worked_example()).expect("designable");
    assert_eq!(report.compensated.compensation, 1, "the 1-bit LUT shift");
    // Idle voltage after correction ≈ 218.75 mV ≈ the SS MEP (220 mV).
    let idle_mv = report.compensated.mean_vout.millivolts();
    assert!(
        (215.0..235.0).contains(&idle_mv),
        "corrected idle supply {idle_mv} mV"
    );
}

#[test]
fn sec4_controller_works_with_the_fir_load() {
    // "We have also examined the capability when the load is a 9-tap
    // FIR filter. It is observed that the proposed controller behaving
    // as expected."
    let t = tech();
    let fir = FirFilter::lowpass_9tap();
    let rate = RateController::design(
        &t,
        &fir,
        Environment::nominal(),
        &[
            (8, subvt_device::units::Hertz(200e3)),
            (32, subvt_device::units::Hertz(2e6)),
        ],
    )
    .expect("designable");
    let mut controller = AdaptiveController::new(
        t,
        fir,
        rate,
        Environment::nominal(),
        Environment::at_corner(ProcessCorner::Ss),
        GateMismatch::NOMINAL,
        SupplyPolicy::AdaptiveCompensated,
        SupplyKind::Ideal,
        ControllerConfig::default(),
    );
    let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 1 });
    let mut rng = subvt_rng::StdRng::seed_from_u64(5);
    let summary = controller.run(&mut wl, 500, &mut rng);
    assert_eq!(summary.dropped, 0);
    assert!(summary.compensation >= 1, "slow die sensed on the FIR too");
}
