//! The post-deprecation contract of the study API redesign, checked
//! against the source text: the fifteen legacy entry points that spent
//! one release as `#[deprecated]` delegates are now GONE, nothing in
//! the tree still names them, and the builder surface that replaced
//! them is really there. Resurrecting one of the old names (e.g. by a
//! careless merge) fails this suite, not just a doc review.

use std::fs;
use std::path::Path;

fn source(rel: &str) -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"))
}

/// Asserts `fn {name}(` is not defined anywhere in `text` (pub or
/// private — the name must be fully retired, not merely hidden).
fn assert_absent(text: &str, rel: &str, name: &str) {
    let needle = format!("fn {name}(");
    assert!(
        !text.contains(&needle),
        "{rel}: `{needle}` reappeared — the legacy entry point was \
         deleted after its deprecation release; use StudyConfig instead"
    );
}

#[test]
fn the_ten_legacy_yield_study_entry_points_stay_deleted() {
    let text = source("crates/subvt-core/src/yield_study.rs");
    // Longest-suffix first so e.g. `yield_study_jobs_supply_eval` is
    // checked on its own and not shadowed by a shorter prefix match.
    for name in [
        "yield_study_jobs_supply_eval",
        "yield_study_serial_supply_eval",
        "yield_study_summary_supply_eval",
        "yield_study_jobs_eval",
        "yield_study_serial_eval",
        "yield_study_summary_eval",
        "yield_study_jobs",
        "yield_study_serial",
        "yield_study_summary",
        "yield_study",
    ] {
        assert_absent(&text, "crates/subvt-core/src/yield_study.rs", name);
    }
    // No lingering deprecation machinery either: the module carries
    // zero `#[deprecated]` attributes now that the window closed.
    assert_eq!(
        text.matches("#[deprecated").count(),
        0,
        "yield_study.rs should carry no deprecation markers after the \
         legacy surface was removed"
    );
}

#[test]
fn the_five_legacy_savings_monte_carlo_entry_points_stay_deleted() {
    let text = source("crates/subvt-bench/src/savings.rs");
    for name in [
        "savings_monte_carlo_jobs_eval",
        "savings_monte_carlo_serial_eval",
        "savings_monte_carlo_jobs",
        "savings_monte_carlo_serial",
        "savings_monte_carlo",
    ] {
        assert_absent(&text, "crates/subvt-bench/src/savings.rs", name);
    }
    assert_eq!(
        text.matches("#[deprecated").count(),
        0,
        "savings.rs should carry no deprecation markers after the \
         legacy surface was removed"
    );
}

#[test]
fn the_builder_replacement_surface_exists() {
    let text = source("crates/subvt-core/src/study.rs");
    for needle in [
        "pub struct StudyConfig",
        "pub struct StudyArgs",
        "pub enum SupplyBackendKind",
        "pub fn run(",
        "pub fn run_summary(",
        "pub fn run_faults(",
        "pub fn run_dies<",
        "pub fn supply_backend(",
        "pub fn accept(",
    ] {
        assert!(
            text.contains(needle),
            "crates/subvt-core/src/study.rs lost `{needle}`"
        );
    }
    // The module that housed the legacy yield fns still documents the
    // replacement, so a reader landing there is pointed at the builder.
    assert!(
        source("crates/subvt-core/src/yield_study.rs").contains("StudyConfig"),
        "yield_study.rs should point readers at StudyConfig"
    );
    assert!(
        source("crates/subvt-bench/src/savings.rs").contains("StudyConfig"),
        "savings.rs should point readers at StudyConfig"
    );
}

#[test]
fn nothing_in_the_tree_still_names_a_legacy_entry_point() {
    // With the wrappers gone there is no longer any file that may
    // mention the old names — not even the determinism suite, which
    // used to pin builder-vs-legacy identity and now pins the builder
    // against its own serial reference.
    for rel in [
        "src/cli.rs",
        "src/lib.rs",
        "tests/determinism.rs",
        "tests/batch_equivalence.rs",
        "tests/checkpoint_resume.rs",
        "crates/subvt-core/src/lib.rs",
        "crates/subvt-core/src/study.rs",
        "crates/subvt-bench/src/jobs.rs",
        "crates/subvt-bench/src/bin/exp-yield.rs",
        "crates/subvt-bench/src/bin/exp-savings.rs",
        "crates/subvt-bench/src/bin/exp-faults.rs",
        "crates/subvt-bench/src/bin/exp-ablations.rs",
    ] {
        let text = source(rel);
        for legacy in [
            "yield_study_jobs",
            "yield_study_serial",
            "savings_monte_carlo",
        ] {
            assert!(
                !text.contains(legacy),
                "{rel} still names the removed `{legacy}` surface"
            );
        }
    }
}

#[test]
fn every_supply_backend_kind_is_spelled_in_the_cli_help() {
    // `--supply` must advertise exactly the four canonical spellings.
    // The retired `switched` alias still *parses* (scripts keep
    // working, checkpoint fingerprints stay compatible) but is no
    // longer advertised anywhere a user reads.
    let study = source("crates/subvt-core/src/study.rs");
    for spelling in ["ideal", "buck", "dldo", "dlr"] {
        assert!(
            study.contains(spelling),
            "STUDY_HELP no longer documents the `{spelling}` supply spelling"
        );
    }
    // The alias survives in the parser (exactly the `"buck" |
    // "switched"` arm) so old invocations and fingerprints keep
    // resolving...
    assert!(
        study.contains(r#""buck" | "switched""#),
        "the `switched` parse alias was dropped — old scripts and \
         checkpoint fingerprints would break"
    );
    // ...but the user-facing help text must not mention it.
    let after_help = &study[study.find("STUDY_HELP").expect("STUDY_HELP const")..];
    let help_text = &after_help[..after_help.find("\";").expect("help terminator")];
    assert!(
        !help_text.contains("switched"),
        "STUDY_HELP still advertises the retired `switched` alias"
    );
    assert!(
        !source("src/cli.rs")
            .split("pub const USAGE")
            .nth(1)
            .expect("USAGE const")
            .split("\";")
            .next()
            .expect("usage terminator")
            .contains("switched"),
        "the subvt USAGE text still advertises the retired `switched` alias"
    );
}

#[test]
fn every_harness_binary_shares_the_one_study_help_text() {
    // Satellite of the scenario PR: the four study harnesses used to
    // assemble `--help` from per-binary JOBS_HELP/EVAL_HELP/SUPPLY_HELP
    // fragments that drifted independently. They now all interpolate
    // the one STUDY_HELP const, so a flag documented for one binary is
    // documented identically for all of them.
    for rel in [
        "crates/subvt-bench/src/bin/exp-yield.rs",
        "crates/subvt-bench/src/bin/exp-savings.rs",
        "crates/subvt-bench/src/bin/exp-faults.rs",
        "crates/subvt-bench/src/bin/exp-ablations.rs",
        "crates/subvt-bench/src/bin/exp-shootout.rs",
    ] {
        let text = source(rel);
        assert!(
            text.contains("{STUDY_HELP}"),
            "{rel} no longer interpolates the shared STUDY_HELP text"
        );
        assert!(
            text.contains("[study flags]"),
            "{rel} drifted from the unified `USAGE: <bin> [study flags]` form"
        );
        for retired in ["JOBS_HELP", "EVAL_HELP", "SUPPLY_HELP"] {
            assert!(
                !text.contains(retired),
                "{rel} resurrects the retired per-binary `{retired}` fragment"
            );
        }
    }
    // The fragments themselves stay deleted from the shared harness
    // module.
    let jobs = source("crates/subvt-bench/src/jobs.rs");
    for retired in ["JOBS_HELP", "EVAL_HELP", "SUPPLY_HELP"] {
        assert!(
            !jobs.contains(retired),
            "jobs.rs redefines the retired `{retired}` fragment"
        );
    }
}

#[test]
fn fleet_perf_gate_warnings_go_to_stderr() {
    // The fleet bench's missing/stale-baseline warnings must never
    // land on stdout: CI and scripts parse the bench's stdout, and a
    // warning line would corrupt it. Pin every warning print in the
    // baseline-handling code to eprintln!.
    let text = source("crates/subvt-bench/benches/fleet.rs");
    for (i, line) in text.lines().enumerate() {
        if line.contains("warning") && line.contains("println!") {
            assert!(
                line.contains("eprintln!"),
                "fleet.rs:{}: baseline warning printed to stdout: {line}",
                i + 1
            );
        }
    }
    assert!(
        text.contains("eprintln!"),
        "fleet.rs no longer routes any warning to stderr — did the \
         baseline warnings move?"
    );
}
