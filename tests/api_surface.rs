//! The deprecation contract of the study API redesign, checked against
//! the source text: all fifteen legacy entry points still exist, every
//! one of them carries `#[deprecated]` pointing at `StudyConfig`, and
//! the builder surface they delegate to is really there. This is what
//! lets downstream code migrate over one release instead of breaking.

use std::fs;
use std::path::Path;

fn source(rel: &str) -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"))
}

/// Asserts `pub fn {name}` exists in `text` and that the nearest
/// preceding attribute block contains `#[deprecated`.
fn assert_deprecated(text: &str, rel: &str, name: &str) {
    let needle = format!("pub fn {name}");
    let pos = text
        .find(&needle)
        .unwrap_or_else(|| panic!("{rel}: `{needle}` is gone — keep the wrapper for one release"));
    // Look back a few hundred bytes: attributes and doc comments sit
    // directly above the signature.
    let start = pos.saturating_sub(400);
    let above = &text[start..pos];
    assert!(
        above.contains("#[deprecated"),
        "{rel}: `{name}` exists but is not marked #[deprecated] (the \
         redesign keeps legacy entry points only as deprecated delegates)"
    );
}

#[test]
fn all_ten_yield_study_entry_points_are_deprecated_delegates() {
    let text = source("crates/subvt-core/src/yield_study.rs");
    for name in [
        "yield_study",
        "yield_study_jobs",
        "yield_study_jobs_eval",
        "yield_study_jobs_supply_eval",
        "yield_study_serial",
        "yield_study_serial_eval",
        "yield_study_serial_supply_eval",
        "yield_study_summary",
        "yield_study_summary_eval",
        "yield_study_summary_supply_eval",
    ] {
        assert_deprecated(&text, "crates/subvt-core/src/yield_study.rs", name);
    }
    assert!(
        text.matches("#[deprecated").count() >= 10,
        "fewer deprecation markers than legacy yield entry points"
    );
}

#[test]
fn all_five_savings_monte_carlo_entry_points_are_deprecated_delegates() {
    let text = source("crates/subvt-bench/src/savings.rs");
    for name in [
        "savings_monte_carlo",
        "savings_monte_carlo_jobs",
        "savings_monte_carlo_jobs_eval",
        "savings_monte_carlo_serial",
        "savings_monte_carlo_serial_eval",
    ] {
        assert_deprecated(&text, "crates/subvt-bench/src/savings.rs", name);
    }
}

#[test]
fn the_builder_replacement_surface_exists() {
    let text = source("crates/subvt-core/src/study.rs");
    for needle in [
        "pub struct StudyConfig",
        "pub struct StudyArgs",
        "pub fn run(",
        "pub fn run_summary(",
        "pub fn run_faults(",
        "pub fn run_dies<",
        "pub fn accept(",
    ] {
        assert!(
            text.contains(needle),
            "crates/subvt-core/src/study.rs lost `{needle}`"
        );
    }
    // And the deprecation notes point migrating callers at it.
    for rel in [
        "crates/subvt-core/src/yield_study.rs",
        "crates/subvt-bench/src/savings.rs",
    ] {
        assert!(
            source(rel).contains("use StudyConfig"),
            "{rel}: deprecation notes should name StudyConfig as the replacement"
        );
    }
}

#[test]
fn no_in_tree_binary_still_calls_a_legacy_entry_point() {
    // The bins and the CLI migrated in this PR; only the determinism
    // suite (which pins builder-vs-legacy identity) and the wrappers'
    // own modules may mention the old names.
    for rel in [
        "src/cli.rs",
        "crates/subvt-bench/src/bin/exp-yield.rs",
        "crates/subvt-bench/src/bin/exp-savings.rs",
        "crates/subvt-bench/src/bin/exp-faults.rs",
        "crates/subvt-bench/src/bin/exp-ablations.rs",
    ] {
        let text = source(rel);
        for legacy in ["yield_study(", "yield_study_", "savings_monte_carlo"] {
            assert!(
                !text.contains(legacy),
                "{rel} still calls the deprecated `{legacy}` surface"
            );
        }
    }
}
