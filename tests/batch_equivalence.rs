//! Batched-vs-scalar bit-identity: the structure-of-arrays fleet path
//! (`run_summary`/`run_faults`, any `--batch`, any `--jobs`) must
//! reproduce the scalar per-die reference (`run()` + `summarize()`)
//! down to the last bit, including the ragged final sub-batch. The
//! comparison witness is `encode_state()` — the exact bytes a
//! checkpoint record carries — so equality here is byte equality of
//! every counter and every Welford moment.

use subvt_core::study::{StudyConfig, DEFAULT_BATCH};
use subvt_core::FaultPlan;
use subvt_exec::{chunk_len, ExecConfig};

/// 150 dies → chunks of `chunk_len(150) = 3`: small batches sub-divide
/// a chunk (ragged tail included) and large ones cover it whole.
const DIES: usize = 150;
const SEED: u64 = 2009;

/// Batch sizes below, at, and above the chunk length, plus the whole
/// population (one sub-batch per chunk).
const BATCHES: [usize; 4] = [1, 2, 64, DIES];
const JOBS: [usize; 3] = [1, 2, 7];

fn config(dies: usize) -> StudyConfig<'static> {
    StudyConfig::new(dies, SEED)
}

#[test]
fn the_population_actually_sub_batches_raggedly() {
    // Guard the fixture: batch 2 over a 3-die chunk must leave a
    // ragged 1-die sub-batch, or the suite stops testing raggedness.
    assert_eq!(chunk_len(DIES), 3);
    assert!(BATCHES.contains(&2));
}

#[test]
fn batched_yield_summary_is_bit_identical_to_the_scalar_reference() {
    // `run()` scores die-by-die through the scalar path and
    // materializes every outcome; `summarize()` folds them through the
    // same chunk geometry the streaming path uses.
    let reference = config(DIES).run().summarize().encode_state();
    for batch in BATCHES {
        for jobs in JOBS {
            let got = config(DIES)
                .batch(batch)
                .exec(ExecConfig::with_jobs(jobs))
                .run_summary();
            assert_eq!(
                got.encode_state(),
                reference,
                "summary diverged at batch={batch} jobs={jobs}"
            );
        }
    }
}

#[test]
fn batched_switched_supply_summary_is_bit_identical() {
    // The switched supply exercises the converter-derived operating
    // points (trough + mean per word) through the lane path.
    let scalar = |dies: usize| {
        config(dies)
            .supply_kind(subvt_core::SupplyKind::Switched)
            .run()
            .summarize()
            .encode_state()
    };
    let reference = scalar(40);
    for (batch, jobs) in [(1, 2), (3, 1), (64, 7)] {
        let got = config(40)
            .supply_kind(subvt_core::SupplyKind::Switched)
            .batch(batch)
            .exec(ExecConfig::with_jobs(jobs))
            .run_summary();
        assert_eq!(
            got.encode_state(),
            reference,
            "switched summary diverged at batch={batch} jobs={jobs}"
        );
    }
}

#[test]
fn batched_dldo_and_dlr_summaries_are_bit_identical() {
    // The two new regulator backends flow through the same snapshot
    // table the buck does, so the lane path must reproduce the scalar
    // reference for each of them too — per-word trough scoring and
    // mean-voltage energy included.
    for kind in [
        subvt_core::SupplyBackendKind::Dldo,
        subvt_core::SupplyBackendKind::Dlr,
    ] {
        let reference = config(40)
            .supply_backend(kind)
            .run()
            .summarize()
            .encode_state();
        for (batch, jobs) in [(1, 2), (3, 1), (64, 7)] {
            let got = config(40)
                .supply_backend(kind)
                .batch(batch)
                .exec(ExecConfig::with_jobs(jobs))
                .run_summary();
            assert_eq!(
                got.encode_state(),
                reference,
                "{} summary diverged at batch={batch} jobs={jobs}",
                kind.label()
            );
        }
    }
}

#[test]
fn batched_tabulated_summary_is_bit_identical() {
    // Tabulated surfaces are where the lane API actually hoists work
    // (one grid resolution per lane); the hoist must not change bits.
    let reference = config(60)
        .eval_mode(subvt_device::tabulate::EvalMode::Tabulated)
        .run()
        .summarize()
        .encode_state();
    for (batch, jobs) in [(1, 1), (5, 2), (60, 7)] {
        let got = config(60)
            .eval_mode(subvt_device::tabulate::EvalMode::Tabulated)
            .batch(batch)
            .exec(ExecConfig::with_jobs(jobs))
            .run_summary();
        assert_eq!(
            got.encode_state(),
            reference,
            "tabulated summary diverged at batch={batch} jobs={jobs}"
        );
    }
}

#[test]
fn batched_fault_summary_is_bit_identical_to_the_scalar_reference() {
    let plan = FaultPlan::uniform(0.02);
    // Scalar reference for the yield portion: `run()` under the same
    // plan scores through `score_faulted_die` one die at a time.
    let base_reference = config(40).faults(plan).run().summarize().encode_state();
    // Reference for the full fault summary (tracking error, recovery
    // energy, trip/injection counts): batch=1, jobs=1 — per-die
    // scoring with a per-die cache, exactly the scalar shape.
    let reference = config(40)
        .faults(plan)
        .batch(1)
        .exec(ExecConfig::serial())
        .run_faults();
    assert_eq!(reference.base.encode_state(), base_reference);
    for batch in [2, 64, 40] {
        for jobs in JOBS {
            let got = config(40)
                .faults(plan)
                .batch(batch)
                .exec(ExecConfig::with_jobs(jobs))
                .run_faults();
            assert_eq!(
                got.encode_state(),
                reference.encode_state(),
                "fault summary diverged at batch={batch} jobs={jobs}"
            );
        }
    }
}

#[test]
fn simd_ragged_tails_one_through_three_are_bit_identical() {
    // The wide-lane kernels walk a sub-batch four dies at a time and
    // finish the remainder through the scalar path. The fixtures above
    // never see a full 4-lane (chunk_len ≤ 3), so pin each ragged tail
    // width explicitly: sub-batches of 5, 6 and 7 dies leave scalar
    // tails of 1, 2 and 3 after the SIMD pass, and 258 dies adds a
    // ragged *final chunk* of 3 on top of its 5-die sub-batches.
    for (dies, batch) in [(258usize, 5usize), (384, 6), (448, 7)] {
        assert_eq!(chunk_len(dies), batch, "fixture drifted for {dies} dies");
        let reference = config(dies).run().summarize().encode_state();
        for jobs in JOBS {
            let got = config(dies)
                .batch(batch)
                .exec(ExecConfig::with_jobs(jobs))
                .run_summary();
            assert_eq!(
                got.encode_state(),
                reference,
                "summary diverged at dies={dies} batch={batch} jobs={jobs}"
            );
        }
    }
}

#[test]
fn supply_backend_times_eval_mode_cross_product_is_bit_identical() {
    // Every supply backend through every device-evaluation mode, at a
    // population (320 dies, chunk 5) whose sub-batches genuinely run
    // the 4-wide kernels plus a 1-die scalar tail. One batched shape
    // per combination keeps the cross product affordable; the shapes
    // themselves are exercised exhaustively above.
    for kind in [
        subvt_core::SupplyBackendKind::Ideal,
        subvt_core::SupplyBackendKind::Buck,
        subvt_core::SupplyBackendKind::Dldo,
        subvt_core::SupplyBackendKind::Dlr,
    ] {
        for eval in [
            subvt_device::tabulate::EvalMode::Analytic,
            subvt_device::tabulate::EvalMode::Tabulated,
        ] {
            let reference = config(320)
                .supply_backend(kind)
                .eval_mode(eval)
                .run()
                .summarize()
                .encode_state();
            let got = config(320)
                .supply_backend(kind)
                .eval_mode(eval)
                .batch(5)
                .exec(ExecConfig::with_jobs(7))
                .run_summary();
            assert_eq!(
                got.encode_state(),
                reference,
                "summary diverged at supply={} eval={}",
                kind.label(),
                eval.label()
            );
        }
    }
}

#[test]
fn default_batch_is_sensible_and_in_effect() {
    // The default must be a real batch (not 1, not unbounded), and a
    // defaulted run must equal an explicit `.batch(DEFAULT_BATCH)`.
    let default = DEFAULT_BATCH;
    assert!(default > 1, "default batch {default} is not a real batch");
    assert!(default <= 2048, "default batch {default} exceeds a chunk");
    let defaulted = config(70).run_summary().encode_state();
    let explicit = config(70).batch(DEFAULT_BATCH).run_summary().encode_state();
    assert_eq!(defaulted, explicit);
}
