//! Integration tests over the extension features: body biasing, boot
//! sequencing, drift tracking, overhead accounting, dithering, idle
//! policies and the alternative TDC methods — wired across crates.

use subvt::prelude::*;
use subvt_core::drift::{run_with_drift, DriftSchedule};
use subvt_core::idle_policy::compare_idle_policies;
use subvt_core::overhead::{overhead_per_cycle, ControllerInventory};
use subvt_dcdc::NoLoad;
use subvt_device::units::Hertz;

#[test]
fn abb_and_avs_are_interchangeable_for_one_lsb_of_variation() {
    let tech = Technology::st_130nm();
    let env = Environment::nominal();
    let sensor = VariationSensor::new(&tech, env, SensorConfig::default());
    let die = GateMismatch {
        nmos_dvth: Volts(0.018_75),
        pmos_dvth: Volts(0.018_75),
    };

    // AVS route: one word up.
    let avs = sensor.sense(&tech, 12, word_voltage(13), env, die).unwrap();
    // ABB route: converge the bias.
    let mut abb = AbbCompensator::new(BodyEffect::bulk_130nm());
    let (bias, abb_res) = abb.converge(&tech, &sensor, 12, env, die, 8).unwrap();

    assert_eq!(avs, 0);
    assert_eq!(abb_res, 0);
    assert!(bias.nmos_vbs.volts() > 0.0, "forward bias expected");
}

#[test]
fn boot_then_adapt_end_to_end() {
    // Full life-cycle: soft-start the converter, pass the calibration
    // check, then hand over to the adaptive controller on a slow die.
    let tech = Technology::st_130nm();
    let env = Environment::at_corner(ProcessCorner::Ss);
    let sensor = VariationSensor::new(&tech, Environment::nominal(), SensorConfig::default());
    let mut converter = DcDcConverter::new(ConverterParams::default(), Box::new(NoLoad));
    let mut boot = BootSequence::new(12, 30);
    let state = boot
        .run(
            &mut converter,
            &sensor,
            &tech,
            env,
            GateMismatch::NOMINAL,
            300,
        )
        .expect("sensor usable");
    // One LSB of corner shift passes the |dev| ≤ 1 gate.
    assert!(matches!(state, BootState::Ready { .. }), "{state:?}");

    // The adaptive loop then takes over and lands the +1 correction.
    let rate = design_rate_controller(&tech, Environment::nominal()).unwrap();
    let mut controller = AdaptiveController::new(
        tech,
        RingOscillator::paper_circuit(),
        rate,
        Environment::nominal(),
        env,
        GateMismatch::NOMINAL,
        SupplyPolicy::AdaptiveCompensated,
        SupplyKind::Ideal,
        ControllerConfig::default(),
    );
    let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 0 });
    let mut rng = subvt_rng::StdRng::seed_from_u64(1);
    let summary = controller.run(&mut wl, 30, &mut rng);
    assert!((1..=2).contains(&summary.compensation));
}

#[test]
fn drift_and_monte_carlo_compose() {
    // A sampled slow-ish die *and* a temperature step, tracked live.
    let model = VariationModel::st_130nm();
    let mut rng = subvt_rng::StdRng::seed_from_u64(40);
    // Draw dies until a clearly slow one appears (deterministic seed).
    let die = loop {
        let d = model.sample_die(&mut rng);
        if d.corner_units() > 0.9 {
            break d;
        }
    };

    let tech = Technology::st_130nm();
    let rate = design_rate_controller(&tech, Environment::nominal()).unwrap();
    let mut controller = AdaptiveController::new(
        tech,
        RingOscillator::paper_circuit(),
        rate,
        Environment::nominal(),
        Environment::nominal(),
        die.mean_gate(),
        SupplyPolicy::AdaptiveCompensated,
        SupplyKind::Ideal,
        ControllerConfig::default(),
    );
    let schedule = DriftSchedule::new(vec![
        (0, Environment::nominal()),
        (80, Environment::at_celsius(85.0)),
    ]);
    let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 0 });
    let r = run_with_drift(&mut controller, &schedule, &mut wl, 160, &mut rng);

    let (_, comp_cold) = r.segment_compensation[0];
    let (_, comp_hot) = r.segment_compensation[1];
    assert!(comp_cold >= 1, "slow die first: {comp_cold}");
    assert!(comp_hot < comp_cold, "heat pulls it back down: {comp_hot}");
}

#[test]
fn overhead_is_dwarfed_by_a_realistic_load_but_not_by_the_probe() {
    let tech = Technology::st_130nm();
    let b = overhead_per_cycle(
        &tech,
        ControllerInventory::default(),
        Volts(0.206),
        Hertz::from_megahertz(64.0),
        Seconds::from_micros(1.0),
    );
    let sense_cost = (b.tdc + b.control).femtos();

    let env = Environment::nominal();
    let ring_op = RingOscillator::paper_circuit()
        .energy_per_op(&tech, Volts(0.206), env)
        .unwrap()
        .total()
        .femtos();
    let fir_op = FirFilter::lowpass_9tap()
        .energy_per_op(&tech, Volts(0.206), env)
        .unwrap()
        .total()
        .femtos();
    assert!(
        sense_cost > 10.0 * ring_op,
        "sensing ({sense_cost} fJ) must dwarf the 64-gate probe ({ring_op} fJ)"
    );
    assert!(
        fir_op * 10.0 > sense_cost,
        "ten FIR samples ({fir_op} fJ each) must cover one sensing event"
    );
}

#[test]
fn counter_tdc_agrees_with_direct_sensor_on_corner_direction() {
    let tech = Technology::st_130nm();
    let env_slow = Environment::at_corner(ProcessCorner::Ss);
    let sensor = VariationSensor::new(&tech, Environment::nominal(), SensorConfig::default());
    let counter = CounterSensor::full_range();
    let v = word_voltage(12);

    let direct = sensor
        .sense(&tech, 12, v, env_slow, GateMismatch::NOMINAL)
        .unwrap();
    let count_nominal = counter.measure(&tech, v, Environment::nominal(), GateMismatch::NOMINAL);
    let count_slow = counter.measure(&tech, v, env_slow, GateMismatch::NOMINAL);

    assert!(direct < 0, "direct sensor reads slow");
    assert!(count_slow < count_nominal, "counter method reads slow too");
}

#[test]
fn dither_tracks_the_compensated_operating_point() {
    // After a +1 LSB correction the true iso-delay point usually sits
    // between words; the dither plan reconstructs it.
    let tech = Technology::st_130nm();
    let ring = CircuitProfile::ring_oscillator();
    let target = Volts(0.218_75); // the paper's corrected 218.75 mV
    let plan = DitherPlan::for_target(target);
    assert_eq!((plan.low, plan.high), (11, 12));
    assert!((plan.average_voltage() - target).volts().abs() < 1e-9);
    let e = plan
        .energy_per_op(&tech, &ring, Environment::at_corner(ProcessCorner::Ss))
        .unwrap();
    // Near the SS MEP (1.7 fJ): the dithered point must be close.
    assert!(
        (e.femtos() - 1.7).abs() < 0.15,
        "dithered energy {} fJ",
        e.femtos()
    );
}

#[test]
fn idle_policy_and_controller_agree_on_the_operating_point() {
    // The analytic idle-policy DVS voltage and the closed-loop
    // controller's chosen word must match for the same workload.
    let tech = Technology::st_130nm();
    let env = Environment::nominal();
    let ring = RingOscillator::paper_circuit();
    let cmp = compare_idle_policies(&tech, &ring, env, Hertz(100e3), Volts(0.6), 0.05).unwrap();

    let rate = design_rate_controller(&tech, env).unwrap();
    let mut controller = AdaptiveController::new(
        tech,
        ring,
        rate,
        env,
        env,
        GateMismatch::NOMINAL,
        SupplyPolicy::AdaptiveCompensated,
        SupplyKind::Ideal,
        ControllerConfig::default(),
    );
    // 0.1 items/cycle = 100 kHz offered rate.
    let mut wl = WorkloadSource::new(WorkloadPattern::Burst {
        busy_rate: 1,
        busy_cycles: 10,
        idle_cycles: 90,
    });
    let mut rng = subvt_rng::StdRng::seed_from_u64(9);
    let summary = controller.run(&mut wl, 1_000, &mut rng);
    let diff = (summary.mean_vout - cmp.dvs.vdd).millivolts().abs();
    assert!(
        diff < 2.5 * 18.75,
        "controller {} vs analytic {}",
        summary.mean_vout,
        cmp.dvs.vdd
    );
}

#[test]
fn the_whole_stack_works_on_the_65nm_node() {
    // Re-run the paper's worked example on the second technology
    // preset: design at TT, fabricate slow, let the sensor correct.
    use subvt_core::RateController;
    use subvt_device::units::Hertz;

    let tech = Technology::generic_65nm();
    let ring = RingOscillator::paper_circuit();
    let rate = RateController::design(
        &tech,
        &ring,
        Environment::nominal(),
        &[(8, Hertz(100e3)), (16, Hertz(1e6)), (32, Hertz(10e6))],
    )
    .expect("designable on 65nm");

    // The 65 nm MEP sits at its own (higher-Vth) point.
    let mep = find_mep(
        &tech,
        ring.profile(),
        Environment::nominal(),
        Volts(0.12),
        Volts(0.9),
    )
    .unwrap();
    assert!(
        mep.vopt.volts() < tech.nmos.vth0.volts(),
        "still a subthreshold MEP: {}",
        mep.vopt
    );

    let mut controller = AdaptiveController::new(
        tech,
        ring,
        rate,
        Environment::nominal(),
        Environment::at_corner(ProcessCorner::Ss),
        GateMismatch::NOMINAL,
        SupplyPolicy::AdaptiveCompensated,
        SupplyKind::Ideal,
        ControllerConfig::default(),
    );
    let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 0 });
    let mut rng = subvt_rng::StdRng::seed_from_u64(21);
    let summary = controller.run(&mut wl, 40, &mut rng);
    assert!(
        (1..=2).contains(&summary.compensation),
        "65nm slow die corrected by {}",
        summary.compensation
    );
    assert_eq!(summary.dropped, 0);
}
