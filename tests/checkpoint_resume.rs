//! Kill/resume discipline of the checkpointed fleet path: a summary
//! study stopped at *any* commit boundary — or cancelled while worker
//! threads are mid-chunk — and then resumed from its checkpoint file
//! must produce a summary byte-identical to one that never stopped,
//! even when the resume runs at a different `--jobs`/`--batch`.
//! Damaged, truncated, or mismatched checkpoint files must be rejected
//! with a typed error, never silently restarted.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use subvt_core::study::{StudyConfig, StudyError};
use subvt_core::FaultPlan;
use subvt_exec::{chunk_count, CancelToken, ExecConfig, Progress};

const DIES: usize = 96;
const SEED: u64 = 41;

fn config(dies: usize) -> StudyConfig<'static> {
    StudyConfig::new(dies, SEED)
}

/// A unique scratch path inside the cargo target dir, removed on drop.
struct ScratchFile(PathBuf);

impl ScratchFile {
    fn new(tag: &str) -> ScratchFile {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "subvt-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        ScratchFile(path)
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Runs a checkpointed summary study that cancels itself once `stop`
/// dies have committed; returns whether it was in fact cancelled.
fn run_until(path: &PathBuf, stop: u64, jobs: usize) -> Result<(), StudyError> {
    let token = CancelToken::new();
    let watch_token = token.clone();
    let watch = move |p: Progress| {
        if p.done as u64 >= stop {
            watch_token.cancel();
        }
    };
    config(DIES)
        .exec(ExecConfig::with_jobs(jobs))
        .checkpoint(path)
        .cancel(&token)
        .progress(&watch)
        .try_run_summary()
        .map(|_| ())
}

#[test]
fn a_run_killed_at_every_chunk_boundary_resumes_bit_identically() {
    let reference = config(DIES).run_summary().encode_state();
    let n_chunks = chunk_count(DIES);
    let dies_per_chunk = DIES.div_ceil(n_chunks);
    for stop_chunk in 1..n_chunks {
        let file = ScratchFile::new(&format!("boundary-{stop_chunk}"));
        // Serial kill: with jobs=1 the progress callback fires at each
        // commit in order, so the run stops at exactly this boundary.
        let killed = run_until(&file.0, (stop_chunk * dies_per_chunk) as u64, 1);
        assert!(
            matches!(killed, Err(StudyError::Cancelled)),
            "stop_chunk={stop_chunk}: expected cancellation, got {killed:?}"
        );
        // Resume at a different worker count and batch size.
        let resumed = config(DIES)
            .exec(ExecConfig::with_jobs(7))
            .batch(5)
            .checkpoint(&file.0)
            .run_summary();
        assert_eq!(
            resumed.encode_state(),
            reference,
            "resume after a kill at chunk {stop_chunk} diverged"
        );
    }
}

#[test]
fn a_run_cancelled_with_workers_mid_chunk_resumes_bit_identically() {
    let reference = config(DIES).run_summary().encode_state();
    let file = ScratchFile::new("mid-chunk");
    // With several workers in flight, the token fires while other
    // threads are inside their chunks; whatever contiguous prefix
    // committed is what the resume continues from.
    let killed = run_until(&file.0, (DIES / 2) as u64, 4);
    assert!(matches!(killed, Err(StudyError::Cancelled)), "{killed:?}");
    let resumed = config(DIES)
        .exec(ExecConfig::with_jobs(2))
        .checkpoint(&file.0)
        .run_summary();
    assert_eq!(resumed.encode_state(), reference);
}

#[test]
fn repeatedly_killed_fault_study_converges_to_the_straight_through_run() {
    let plan = FaultPlan::uniform(0.02);
    let reference = config(40).faults(plan).run_faults().encode_state();
    let file = ScratchFile::new("faults");
    // Kill and resume in ever-larger strides until the study finishes.
    let mut strides = 0u32;
    loop {
        strides += 1;
        assert!(strides < 100, "fault study never finished");
        let token = CancelToken::new();
        let watch_token = token.clone();
        let stop = (strides as u64) * 7;
        let watch = move |p: Progress| {
            if p.done as u64 >= stop {
                watch_token.cancel();
            }
        };
        let run = config(40)
            .faults(plan)
            .exec(ExecConfig::with_jobs(1 + strides as usize % 3))
            .checkpoint(&file.0)
            .cancel(&token)
            .progress(&watch)
            .try_run_faults();
        match run {
            Err(StudyError::Cancelled) => continue,
            Ok(summary) => {
                assert_eq!(summary.encode_state(), reference);
                break;
            }
            Err(e) => panic!("unexpected checkpoint failure: {e}"),
        }
    }
    assert!(strides > 1, "the study must have been killed at least once");
}

#[test]
fn resuming_a_finished_checkpoint_returns_the_result_without_rescoring() {
    let file = ScratchFile::new("finished");
    let first = config(DIES).checkpoint(&file.0).run_summary();
    let again = config(DIES).checkpoint(&file.0).run_summary();
    assert_eq!(first.encode_state(), again.encode_state());
}

#[test]
fn progress_is_reported_and_counts_resumed_items() {
    let file = ScratchFile::new("progress");
    let killed = run_until(&file.0, (DIES / 2) as u64, 1);
    assert!(matches!(killed, Err(StudyError::Cancelled)));
    // On resume the very first progress callback must already include
    // the checkpointed dies, so `done/total` is honest for a UI.
    let min_seen = AtomicUsize::new(usize::MAX);
    let max_seen = AtomicUsize::new(0);
    let watch = |p: Progress| {
        assert_eq!(p.total, DIES);
        min_seen.fetch_min(p.done, Ordering::Relaxed);
        max_seen.fetch_max(p.done, Ordering::Relaxed);
    };
    let _ = config(DIES)
        .checkpoint(&file.0)
        .progress(&watch)
        .run_summary();
    assert!(min_seen.load(Ordering::Relaxed) > DIES / 4);
    assert_eq!(max_seen.load(Ordering::Relaxed), DIES);
}

#[test]
fn regulated_backend_runs_kill_and_resume_bit_identically() {
    // The supply backend is part of the checkpoint fingerprint, so a
    // dldo or dlr study killed mid-flight must resume — at a different
    // worker count — to the byte-identical straight-through summary.
    for kind in [
        subvt_core::SupplyBackendKind::Dldo,
        subvt_core::SupplyBackendKind::Dlr,
    ] {
        let reference = config(DIES)
            .supply_backend(kind)
            .run_summary()
            .encode_state();
        let file = ScratchFile::new(&format!("backend-{}", kind.label()));
        let token = CancelToken::new();
        let watch_token = token.clone();
        let watch = move |p: Progress| {
            if p.done as u64 >= (DIES / 2) as u64 {
                watch_token.cancel();
            }
        };
        let killed = config(DIES)
            .supply_backend(kind)
            .exec(ExecConfig::with_jobs(1))
            .checkpoint(&file.0)
            .cancel(&token)
            .progress(&watch)
            .try_run_summary();
        assert!(
            matches!(killed, Err(StudyError::Cancelled)),
            "{}: expected cancellation, got {killed:?}",
            kind.label()
        );
        let resumed = config(DIES)
            .supply_backend(kind)
            .exec(ExecConfig::with_jobs(7))
            .checkpoint(&file.0)
            .run_summary();
        assert_eq!(
            resumed.encode_state(),
            reference,
            "{} resume diverged from the straight-through run",
            kind.label()
        );
    }
}

#[test]
fn a_checkpoint_written_under_one_backend_rejects_resume_under_another() {
    // Swapping `--supply` between the write and the resume changes the
    // fingerprint: the dldo half-run must not be silently continued as
    // a dlr (or ideal-rail) study.
    let file = ScratchFile::new("backend-mismatch");
    let token = CancelToken::new();
    let watch_token = token.clone();
    let watch = move |p: Progress| {
        if p.done as u64 >= (DIES / 2) as u64 {
            watch_token.cancel();
        }
    };
    let killed = config(DIES)
        .supply_backend(subvt_core::SupplyBackendKind::Dldo)
        .exec(ExecConfig::with_jobs(1))
        .checkpoint(&file.0)
        .cancel(&token)
        .progress(&watch)
        .try_run_summary();
    assert!(matches!(killed, Err(StudyError::Cancelled)), "{killed:?}");
    let r = config(DIES)
        .supply_backend(subvt_core::SupplyBackendKind::Dlr)
        .checkpoint(&file.0)
        .try_run_summary();
    assert!(
        matches!(r, Err(StudyError::Checkpoint(_))),
        "dlr resume of a dldo checkpoint must be rejected, got {r:?}"
    );
    let r = config(DIES).checkpoint(&file.0).try_run_summary();
    assert!(
        matches!(r, Err(StudyError::Checkpoint(_))),
        "ideal-rail resume of a dldo checkpoint must be rejected, got {r:?}"
    );
    // The matching backend still resumes the untouched file.
    let resumed = config(DIES)
        .supply_backend(subvt_core::SupplyBackendKind::Dldo)
        .checkpoint(&file.0)
        .run_summary();
    assert_eq!(
        resumed.encode_state(),
        config(DIES)
            .supply_backend(subvt_core::SupplyBackendKind::Dldo)
            .run_summary()
            .encode_state()
    );
}

#[test]
fn the_switched_alias_resumes_a_buck_checkpoint() {
    // `--supply switched` is a deprecated spelling of `--supply buck`;
    // both parse to the same backend kind, so a checkpoint written
    // under one spelling must resume under the other.
    let buck: subvt_core::SupplyBackendKind = "buck".parse().unwrap();
    let alias: subvt_core::SupplyBackendKind = "switched".parse().unwrap();
    assert_eq!(buck, alias);
    let file = ScratchFile::new("switched-alias");
    let token = CancelToken::new();
    let watch_token = token.clone();
    let watch = move |p: Progress| {
        if p.done as u64 >= (DIES / 2) as u64 {
            watch_token.cancel();
        }
    };
    let killed = config(DIES)
        .supply_backend(buck)
        .exec(ExecConfig::with_jobs(1))
        .checkpoint(&file.0)
        .cancel(&token)
        .progress(&watch)
        .try_run_summary();
    assert!(matches!(killed, Err(StudyError::Cancelled)), "{killed:?}");
    let resumed = config(DIES)
        .supply_backend(alias)
        .checkpoint(&file.0)
        .run_summary();
    assert_eq!(
        resumed.encode_state(),
        config(DIES)
            .supply_backend(buck)
            .run_summary()
            .encode_state()
    );
}

#[test]
fn a_corrupt_checkpoint_is_rejected_not_silently_restarted() {
    let file = ScratchFile::new("corrupt");
    std::fs::write(&file.0, b"not a checkpoint at all").unwrap();
    let r = config(DIES).checkpoint(&file.0).try_run_summary();
    assert!(
        matches!(r, Err(StudyError::Checkpoint(_))),
        "garbage file must be a typed error, got {r:?}"
    );
}

#[test]
fn a_truncated_checkpoint_record_is_rejected() {
    let file = ScratchFile::new("truncated");
    let killed = run_until(&file.0, (DIES / 2) as u64, 1);
    assert!(matches!(killed, Err(StudyError::Cancelled)));
    // Chop bytes off the tail — a torn final record, as a crash
    // mid-write would leave. The strict reader must refuse it rather
    // than resume from half a record.
    let bytes = std::fs::read(&file.0).unwrap();
    std::fs::write(&file.0, &bytes[..bytes.len() - 3]).unwrap();
    let r = config(DIES).checkpoint(&file.0).try_run_summary();
    assert!(
        matches!(r, Err(StudyError::Checkpoint(_))),
        "torn record must be a typed error, got {r:?}"
    );
}

#[test]
fn a_flipped_byte_inside_a_record_is_rejected() {
    let file = ScratchFile::new("bitflip");
    let killed = run_until(&file.0, (DIES / 2) as u64, 1);
    assert!(matches!(killed, Err(StudyError::Cancelled)));
    let mut bytes = std::fs::read(&file.0).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&file.0, &bytes).unwrap();
    let r = config(DIES).checkpoint(&file.0).try_run_summary();
    assert!(
        matches!(r, Err(StudyError::Checkpoint(_))),
        "bit flip must fail the record CRC, got {r:?}"
    );
}

#[test]
fn a_checkpoint_from_a_different_study_is_rejected() {
    let file = ScratchFile::new("mismatch");
    let killed = run_until(&file.0, (DIES / 2) as u64, 1);
    assert!(matches!(killed, Err(StudyError::Cancelled)));
    // Different seed → different fingerprint.
    let r = StudyConfig::new(DIES, SEED + 1)
        .checkpoint(&file.0)
        .try_run_summary();
    assert!(matches!(r, Err(StudyError::Checkpoint(_))), "{r:?}");
    // Different population → different total and fingerprint.
    let r = StudyConfig::new(DIES * 2, SEED)
        .checkpoint(&file.0)
        .try_run_summary();
    assert!(matches!(r, Err(StudyError::Checkpoint(_))), "{r:?}");
    // A fault study must not resume a summary checkpoint.
    let r = config(DIES)
        .faults(FaultPlan::uniform(0.01))
        .checkpoint(&file.0)
        .try_run_faults();
    assert!(matches!(r, Err(StudyError::Checkpoint(_))), "{r:?}");
    // And the original study must still resume the untouched file.
    let resumed = config(DIES).checkpoint(&file.0).run_summary();
    assert_eq!(
        resumed.encode_state(),
        config(DIES).run_summary().encode_state()
    );
}
