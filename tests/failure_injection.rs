//! Failure injection: stuck bits, metastable sensors, load transients,
//! flaky measurements and overload bursts — the system must degrade
//! gracefully, never diverge.

use subvt::prelude::*;
use subvt_dcdc::ConstantLoad;
use subvt_device::units::Amps;
use subvt_digital::encoder::QuantizerWord;
use subvt_digital::voter::MedianVoter;
use subvt_rng::Rng;
use subvt_rng::StdRng;
use subvt_tdc::MetastabilityModel;

#[test]
fn single_stuck_low_stage_is_repaired_by_bubble_tolerance() {
    // A manufacturing defect: one quantizer flip-flop stuck at 0 in the
    // middle of the burst. The bubble-tolerant encoder must still
    // decode within one LSB of the true edge.
    for stuck in 3..30u32 {
        let true_run = 32u32;
        let bits = ((1u64 << true_run) - 1) & !(1 << stuck);
        let w = QuantizerWord::new(64, bits);
        let code = w
            .encode_bubble_tolerant()
            .expect("single stuck bit must not kill the measurement");
        assert_eq!(code, true_run, "stuck stage {stuck}");
    }
}

#[test]
fn stuck_high_stage_beyond_the_burst_is_detected_not_misread() {
    // A stage stuck at 1 beyond the edge creates a second burst: the
    // encoder must flag it rather than silently return a wrong code.
    let bits = ((1u64 << 20) - 1) | (1 << 45);
    let w = QuantizerWord::new(64, bits);
    assert!(w.encode().is_err());
    assert!(w.encode_bubble_tolerant().is_err());
}

#[test]
fn metastable_sensor_with_voting_converges_to_the_clean_code() {
    // Repeated noisy measurements through the median voter recover the
    // ideal code with high probability even with a wide aperture.
    let cell = Seconds::from_nanos(2.0);
    let clk = subvt_tdc::RefClock::square(Seconds(cell.value() * 256.0));
    let q = subvt_tdc::Quantizer::new(64, clk, Seconds(cell.value() * 31.5));
    let ideal = q.sample(cell).encode().expect("clean");
    let noisy = MetastabilityModel {
        aperture: Seconds::from_picos(300.0),
        tau: Seconds::from_picos(600.0),
    };
    let mut rng = StdRng::seed_from_u64(13);
    let mut voter = MedianVoter::new(5);
    let mut voted = Vec::new();
    for _ in 0..100 {
        let w = noisy.sample_word(&q, cell, &mut rng);
        if let Ok(code) = w.encode_bubble_tolerant() {
            if let Some(v) = voter.feed(code) {
                voted.push(v);
            }
        }
    }
    assert!(!voted.is_empty(), "voter produced nothing");
    let good = voted.iter().filter(|&&v| v.abs_diff(ideal) <= 1).count();
    assert!(
        good * 10 >= voted.len() * 9,
        "only {good}/{} votes within 1 LSB of {ideal}",
        voted.len()
    );
}

#[test]
fn flaky_deviation_stream_cannot_run_the_compensation_away() {
    // Pure measurement noise (random ±1) must produce almost no net
    // LUT movement thanks to the 2-cycle confirmation.
    let mut rng = StdRng::seed_from_u64(5);
    let mut loop_ = subvt_core::CompensationLoop::new(CompensationPolicy::default());
    for _ in 0..2_000 {
        let noise = *[-1i16, 0, 1].get(rng.gen_range(0..3)).unwrap();
        let _ = loop_.observe(noise);
    }
    assert!(
        loop_.applied_total().abs() <= 2,
        "noise walked the LUT to {}",
        loop_.applied_total()
    );
}

#[test]
fn converter_survives_a_100x_load_step() {
    let mut c = DcDcConverter::new(
        ConverterParams::default(),
        Box::new(ConstantLoad(Amps(20e-6))),
    );
    c.set_word(32);
    c.run_system_cycles(120);
    let before = c.vout().millivolts();
    assert!((before - 600.0).abs() < 5.0, "pre-step {before} mV");

    // Slam the load from 20 µA to 2 mA.
    c.set_load(Box::new(ConstantLoad(Amps(2e-3))));
    c.run_system_cycles(2);
    let during = c.vout().millivolts();
    assert!(during > 400.0, "transient collapse to {during} mV");
    c.run_system_cycles(60);
    let after = c.vout().millivolts();
    // Settles to the target minus the (real) IR drop of ~2 mA · 7 Ω.
    assert!(
        (after - (600.0 - 14.0)).abs() < 10.0,
        "post-step {after} mV"
    );
}

#[test]
fn controller_recovers_from_an_overload_burst() {
    use subvt_rng::StdRng;
    let tech = Technology::st_130nm();
    let design = Environment::nominal();
    let rate = design_rate_controller(&tech, design).expect("designable");
    let mut c = AdaptiveController::new(
        tech,
        RingOscillator::paper_circuit(),
        rate,
        design,
        design,
        GateMismatch::NOMINAL,
        SupplyPolicy::AdaptiveCompensated,
        SupplyKind::Ideal,
        ControllerConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(3);

    // Calm traffic, then a 30-cycle flood far beyond capacity, then calm.
    let mut wl = WorkloadSource::new(WorkloadPattern::Schedule(
        std::iter::repeat_n(0, 100)
            .chain(std::iter::repeat_n(50, 30))
            .chain(std::iter::repeat_n(0, 300))
            .collect(),
    ));
    let summary = c.run(&mut wl, 430, &mut rng);

    // Losses happen during the flood (bounded by it), never after.
    assert!(summary.dropped > 0, "the flood must overflow");
    assert!(summary.dropped < 30 * 50, "losses bounded by the burst");
    assert_eq!(summary.backlog, 0, "queue fully drained after the burst");
    // The controller came back down to the MEP word afterwards.
    let last = c.history().last().unwrap();
    assert_eq!(last.word, 11, "did not return to idle word: {}", last.word);
    // And the flood did not poison the compensation.
    assert_eq!(summary.compensation, 0);
}

#[test]
fn sensor_on_a_dead_supply_reads_slow_not_garbage() {
    let tech = Technology::st_130nm();
    let sensor = VariationSensor::new(&tech, Environment::nominal(), SensorConfig::default());
    // The rail collapsed to 30 mV: below the functional floor.
    let dev = sensor
        .sense(
            &tech,
            19,
            Volts(0.03),
            Environment::nominal(),
            GateMismatch::NOMINAL,
        )
        .expect("a dead rail is a valid (extreme) measurement");
    assert_eq!(dev, -3, "dead rail must read extreme-slow");
}

#[test]
fn boot_retries_then_fails_rather_than_handing_over_a_bad_chip() {
    use subvt::prelude::{BootSequence, BootState};
    let tech = Technology::st_130nm();
    let sensor = VariationSensor::new(&tech, Environment::nominal(), SensorConfig::default());
    let mut converter =
        DcDcConverter::new(ConverterParams::default(), Box::new(subvt_dcdc::NoLoad));
    let mut boot = BootSequence::new(12, 8);
    // A catastrophically slow die (way beyond any corner).
    let broken = GateMismatch {
        nmos_dvth: Volts(0.12),
        pmos_dvth: Volts(0.12),
    };
    let state = boot
        .run(
            &mut converter,
            &sensor,
            &tech,
            Environment::nominal(),
            broken,
            500,
        )
        .expect("sensor path stays usable");
    assert_eq!(state, BootState::Failed);
    assert!(!boot.is_ready());
}
