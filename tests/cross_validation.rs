//! Cross-validation between independent model layers: the analytic
//! timing model vs the structural gate-level simulator, and the
//! switched converter vs the ideal converter.

use subvt::prelude::*;
use subvt_dcdc::ConstantLoad;
use subvt_device::units::Amps;
use subvt_sim::logic::Logic;
use subvt_sim::netlist::Netlist;
use subvt_sim::time::{SimDuration, SimTime};
use subvt_tdc::CellKind;

#[test]
fn structural_delay_line_matches_analytic_model_across_voltages() {
    let tech = Technology::st_130nm();
    let env = Environment::nominal();
    for vdd_mv in [300.0, 600.0, 900.0, 1200.0] {
        let vdd = Volts::from_millivolts(vdd_mv);
        let line = DelayLine::new(16, CellKind::InvNor);
        let cell = line.cell_delay(&tech, vdd, env).expect("in range");

        let mut nl = Netlist::new();
        let (input, taps) = line
            .build_netlist(&tech, vdd, env, &mut nl)
            .expect("in range");
        nl.drive(input, Logic::Low, SimTime::ZERO);
        let settle = SimTime::ZERO + SimDuration::from_seconds(cell.value() * 40.0);
        nl.run_until(settle, 1_000_000);

        nl.drive(input, Logic::High, settle);
        // Binary-search-free check: the edge must arrive at the last tap
        // between 15.5 and 16.5 cell delays (half-cell tolerance from
        // the two half-cell gates inside each stage).
        let before = settle + SimDuration::from_seconds(cell.value() * 15.4);
        nl.run_until(before, 1_000_000);
        assert_eq!(
            nl.signal(*taps.last().unwrap()),
            Logic::Low,
            "{vdd_mv} mV: edge arrived early"
        );
        let after = settle + SimDuration::from_seconds(cell.value() * 16.6);
        nl.run_until(after, 1_000_000);
        assert_eq!(
            nl.signal(*taps.last().unwrap()),
            Logic::High,
            "{vdd_mv} mV: edge arrived late"
        );
    }
}

#[test]
fn structural_ring_frequency_matches_analytic_frequency() {
    let tech = Technology::st_130nm();
    let env = Environment::nominal();
    let ring = RingOscillator::with_stages(7, 0.1);
    let vdd = Volts(0.8);
    let expected = ring.period(&tech, vdd, env).expect("in range");

    let mut nl = Netlist::new();
    let (_, nodes) = ring
        .build_netlist(&tech, vdd, env, &mut nl)
        .expect("in range");
    // Count transitions on node 0 over 30 expected periods.
    let horizon = SimTime::ZERO + SimDuration::from_seconds(expected.value() * 30.0);
    let step = SimDuration::from_seconds(expected.value() / 40.0);
    let mut t = SimTime::ZERO;
    let mut transitions = 0u32;
    let mut last = Logic::Unknown;
    while t < horizon {
        t += step;
        nl.run_until(t, 10_000_000);
        let v = nl.signal(nodes[0]);
        if v != last {
            transitions += 1;
            last = v;
        }
    }
    // 30 periods → 60 transitions expected.
    assert!(
        (54..=66).contains(&transitions),
        "structural ring transitions {transitions}, expected ≈60"
    );
}

#[test]
fn switched_converter_converges_to_the_ideal_converter() {
    for word in [9u8, 19, 32, 47, 60] {
        let mut ideal = IdealConverter::new();
        ideal.set_word(word);

        let mut switched = DcDcConverter::new(
            ConverterParams::default(),
            Box::new(ConstantLoad(Amps(2e-6))),
        );
        switched.set_word(word);
        switched.run_system_cycles(150);

        let err = (switched.vout() - ideal.vout()).millivolts().abs();
        assert!(
            err < 6.0,
            "word {word}: switched {} vs ideal {} ({err} mV apart)",
            switched.vout(),
            ideal.vout()
        );
    }
}

#[test]
fn sensor_deviation_matches_mep_shift_direction_for_corners() {
    // The two independent paths — the energy model's MEP shift and the
    // timing model's TDC signature — must agree on the correction
    // direction for process corners.
    let tech = Technology::st_130nm();
    let ring = CircuitProfile::ring_oscillator();
    let sensor = VariationSensor::new(&tech, Environment::nominal(), SensorConfig::default());
    let tt_mep = find_mep(
        &tech,
        &ring,
        Environment::nominal(),
        Volts(0.12),
        Volts(0.6),
    )
    .unwrap();

    for corner in [ProcessCorner::Ss, ProcessCorner::Ff] {
        let env = Environment::at_corner(corner);
        let mep = find_mep(&tech, &ring, env, Volts(0.12), Volts(0.6)).unwrap();
        let mep_direction = (mep.vopt.volts() - tt_mep.vopt.volts()).signum();
        let deviation = sensor
            .sense(&tech, 19, word_voltage(19), env, GateMismatch::NOMINAL)
            .expect("usable band");
        // Sensor reads slow (negative) → correction up (+) → matches a
        // higher MEP, and vice versa.
        let correction_direction = f64::from(-deviation.signum());
        assert_eq!(
            mep_direction, correction_direction,
            "{corner}: MEP moved {mep_direction}, correction {correction_direction}"
        );
    }
}

#[test]
fn controller_on_ideal_and_switched_supplies_agree_on_steady_state() {
    let tech = Technology::st_130nm();
    let design = Environment::nominal();
    let rate = design_rate_controller(&tech, design).expect("designable");

    let run = |kind: SupplyKind| {
        let mut c = AdaptiveController::new(
            tech.clone(),
            RingOscillator::paper_circuit(),
            rate.clone(),
            design,
            design,
            GateMismatch::NOMINAL,
            SupplyPolicy::AdaptiveCompensated,
            kind,
            ControllerConfig::default(),
        );
        let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 0 });
        let mut rng = subvt_rng::StdRng::seed_from_u64(0);
        c.run(&mut wl, 150, &mut rng);
        c.vout()
    };

    let ideal = run(SupplyKind::Ideal);
    let switched = run(SupplyKind::Switched);
    assert!(
        (ideal - switched).millivolts().abs() < 20.0,
        "ideal {ideal} vs switched {switched}"
    );
}

#[test]
fn structural_quantizer_matches_analytic_snapshot() {
    // Build the TDC structurally: a 16-stage INV-NOR line fed by a
    // periodic Ref_clk, sampled by real DFFs at the anchor instant.
    // The captured word must match the analytic Quantizer's snapshot.
    let tech = Technology::st_130nm();
    let env = Environment::nominal();
    let vdd = Volts(0.8);
    let stages = 16u8;
    let line = DelayLine::new(stages, subvt_tdc::CellKind::InvNor);
    let cell = line.cell_delay(&tech, vdd, env).expect("in range");

    // Periodic reference sized for a clean single burst.
    let period = subvt_device::Seconds(cell.value() * 64.0);
    let high = subvt_device::Seconds(period.value() / 2.0);
    let anchor_cells = 7.5f64;

    // Analytic snapshot.
    let quantizer = Quantizer::new(
        stages,
        RefClock::new(period, high),
        subvt_device::Seconds(cell.value() * anchor_cells),
    );
    let analytic = quantizer.sample(cell);

    // Structural: drive the line, let the waveform fill it, then clock
    // sampling DFFs at (k·period + anchor) for some whole k.
    let mut nl = Netlist::new();
    let (input, taps) = line
        .build_netlist(&tech, vdd, env, &mut nl)
        .expect("in range");
    let dff_clk = nl.add_signal("sample_clk");
    let qs: Vec<_> = (0..stages)
        .map(|i| {
            let q = nl.add_signal(format!("q{i}"));
            nl.add_gate(
                subvt_sim::netlist::GateFn::Dff,
                &[taps[usize::from(i)], dff_clk],
                q,
                SimDuration::from_picos(1),
            );
            q
        })
        .collect();
    nl.drive(dff_clk, Logic::Low, SimTime::ZERO);
    // Drive several periods of the reference so the line reaches its
    // periodic steady state.
    let period_fs = SimDuration::from_seconds(period.value());
    let high_fs = SimDuration::from_seconds(high.value());
    nl.drive_clock(input, SimTime::ZERO, period_fs, high_fs, 6);
    // Sample inside period 4 (steady state), at the anchor offset past
    // that period's rising edge.
    let sample_at =
        SimTime::ZERO + period_fs * 4 + SimDuration::from_seconds(cell.value() * anchor_cells);
    nl.run_until(sample_at, 10_000_000);
    nl.drive(dff_clk, Logic::High, sample_at);
    nl.run_until(sample_at + SimDuration::from_nanos(1), 10_000_000);

    let mut structural_bits = 0u64;
    for (i, &q) in qs.iter().enumerate() {
        // Stage i of the analytic model indexes from the line input.
        if nl.signal(q).is_high() {
            structural_bits |= 1 << i;
        }
    }

    // The analytic model treats the line as pure transport; the
    // structural line has two half-cell gates per stage, so edge
    // positions may differ by one stage at the boundary. Compare the
    // decoded edge positions with that tolerance.
    let structural_word = subvt_digital::encoder::QuantizerWord::new(stages, structural_bits);
    let analytic_code = analytic.encode().expect("clean burst");
    let structural_code = structural_word
        .encode_bubble_tolerant()
        .expect("clean burst from silicon-like line");
    assert!(
        analytic_code.abs_diff(structural_code) <= 1,
        "analytic {analytic_code} vs structural {structural_code} ({})",
        structural_word.to_table_hex()
    );
}
