//! The study-matrix byte-identity contract: every cell of a fused
//! [`StudyMatrix`] run must produce the exact `encode_state` bytes of
//! running that cell alone through `StudyConfig::run_summary` /
//! `run_faults` — per-die RNG forks, sense sequences and fault
//! schedules must not observe that other cells exist — at any worker
//! count or sub-batch size. And a matrix checkpoint killed mid-run
//! must resume to both the same results *and* the same checkpoint file
//! bytes as a run that was never interrupted.

use std::path::PathBuf;

use subvt_core::matrix::{MatrixCell, StudyMatrix};
use subvt_core::study::{StudyConfig, StudyError, SupplyBackendKind};
use subvt_core::FaultPlan;
use subvt_device::corner::ProcessCorner;
use subvt_device::mosfet::Environment;
use subvt_exec::{CancelToken, ExecConfig, Progress};

const DIES: usize = 90;
const SEED: u64 = 2009;

/// The 18-cell supply shoot-out grid: three regulator backends ×
/// three process corners × {clean, faulted}.
fn shootout_cells() -> Vec<MatrixCell> {
    let mut cells = Vec::new();
    for supply in [
        SupplyBackendKind::Buck,
        SupplyBackendKind::Dldo,
        SupplyBackendKind::Dlr,
    ] {
        for corner in [ProcessCorner::Tt, ProcessCorner::Ss, ProcessCorner::Ff] {
            for faults in [None, Some(FaultPlan::uniform(0.02))] {
                cells.push(MatrixCell {
                    supply,
                    env: Environment::at_corner(corner),
                    faults,
                });
            }
        }
    }
    cells
}

fn matrix_of<'a>(cells: &[MatrixCell], base: StudyConfig<'a>) -> StudyMatrix<'a> {
    cells.iter().fold(StudyMatrix::new(base), |m, c| {
        m.cell(c.supply, c.env, c.faults)
    })
}

/// The standalone (single-cell) reference bytes for one cell.
fn standalone_state(cell: &MatrixCell) -> Vec<u8> {
    let cfg = StudyConfig::new(DIES, SEED)
        .supply_backend(cell.supply)
        .env(cell.env);
    match cell.faults {
        None => cfg.run_summary().encode_state(),
        Some(plan) => cfg.faults(plan).run_faults().encode_state(),
    }
}

#[test]
fn every_cell_is_byte_identical_to_its_standalone_run() {
    let cells = shootout_cells();
    let references: Vec<Vec<u8>> = cells.iter().map(standalone_state).collect();
    for (jobs, batch) in [
        (1usize, 1usize),
        (1, 32),
        (1, DIES),
        (2, 1),
        (2, 32),
        (2, DIES),
        (7, 1),
        (7, 32),
        (7, DIES),
    ] {
        let fused = matrix_of(
            &cells,
            StudyConfig::new(DIES, SEED)
                .exec(ExecConfig::with_jobs(jobs))
                .batch(batch),
        )
        .run();
        assert_eq!(fused.len(), cells.len());
        for (i, (got, want)) in fused.iter().zip(&references).enumerate() {
            assert_eq!(
                &got.encode_state(),
                want,
                "cell {i} ({:?} {:?} faults={}) diverged at jobs={jobs} batch={batch}",
                cells[i].supply,
                cells[i].env.corner,
                cells[i].faults.is_some(),
            );
        }
    }
}

#[test]
fn a_zero_rate_fault_cell_matches_the_standalone_zero_rate_study() {
    // Fault rate 0 exercises the full fault machinery with an empty
    // schedule; the matrix replay must still hand the walk the exact
    // stream the standalone fork does.
    let plan = FaultPlan::uniform(0.0);
    let standalone = StudyConfig::new(DIES, SEED).faults(plan).run_faults();
    let fused = StudyMatrix::new(StudyConfig::new(DIES, SEED))
        .cell(SupplyBackendKind::Ideal, Environment::nominal(), Some(plan))
        .run();
    assert_eq!(fused[0].encode_state(), standalone.encode_state());
}

/// A unique scratch path inside the temp dir, removed on drop.
struct ScratchFile(PathBuf);

impl ScratchFile {
    fn new(tag: &str) -> ScratchFile {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "subvt-matrix-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        ScratchFile(path)
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn a_killed_matrix_run_resumes_to_identical_results_and_checkpoint_bytes() {
    let cells = shootout_cells();

    // Straight-through checkpointed run: the reference results and the
    // reference checkpoint file bytes.
    let straight = ScratchFile::new("straight");
    let reference = matrix_of(&cells, StudyConfig::new(DIES, SEED).checkpoint(&straight.0)).run();
    let reference_bytes = std::fs::read(&straight.0).unwrap();

    // Kill mid-run, then resume at a different jobs/batch.
    let file = ScratchFile::new("killed");
    let token = CancelToken::new();
    let watch_token = token.clone();
    let watch = move |p: Progress| {
        if p.done >= DIES / 2 {
            watch_token.cancel();
        }
    };
    let killed = matrix_of(
        &cells,
        StudyConfig::new(DIES, SEED)
            .exec(ExecConfig::with_jobs(3))
            .checkpoint(&file.0)
            .cancel(&token)
            .progress(&watch),
    )
    .try_run();
    assert!(
        matches!(killed, Err(StudyError::Cancelled)),
        "expected cancellation, got {killed:?}"
    );

    let resumed = matrix_of(
        &cells,
        StudyConfig::new(DIES, SEED)
            .exec(ExecConfig::with_jobs(7))
            .batch(5)
            .checkpoint(&file.0),
    )
    .run();
    assert_eq!(resumed, reference, "resumed results diverged");

    // Every record's payload is a deterministic function of its chunk
    // count, so the killed-and-resumed file must equal the
    // uninterrupted file byte for byte.
    assert_eq!(
        std::fs::read(&file.0).unwrap(),
        reference_bytes,
        "checkpoint bytes after resume diverged from the straight-through file"
    );
}

#[test]
fn a_matrix_checkpoint_rejects_a_reordered_or_reshaped_matrix() {
    let cells = shootout_cells();
    let file = ScratchFile::new("identity");
    let _ = matrix_of(&cells, StudyConfig::new(DIES, SEED).checkpoint(&file.0)).run();

    // Reordered cells → different fingerprint.
    let mut reordered = cells.clone();
    reordered.swap(0, 1);
    let r = matrix_of(&reordered, StudyConfig::new(DIES, SEED).checkpoint(&file.0)).try_run();
    assert!(
        matches!(r, Err(StudyError::Checkpoint(_))),
        "reordered matrix must be rejected, got {r:?}"
    );

    // Fewer cells → cell-count (and fingerprint) mismatch.
    let r = matrix_of(
        &cells[..6],
        StudyConfig::new(DIES, SEED).checkpoint(&file.0),
    )
    .try_run();
    assert!(
        matches!(r, Err(StudyError::Checkpoint(_))),
        "reshaped matrix must be rejected, got {r:?}"
    );

    // The original matrix still resumes the untouched (finished) file.
    let again = matrix_of(&cells, StudyConfig::new(DIES, SEED).checkpoint(&file.0)).run();
    let fresh = matrix_of(&cells, StudyConfig::new(DIES, SEED)).run();
    assert_eq!(again, fresh);
}

#[test]
fn matrix_and_single_cell_checkpoints_reject_each_other() {
    // A v1 (single-cell) file must not resume a matrix and vice versa:
    // the formats are versioned, not guessed.
    let single = ScratchFile::new("v1");
    let _ = StudyConfig::new(DIES, SEED)
        .checkpoint(&single.0)
        .run_summary();
    let r = StudyMatrix::new(StudyConfig::new(DIES, SEED).checkpoint(&single.0))
        .cell(SupplyBackendKind::Ideal, Environment::nominal(), None)
        .try_run();
    assert!(
        matches!(r, Err(StudyError::Checkpoint(_))),
        "matrix resume of a v1 file must be rejected, got {r:?}"
    );

    let matrix = ScratchFile::new("v2");
    let _ = StudyMatrix::new(StudyConfig::new(DIES, SEED).checkpoint(&matrix.0))
        .cell(SupplyBackendKind::Ideal, Environment::nominal(), None)
        .run();
    let r = StudyConfig::new(DIES, SEED)
        .checkpoint(&matrix.0)
        .try_run_summary();
    assert!(
        matches!(r, Err(StudyError::Checkpoint(_))),
        "single-cell resume of a matrix file must be rejected, got {r:?}"
    );
}
