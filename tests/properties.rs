//! Property-based tests over cross-crate invariants.

use subvt::prelude::*;
use subvt_digital::encoder::QuantizerWord;
use subvt_testkit::prelude::*;

properties! {
    cases = 64;

    /// Delay decreases monotonically with supply voltage at any corner
    /// and temperature in range.
    fn delay_monotone_in_vdd(
        v1 in 0.12f64..1.3,
        dv in 0.01f64..0.2,
        corner_idx in 0usize..5,
        celsius in 0.0f64..115.0,
    ) {
        let tech = Technology::st_130nm();
        let env = Environment::at_corner(ProcessCorner::ALL[corner_idx])
            .with_celsius(celsius);
        let timing = GateTiming::new(&tech);
        let d_low = timing.gate_delay(GateKind::Inverter, Volts(v1), env).unwrap();
        let d_high = timing.gate_delay(GateKind::Inverter, Volts(v1 + dv), env).unwrap();
        prop_assert!(d_high.value() < d_low.value());
    }

    /// Total per-op energy is the sum of its parts and all parts are
    /// non-negative everywhere in the operating envelope.
    fn energy_decomposition_is_consistent(
        v in 0.11f64..1.2,
        activity in 0.01f64..1.0,
        corner_idx in 0usize..5,
    ) {
        let tech = Technology::st_130nm();
        let profile = CircuitProfile::ring_oscillator().with_activity(activity);
        let env = Environment::at_corner(ProcessCorner::ALL[corner_idx]);
        let e = energy_per_cycle(&tech, &profile, Volts(v), env).unwrap();
        prop_assert!(e.dynamic.value() >= 0.0);
        prop_assert!(e.leakage.value() >= 0.0);
        let total = e.total().value();
        prop_assert!((total - e.dynamic.value() - e.leakage.value()).abs() <= total * 1e-12);
        let f = e.leakage_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// The located MEP never beats any sweep sample (it is a true
    /// minimum) for any activity.
    fn mep_is_global_minimum(activity in 0.02f64..0.8) {
        let tech = Technology::st_130nm();
        let profile = CircuitProfile::ring_oscillator().with_activity(activity);
        let env = Environment::nominal();
        let mep = find_mep(&tech, &profile, env, Volts(0.12), Volts(0.9)).unwrap();
        // 1e-4 relative tolerance: when the minimum sits on the bracket
        // edge, the golden-section midpoint lands half a tolerance in.
        for e in energy_sweep(&tech, &profile, env, Volts(0.12), Volts(0.9), 30) {
            prop_assert!(e.total().value() >= mep.energy.value() * (1.0 - 1e-4));
        }
    }

    /// Quantizer codes are monotone in cell delay: slower cells never
    /// produce a larger edge position.
    fn quantizer_code_monotone_in_cell_delay(
        base_ps in 200.0f64..2_000.0,
        factor in 1.01f64..1.8,
    ) {
        let cell_fast = subvt_device::Seconds::from_picos(base_ps);
        let cell_slow = subvt_device::Seconds::from_picos(base_ps * factor);
        // Slow-clock regime sized for the slow cell: both reliable.
        let period = subvt_device::Seconds(cell_slow.value() * 256.0);
        let q = Quantizer::new(
            64,
            RefClock::square(period),
            subvt_device::Seconds(cell_slow.value() * 31.5),
        );
        let slow_code = q.sample(cell_slow).encode().unwrap();
        if let Ok(fast_code) = q.sample(cell_fast).encode() {
            prop_assert!(fast_code >= slow_code, "{fast_code} < {slow_code}");
        }
    }

    /// Thermometer encoding round-trips for any clean leading run.
    fn thermometer_encode_round_trip(run in 1u32..63) {
        let bits = (1u64 << run) - 1;
        let w = QuantizerWord::new(64, bits);
        prop_assert_eq!(w.encode().unwrap(), run);
        prop_assert_eq!(w.encode_bubble_tolerant().unwrap(), run);
    }

    /// A FIFO never loses accepted items: pushes - pops = occupancy.
    fn fifo_conservation(ops in vec(0u8..3, 1..200)) {
        let mut fifo: Fifo<u32> = Fifo::new(16);
        let mut pushed_ok = 0u64;
        let mut popped = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 | 1 => {
                    if fifo.push(i as u32) {
                        pushed_ok += 1;
                    }
                }
                _ => {
                    if fifo.pop().is_some() {
                        popped += 1;
                    }
                }
            }
        }
        prop_assert_eq!(pushed_ok - popped, fifo.queue_length() as u64);
        prop_assert_eq!(fifo.write_pointer() - fifo.read_pointer(), fifo.queue_length() as u64);
    }

    /// The rate controller's designed LUT is monotone: more queue
    /// pressure never lowers the voltage word.
    fn designed_lut_is_monotone(q1 in 0usize..64, q2 in 0usize..64) {
        let tech = Technology::st_130nm();
        let rate = design_rate_controller(&tech, Environment::nominal()).unwrap();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(rate.desired_word(lo) <= rate.desired_word(hi));
    }

    /// Sensor deviations respond with the correct sign to die-level
    /// threshold shifts.
    fn sensor_sign_tracks_die_shift(shift_mv in -25.0f64..25.0) {
        // One deviation LSB corresponds to ≈18.75 mV of effective Vth
        // shift, so anything below ~half an LSB legitimately reads 0.
        prop_assume!(shift_mv.abs() > 12.0);
        let tech = Technology::st_130nm();
        let sensor = VariationSensor::new(&tech, Environment::nominal(), SensorConfig::default());
        let mismatch = GateMismatch {
            nmos_dvth: Volts::from_millivolts(shift_mv),
            pmos_dvth: Volts::from_millivolts(shift_mv),
        };
        let dev = sensor
            .sense(&tech, 12, word_voltage(12), Environment::nominal(), mismatch)
            .unwrap();
        if shift_mv > 0.0 {
            prop_assert!(dev < 0, "higher Vth must read slow, got {dev}");
        } else {
            prop_assert!(dev > 0, "lower Vth must read fast, got {dev}");
        }
    }

    /// The switched converter's settled mean tracks the word voltage
    /// within one LSB for any word in the usable band.
    fn converter_accuracy_within_one_lsb(word in 6u8..62) {
        let mut c = DcDcConverter::new(ConverterParams::default(), Box::new(NoLoad));
        c.set_word(word);
        c.run_system_cycles(120);
        let target = f64::from(word) * 18.75;
        let vout = c.vout().millivolts();
        prop_assert!((vout - target).abs() < 18.75, "word {word}: {vout} vs {target}");
    }

    /// Pulse-shrinking conversion is linear: doubling the pulse width
    /// roughly doubles the vanish count.
    fn pulse_shrink_linearity(width_ns in 1.0f64..50.0) {
        use subvt_tdc::{PulseShrinkRing, PulseShrinkStage};
        let ring = PulseShrinkRing::new(
            PulseShrinkStage::nominal_130nm(),
            subvt_device::Seconds::ZERO,
        );
        let w = subvt_device::Seconds(width_ns * 1e-9);
        let c1 = ring.circulate(w, 10_000_000).unwrap().cycles;
        let c2 = ring.circulate(subvt_device::Seconds(w.value() * 2.0), 10_000_000).unwrap().cycles;
        let ratio = f64::from(c2) / f64::from(c1.max(1));
        prop_assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
    }
}

/// The tabulated surfaces shared by the accuracy properties below —
/// built once (a build prices ~4 ms of analytic node evaluations, far
/// too much to repeat per generated case).
fn shared_tabulated() -> &'static subvt_device::tabulate::TabulatedEval {
    use std::sync::OnceLock;
    static TAB: OnceLock<subvt_device::tabulate::TabulatedEval> = OnceLock::new();
    TAB.get_or_init(|| subvt_device::tabulate::TabulatedEval::new(&Technology::st_130nm()))
}

properties! {
    cases = 64;

    /// Accuracy contract of the tabulated device model: anywhere inside
    /// the grid — every corner, the full temperature span, the full Vdd
    /// bracket, and beyond-3σ local mismatch — the interpolated gate
    /// delay stays within the documented budget of the analytic model.
    fn tabulated_delay_within_budget(
        v in 0.14f64..1.24,
        corner_idx in 0usize..5,
        celsius in -35.0f64..120.0,
        mm_n in -0.05f64..0.05,
        mm_p in -0.05f64..0.05,
        kind_idx in 0usize..3,
    ) {
        use subvt_device::tabulate::{DeviceEval, ACCURACY_BUDGET};
        let tech = Technology::st_130nm();
        let kind = GateKind::ALL[kind_idx];
        let env = Environment::at_corner(ProcessCorner::ALL[corner_idx]).with_celsius(celsius);
        let mm = GateMismatch {
            nmos_dvth: Volts(mm_n),
            pmos_dvth: Volts(mm_p),
        };
        let t = shared_tabulated().gate_delay(kind, Volts(v), env, mm, 1.0).unwrap();
        let a = GateTiming::new(&tech).gate_delay_with(kind, Volts(v), env, mm, 1.0).unwrap();
        let rel = (t.value() - a.value()).abs() / a.value();
        prop_assert!(rel < ACCURACY_BUDGET, "rel err {rel:.2e}");
    }

    /// Same contract on total energy per cycle (and its closed-form
    /// dynamic part is exact, not merely within budget).
    fn tabulated_energy_within_budget(
        v in 0.14f64..1.24,
        corner_idx in 0usize..5,
        celsius in -35.0f64..120.0,
        activity in 0.02f64..1.0,
    ) {
        use subvt_device::tabulate::{DeviceEval, ACCURACY_BUDGET};
        let tech = Technology::st_130nm();
        let profile = CircuitProfile::ring_oscillator().with_activity(activity);
        let env = Environment::at_corner(ProcessCorner::ALL[corner_idx]).with_celsius(celsius);
        let t = shared_tabulated().energy(&profile, Volts(v), env).unwrap();
        let a = energy_per_cycle(&tech, &profile, Volts(v), env).unwrap();
        let rel = (t.total().value() - a.total().value()).abs() / a.total().value();
        prop_assert!(rel < ACCURACY_BUDGET, "rel err {rel:.2e}");
        prop_assert_eq!(t.dynamic.value().to_bits(), a.dynamic.value().to_bits());
    }

    /// Monotone interpolation is load-bearing: delay on the tabulated
    /// surface decreases with Vdd everywhere, exactly like the analytic
    /// model it shadows (Fritsch–Carlson slopes forbid the overshoot a
    /// natural cubic spline would introduce between nodes).
    fn tabulated_delay_monotone_in_vdd(
        v1 in 0.14f64..1.1,
        dv in 0.005f64..0.12,
        corner_idx in 0usize..5,
        celsius in -35.0f64..120.0,
    ) {
        use subvt_device::tabulate::DeviceEval;
        let env = Environment::at_corner(ProcessCorner::ALL[corner_idx]).with_celsius(celsius);
        let tab = shared_tabulated();
        let d_low = tab
            .gate_delay(GateKind::Inverter, Volts(v1), env, GateMismatch::NOMINAL, 1.0)
            .unwrap();
        let d_high = tab
            .gate_delay(GateKind::Inverter, Volts(v1 + dv), env, GateMismatch::NOMINAL, 1.0)
            .unwrap();
        prop_assert!(d_high.value() < d_low.value());
    }

    /// The fused pair query is pure restructuring: for both evaluator
    /// flavours it returns exactly the two delays the single-kind
    /// queries produce, bit for bit.
    fn pair_query_matches_single_queries(
        v in 0.14f64..1.24,
        corner_idx in 0usize..5,
        celsius in -35.0f64..120.0,
        mm_n in -0.05f64..0.05,
    ) {
        use subvt_device::tabulate::{AnalyticEval, DeviceEval};
        let tech = Technology::st_130nm();
        let env = Environment::at_corner(ProcessCorner::ALL[corner_idx]).with_celsius(celsius);
        let mm = GateMismatch {
            nmos_dvth: Volts(mm_n),
            pmos_dvth: Volts(-mm_n),
        };
        let kinds = (GateKind::Inverter, GateKind::Nor2);
        let analytic = AnalyticEval::new(&tech);
        for eval in [&analytic as &dyn DeviceEval, shared_tabulated()] {
            let (pa, pb) = eval.gate_delay_pair(kinds, Volts(v), env, mm, 1.0).unwrap();
            let sa = eval.gate_delay(kinds.0, Volts(v), env, mm, 1.0).unwrap();
            let sb = eval.gate_delay(kinds.1, Volts(v), env, mm, 1.0).unwrap();
            prop_assert_eq!(pa.value().to_bits(), sa.value().to_bits());
            prop_assert_eq!(pb.value().to_bits(), sb.value().to_bits());
        }
    }
}

/// Deterministic (non-harness) cross-crate property: controller energy
/// accounting is additive across runs of the same seed.
#[test]
fn controller_runs_are_deterministic() {
    let run = || {
        let tech = Technology::st_130nm();
        let rate = design_rate_controller(&tech, Environment::nominal()).unwrap();
        let mut c = AdaptiveController::new(
            tech,
            RingOscillator::paper_circuit(),
            rate,
            Environment::nominal(),
            Environment::at_corner(ProcessCorner::Ss),
            GateMismatch::NOMINAL,
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
            ControllerConfig::default(),
        );
        let mut wl = WorkloadSource::new(WorkloadPattern::Poisson { mean: 0.4 });
        let mut rng = subvt_rng::StdRng::seed_from_u64(77);
        c.run(&mut wl, 400, &mut rng)
    };
    let a = run();
    let b = run();
    assert_eq!(a.operations, b.operations);
    assert_eq!(a.compensation, b.compensation);
    assert!((a.account.total().value() - b.account.total().value()).abs() < 1e-30);
}

properties! {
    cases = 24;

    /// System-level convergence: for any corner, moderate temperature
    /// and bounded die shift, the idle controller settles with a
    /// residual sensed deviation of at most one LSB within 60 cycles.
    fn controller_converges_for_any_reasonable_die(
        corner_idx in 0usize..5,
        celsius in 10.0f64..50.0,
        shift_mv in -20.0f64..20.0,
        seed in 0u64..1000,
    ) {
        let tech = Technology::st_130nm();
        let design = Environment::nominal();
        let rate = design_rate_controller(&tech, design).unwrap();
        let actual = Environment::at_corner(ProcessCorner::ALL[corner_idx])
            .with_celsius(celsius);
        let die = GateMismatch {
            nmos_dvth: Volts::from_millivolts(shift_mv),
            pmos_dvth: Volts::from_millivolts(shift_mv),
        };
        let mut c = AdaptiveController::new(
            tech,
            RingOscillator::paper_circuit(),
            rate,
            design,
            actual,
            die,
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
            ControllerConfig::default(),
        );
        let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 0 });
        let mut rng = subvt_rng::StdRng::seed_from_u64(seed);
        c.run(&mut wl, 60, &mut rng);
        // Settled: the last 10 cycles' sensed deviations are all ≤ 1
        // LSB in magnitude (or sensing was budget-clamped, which pins
        // the word and therefore the deviation constant).
        let tail = &c.history()[50..];
        let max_dev = tail
            .iter()
            .filter_map(|r| r.deviation)
            .map(|d| d.abs())
            .max()
            .unwrap_or(0);
        let comp = c.rate_controller().compensation();
        let at_budget = comp.abs() >= 3;
        prop_assert!(
            max_dev <= 1 || at_budget,
            "residual deviation {max_dev} LSB with compensation {comp}"
        );
        // And compensation direction opposes the die shift when the
        // shift is big enough to see and temperature isn't partially
        // cancelling it (heat makes subthreshold logic faster, ~1 mV of
        // effective Vth per °C).
        // Only the symmetric typical corner gives a clean prediction
        // (asymmetric corners add their own delay offset).
        let thermal_mv = (celsius - 25.0) * 1.2;
        let net_mv = shift_mv - thermal_mv;
        if ProcessCorner::ALL[corner_idx] == ProcessCorner::Tt {
            if net_mv > 14.0 {
                prop_assert!(comp >= 1, "net-slow die ({net_mv:.1} mV), comp {comp}");
            }
            if net_mv < -14.0 {
                prop_assert!(comp <= -1, "net-fast die ({net_mv:.1} mV), comp {comp}");
            }
        }
    }
}
