//! # subvt-faults
//!
//! Deterministic fault injection for the sensor → controller →
//! converter loop.
//!
//! The paper's controller is sold on *resilience to parametric
//! variation*; this crate adds the other hazard axis — transient and
//! hard faults in the loop hardware itself. The related digital-LDO
//! literature (time-interleaved comparator glitches, limit-cycle
//! ripple) shows these are first-order effects in all-digital
//! regulators, so the reproduction models them explicitly:
//!
//! * **TDC faults** — stuck or flipped thermometer bits, bubble
//!   errors, and a metastable boundary sample in the quantizer word;
//! * **DC-DC faults** — a comparator glitch, a missed PWM edge, and a
//!   single-event upset in the reference (voltage) word;
//! * **controller faults** — an SEU in the LUT-selected voltage word
//!   register and a FIFO occupancy misread.
//!
//! A [`FaultPlan`] carries the per-cycle hazard rates; a
//! [`FaultSchedule`] turns the plan plus a forked [`StdRng`] stream
//! into a per-cycle draw. Every draw comes from the dedicated stream,
//! so fault injection composes with the workspace determinism
//! contract: studies are bit-identical at any worker count, and a
//! zero-rate plan leaves the consuming simulation byte-identical to
//! one with no plan at all (the stream exists but nothing it yields
//! changes state).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use subvt_digital::encoder::QuantizerWord;
use subvt_digital::lut::VoltageWord;
use subvt_rng::{Rng, StdRng};

/// Per-cycle hazard rates for the three fault domains, plus whether
/// the mitigation machinery (majority vote, debounce, watchdog, SEU
/// scrub) is armed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a TDC fault fires in a given system cycle.
    pub tdc_rate: f64,
    /// Probability a DC-DC fault fires in a given system cycle.
    pub dcdc_rate: f64,
    /// Probability a controller fault fires in a given system cycle.
    pub ctrl_rate: f64,
    /// Whether detection + graceful-degradation machinery is enabled.
    pub mitigation: bool,
}

impl FaultPlan {
    /// A plan with the same per-cycle rate in all three domains and
    /// mitigation enabled.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is a probability in `[0, 1]`.
    pub fn uniform(rate: f64) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate {rate} is not a probability"
        );
        FaultPlan {
            tdc_rate: rate,
            dcdc_rate: rate,
            ctrl_rate: rate,
            mitigation: true,
        }
    }

    /// Returns the plan with mitigation switched on or off.
    pub fn with_mitigation(mut self, on: bool) -> FaultPlan {
        self.mitigation = on;
        self
    }

    /// True when no fault can ever fire (all rates zero).
    pub fn is_null(&self) -> bool {
        self.tdc_rate == 0.0 && self.dcdc_rate == 0.0 && self.ctrl_rate == 0.0
    }
}

/// A fault in the TDC quantizer word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TdcFault {
    /// A thermometer stage stuck at 0 (hard fault for this cycle's
    /// samples: re-sampling reads the same broken stage).
    StuckLow {
        /// Affected stage index.
        stage: u8,
    },
    /// A thermometer stage stuck at 1.
    StuckHigh {
        /// Affected stage index.
        stage: u8,
    },
    /// A transient single-bit flip (one sample only).
    Flip {
        /// Affected stage index.
        stage: u8,
    },
    /// A bubble: one stage inside the thermometer run reads 0.
    Bubble,
    /// The boundary flip-flop resolves metastably: the first stage
    /// past the run captures the wrong level, shifting the edge by one.
    Metastable,
}

impl TdcFault {
    /// Stuck faults persist across the within-cycle redundant samples;
    /// flips, bubbles and metastable captures are one-shot.
    pub fn is_persistent(self) -> bool {
        matches!(self, TdcFault::StuckLow { .. } | TdcFault::StuckHigh { .. })
    }

    /// Applies the fault to a sampled quantizer word.
    pub fn apply(self, word: QuantizerWord) -> QuantizerWord {
        let width = word.width();
        let rebuild = |bits: u64| QuantizerWord::new(width, bits);
        match self {
            TdcFault::StuckLow { stage } => rebuild(word.bits() & !(1u64 << (stage % width))),
            TdcFault::StuckHigh { stage } => rebuild(word.bits() | (1u64 << (stage % width))),
            TdcFault::Flip { stage } => rebuild(word.bits() ^ (1u64 << (stage % width))),
            TdcFault::Bubble => {
                let run = word.leading_run();
                if run == 0 {
                    return word;
                }
                rebuild(word.bits() & !(1u64 << (run / 2)))
            }
            TdcFault::Metastable => {
                let run = word.leading_run();
                let stage = run.min(u32::from(width) - 1);
                rebuild(word.bits() ^ (1u64 << stage))
            }
        }
    }
}

/// A fault in the DC-DC converter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DcdcFault {
    /// The regulation comparator glitches: the power stage skips its
    /// correction for one cycle and the rail droops.
    ComparatorGlitch,
    /// A PWM edge is missed: a shorter conduction window this cycle.
    MissedPwmEdge,
    /// Single-event upset in the 6-bit reference (voltage) word
    /// register; persists until rewritten.
    ReferenceSeu {
        /// Flipped bit (0..6).
        bit: u8,
    },
}

impl DcdcFault {
    /// Applies a reference-word SEU; the transient glitch variants
    /// leave the word untouched (they disturb the rail, not the
    /// register).
    pub fn apply_reference(self, word: VoltageWord) -> VoltageWord {
        match self {
            DcdcFault::ReferenceSeu { bit } => word ^ (1 << (bit % 6)),
            _ => word,
        }
    }
}

/// A fault in the controller digital logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlFault {
    /// SEU in the LUT-selected voltage-word register; persists until
    /// the (mitigated) controller scrubs it against its shadow copy.
    LutSeu {
        /// Flipped bit (0..6).
        bit: u8,
    },
    /// The FIFO occupancy counter is misread for one cycle, so the
    /// rate controller picks a word for a much fuller queue.
    FifoMisread,
}

impl CtrlFault {
    /// Applies the fault to the controller's voltage-word register.
    /// `FifoMisread` is an input error, not a register corruption, and
    /// leaves the word untouched (the consumer models the transient
    /// word excursion itself).
    pub fn apply_word(self, word: VoltageWord) -> VoltageWord {
        match self {
            CtrlFault::LutSeu { bit } => word ^ (1 << (bit % 6)),
            CtrlFault::FifoMisread => word,
        }
    }
}

/// The faults drawn for one system cycle (at most one per domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleFaults {
    /// TDC fault, if one fired.
    pub tdc: Option<TdcFault>,
    /// DC-DC fault, if one fired.
    pub dcdc: Option<DcdcFault>,
    /// Controller fault, if one fired.
    pub ctrl: Option<CtrlFault>,
}

impl CycleFaults {
    /// True when no fault fired this cycle.
    pub fn is_clean(&self) -> bool {
        self.tdc.is_none() && self.dcdc.is_none() && self.ctrl.is_none()
    }

    /// Number of faults that fired this cycle (0..=3).
    pub fn count(&self) -> u32 {
        u32::from(self.tdc.is_some())
            + u32::from(self.dcdc.is_some())
            + u32::from(self.ctrl.is_some())
    }
}

/// A per-die fault schedule: the plan plus a dedicated forked stream.
///
/// [`FaultSchedule::draw`] consumes the stream one cycle at a time;
/// the sequence of [`CycleFaults`] is a pure function of the plan and
/// the stream seed, so schedules parallelize under the workspace
/// determinism contract exactly like die sampling does.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    plan: FaultPlan,
    rng: StdRng,
}

impl FaultSchedule {
    /// Builds a schedule from a plan and a forked per-die stream.
    ///
    /// # Panics
    ///
    /// Panics if any rate in the plan is not a probability.
    pub fn new(plan: FaultPlan, rng: StdRng) -> FaultSchedule {
        for rate in [plan.tdc_rate, plan.dcdc_rate, plan.ctrl_rate] {
            assert!(
                (0.0..=1.0).contains(&rate),
                "fault rate {rate} is not a probability"
            );
        }
        FaultSchedule { plan, rng }
    }

    /// The plan in force.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Draws the next cycle's faults.
    pub fn draw(&mut self) -> CycleFaults {
        let tdc =
            self.rng
                .gen_bool(self.plan.tdc_rate)
                .then(|| match self.rng.gen_range(0u32..5) {
                    0 => TdcFault::StuckLow {
                        stage: self.rng.gen_range(0u8..64),
                    },
                    1 => TdcFault::StuckHigh {
                        stage: self.rng.gen_range(0u8..64),
                    },
                    2 => TdcFault::Flip {
                        stage: self.rng.gen_range(0u8..64),
                    },
                    3 => TdcFault::Bubble,
                    _ => TdcFault::Metastable,
                });
        let dcdc =
            self.rng
                .gen_bool(self.plan.dcdc_rate)
                .then(|| match self.rng.gen_range(0u32..3) {
                    0 => DcdcFault::ComparatorGlitch,
                    1 => DcdcFault::MissedPwmEdge,
                    _ => DcdcFault::ReferenceSeu {
                        bit: self.rng.gen_range(0u8..6),
                    },
                });
        let ctrl =
            self.rng
                .gen_bool(self.plan.ctrl_rate)
                .then(|| match self.rng.gen_range(0u32..2) {
                    0 => CtrlFault::LutSeu {
                        bit: self.rng.gen_range(0u8..6),
                    },
                    _ => CtrlFault::FifoMisread,
                });
        CycleFaults { tdc, dcdc, ctrl }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_word(width: u8, run: u32) -> QuantizerWord {
        let bits = if run == 0 { 0 } else { (1u64 << run) - 1 };
        QuantizerWord::new(width, bits)
    }

    #[test]
    fn zero_rate_schedule_never_fires() {
        let mut s = FaultSchedule::new(FaultPlan::uniform(0.0), StdRng::seed_from_u64(7));
        for _ in 0..200 {
            assert!(s.draw().is_clean());
        }
    }

    #[test]
    fn full_rate_schedule_always_fires_everywhere() {
        let mut s = FaultSchedule::new(FaultPlan::uniform(1.0), StdRng::seed_from_u64(7));
        for _ in 0..50 {
            assert_eq!(s.draw().count(), 3);
        }
    }

    #[test]
    fn schedules_are_reproducible_from_the_seed() {
        let plan = FaultPlan::uniform(0.3);
        let mut a = FaultSchedule::new(plan, StdRng::seed_from_u64(99));
        let mut b = FaultSchedule::new(plan, StdRng::seed_from_u64(99));
        for _ in 0..100 {
            assert_eq!(a.draw(), b.draw());
        }
    }

    #[test]
    fn mid_rate_fires_roughly_at_rate() {
        let mut s = FaultSchedule::new(FaultPlan::uniform(0.25), StdRng::seed_from_u64(3));
        let fired: u32 = (0..4000).map(|_| s.draw().count()).sum();
        let per_domain = f64::from(fired) / (4000.0 * 3.0);
        assert!(
            (0.2..0.3).contains(&per_domain),
            "empirical rate {per_domain}"
        );
    }

    #[test]
    fn stuck_and_flip_touch_the_named_stage() {
        let w = run_word(64, 10);
        assert_eq!(
            TdcFault::StuckLow { stage: 3 }.apply(w).bits(),
            w.bits() & !(1 << 3)
        );
        assert_eq!(
            TdcFault::StuckHigh { stage: 20 }.apply(w).bits(),
            w.bits() | (1 << 20)
        );
        assert_eq!(
            TdcFault::Flip { stage: 9 }.apply(w).bits(),
            w.bits() ^ (1 << 9)
        );
        assert!(TdcFault::StuckLow { stage: 3 }.is_persistent());
        assert!(!TdcFault::Flip { stage: 3 }.is_persistent());
    }

    #[test]
    fn bubble_fault_is_repaired_by_bubble_tolerant_decode() {
        // The mitigation story for bubbles: the baseline decoder
        // already fills single interior bubbles, so a Bubble fault on a
        // healthy run must decode to the clean code.
        let w = run_word(64, 12);
        let faulted = TdcFault::Bubble.apply(w);
        assert_ne!(faulted, w);
        assert!(faulted.encode().is_err(), "strict decode sees the bubble");
        assert_eq!(faulted.encode_bubble_tolerant(), w.encode_bubble_tolerant());
    }

    #[test]
    fn metastable_fault_shifts_the_edge_by_one() {
        let w = run_word(64, 12);
        let faulted = TdcFault::Metastable.apply(w);
        assert_eq!(faulted.encode(), Ok(13));
        // On an empty word the degenerate case stays in range.
        let empty = run_word(64, 0);
        assert_eq!(TdcFault::Metastable.apply(empty).encode(), Ok(1));
    }

    #[test]
    fn bubble_on_an_empty_word_is_a_no_op() {
        let empty = run_word(64, 0);
        assert_eq!(TdcFault::Bubble.apply(empty), empty);
    }

    #[test]
    fn reference_and_lut_seu_flip_one_word_bit() {
        let seu = DcdcFault::ReferenceSeu { bit: 4 };
        assert_eq!(seu.apply_reference(11), 11 ^ 16);
        assert_eq!(DcdcFault::ComparatorGlitch.apply_reference(11), 11);
        let lut = CtrlFault::LutSeu { bit: 5 };
        assert_eq!(lut.apply_word(11), 11 ^ 32);
        assert_eq!(CtrlFault::FifoMisread.apply_word(11), 11);
    }

    #[test]
    fn mitigation_toggle_round_trips() {
        let plan = FaultPlan::uniform(0.1);
        assert!(plan.mitigation);
        assert!(!plan.with_mitigation(false).mitigation);
        assert!(FaultPlan::uniform(0.0).is_null());
        assert!(!plan.is_null());
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn bad_rate_is_rejected() {
        let _ = FaultPlan::uniform(1.5);
    }
}
