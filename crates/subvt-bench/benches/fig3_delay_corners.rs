//! Bench for the Fig. 3 reproduction: the calibrated delay
//! model across five decades.

use std::hint::black_box;
use subvt_testkit::bench::Timer;

use subvt_bench::figures::fig3_delay_corners;
use subvt_device::delay::GateTiming;
use subvt_device::mosfet::Environment;
use subvt_device::technology::{GateKind, Technology};
use subvt_device::units::Volts;

fn bench(c: &mut Timer) {
    let tech = Technology::st_130nm();
    let timing = GateTiming::new(&tech);
    let env = Environment::nominal();

    let mut g = c.benchmark_group("fig3");
    g.bench_function("gate_delay", |b| {
        b.iter(|| timing.gate_delay(GateKind::Inverter, black_box(Volts(0.2)), env))
    });
    g.bench_function("full_figure", |b| b.iter(fig3_delay_corners));
    g.finish();
}

subvt_testkit::bench_main!(bench);
