//! Bench for the Fig. 2 reproduction: MEP vs temperature.

use std::hint::black_box;
use subvt_testkit::bench::Timer;

use subvt_bench::figures::fig2_mep_temperature;
use subvt_device::energy::{energy_per_cycle, CircuitProfile};
use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_device::units::Volts;

fn bench(c: &mut Timer) {
    let tech = Technology::st_130nm();
    let ring = CircuitProfile::ring_oscillator();

    let mut g = c.benchmark_group("fig2");
    g.bench_function("hot_energy_point", |b| {
        b.iter(|| {
            energy_per_cycle(
                &tech,
                &ring,
                black_box(Volts(0.25)),
                Environment::at_celsius(85.0),
            )
        })
    });
    g.bench_function("full_figure", |b| b.iter(fig2_mep_temperature));
    g.finish();
}

subvt_testkit::bench_main!(bench);
