//! Bench for the ablation studies.

use subvt_testkit::bench::Timer;

use subvt_bench::ablation::{ablation_bits, ablation_refclk, ablation_shrink};

fn bench(c: &mut Timer) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("bits_sweep", |b| b.iter(ablation_bits));
    g.bench_function("refclk_sweep", |b| b.iter(ablation_refclk));
    g.bench_function("shrink_sweep", |b| b.iter(ablation_shrink));
    g.finish();
}

subvt_testkit::bench_main!(bench);
