//! Criterion bench for the ablation studies.

use criterion::{criterion_group, criterion_main, Criterion};

use subvt_bench::ablation::{ablation_bits, ablation_refclk, ablation_shrink};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("bits_sweep", |b| b.iter(ablation_bits));
    g.bench_function("refclk_sweep", |b| b.iter(ablation_refclk));
    g.bench_function("shrink_sweep", |b| b.iter(ablation_shrink));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
