//! Bench for the Fig. 6 reproduction: the switched-converter
//! transient (this is the expensive mixed-mode co-simulation).

use subvt_testkit::bench::Timer;

use subvt_bench::savings::fig6_transient;
use subvt_dcdc::converter::{ConverterParams, DcDcConverter};
use subvt_dcdc::filter::NoLoad;

fn bench(c: &mut Timer) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(20);
    g.bench_function("converter_system_cycle", |b| {
        let mut dc = DcDcConverter::new(ConverterParams::default(), Box::new(NoLoad));
        dc.set_word(19);
        b.iter(|| dc.run_system_cycles(1))
    });
    g.bench_function("full_transient", |b| b.iter(fig6_transient));
    g.finish();
}

subvt_testkit::bench_main!(bench);
