//! Bench for the Fig. 6 reproduction: the switched-converter
//! transient (this is the expensive mixed-mode co-simulation), plus
//! the closed-form vs RK4 solver face-off.
//!
//! The `transient` group enforces the solver accuracy contract on
//! every run (quick mode included) and, in timed mode, asserts the
//! closed-form segment stepper's ≥10× speedup over the RK4 reference —
//! a failing budget or a lost speedup fails the bench, not just a
//! report diff.

use subvt_testkit::bench::Timer;

use subvt_bench::savings::fig6_transient;
use subvt_core::transient::{fig6_schedule, run_transient};
use subvt_dcdc::converter::{ConverterParams, DcDcConverter};
use subvt_dcdc::filter::{ConstantLoad, NoLoad};
use subvt_dcdc::solver::SolverMode;
use subvt_device::units::Amps;

fn fig6(c: &mut Timer) {
    let mut g = c.benchmark_group("fig6");
    g.bench_function("converter_system_cycle", |b| {
        let mut dc = DcDcConverter::new(ConverterParams::default(), Box::new(NoLoad));
        dc.set_word(19);
        b.iter(|| dc.run_system_cycles(1))
    });
    g.bench_function("full_transient", |b| b.iter(fig6_transient));
    g.finish();
}

fn params(solver: SolverMode) -> ConverterParams {
    ConverterParams::default().with_solver(solver)
}

/// An untraced 180-cycle settle at word 19 — the shape every
/// Monte-Carlo switched-supply evaluation takes. Closed-form runs this
/// segment-stepped; RK4 ticks through all 11 520 PWM ticks.
fn settle(solver: SolverMode) -> f64 {
    let mut dc = DcDcConverter::new(params(solver), Box::new(ConstantLoad(Amps(2e-6))));
    dc.set_word(19);
    dc.run_system_cycles(180);
    dc.vout().volts()
}

fn solvers(c: &mut Timer) {
    let quick = c.quick();

    // The accuracy contract first, enforced on every run: the
    // closed-form Fig. 6 table must sit within the documented budget of
    // the RK4 reference (≤0.1 mV settled, ≤5% ripple, ±2 settling
    // cycles — DESIGN.md "Converter solver & accuracy contract").
    let load = || Box::new(ConstantLoad(Amps(5e-6)));
    let cf = run_transient(params(SolverMode::ClosedForm), load(), &fig6_schedule());
    let rk4 = run_transient(params(SolverMode::Rk4), load(), &fig6_schedule());
    for (a, b) in cf.segments.iter().zip(&rk4.segments) {
        let dv = (a.settled.millivolts() - b.settled.millivolts()).abs();
        assert!(dv < 0.1, "word {}: settled diverged {dv:.4} mV", a.word);
        let dr = (a.ripple.millivolts() - b.ripple.millivolts()).abs();
        assert!(
            dr < 0.05 * b.ripple.millivolts(),
            "word {}: ripple diverged {dr:.4} mV",
            a.word
        );
        match (a.settling_cycles, b.settling_cycles) {
            (Some(ca), Some(cb)) => assert!(
                ca.abs_diff(cb) <= 2,
                "word {}: settling {ca} vs {cb} cycles",
                a.word
            ),
            (a_c, b_c) => panic!("word {}: settling {a_c:?} vs {b_c:?}", a.word),
        }
    }

    let mut g = c.benchmark_group("transient");
    g.bench_function("settle_180_cycles_rk4", |b| {
        b.iter(|| settle(SolverMode::Rk4))
    });
    g.bench_function("settle_180_cycles_closed_form", |b| {
        b.iter(|| settle(SolverMode::ClosedForm))
    });
    g.bench_function("full_transient_rk4", |b| {
        b.iter(|| run_transient(params(SolverMode::Rk4), load(), &fig6_schedule()))
    });
    g.bench_function("full_transient_closed_form", |b| {
        b.iter(|| run_transient(params(SolverMode::ClosedForm), load(), &fig6_schedule()))
    });

    let rk4_ns = g.median_ns("settle_180_cycles_rk4").unwrap();
    let cf_ns = g.median_ns("settle_180_cycles_closed_form").unwrap();
    let speedup = rk4_ns / cf_ns;
    println!("transient settle speedup (closed-form vs rk4): {speedup:.1}x");
    if !quick {
        // One quick iteration is not a timing; only gate timed runs.
        assert!(
            speedup >= 10.0,
            "closed-form settle speedup regressed to {speedup:.1}x (< 10x)"
        );
    }
    g.finish();
}

subvt_testkit::bench_main!(fig6, solvers);
