//! Bench for the Fig. 1 reproduction: the energy sweep and
//! MEP search per process corner.

use std::hint::black_box;
use subvt_testkit::bench::Timer;

use subvt_bench::figures::fig1_mep_corners;
use subvt_device::energy::{energy_per_cycle, CircuitProfile};
use subvt_device::mep::find_mep;
use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_device::units::Volts;

fn bench(c: &mut Timer) {
    let tech = Technology::st_130nm();
    let ring = CircuitProfile::ring_oscillator();
    let env = Environment::nominal();

    let mut g = c.benchmark_group("fig1");
    g.bench_function("energy_point", |b| {
        b.iter(|| energy_per_cycle(&tech, &ring, black_box(Volts(0.2)), env))
    });
    g.bench_function("mep_search", |b| {
        b.iter(|| find_mep(&tech, &ring, env, black_box(Volts(0.12)), Volts(0.6)))
    });
    g.bench_function("full_figure", |b| b.iter(fig1_mep_corners));
    g.finish();
}

subvt_testkit::bench_main!(bench);
