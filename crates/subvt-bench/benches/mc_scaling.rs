//! Scaling of the savings Monte-Carlo across `subvt-exec` worker
//! counts.
//!
//! Every leg computes the exact same rows (the determinism contract),
//! so the report isolates pure scheduling cost/benefit:
//!
//! * `savings_mc_serial` — the committed fork-per-die reference loop;
//! * `savings_mc_jobsN` — the work-stealing scheduler at N workers;
//! * `savings_mc_tab_jobsN` — the same fan-out on the tabulated device
//!   surfaces, isolating how much model cost the scheduler hides.
//!
//! The host core count lands in the report's top-level `machine` block
//! (schema v3), distinguishing a single-core container — where
//! jobs > 1 cannot beat serial — from a genuine scaling regression. An
//! `eval_mode_M` marker record still names the device-evaluation mode
//! of the unsuffixed legs so a report stays self-describing if the
//! default ever changes.
//!
//! On a host with ≥ 4 cores (and outside quick mode) the bench
//! *asserts* that 4 workers beat 1 worker by ≥ 1.5× — CI's multi-core
//! runners enforce the scaling claim; a 1-core container only records
//! honest numbers.

use subvt_bench::savings::savings_rows;
use subvt_core::study::StudyConfig;
use subvt_device::tabulate::EvalMode;
use subvt_exec::ExecConfig;
use subvt_testkit::bench::Timer;

/// Enough dies that the per-chunk work dwarfs worker spawn cost, so
/// the jobs-4 leg can honestly clear the 1.5× bar on a 4-core host.
const DIES: usize = 32;
const SEED: u64 = 2026;

fn bench(c: &mut Timer) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let quick = c.quick();

    let mut g = c.benchmark_group("mc_scaling");
    g.sample_size(10);
    g.bench_function(&format!("eval_mode_{}", EvalMode::Analytic.label()), |b| {
        b.iter(|| std::hint::black_box(cores))
    });

    g.throughput(DIES as f64);
    let serial = StudyConfig::new(DIES, SEED).exec(ExecConfig::serial());
    g.bench_function("savings_mc_serial", |b| {
        b.iter(|| savings_rows(&serial, EvalMode::Analytic))
    });
    for jobs in [1usize, 2, 4] {
        let study = StudyConfig::new(DIES, SEED).exec(ExecConfig::with_jobs(jobs));
        g.bench_function(&format!("savings_mc_jobs{jobs}"), |b| {
            b.iter(|| savings_rows(&study, EvalMode::Analytic))
        });
        g.bench_function(&format!("savings_mc_tab_jobs{jobs}"), |b| {
            b.iter(|| savings_rows(&study, EvalMode::Tabulated))
        });
    }
    if !quick && cores >= 4 {
        let t1 = g.median_ns("savings_mc_jobs1").expect("jobs1 leg ran");
        let t4 = g.median_ns("savings_mc_jobs4").expect("jobs4 leg ran");
        let speedup = t1 / t4;
        println!("mc_scaling speedup jobs1/jobs4 = {speedup:.2}x on {cores} cores");
        assert!(
            speedup > 1.5,
            "4 workers must beat 1 worker by > 1.5x on a {cores}-core host, got {speedup:.2}x"
        );
    }
    g.finish();

    println!("mc_scaling ran on a machine with {cores} core(s)");
}

subvt_testkit::bench_main!(bench);
