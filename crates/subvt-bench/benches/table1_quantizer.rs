//! Bench for the Table I reproduction: quantizer sampling and
//! encoding.

use std::hint::black_box;
use subvt_testkit::bench::Timer;

use subvt_bench::figures::table1_rows;
use subvt_device::units::Seconds;
use subvt_digital::encoder::QuantizerWord;
use subvt_tdc::quantizer::{Quantizer, RefClock};

fn bench(c: &mut Timer) {
    let q = Quantizer::new(64, RefClock::paper_14ns(), Seconds(6.07e-9));
    let word = q.sample(Seconds::from_picos(139.0));

    let mut g = c.benchmark_group("table1");
    g.bench_function("quantizer_sample", |b| {
        b.iter(|| q.sample(black_box(Seconds::from_picos(139.0))))
    });
    g.bench_function("encode", |b| b.iter(|| black_box(word).encode()));
    g.bench_function("bubble_tolerant_encode", |b| {
        let bubbly = QuantizerWord::new(64, word.bits() & !(1 << 5));
        b.iter(|| black_box(bubbly).encode_bubble_tolerant())
    });
    g.bench_function("full_table", |b| b.iter(table1_rows));
    g.finish();
}

subvt_testkit::bench_main!(bench);
