//! Supply-backend settle micro-bench.
//!
//! Records in `BENCH_supply.json`:
//!
//! * `settle_table_{buck,dldo,dlr}` — the cost of building one 64-word
//!   settle table through each backend. This is the whole per-study
//!   price of a regulated supply: the table is built once, serially,
//!   before the Monte-Carlo fan-out, and workers only read the
//!   snapshot. The buck leg prices 63 closed-form converter settles;
//!   the dldo/dlr legs price 63 closed-form operating points (no
//!   integration anywhere, which is the point).
//! * `snapshot_{buck,dldo,dlr}` — `RegulatorModel::build` end to end,
//!   i.e. the settle table plus the scalar figures and the contract
//!   asserts. The delta against the matching `settle_table_*` leg is
//!   the bookkeeping overhead of the snapshot layer.
//! * markers — `response_cycles_{buck,dldo,dlr}_N` carry each
//!   backend's settle latency in the record name, so a latency
//!   regression shows up in CI's benchmark artifact without parsing
//!   the shoot-out table.

use subvt_regulators::{
    BuckBackend, DigitalLdoBackend, DiscreteTimeLinearBackend, RegulatorModel, SupplyBackend,
};
use subvt_testkit::bench::{black_box, Timer};

fn bench(c: &mut Timer) {
    let buck = BuckBackend::paper_default();
    let dldo = DigitalLdoBackend::paper_default();
    let dlr = DiscreteTimeLinearBackend::paper_default();
    let backends: [(&str, &dyn SupplyBackend); 3] =
        [("buck", &buck), ("dldo", &dldo), ("dlr", &dlr)];

    let mut g = c.benchmark_group("supply");
    g.sample_size(20);

    for (name, backend) in backends {
        g.bench_function(&format!("settle_table_{name}"), |b| {
            b.iter(|| black_box(backend.settle_table()))
        });
        g.bench_function(&format!("snapshot_{name}"), |b| {
            b.iter(|| black_box(RegulatorModel::build(backend)))
        });
    }

    // Latency markers: zero-cost records whose names carry the figure.
    for (name, backend) in backends {
        let marker = format!("response_cycles_{name}_{}", backend.response_cycles());
        g.bench_function(&marker, |b| b.iter(|| black_box(0u8)));
    }
    g.finish();
}

subvt_testkit::bench_main!(bench);
