//! Bench for the Sec. IV savings study: full controller runs.

use subvt_testkit::bench::Timer;

use subvt_core::experiment::{run_scenario, savings_experiment, Scenario};
use subvt_core::SupplyPolicy;

fn bench(c: &mut Timer) {
    let mut g = c.benchmark_group("savings");
    g.sample_size(10);
    let mut short = Scenario::paper_worked_example();
    short.cycles = 200;
    g.bench_function("controller_200_cycles", |b| {
        b.iter(|| run_scenario(&short, SupplyPolicy::AdaptiveCompensated))
    });
    g.bench_function("four_way_comparison", |b| {
        b.iter(|| savings_experiment(&short))
    });
    g.finish();
}

subvt_testkit::bench_main!(bench);
