//! Bench for the Sec. IV savings study: full controller runs.

use subvt_testkit::bench::Timer;

use subvt_bench::savings::savings_rows;
use subvt_core::experiment::{run_scenario, savings_experiment, Scenario};
use subvt_core::study::StudyConfig;
use subvt_core::SupplyPolicy;
use subvt_device::tabulate::EvalMode;
use subvt_exec::ExecConfig;

fn bench(c: &mut Timer) {
    let mut g = c.benchmark_group("savings");
    g.sample_size(10);
    let mut short = Scenario::paper_worked_example();
    short.cycles = 200;
    g.bench_function("controller_200_cycles", |b| {
        b.iter(|| run_scenario(&short, SupplyPolicy::AdaptiveCompensated))
    });
    g.bench_function("four_way_comparison", |b| {
        b.iter(|| savings_experiment(&short))
    });
    let study = StudyConfig::new(8, 2026).exec(ExecConfig::from_env());
    g.bench_function("monte_carlo_8_dies", |b| {
        b.iter(|| savings_rows(&study, EvalMode::Analytic))
    });
    g.finish();
}

subvt_testkit::bench_main!(bench);
