//! Bench for the Sec. IV savings study: full controller runs.

use subvt_testkit::bench::Timer;

use subvt_bench::savings::savings_monte_carlo_jobs;
use subvt_core::experiment::{run_scenario, savings_experiment, Scenario};
use subvt_core::SupplyPolicy;
use subvt_exec::ExecConfig;

fn bench(c: &mut Timer) {
    let mut g = c.benchmark_group("savings");
    g.sample_size(10);
    let mut short = Scenario::paper_worked_example();
    short.cycles = 200;
    g.bench_function("controller_200_cycles", |b| {
        b.iter(|| run_scenario(&short, SupplyPolicy::AdaptiveCompensated))
    });
    g.bench_function("four_way_comparison", |b| {
        b.iter(|| savings_experiment(&short))
    });
    let cfg = ExecConfig::from_env();
    g.bench_function("monte_carlo_8_dies", |b| {
        b.iter(|| savings_monte_carlo_jobs(&cfg, 8, 2026))
    });
    g.finish();
}

subvt_testkit::bench_main!(bench);
