//! Bench for the extension studies: controller overhead,
//! drift tracking, dithering, body-bias convergence, and the
//! alternative TDC methods.

use std::hint::black_box;
use subvt_testkit::bench::Timer;

use subvt_core::abb::AbbCompensator;
use subvt_core::dithering::compare_dither;
use subvt_core::overhead::{overhead_per_cycle, ControllerInventory};
use subvt_device::body_bias::BodyEffect;
use subvt_device::delay::GateMismatch;
use subvt_device::energy::CircuitProfile;
use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_device::units::{Hertz, Seconds, Volts};
use subvt_tdc::counter_method::CounterSensor;
use subvt_tdc::sensor::{SensorConfig, VariationSensor};
use subvt_tdc::vernier::VernierTdc;

fn bench(c: &mut Timer) {
    let tech = Technology::st_130nm();
    let env = Environment::nominal();

    let mut g = c.benchmark_group("extensions");
    g.bench_function("overhead_per_cycle", |b| {
        b.iter(|| {
            overhead_per_cycle(
                &tech,
                ControllerInventory::default(),
                black_box(Volts(0.206)),
                Hertz::from_megahertz(64.0),
                Seconds::from_micros(1.0),
            )
        })
    });
    let ring = CircuitProfile::ring_oscillator();
    g.bench_function("dither_comparison", |b| {
        b.iter(|| compare_dither(&tech, &ring, env, black_box(Volts(0.2156))))
    });
    let sensor = VariationSensor::new(&tech, env, SensorConfig::default());
    g.bench_function("abb_convergence", |b| {
        b.iter(|| {
            let mut abb = AbbCompensator::new(BodyEffect::bulk_130nm());
            abb.converge(
                &tech,
                &sensor,
                12,
                env,
                GateMismatch {
                    nmos_dvth: Volts(0.018_75),
                    pmos_dvth: Volts(0.018_75),
                },
                8,
            )
        })
    });
    let counter = CounterSensor::full_range();
    g.bench_function("counter_tdc_measure", |b| {
        b.iter(|| counter.measure(&tech, black_box(Volts(0.22)), env, GateMismatch::NOMINAL))
    });
    let vernier = VernierTdc::fine_grained();
    g.bench_function("vernier_convert", |b| {
        b.iter(|| {
            vernier.convert(
                &tech,
                Volts(0.6),
                env,
                GateMismatch::NOMINAL,
                black_box(Seconds::from_nanos(2.0)),
            )
        })
    });
    g.bench_function("yield_study_100_dies", |b| {
        use subvt_core::study::StudyConfig;
        use subvt_core::yield_study::YieldSpec;
        use subvt_device::units::{Hertz, Joules};
        use subvt_exec::ExecConfig;
        let spec = YieldSpec {
            min_rate: Hertz(110e3),
            max_energy_per_op: Joules::from_femtos(2.9),
        };
        let study = StudyConfig::new(100, 1)
            .tech(tech.clone())
            .env(env)
            .spec(spec)
            .exec(ExecConfig::from_env());
        b.iter(|| study.run())
    });
    g.bench_function("drift_run_200_cycles", |b| {
        use subvt_core::controller::{
            AdaptiveController, ControllerConfig, SupplyKind, SupplyPolicy,
        };
        use subvt_core::drift::{run_with_drift, DriftSchedule};
        use subvt_core::experiment::design_rate_controller;
        use subvt_loads::ring_oscillator::RingOscillator;
        use subvt_loads::workload::{WorkloadPattern, WorkloadSource};
        let rate = design_rate_controller(&tech, env).unwrap();
        b.iter(|| {
            let mut c = AdaptiveController::new(
                tech.clone(),
                RingOscillator::paper_circuit(),
                rate.clone(),
                env,
                env,
                GateMismatch::NOMINAL,
                SupplyPolicy::AdaptiveCompensated,
                SupplyKind::Ideal,
                ControllerConfig::default(),
            );
            let schedule = DriftSchedule::heat_ramp(40);
            let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 0 });
            let mut rng = subvt_rng::StdRng::seed_from_u64(0);
            run_with_drift(&mut c, &schedule, &mut wl, 200, &mut rng)
        })
    });
    g.finish();
}

subvt_testkit::bench_main!(bench);
