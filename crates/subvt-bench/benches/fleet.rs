//! Fleet-scale throughput of the streaming summary engine.
//!
//! Three questions, one report:
//!
//! * `summary_batchN` — does the structure-of-arrays lane width matter?
//!   Serial runs at batch 1 (scalar shape), a mid-size lane, and the
//!   default, all bit-identical by the equivalence suite, so the legs
//!   isolate pure batching cost/benefit.
//! * `summary_jobsN` — does the chunk scheduler scale the streaming
//!   path? Same dies, 1/2/4 workers.
//! * `summary_<n>_dies` — the headline: one full million-die summary
//!   study (10⁴ in quick mode), timed once via `bench_once`, with its
//!   computed yields echoed so the report doubles as a results record.
//!
//! On a host with ≥ 4 cores (and outside quick mode) the bench
//! *asserts* the 4-worker leg beats 1 worker by ≥ 1.5× — CI's
//! multi-core runners enforce the scaling claim; a 1-core container
//! only records honest numbers (its `machine.cores` block says so).

use subvt_core::study::{StudyConfig, DEFAULT_BATCH};
use subvt_exec::ExecConfig;
use subvt_testkit::bench::Timer;

/// Large enough that per-chunk work dwarfs worker spawn cost
/// (`chunk_len(1024) = 16` dies per commit), small enough to sample.
const DIES: usize = 1024;
const SEED: u64 = 2009;

fn config(dies: usize) -> StudyConfig<'static> {
    StudyConfig::new(dies, SEED)
}

fn bench(c: &mut Timer) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let quick = c.quick();

    let mut g = c.benchmark_group("fleet");
    g.sample_size(10);

    for batch in [1usize, 16, DEFAULT_BATCH] {
        g.bench_function(&format!("summary_batch{batch}"), |b| {
            b.iter(|| {
                config(DIES)
                    .batch(batch)
                    .exec(ExecConfig::serial())
                    .run_summary()
            })
        });
    }

    for jobs in [1usize, 2, 4] {
        g.bench_function(&format!("summary_jobs{jobs}"), |b| {
            b.iter(|| config(DIES).exec(ExecConfig::with_jobs(jobs)).run_summary())
        });
    }

    if !quick && cores >= 4 {
        let t1 = g.median_ns("summary_jobs1").expect("jobs1 leg ran");
        let t4 = g.median_ns("summary_jobs4").expect("jobs4 leg ran");
        let speedup = t1 / t4;
        println!("fleet speedup jobs1/jobs4 = {speedup:.2}x on {cores} cores");
        assert!(
            speedup > 1.5,
            "4 workers must beat 1 worker by > 1.5x on a {cores}-core host, got {speedup:.2}x"
        );
    }

    // The headline run: a million dies streamed through the batched
    // summary path at full parallelism, timed once. Quick mode keeps
    // the smoke run to 10⁴ dies so `cargo test` stays fast.
    let mega = if quick { 10_000 } else { 1_000_000 };
    let summary = g.bench_once(&format!("summary_{mega}_dies"), || {
        config(mega)
            .exec(ExecConfig::with_jobs(cores))
            .run_summary()
    });
    assert_eq!(summary.dies, mega as u64, "the mega study must complete");
    println!(
        "fleet mega study: {} dies, fixed yield {:.4}, adaptive yield {:.4}, dithered yield {:.4}",
        summary.dies,
        summary.fixed_yield(),
        summary.adaptive_yield(),
        summary.dithered_yield(),
    );
    g.finish();

    println!("fleet ran on a machine with {cores} core(s)");
}

subvt_testkit::bench_main!(bench);
