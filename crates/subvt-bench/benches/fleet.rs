//! Fleet-scale throughput of the streaming summary engine.
//!
//! Three questions, one report:
//!
//! * `summary_batchN` — does the structure-of-arrays lane width matter?
//!   Serial runs at batch 1 (scalar shape), a mid-size lane, and the
//!   default, all bit-identical by the equivalence suite, so the legs
//!   isolate pure batching cost/benefit.
//! * `summary_jobsN` — does the chunk scheduler scale the streaming
//!   path? Same dies, 1/2/4 workers.
//! * `summary_<n>_dies` — the headline: one full million-die summary
//!   study (10⁴ in quick mode), timed once via `bench_once`, with its
//!   computed yields echoed so the report doubles as a results record.
//!
//! Every leg carries a `dies/s` throughput figure (`items_per_sec` in
//! the report), and the mega leg's per-phase wall-time profile (die
//! draw / fixed lane / word settle / adaptive lanes / dither settle)
//! is printed and dumped to `PROFILE_fleet.txt` next to the report, so
//! a single bench run shows where the hot path spends its time.
//!
//! On a host with ≥ 4 cores (and outside quick mode) the bench
//! *asserts* two claims:
//!
//! * the 4-worker leg beats 1 worker by ≥ 1.5× — CI's multi-core
//!   runners enforce the scaling claim;
//! * mega-leg throughput stays within 0.5× of the committed baseline
//!   in `docs/results/BENCH_fleet.json` — the perf-regression gate.
//!
//! A 1-core container only records honest numbers (its
//! `machine.cores` block says so).

use subvt_core::matrix::{CellSummary, MatrixCell, StudyMatrix};
use subvt_core::study::{FaultPlan, StudyConfig, SupplyBackendKind, DEFAULT_BATCH};
use subvt_core::PhaseProfile;
use subvt_device::corner::ProcessCorner;
use subvt_device::mosfet::Environment;
use subvt_exec::ExecConfig;
use subvt_testkit::bench::Timer;

/// Large enough that per-chunk work dwarfs worker spawn cost
/// (`chunk_len(1024) = 16` dies per commit), small enough to sample.
const DIES: usize = 1024;
const SEED: u64 = 2009;

fn config(dies: usize) -> StudyConfig<'static> {
    StudyConfig::new(dies, SEED)
}

/// The committed baseline report, found by walking up from the bench
/// cwd (the package root) to the repo root. `None` outside a checkout.
fn committed_baseline() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join("docs/results/BENCH_fleet.json");
        if candidate.is_file() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Pulls `median_ns` for one benchmark out of a committed
/// `subvt-bench-v*` report without a JSON parser: the writer puts one
/// record per line, so scan for the name and read the field after it.
fn baseline_median_ns(json: &str, bench_name: &str) -> Option<f64> {
    let line = json
        .lines()
        .find(|l| l.contains(&format!("\"name\": \"{bench_name}\"")))?;
    let tail = line.split("\"median_ns\": ").nth(1)?;
    tail.split(',')
        .next()?
        .trim_end_matches('}')
        .trim()
        .parse()
        .ok()
}

fn bench(c: &mut Timer) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let quick = c.quick();
    let profile_path = c.out_dir().join("PROFILE_fleet.txt");

    let mut g = c.benchmark_group("fleet");
    g.sample_size(10);
    g.throughput(DIES as f64);

    for batch in [1usize, 16, DEFAULT_BATCH] {
        g.bench_function(&format!("summary_batch{batch}"), |b| {
            b.iter(|| {
                config(DIES)
                    .batch(batch)
                    .exec(ExecConfig::serial())
                    .run_summary()
            })
        });
    }

    for jobs in [1usize, 2, 4] {
        g.bench_function(&format!("summary_jobs{jobs}"), |b| {
            b.iter(|| config(DIES).exec(ExecConfig::with_jobs(jobs)).run_summary())
        });
    }

    if !quick && cores >= 4 {
        let t1 = g.median_ns("summary_jobs1").expect("jobs1 leg ran");
        let t4 = g.median_ns("summary_jobs4").expect("jobs4 leg ran");
        let speedup = t1 / t4;
        println!("fleet speedup jobs1/jobs4 = {speedup:.2}x on {cores} cores");
        assert!(
            speedup > 1.5,
            "4 workers must beat 1 worker by > 1.5x on a {cores}-core host, got {speedup:.2}x"
        );
    }

    // The headline run: a million dies streamed through the batched
    // summary path at full parallelism, timed once. Quick mode keeps
    // the smoke run to 10⁴ dies so `cargo test` stays fast.
    let mega = if quick { 10_000 } else { 1_000_000 };
    g.throughput(mega as f64);
    let mega_name = format!("summary_{mega}_dies");
    let profile_before = PhaseProfile::snapshot();
    let summary = g.bench_once(&mega_name, || {
        config(mega)
            .exec(ExecConfig::with_jobs(cores))
            .run_summary()
    });
    let profile = PhaseProfile::snapshot().since(&profile_before);
    assert_eq!(summary.dies, mega as u64, "the mega study must complete");
    println!(
        "fleet mega study: {} dies, fixed yield {:.4}, adaptive yield {:.4}, dithered yield {:.4}",
        summary.dies,
        summary.fixed_yield(),
        summary.adaptive_yield(),
        summary.dithered_yield(),
    );
    println!("{profile}");
    let profile_dump =
        format!("fleet mega leg ({mega} dies, {cores} core(s), quick={quick})\n{profile}\n");
    if let Some(parent) = profile_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&profile_path, profile_dump) {
        Ok(()) => println!("fleet phase profile written to {}", profile_path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", profile_path.display()),
    }

    // Perf-regression gate: compare mega-leg throughput against the
    // committed baseline. Dormant in quick mode and on small runners,
    // where the timing would gate on scheduler noise; the 0.5×
    // tolerance absorbs runner-to-runner variance while still
    // catching a real hot-path regression. A missing, unreadable or
    // schema-drifted baseline only *warns* — the gate exists to catch
    // code regressions, and failing the whole bench because a fresh
    // checkout (or a renamed leg) has no matching record would turn a
    // bookkeeping gap into a spurious red build.
    if !quick && cores >= 4 {
        let mega_ns = g.median_ns(&mega_name).expect("mega leg ran");
        match committed_baseline() {
            None => eprintln!(
                "warning: fleet perf gate skipped — no committed \
                 docs/results/BENCH_fleet.json found above the bench cwd"
            ),
            Some(path) => match std::fs::read_to_string(&path) {
                Err(e) => eprintln!(
                    "warning: fleet perf gate skipped — could not read {}: {e}",
                    path.display()
                ),
                Ok(json) => match baseline_median_ns(&json, &mega_name) {
                    None => eprintln!(
                        "warning: fleet perf gate skipped — {} has no `{mega_name}` \
                         record (schema drift or a stale baseline); regenerate it \
                         with `cargo bench --bench fleet`",
                        path.display()
                    ),
                    Some(base_ns) => {
                        let ratio = base_ns / mega_ns;
                        println!(
                            "fleet perf gate: mega leg {:.2}x committed baseline \
                             ({:.2}s vs {:.2}s)",
                            ratio,
                            mega_ns / 1e9,
                            base_ns / 1e9,
                        );
                        assert!(
                            ratio >= 0.5,
                            "fleet mega leg regressed below 0.5x the committed baseline: \
                             {:.2}s vs {:.2}s committed ({ratio:.2}x)",
                            mega_ns / 1e9,
                            base_ns / 1e9,
                        );
                    }
                },
            },
        }
    }
    g.finish();

    println!("fleet ran on a machine with {cores} core(s)");
}

/// The 18 supply shoot-out cells (3 backends × 3 corners × {clean,
/// faulted at the mid rate}) — the same grid `exp-shootout` and
/// `subvt matrix` score.
fn shootout_cells() -> Vec<MatrixCell> {
    let mut cells = Vec::new();
    for supply in [
        SupplyBackendKind::Buck,
        SupplyBackendKind::Dldo,
        SupplyBackendKind::Dlr,
    ] {
        for corner in [ProcessCorner::Tt, ProcessCorner::Ss, ProcessCorner::Ff] {
            for faults in [None, Some(FaultPlan::uniform(0.02))] {
                cells.push(MatrixCell {
                    supply,
                    env: Environment::at_corner(corner),
                    faults,
                });
            }
        }
    }
    cells
}

/// The fused study-matrix leg: the 18 shoot-out cells scored two ways
/// over the same die population — one standalone study per cell (the
/// pre-matrix shape) vs one fused [`StudyMatrix`] run that draws and
/// device-evaluates each (corner, die) once and folds every compatible
/// cell from the shared lanes. Both legs run serial, so the ratio is a
/// pure shared-work figure, not a scheduling artifact, and the
/// per-phase profile (with its `shared draw` counter) is dumped to
/// `PROFILE_matrix.txt` so the saving is attributable, not asserted on
/// faith. Outside quick mode the bench asserts the fused engine's
/// headline claim: ≥ 2.5× over per-cell.
fn matrix_bench(c: &mut Timer) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let quick = c.quick();
    let profile_path = c.out_dir().join("PROFILE_matrix.txt");
    let dies = if quick { 32 } else { 256 };
    let cells = shootout_cells();

    let mut g = c.benchmark_group("matrix");
    g.throughput((dies * cells.len()) as f64);

    let per_cell = g.bench_once("per_cell_18", || {
        cells
            .iter()
            .map(|cell| {
                let cfg = StudyConfig::new(dies, SEED)
                    .supply_backend(cell.supply)
                    .env(cell.env)
                    .exec(ExecConfig::serial());
                match cell.faults {
                    None => CellSummary::Yield(cfg.run_summary()),
                    Some(plan) => CellSummary::Faults(cfg.faults(plan).run_faults()),
                }
            })
            .collect::<Vec<_>>()
    });

    let profile_before = PhaseProfile::snapshot();
    let fused = g.bench_once("fused_18", || {
        cells
            .iter()
            .fold(
                StudyMatrix::new(StudyConfig::new(dies, SEED).exec(ExecConfig::serial())),
                |m, cell| m.cell(cell.supply, cell.env, cell.faults),
            )
            .run()
    });
    let profile = PhaseProfile::snapshot().since(&profile_before);

    // The bench doubles as an equivalence check at scale: the fused
    // engine must reproduce the per-cell studies exactly.
    assert_eq!(
        fused, per_cell,
        "the fused matrix diverged from the per-cell studies"
    );

    let per_ns = g.median_ns("per_cell_18").expect("per-cell leg ran");
    let fused_ns = g.median_ns("fused_18").expect("fused leg ran");
    let speedup = per_ns / fused_ns;
    println!(
        "matrix speedup fused/per-cell = {speedup:.2}x ({:.3}s vs {:.3}s, \
         {dies} dies x {} cells, serial)",
        fused_ns / 1e9,
        per_ns / 1e9,
        cells.len(),
    );
    println!("{profile}");
    let dump = format!(
        "matrix fused leg ({dies} dies x {} cells, serial, {cores} core(s), \
         quick={quick})\nspeedup fused/per-cell = {speedup:.2}x\n{profile}\n",
        cells.len(),
    );
    if let Some(parent) = profile_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&profile_path, dump) {
        Ok(()) => println!("matrix phase profile written to {}", profile_path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", profile_path.display()),
    }

    if !quick {
        assert!(
            speedup >= 2.5,
            "the fused matrix must beat 18 per-cell studies by >= 2.5x, got {speedup:.2}x"
        );
    }
    g.finish();
}

subvt_testkit::bench_main!(bench, matrix_bench);
