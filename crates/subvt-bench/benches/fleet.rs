//! Fleet-scale throughput of the streaming summary engine.
//!
//! Three questions, one report:
//!
//! * `summary_batchN` — does the structure-of-arrays lane width matter?
//!   Serial runs at batch 1 (scalar shape), a mid-size lane, and the
//!   default, all bit-identical by the equivalence suite, so the legs
//!   isolate pure batching cost/benefit.
//! * `summary_jobsN` — does the chunk scheduler scale the streaming
//!   path? Same dies, 1/2/4 workers.
//! * `summary_<n>_dies` — the headline: one full million-die summary
//!   study (10⁴ in quick mode), timed once via `bench_once`, with its
//!   computed yields echoed so the report doubles as a results record.
//!
//! Every leg carries a `dies/s` throughput figure (`items_per_sec` in
//! the report), and the mega leg's per-phase wall-time profile (die
//! draw / fixed lane / word settle / adaptive lanes / dither settle)
//! is printed and dumped to `PROFILE_fleet.txt` next to the report, so
//! a single bench run shows where the hot path spends its time.
//!
//! On a host with ≥ 4 cores (and outside quick mode) the bench
//! *asserts* two claims:
//!
//! * the 4-worker leg beats 1 worker by ≥ 1.5× — CI's multi-core
//!   runners enforce the scaling claim;
//! * mega-leg throughput stays within 0.5× of the committed baseline
//!   in `docs/results/BENCH_fleet.json` — the perf-regression gate.
//!
//! A 1-core container only records honest numbers (its
//! `machine.cores` block says so).

use subvt_core::study::{StudyConfig, DEFAULT_BATCH};
use subvt_core::PhaseProfile;
use subvt_exec::ExecConfig;
use subvt_testkit::bench::Timer;

/// Large enough that per-chunk work dwarfs worker spawn cost
/// (`chunk_len(1024) = 16` dies per commit), small enough to sample.
const DIES: usize = 1024;
const SEED: u64 = 2009;

fn config(dies: usize) -> StudyConfig<'static> {
    StudyConfig::new(dies, SEED)
}

/// The committed baseline report, found by walking up from the bench
/// cwd (the package root) to the repo root. `None` outside a checkout.
fn committed_baseline() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join("docs/results/BENCH_fleet.json");
        if candidate.is_file() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Pulls `median_ns` for one benchmark out of a committed
/// `subvt-bench-v*` report without a JSON parser: the writer puts one
/// record per line, so scan for the name and read the field after it.
fn baseline_median_ns(json: &str, bench_name: &str) -> Option<f64> {
    let line = json
        .lines()
        .find(|l| l.contains(&format!("\"name\": \"{bench_name}\"")))?;
    let tail = line.split("\"median_ns\": ").nth(1)?;
    tail.split(',')
        .next()?
        .trim_end_matches('}')
        .trim()
        .parse()
        .ok()
}

fn bench(c: &mut Timer) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let quick = c.quick();
    let profile_path = c.out_dir().join("PROFILE_fleet.txt");

    let mut g = c.benchmark_group("fleet");
    g.sample_size(10);
    g.throughput(DIES as f64);

    for batch in [1usize, 16, DEFAULT_BATCH] {
        g.bench_function(&format!("summary_batch{batch}"), |b| {
            b.iter(|| {
                config(DIES)
                    .batch(batch)
                    .exec(ExecConfig::serial())
                    .run_summary()
            })
        });
    }

    for jobs in [1usize, 2, 4] {
        g.bench_function(&format!("summary_jobs{jobs}"), |b| {
            b.iter(|| config(DIES).exec(ExecConfig::with_jobs(jobs)).run_summary())
        });
    }

    if !quick && cores >= 4 {
        let t1 = g.median_ns("summary_jobs1").expect("jobs1 leg ran");
        let t4 = g.median_ns("summary_jobs4").expect("jobs4 leg ran");
        let speedup = t1 / t4;
        println!("fleet speedup jobs1/jobs4 = {speedup:.2}x on {cores} cores");
        assert!(
            speedup > 1.5,
            "4 workers must beat 1 worker by > 1.5x on a {cores}-core host, got {speedup:.2}x"
        );
    }

    // The headline run: a million dies streamed through the batched
    // summary path at full parallelism, timed once. Quick mode keeps
    // the smoke run to 10⁴ dies so `cargo test` stays fast.
    let mega = if quick { 10_000 } else { 1_000_000 };
    g.throughput(mega as f64);
    let mega_name = format!("summary_{mega}_dies");
    let profile_before = PhaseProfile::snapshot();
    let summary = g.bench_once(&mega_name, || {
        config(mega)
            .exec(ExecConfig::with_jobs(cores))
            .run_summary()
    });
    let profile = PhaseProfile::snapshot().since(&profile_before);
    assert_eq!(summary.dies, mega as u64, "the mega study must complete");
    println!(
        "fleet mega study: {} dies, fixed yield {:.4}, adaptive yield {:.4}, dithered yield {:.4}",
        summary.dies,
        summary.fixed_yield(),
        summary.adaptive_yield(),
        summary.dithered_yield(),
    );
    println!("{profile}");
    let profile_dump =
        format!("fleet mega leg ({mega} dies, {cores} core(s), quick={quick})\n{profile}\n");
    if let Some(parent) = profile_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&profile_path, profile_dump) {
        Ok(()) => println!("fleet phase profile written to {}", profile_path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", profile_path.display()),
    }

    // Perf-regression gate: compare mega-leg throughput against the
    // committed baseline. Dormant in quick mode and on small runners,
    // where the timing would gate on scheduler noise; the 0.5×
    // tolerance absorbs runner-to-runner variance while still
    // catching a real hot-path regression.
    if !quick && cores >= 4 {
        let mega_ns = g.median_ns(&mega_name).expect("mega leg ran");
        match committed_baseline()
            .and_then(|p| std::fs::read_to_string(p).ok())
            .and_then(|json| baseline_median_ns(&json, &mega_name))
        {
            Some(base_ns) => {
                let ratio = base_ns / mega_ns;
                println!(
                    "fleet perf gate: mega leg {:.2}x committed baseline ({:.2}s vs {:.2}s)",
                    ratio,
                    mega_ns / 1e9,
                    base_ns / 1e9,
                );
                assert!(
                    ratio >= 0.5,
                    "fleet mega leg regressed below 0.5x the committed baseline: \
                     {:.2}s vs {:.2}s committed ({ratio:.2}x)",
                    mega_ns / 1e9,
                    base_ns / 1e9,
                );
            }
            None => println!("fleet perf gate: no committed baseline for {mega_name} (skipping)"),
        }
    }
    g.finish();

    println!("fleet ran on a machine with {cores} core(s)");
}

subvt_testkit::bench_main!(bench);
