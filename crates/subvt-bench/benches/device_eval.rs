//! Analytic-vs-tabulated device-model throughput and accuracy.
//!
//! Three kinds of records land in `BENCH_device_eval.json`:
//!
//! * raw query throughput — `{analytic,tabulated}_{gate_delay,energy}`
//!   time the same fixed sweep of (gate, Vdd, corner, temperature,
//!   mismatch) points through both evaluators, and
//!   `{analytic,tabulated}_tdc_cell` time the TDC replica cell's fused
//!   inverter+NOR₂ pair query — the yield study's dominant device-model
//!   call, where the tabulated path answers both gates from a single
//!   interpolation. Each pair's ratio is the per-query speedup of the
//!   interpolated surfaces;
//! * end-to-end — `yield_serial_{analytic,tabulated}` run a small
//!   serial yield study through *prebuilt* evaluators (query cost
//!   only), and `table_build` prices the one-off surface construction
//!   the tabulated mode amortises;
//! * markers — zero-cost records whose **names** carry measured
//!   scalars: `max_delay_err_ppm_N` / `max_energy_err_ppm_N` (realised
//!   worst-case relative interpolation error over the sweep, parts per
//!   million), `budget_ppm_N` (the documented accuracy budget), and
//!   `yield_analytic_evals_{analytic,tabulated}_N` (device-model
//!   counter deltas for one 32-die yield study in each mode — the
//!   "≥5× fewer analytic evals" acceptance number; the tabulated study
//!   answers every query by interpolation, so its count is 0).

use subvt_core::study::StudyConfig;
use subvt_device::corner::ProcessCorner;
use subvt_device::delay::GateMismatch;
use subvt_device::energy::CircuitProfile;
use subvt_device::mosfet::Environment;
use subvt_device::tabulate::{
    AnalyticEval, DeviceEval, EvalMode, SharedEval, TabulatedEval, ACCURACY_BUDGET,
};
use subvt_device::technology::{GateKind, Technology};
use subvt_device::units::Volts;
use subvt_device::MetricsSnapshot;
use subvt_exec::ExecConfig;
use subvt_tdc::delay_line::{CellKind, DelayLine};
use subvt_testkit::bench::{black_box, Timer};

/// One delay-query point of the fixed sweep.
type DelayPoint = (GateKind, Volts, Environment, GateMismatch);

/// A deterministic sweep spanning the grid interior: off-node supplies
/// across the full subthreshold bracket, three corners, three
/// temperatures, and asymmetric local mismatch.
fn delay_points() -> Vec<DelayPoint> {
    let mut points = Vec::new();
    let gates = [GateKind::Inverter, GateKind::Nand2, GateKind::Nor2];
    let corners = [ProcessCorner::Tt, ProcessCorner::Ss, ProcessCorner::Ff];
    let temps = [0.0, 25.0, 85.0];
    let mismatches = [
        GateMismatch::NOMINAL,
        GateMismatch {
            nmos_dvth: Volts(0.011),
            pmos_dvth: Volts(-0.007),
        },
    ];
    // 203/19 mV steps are incommensurate with the ~7.9 mV grid pitch,
    // so every query exercises the interpolant, not a stored node.
    let mut mv = 203.0;
    while mv < 620.0 {
        for gate in gates {
            for corner in corners {
                for celsius in temps {
                    for mismatch in mismatches {
                        points.push((
                            gate,
                            Volts::from_millivolts(mv),
                            Environment::at_corner(corner).with_celsius(celsius),
                            mismatch,
                        ));
                    }
                }
            }
        }
        mv += 19.0;
    }
    points
}

/// The energy sweep: the ring-oscillator profile over the same
/// supplies/corners/temperatures.
fn energy_points() -> Vec<(Volts, Environment)> {
    let corners = [ProcessCorner::Tt, ProcessCorner::Ss, ProcessCorner::Ff];
    let mut points = Vec::new();
    let mut mv = 203.0;
    while mv < 620.0 {
        for corner in corners {
            for celsius in [0.0, 25.0, 85.0] {
                points.push((
                    Volts::from_millivolts(mv),
                    Environment::at_corner(corner).with_celsius(celsius),
                ));
            }
        }
        mv += 19.0;
    }
    points
}

fn sweep_delay(eval: &dyn DeviceEval, points: &[DelayPoint]) -> f64 {
    let mut acc = 0.0;
    for &(gate, vdd, env, mismatch) in points {
        acc += eval
            .gate_delay(gate, vdd, env, mismatch, 1.0)
            .expect("in-range sweep")
            .value();
    }
    acc
}

/// The sense hot path: the inverter+NOR₂ replica cell at every
/// (Vdd, env, mismatch) point of the sweep, issued exactly as the
/// variation sensor does it — a per-die mismatched line answering
/// through [`DelayLine::cell_delay_with`]'s fused pair query.
fn sweep_tdc_cell(eval: &dyn DeviceEval, line: &DelayLine, points: &[DelayPoint]) -> f64 {
    let mut acc = 0.0;
    for &(_, vdd, env, mismatch) in points {
        let line = line.clone().with_mismatch(mismatch);
        acc += line
            .cell_delay_with(eval, vdd, env)
            .expect("in-range sweep")
            .value();
    }
    acc
}

fn sweep_energy(
    eval: &dyn DeviceEval,
    profile: &CircuitProfile,
    points: &[(Volts, Environment)],
) -> f64 {
    let mut acc = 0.0;
    for &(vdd, env) in points {
        acc += eval
            .energy(profile, vdd, env)
            .expect("in-range sweep")
            .total()
            .value();
    }
    acc
}

/// Worst-case relative error of the tabulated surfaces against the
/// analytic model over the sweep, in parts per million.
fn measured_errors(
    analytic: &AnalyticEval,
    tabulated: &TabulatedEval,
    profile: &CircuitProfile,
) -> (u64, u64) {
    let mut delay_err: f64 = 0.0;
    for (gate, vdd, env, mismatch) in delay_points() {
        let a = analytic.gate_delay(gate, vdd, env, mismatch, 1.0).unwrap();
        let t = tabulated.gate_delay(gate, vdd, env, mismatch, 1.0).unwrap();
        delay_err = delay_err.max((t.value() - a.value()).abs() / a.value());
    }
    let mut energy_err: f64 = 0.0;
    for (vdd, env) in energy_points() {
        let a = analytic.energy(profile, vdd, env).unwrap().total();
        let t = tabulated.energy(profile, vdd, env).unwrap().total();
        energy_err = energy_err.max((t.value() - a.value()).abs() / a.value());
    }
    (
        (delay_err * 1e6).ceil() as u64,
        (energy_err * 1e6).ceil() as u64,
    )
}

/// One small serial yield study through a prebuilt evaluator.
fn yield_run(eval: &SharedEval) -> f64 {
    StudyConfig::new(32, 5)
        .eval(eval.clone())
        .exec(ExecConfig::serial())
        .run()
        .adaptive_yield()
}

fn bench(c: &mut Timer) {
    let tech = Technology::st_130nm();
    let analytic = AnalyticEval::new(&tech);
    let tabulated = TabulatedEval::new(&tech);
    let analytic_shared: SharedEval = EvalMode::Analytic.build(&tech);
    let tabulated_shared: SharedEval = EvalMode::Tabulated.build(&tech);
    let profile = CircuitProfile::ring_oscillator();
    let line = DelayLine::new(31, CellKind::InvNor);
    let dpoints = delay_points();
    let epoints = energy_points();
    let (delay_ppm, energy_ppm) = measured_errors(&analytic, &tabulated, &profile);

    // Device-model counter deltas of one identical study per mode,
    // measured outside the timed legs so table builds and counter
    // snapshots never pollute the timings.
    let before = MetricsSnapshot::snapshot();
    yield_run(&analytic_shared);
    let analytic_counts = MetricsSnapshot::snapshot().since(&before);
    let before = MetricsSnapshot::snapshot();
    yield_run(&tabulated_shared);
    let tabulated_counts = MetricsSnapshot::snapshot().since(&before);

    let mut g = c.benchmark_group("device_eval");
    g.sample_size(10);

    g.bench_function("analytic_gate_delay", |b| {
        b.iter(|| sweep_delay(&analytic, &dpoints))
    });
    g.bench_function("tabulated_gate_delay", |b| {
        b.iter(|| sweep_delay(&tabulated, &dpoints))
    });
    g.bench_function("analytic_tdc_cell", |b| {
        b.iter(|| sweep_tdc_cell(&analytic, &line, &dpoints))
    });
    g.bench_function("tabulated_tdc_cell", |b| {
        b.iter(|| sweep_tdc_cell(&tabulated, &line, &dpoints))
    });
    g.bench_function("analytic_energy", |b| {
        b.iter(|| sweep_energy(&analytic, &profile, &epoints))
    });
    g.bench_function("tabulated_energy", |b| {
        b.iter(|| sweep_energy(&tabulated, &profile, &epoints))
    });
    g.bench_function("table_build", |b| b.iter(|| TabulatedEval::new(&tech)));
    g.bench_function("yield_serial_analytic", |b| {
        b.iter(|| yield_run(&analytic_shared))
    });
    g.bench_function("yield_serial_tabulated", |b| {
        b.iter(|| yield_run(&tabulated_shared))
    });

    // Metadata markers: measured scalars encoded in the record name.
    for marker in [
        format!("sweep_queries_{}", dpoints.len() + epoints.len()),
        format!("max_delay_err_ppm_{delay_ppm}"),
        format!("max_energy_err_ppm_{energy_ppm}"),
        format!("budget_ppm_{}", (ACCURACY_BUDGET * 1e6) as u64),
        format!(
            "yield_analytic_evals_analytic_{}",
            analytic_counts.analytic_evals()
        ),
        format!(
            "yield_analytic_evals_tabulated_{}",
            tabulated_counts.analytic_evals()
        ),
        format!(
            "yield_interp_hits_tabulated_{}",
            tabulated_counts.interp_hits()
        ),
    ] {
        g.bench_function(&marker, |b| b.iter(|| black_box(0u8)));
    }
    g.finish();

    assert!(
        delay_ppm as f64 <= ACCURACY_BUDGET * 1e6 && energy_ppm as f64 <= ACCURACY_BUDGET * 1e6,
        "interpolation error exceeds the documented budget: \
         delay {delay_ppm} ppm, energy {energy_ppm} ppm"
    );
    println!(
        "device_eval: max interp error delay {delay_ppm} ppm, energy {energy_ppm} ppm \
         (budget {} ppm); yield-study analytic evals {} → {}",
        (ACCURACY_BUDGET * 1e6) as u64,
        analytic_counts.analytic_evals(),
        tabulated_counts.analytic_evals(),
    );
}

subvt_testkit::bench_main!(bench);
