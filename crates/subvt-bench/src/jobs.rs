//! Shared `--jobs` handling for the `exp-*` harness binaries.
//!
//! Every experiment binary accepts the same knob:
//!
//! * `--jobs N` — use exactly N worker threads;
//! * `SUBVT_JOBS=N` — environment fallback when the flag is absent;
//! * neither — all available cores.
//!
//! Thread count never changes results (the `subvt-exec` determinism
//! contract), only wall-clock time, so the flag is safe to tune per
//! machine.

use subvt_core::study::{StudyArgs, SupplyBackendKind};
use subvt_device::tabulate::EvalMode;
use subvt_exec::ExecConfig;

/// The standard harness flags plus the device-evaluation mode.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Worker-thread configuration (`--jobs`/`SUBVT_JOBS`).
    pub cfg: ExecConfig,
    /// Device evaluation mode (`--eval`, default analytic).
    pub eval: EvalMode,
    /// Supply backend (`--supply`, default ideal).
    pub supply: SupplyBackendKind,
    /// The full shared study-flag set (`--dies`, `--seed`, `--solver`,
    /// `--faults`, `--mitigation`, plus the three above) — the same
    /// parser the `subvt` CLI uses, so every harness binary accepts
    /// the same knobs with the same error messages.
    pub study: StudyArgs,
}

/// Parses `args` (without the program name) for the standard harness
/// flags.
///
/// # Errors
///
/// Returns a user-facing message on an unknown flag or a malformed
/// `--jobs` value. `Ok(None)` means `--help` was requested: print
/// `usage` and exit successfully.
pub fn parse_harness_args(args: &[String], usage: &str) -> Result<Option<ExecConfig>, String> {
    Ok(parse_harness_options(args, usage)?.map(|o| o.cfg))
}

/// Parses `args` (without the program name) for the standard harness
/// flags plus `--eval`.
///
/// # Errors
///
/// As [`parse_harness_args`], plus a message on a malformed `--eval`
/// mode.
pub fn parse_harness_options(
    args: &[String],
    usage: &str,
) -> Result<Option<HarnessOptions>, String> {
    let mut study = StudyArgs::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                let _ = usage; // caller prints it
                return Ok(None);
            }
            other => match study.accept(args, i)? {
                Some(consumed) => i += consumed,
                None => return Err(format!("unknown flag `{other}` (try --help)")),
            },
        }
    }
    Ok(Some(HarnessOptions {
        cfg: study.exec(),
        eval: study.eval,
        supply: study.supply,
        study,
    }))
}

/// [`parse_harness_args`] over the process arguments, exiting on
/// `--help` (after printing `usage`) or on a parse error.
pub fn harness_config(usage: &str) -> ExecConfig {
    harness_options(usage).cfg
}

/// [`parse_harness_options`] over the process arguments, exiting on
/// `--help` (after printing `usage`) or on a parse error.
pub fn harness_options(usage: &str) -> HarnessOptions {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_harness_options(&args, usage) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            println!("{usage}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{usage}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn no_flags_resolves_from_env() {
        let cfg = parse_harness_args(&[], "usage").unwrap().unwrap();
        assert!(cfg.jobs() >= 1);
    }

    #[test]
    fn explicit_jobs_wins() {
        let cfg = parse_harness_args(&argv(&["--jobs", "3"]), "usage")
            .unwrap()
            .unwrap();
        assert_eq!(cfg.jobs(), 3);
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(
            parse_harness_args(&argv(&["--help"]), "usage").unwrap(),
            None
        );
        assert_eq!(parse_harness_args(&argv(&["-h"]), "usage").unwrap(), None);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(parse_harness_args(&argv(&["--jobs"]), "u").is_err());
        assert!(parse_harness_args(&argv(&["--jobs", "x"]), "u").is_err());
        assert!(parse_harness_args(&argv(&["--jobs", "0"]), "u").is_err());
        assert!(parse_harness_args(&argv(&["--frob"]), "u").is_err());
        assert!(parse_harness_options(&argv(&["--eval"]), "u").is_err());
        assert!(parse_harness_options(&argv(&["--eval", "magic"]), "u").is_err());
        assert!(parse_harness_options(&argv(&["--supply"]), "u").is_err());
        assert!(parse_harness_options(&argv(&["--supply", "battery"]), "u").is_err());
    }

    #[test]
    fn supply_parses_with_ideal_default() {
        let opts = parse_harness_options(&[], "u").unwrap().unwrap();
        assert_eq!(opts.supply, SupplyBackendKind::Ideal);
        for (raw, kind) in [
            ("buck", SupplyBackendKind::Buck),
            ("switched", SupplyBackendKind::Buck),
            ("dldo", SupplyBackendKind::Dldo),
            ("dlr", SupplyBackendKind::Dlr),
        ] {
            let opts = parse_harness_options(&argv(&["--supply", raw]), "u")
                .unwrap()
                .unwrap();
            assert_eq!(opts.supply, kind, "--supply {raw}");
        }
    }

    #[test]
    fn shared_study_flags_parse_through_the_harness() {
        // One parser for the CLI and every harness binary: the full
        // StudyArgs flag set is accepted, new flags included.
        let opts = parse_harness_options(
            &argv(&[
                "--dies",
                "100",
                "--seed",
                "9",
                "--faults",
                "0.02",
                "--mitigation",
                "off",
                "--solver",
                "rk4",
            ]),
            "u",
        )
        .unwrap()
        .unwrap();
        assert_eq!(opts.study.dies, 100);
        assert_eq!(opts.study.seed, 9);
        assert_eq!(opts.study.faults, Some(0.02));
        assert!(!opts.study.mitigation);
        let plan = opts.study.fault_plan().unwrap();
        assert_eq!(plan.tdc_rate, 0.02);
        assert!(!plan.mitigation);
        assert!(parse_harness_options(&argv(&["--faults", "1.5"]), "u").is_err());
        assert!(parse_harness_options(&argv(&["--mitigation", "maybe"]), "u").is_err());
    }

    #[test]
    fn eval_mode_parses_with_analytic_default() {
        let opts = parse_harness_options(&[], "u").unwrap().unwrap();
        assert_eq!(opts.eval, EvalMode::Analytic);
        let opts = parse_harness_options(&argv(&["--eval", "tabulated", "--jobs", "2"]), "u")
            .unwrap()
            .unwrap();
        assert_eq!(opts.eval, EvalMode::Tabulated);
        assert_eq!(opts.cfg.jobs(), 2);
        let opts = parse_harness_options(&argv(&["--eval", "tab"]), "u")
            .unwrap()
            .unwrap();
        assert_eq!(opts.eval, EvalMode::Tabulated);
    }
}
