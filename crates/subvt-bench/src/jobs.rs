//! Shared `--jobs` handling for the `exp-*` harness binaries.
//!
//! Every experiment binary accepts the same knob:
//!
//! * `--jobs N` — use exactly N worker threads;
//! * `SUBVT_JOBS=N` — environment fallback when the flag is absent;
//! * neither — all available cores.
//!
//! Thread count never changes results (the `subvt-exec` determinism
//! contract), only wall-clock time, so the flag is safe to tune per
//! machine.

use subvt_core::controller::SupplyKind;
use subvt_device::tabulate::EvalMode;
use subvt_exec::ExecConfig;

/// The `--jobs`/`SUBVT_JOBS` help paragraph shared by the harness
/// binaries' `--help` output.
pub const JOBS_HELP: &str = "\
    --jobs N    worker threads for Monte-Carlo/sweep fan-out
                (default: SUBVT_JOBS env var, else all cores;
                 results are bit-identical for any N)";

/// The `--eval` help paragraph for harness binaries that support the
/// tabulated device surfaces.
pub const EVAL_HELP: &str = "\
    --eval M    device evaluation mode: `analytic` (exact model, the
                default) or `tabulated` (precomputed monotone-cubic
                surfaces; ≤1% accuracy budget, much faster MC)";

/// The `--supply` help paragraph for harness binaries that can score
/// against the switched converter's real operating points.
pub const SUPPLY_HELP: &str = "\
    --supply S  supply model: `ideal` (exact word voltages, the
                default) or `switched` (the converter's per-word droop
                and ripple; rate checked at the ripple trough, energy
                at the cycle mean)";

/// The standard harness flags plus the device-evaluation mode.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Worker-thread configuration (`--jobs`/`SUBVT_JOBS`).
    pub cfg: ExecConfig,
    /// Device evaluation mode (`--eval`, default analytic).
    pub eval: EvalMode,
    /// Supply model (`--supply`, default ideal).
    pub supply: SupplyKind,
}

/// Parses `args` (without the program name) for the standard harness
/// flags.
///
/// # Errors
///
/// Returns a user-facing message on an unknown flag or a malformed
/// `--jobs` value. `Ok(None)` means `--help` was requested: print
/// `usage` and exit successfully.
pub fn parse_harness_args(args: &[String], usage: &str) -> Result<Option<ExecConfig>, String> {
    Ok(parse_harness_options(args, usage)?.map(|o| o.cfg))
}

/// Parses `args` (without the program name) for the standard harness
/// flags plus `--eval`.
///
/// # Errors
///
/// As [`parse_harness_args`], plus a message on a malformed `--eval`
/// mode.
pub fn parse_harness_options(
    args: &[String],
    usage: &str,
) -> Result<Option<HarnessOptions>, String> {
    let mut jobs: Option<usize> = None;
    let mut eval = EvalMode::Analytic;
    let mut supply = SupplyKind::Ideal;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                let _ = usage; // caller prints it
                return Ok(None);
            }
            "--jobs" => {
                let raw = args
                    .get(i + 1)
                    .ok_or_else(|| "--jobs needs a value".to_owned())?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("invalid value `{raw}` for --jobs"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
                jobs = Some(n);
                i += 2;
            }
            "--eval" => {
                let raw = args
                    .get(i + 1)
                    .ok_or_else(|| "--eval needs a value".to_owned())?;
                eval = raw.parse().map_err(|e| format!("{e}"))?;
                i += 2;
            }
            "--supply" => {
                let raw = args
                    .get(i + 1)
                    .ok_or_else(|| "--supply needs a value".to_owned())?;
                supply = match raw.as_str() {
                    "ideal" => SupplyKind::Ideal,
                    "switched" => SupplyKind::Switched,
                    other => return Err(format!("unknown supply `{other}` (ideal|switched)")),
                };
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(Some(HarnessOptions {
        cfg: ExecConfig::from_option(jobs),
        eval,
        supply,
    }))
}

/// [`parse_harness_args`] over the process arguments, exiting on
/// `--help` (after printing `usage`) or on a parse error.
pub fn harness_config(usage: &str) -> ExecConfig {
    harness_options(usage).cfg
}

/// [`parse_harness_options`] over the process arguments, exiting on
/// `--help` (after printing `usage`) or on a parse error.
pub fn harness_options(usage: &str) -> HarnessOptions {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_harness_options(&args, usage) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            println!("{usage}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{usage}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn no_flags_resolves_from_env() {
        let cfg = parse_harness_args(&[], "usage").unwrap().unwrap();
        assert!(cfg.jobs() >= 1);
    }

    #[test]
    fn explicit_jobs_wins() {
        let cfg = parse_harness_args(&argv(&["--jobs", "3"]), "usage")
            .unwrap()
            .unwrap();
        assert_eq!(cfg.jobs(), 3);
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(
            parse_harness_args(&argv(&["--help"]), "usage").unwrap(),
            None
        );
        assert_eq!(parse_harness_args(&argv(&["-h"]), "usage").unwrap(), None);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(parse_harness_args(&argv(&["--jobs"]), "u").is_err());
        assert!(parse_harness_args(&argv(&["--jobs", "x"]), "u").is_err());
        assert!(parse_harness_args(&argv(&["--jobs", "0"]), "u").is_err());
        assert!(parse_harness_args(&argv(&["--frob"]), "u").is_err());
        assert!(parse_harness_options(&argv(&["--eval"]), "u").is_err());
        assert!(parse_harness_options(&argv(&["--eval", "magic"]), "u").is_err());
        assert!(parse_harness_options(&argv(&["--supply"]), "u").is_err());
        assert!(parse_harness_options(&argv(&["--supply", "battery"]), "u").is_err());
    }

    #[test]
    fn supply_parses_with_ideal_default() {
        let opts = parse_harness_options(&[], "u").unwrap().unwrap();
        assert_eq!(opts.supply, SupplyKind::Ideal);
        let opts = parse_harness_options(&argv(&["--supply", "switched"]), "u")
            .unwrap()
            .unwrap();
        assert_eq!(opts.supply, SupplyKind::Switched);
    }

    #[test]
    fn eval_mode_parses_with_analytic_default() {
        let opts = parse_harness_options(&[], "u").unwrap().unwrap();
        assert_eq!(opts.eval, EvalMode::Analytic);
        let opts = parse_harness_options(&argv(&["--eval", "tabulated", "--jobs", "2"]), "u")
            .unwrap()
            .unwrap();
        assert_eq!(opts.eval, EvalMode::Tabulated);
        assert_eq!(opts.cfg.jobs(), 2);
        let opts = parse_harness_options(&argv(&["--eval", "tab"]), "u")
            .unwrap()
            .unwrap();
        assert_eq!(opts.eval, EvalMode::Tabulated);
    }
}
