//! The paper's stated future work: "investigate the energy consumption
//! of the proposed adaptive controller" — net savings after charging
//! the controller's own blocks.
//!
//! Accounting follows the paper's own argument: "the circuit with
//! voltage scaling capability would have an embedded DC-DC converter
//! which will be reused for the proposed controller reducing its area
//! overhead" — so the PWM/converter is *reused infrastructure* and the
//! controller's marginal cost is the TDC measurement plus the control
//! logic, duty-cycled at the sensing interval.

use subvt_bench::report::{f, pct, Table};
use subvt_core::controller::{AdaptiveController, ControllerConfig, SupplyKind, SupplyPolicy};
use subvt_core::experiment::design_rate_controller;
use subvt_core::overhead::{overhead_per_cycle, ControllerInventory, NetSavings};
use subvt_core::RateController;
use subvt_device::corner::ProcessCorner;
use subvt_device::delay::GateMismatch;
use subvt_device::delay::{GateTiming, SupplyRangeError};
use subvt_device::energy::CircuitProfile;
use subvt_device::mosfet::Environment;
use subvt_device::technology::GateKind;
use subvt_device::technology::Technology;
use subvt_device::units::Seconds as DevSeconds;
use subvt_device::units::{Hertz, Joules, Seconds, Volts};
use subvt_loads::fir::FirFilter;
use subvt_loads::load::CircuitLoad;
use subvt_loads::ring_oscillator::RingOscillator;
use subvt_loads::workload::{WorkloadPattern, WorkloadSource};
use subvt_rng::StdRng;

/// A synthetic multi-kilogate DSP subsystem: twenty FIR-sized blocks.
#[derive(Debug, Clone)]
struct DspSubsystem {
    profile: CircuitProfile,
}

impl DspSubsystem {
    fn new() -> DspSubsystem {
        let mut profile = FirFilter::lowpass_9tap().profile().clone();
        profile.name = "dsp-50kgate".into();
        profile.gates *= 20.0;
        DspSubsystem { profile }
    }
}

impl CircuitLoad for DspSubsystem {
    fn name(&self) -> &str {
        &self.profile.name
    }
    fn profile(&self) -> &CircuitProfile {
        &self.profile
    }
    fn critical_path(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<DevSeconds, SupplyRangeError> {
        let t = GateTiming::new(tech).gate_delay_with(GateKind::Nand2, vdd, env, mismatch, 1.0)?;
        Ok(t * self.profile.depth)
    }
}

fn run_load<L: CircuitLoad + Clone>(
    load: &L,
    rate: RateController,
    policy: SupplyPolicy,
    cycles: u64,
) -> Joules {
    let tech = Technology::st_130nm();
    let mut c = AdaptiveController::new(
        tech,
        load.clone(),
        rate,
        Environment::nominal(),
        Environment::at_corner(ProcessCorner::Ss),
        GateMismatch::NOMINAL,
        policy,
        SupplyKind::Ideal,
        ControllerConfig::default(),
    );
    let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 1 });
    let mut rng = StdRng::seed_from_u64(11);
    c.run(&mut wl, cycles, &mut rng).account.total()
}

fn main() {
    println!("Controller self-energy (the paper's future-work experiment)\n");

    let tech = Technology::st_130nm();
    let b = overhead_per_cycle(
        &tech,
        ControllerInventory::default(),
        Volts(0.20625),
        Hertz::from_megahertz(64.0),
        Seconds::from_micros(1.0),
    );
    let mut t = Table::new(
        "Controller energy per 1 µs system cycle (TDC line at 206 mV, logic at 1.2 V)",
        &["block", "energy (fJ)", "reused infrastructure?"],
    );
    t.row(&[
        "TDC + quantizer".into(),
        f(b.tdc.femtos(), 1),
        "no — marginal cost".into(),
    ]);
    t.row(&[
        "PWM @64 MHz".into(),
        f(b.pwm.femtos(), 1),
        "yes — the DC-DC exists anyway (paper Sec. IV)".into(),
    ]);
    t.row(&[
        "control/FIFO/LUT".into(),
        f(b.control.femtos(), 1),
        "no — marginal cost".into(),
    ]);
    println!("{}", t.render());

    // Marginal cost per sensing event.
    let per_measurement = b.tdc + b.control;
    println!(
        "Marginal controller cost: {:.0} fJ per TDC measurement (dominated by the\n64 quantizer flip-flops + encoder on the 1.2 V rail).\n",
        per_measurement.femtos()
    );

    let cycles = 2_000u64;
    let fir = FirFilter::lowpass_9tap();
    let fir_rate = RateController::design(
        &tech,
        &fir,
        Environment::nominal(),
        &[(8, Hertz(200e3)), (32, Hertz(2e6))],
    )
    .expect("designable");
    let ring = RingOscillator::paper_circuit();
    let ring_rate = design_rate_controller(&tech, Environment::nominal()).expect("designable");

    let mut nt = Table::new(
        "Net savings vs fixed supply after charging TDC+control (slow die, 1 item/cycle, 2 ms)",
        &[
            "load",
            "sense every",
            "gross savings",
            "overhead/load E",
            "net savings",
            "worthwhile",
        ],
    );
    let loads: Vec<(&str, Joules, Joules)> = vec![
        (
            "64-gate ring probe",
            run_load(
                &ring,
                ring_rate.clone(),
                SupplyPolicy::AdaptiveCompensated,
                cycles,
            ),
            run_load(&ring, ring_rate, SupplyPolicy::FixedWord(22), cycles),
        ),
        (
            "9-tap FIR (2.4 kgate)",
            run_load(
                &fir,
                fir_rate.clone(),
                SupplyPolicy::AdaptiveCompensated,
                cycles,
            ),
            run_load(&fir, fir_rate.clone(), SupplyPolicy::FixedWord(24), cycles),
        ),
        {
            let dsp = DspSubsystem::new();
            (
                "DSP subsystem (48 kgate)",
                run_load(
                    &dsp,
                    fir_rate.clone(),
                    SupplyPolicy::AdaptiveCompensated,
                    cycles,
                ),
                run_load(&dsp, fir_rate, SupplyPolicy::FixedWord(24), cycles),
            )
        },
    ];
    for (name, controlled, baseline) in loads {
        for interval in [1u64, 10, 100] {
            let overhead = Joules(per_measurement.value() * (cycles as f64) / interval as f64);
            let net = NetSavings {
                controlled,
                baseline,
                overhead,
            };
            nt.row(&[
                name.to_owned(),
                format!("{interval} cycles"),
                pct(net.gross()),
                pct(overhead.value() / controlled.value()),
                pct(net.net()),
                if net.worthwhile() {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
    println!("{}", nt.render());
    println!(
        "Finding: against the paper's 64-gate ring-oscillator *probe* the sensing\n\
         cost swamps the load energy at any sensing rate; the 2.4 kgate FIR pays\n\
         off once sensing is duty-cycled to every ~10 system cycles; a ~50 kgate\n\
         subsystem affords sensing every cycle. The paper's reuse argument covers\n\
         the converter, but the TDC quantizer (64 flip-flops at 1.2 V) is the true\n\
         marginal cost a designer must budget."
    );
}
