//! Regenerates the paper's Fig. 6: the adaptive controller stepping the
//! switched DC-DC output through 356 mV → 225 mV → 881 mV.

use subvt_bench::report::{f, Table};
use subvt_bench::savings::fig6_transient;

fn main() {
    println!("Fig. 6 — Adaptive controller generating different Vdd (switched converter)\n");

    let result = fig6_transient();
    let mut t = Table::new(
        "Voltage steps (paper: initial 350 mV, down to 220 mV, up to 880 mV)",
        &[
            "word",
            "target (mV)",
            "settled (mV)",
            "error (mV)",
            "ripple (mV)",
            "settling (µs)",
        ],
    );
    for seg in &result.segments {
        t.row(&[
            seg.word.to_string(),
            f(seg.target.millivolts(), 2),
            f(seg.settled.millivolts(), 2),
            f(seg.settled.millivolts() - seg.target.millivolts(), 2),
            f(seg.ripple.millivolts(), 2),
            seg.settling_cycles.map_or("-".into(), |c| c.to_string()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Trace: {} samples over {}; converter resolution 18.75 mV",
        result.trace.len(),
        result.segments.last().map(|s| s.end).unwrap_or_default()
    );
    println!(
        "Solver: closed-form piecewise-LTI (RK4 reference agrees within \
         0.1 mV settled / 5% ripple; see DESIGN.md)"
    );
}
