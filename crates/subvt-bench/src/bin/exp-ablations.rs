//! Ablation studies over the paper's design choices: code width,
//! Ref_clk strategy, pulse-shrink β, FIFO depth.
//!
//! The seven tables are independent, so they are rendered via a coarse
//! `subvt-exec` fan-out (one chunk per table) and printed in their
//! fixed order afterwards.

use subvt_bench::ablation::{ablation_bits, ablation_fifo, ablation_refclk, ablation_shrink};
use subvt_bench::jobs::harness_config;
use subvt_bench::report::{f, pct, Table};
use subvt_core::study::STUDY_HELP;
use subvt_exec::par_map_indexed;

fn usage() -> String {
    format!(
        "exp-ablations — design-choice ablation tables\n\n\
         USAGE: exp-ablations [study flags]\n\n{STUDY_HELP}"
    )
}

fn bits_table() -> String {
    let mut bits = Table::new(
        "Code width (paper: 6 bits is \"the best resolution and best tradeoffs\")",
        &[
            "bits",
            "LSB (mV)",
            "worst MEP quantization (mV)",
            "worst energy overhead",
            "system cycle (µs)",
        ],
    );
    for row in ablation_bits() {
        bits.row(&[
            row.bits.to_string(),
            f(row.lsb_mv, 2),
            f(row.worst_error_mv, 2),
            pct(row.worst_energy_overhead),
            f(row.system_cycle_us, 3),
        ]);
    }
    bits.render()
}

fn refclk_table() -> String {
    let mut refclk = Table::new(
        "Ref_clk strategy (fixed direct conversion vs per-band slow clock)",
        &["Ref_clk", "reliable from (mV)", "reliable to (mV)"],
    );
    for row in ablation_refclk() {
        refclk.row(&[
            row.period_ns
                .map_or("per-band".into(), |p| format!("{p:.0} ns")),
            row.min_reliable_mv.map_or("-".into(), |v| f(v, 0)),
            row.max_reliable_mv.map_or("-".into(), |v| f(v, 0)),
        ]);
    }
    refclk.render()
}

fn shrink_table() -> String {
    let mut shrink = Table::new(
        "Pulse shrinking, Eq. 1 (β > 1 shrinks, β < 1 expands)",
        &["β", "ΔW (ps/cycle)", "cycles to absorb 7 ns"],
    );
    for row in ablation_shrink() {
        shrink.row(&[
            f(row.beta, 2),
            f(row.shrink_ps, 2),
            row.cycles_for_7ns.map_or("never".into(), |c| c.to_string()),
        ]);
    }
    shrink.render()
}

fn sizing_table() -> String {
    use subvt_device::energy::CircuitProfile;
    use subvt_device::mosfet::Environment;
    use subvt_device::sizing::sizing_sweep;
    use subvt_device::technology::Technology;
    use subvt_device::units::Volts;
    let mut sizing = Table::new(
        "Device sizing (design-time mitigation, paper refs [5][7]): MEP cost vs mismatch immunity",
        &[
            "upsize",
            "MEP (fJ)",
            "Vopt (mV)",
            "relative σ",
            "3σ guard-band energy (fJ)",
        ],
    );
    let tech = Technology::st_130nm();
    for p in sizing_sweep(
        &tech,
        &CircuitProfile::ring_oscillator(),
        Environment::nominal(),
        Volts(0.012),
        &[1.0, 2.0, 4.0, 8.0, 16.0],
    ) {
        sizing.row(&[
            f(p.upsize, 0),
            f(p.mep_energy.femtos(), 3),
            f(p.vopt.millivolts(), 1),
            f(p.relative_sigma, 3),
            f(p.guardband_energy.femtos(), 3),
        ]);
    }
    sizing.render()
}

fn dither_table() -> String {
    use subvt_core::dithering::compare_dither;
    use subvt_device::energy::CircuitProfile;
    use subvt_device::mosfet::Environment;
    use subvt_device::technology::Technology;
    use subvt_device::units::Volts;
    let mut dither = Table::new(
        "UDVS dithering (paper ref [12]): recovering the round-up quantization penalty",
        &[
            "target (mV)",
            "round-up (fJ)",
            "dithered (fJ)",
            "exact (fJ)",
            "recovery",
        ],
    );
    let tech = Technology::st_130nm();
    let ring = CircuitProfile::ring_oscillator();
    for mv in [215.6, 234.4, 253.1, 290.6, 328.1] {
        let c = compare_dither(
            &tech,
            &ring,
            Environment::nominal(),
            Volts::from_millivolts(mv),
        )
        .expect("in range");
        dither.row(&[
            f(mv, 1),
            f(c.rounded.femtos(), 4),
            f(c.dithered.femtos(), 4),
            f(c.exact.femtos(), 4),
            pct(c.recovery()),
        ]);
    }
    dither.render()
}

fn tdc_table() -> String {
    use subvt_device::mosfet::Environment;
    use subvt_device::technology::Technology;
    use subvt_device::units::Volts;
    use subvt_tdc::counter_method::CounterSensor;
    use subvt_tdc::delay_line::{CellKind, DelayLine};
    use subvt_tdc::vernier::VernierTdc;
    let mut tdcs = Table::new(
        "Sensor alternatives: direct quantizer vs counter-feedback vs Vernier",
        &[
            "method",
            "configuration",
            "resolution @220 mV",
            "conversion span",
            "range",
        ],
    );
    let tech = Technology::st_130nm();
    let env = Environment::nominal();
    let v = Volts(0.22);
    let cell = DelayLine::new(64, CellKind::InvNor)
        .cell_delay(&tech, v, env)
        .expect("in range");
    tdcs.row(&[
        "direct (paper)".into(),
        "64 stages, per-band clock".into(),
        "≈18.75 mV/LSB equiv".into(),
        format!("{:.1} µs", cell.value() * 256.0 * 1e6),
        "per band".into(),
    ]);
    let counter = CounterSensor::full_range();
    let r = counter.resolution_at(&tech, v, env).expect("in range");
    tdcs.row(&[
        "counter feedback".into(),
        "15-cell ring, 100 µs window".into(),
        format!("{:.2} mV", r.millivolts()),
        "100 µs".into(),
        "full 0.1-1.2 V".into(),
    ]);
    let vern = VernierTdc::fine_grained();
    let res = vern.resolution(&tech, v, env).expect("in range");
    tdcs.row(&[
        "Vernier".into(),
        "256 stages, 5% skew".into(),
        format!("{:.1} ns time-bin", res.nanos()),
        format!("{:.1} µs", vern.range(&tech, v, env).unwrap().value() * 1e6),
        "interval-limited".into(),
    ]);
    tdcs.render()
}

fn fifo_table() -> String {
    let mut fifo = Table::new(
        "FIFO depth × arrival rate (loss and chosen voltage)",
        &["depth", "arrivals/cycle", "loss rate", "mean Vdd (mV)"],
    );
    for row in ablation_fifo() {
        fifo.row(&[
            row.depth.to_string(),
            f(row.arrivals_per_cycle, 1),
            format!("{:.2e}", row.loss_rate),
            f(row.mean_vout_mv, 1),
        ]);
    }
    fifo.render()
}

fn main() {
    let cfg = harness_config(&usage());

    println!("Ablations over the design choices called out in DESIGN.md\n");

    let tables: [fn() -> String; 7] = [
        bits_table,
        refclk_table,
        shrink_table,
        sizing_table,
        dither_table,
        tdc_table,
        fifo_table,
    ];
    for rendered in par_map_indexed(&cfg, tables.len(), |i| tables[i]()) {
        println!("{rendered}");
    }
}
