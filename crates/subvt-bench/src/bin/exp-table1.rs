//! Regenerates the paper's Table I: supply voltage vs quantizer output
//! (64-stage delay line, 14 ns Ref_clk).

use subvt_bench::figures::table1_rows;
use subvt_bench::report::{f, Table};
use subvt_tdc::table1::PAPER_SIGNATURES;

fn main() {
    println!("Table I — Supply voltage and quantizer output (14 ns Ref_clk)\n");

    let rows = table1_rows();
    let mut t = Table::new(
        "Quantizer signatures (ours vs paper; the absolute pattern depends on an unpublished sampling phase — the burst structure and sensitivity are the reproduction targets)",
        &["Vdd", "ours (hex)", "paper (hex)", "cell delay", "bursts", "code"],
    );
    for (row, &(label, paper)) in rows.iter().zip(PAPER_SIGNATURES.iter()) {
        t.row(&[
            label.to_owned(),
            row.hex(),
            paper.to_owned(),
            format!("{:.0} ps", row.cell_delay.picos()),
            row.bursts.to_string(),
            row.code.map_or("unreliable".into(), |c| c.to_string()),
        ]);
    }
    println!("{}", t.render());

    if let (Some(c12), Some(c10)) = (rows[0].code, rows[1].code) {
        println!(
            "Edge shift 1.2 V → 1.0 V: {} stages (paper: 16 shifts, 12.5 mV each)",
            c12 - c10
        );
    }
    println!(
        "0.6 V row: {} bursts → double-latched, unreliable (paper: \"data being latched twice\")",
        rows[3].bursts
    );
    let span = rows[3].cell_delay.value() * 64.0 / 14e-9;
    println!("0.6 V line window spans {} Ref_clk periods", f(span, 2));
}
