//! Regenerates the paper's Sec. IV headline: energy savings of the
//! adaptive controller vs running without it, across corners,
//! temperatures and Monte-Carlo dies.

use subvt_bench::jobs::{harness_config, JOBS_HELP};
use subvt_bench::report::{f, pct, Table};
use subvt_bench::savings::{savings_matrix, savings_monte_carlo_jobs};

fn usage() -> String {
    format!(
        "exp-savings — Sec. IV energy-savings tables\n\n\
         USAGE: exp-savings [--jobs N]\n\n{JOBS_HELP}"
    )
}

fn main() {
    let cfg = harness_config(&usage());

    println!("Sec. IV — Energy savings of the adaptive controller\n");

    let mut t = Table::new(
        "Scenario matrix (paper: \"energy improvement of up to 55% compared to when no controller is employed\")",
        &[
            "scenario",
            "LUT shift",
            "mean Vdd (mV)",
            "vs fixed supply",
            "vs uncompensated",
            "oracle efficiency",
            "loss rate",
        ],
    );
    for report in savings_matrix() {
        t.row(&[
            report.scenario.clone(),
            format!("{:+}", report.compensated.compensation),
            f(report.compensated.mean_vout.millivolts(), 1),
            pct(report.savings_vs_fixed()),
            pct(report.savings_vs_uncompensated()),
            f(report.oracle_efficiency(), 3),
            format!("{:.2e}", report.compensated.loss_rate()),
        ]);
    }
    println!("{}", t.render());

    let mut mc = Table::new(
        "Monte-Carlo dies (global + correlated N/P Vth variation)",
        &[
            "die",
            "severity (corner units)",
            "LUT shift",
            "savings vs fixed",
        ],
    );
    let rows = savings_monte_carlo_jobs(&cfg, 12, 2026);
    for row in &rows {
        mc.row(&[
            row.die.to_string(),
            f(row.corner_units, 2),
            format!("{:+}", row.compensation),
            pct(row.savings_vs_fixed),
        ]);
    }
    println!("{}", mc.render());

    let best = rows
        .iter()
        .map(|r| r.savings_vs_fixed)
        .fold(0.0f64, f64::max);
    println!("Best-case saving across sampled dies: {}", pct(best));
}
