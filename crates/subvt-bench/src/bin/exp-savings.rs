//! Regenerates the paper's Sec. IV headline: energy savings of the
//! adaptive controller vs running without it, across corners,
//! temperatures and Monte-Carlo dies.

use subvt_bench::jobs::harness_options;
use subvt_bench::report::{f, pct, Table};
use subvt_bench::savings::{savings_matrix, savings_rows};
use subvt_core::controller::SupplyKind;
use subvt_core::experiment::{savings_experiment, Scenario};
use subvt_core::study::{StudyConfig, SupplyBackendKind, STUDY_HELP};
use subvt_core::SupplySim;
use subvt_device::tabulate::EvalMode;

fn usage() -> String {
    format!(
        "exp-savings — Sec. IV energy-savings tables\n\n\
         USAGE: exp-savings [study flags]\n\n{STUDY_HELP}"
    )
}

fn main() {
    let opts = harness_options(&usage());
    let cfg = opts.cfg;

    println!("Sec. IV — Energy savings of the adaptive controller\n");

    let mut t = Table::new(
        "Scenario matrix (paper: \"energy improvement of up to 55% compared to when no controller is employed\")",
        &[
            "scenario",
            "LUT shift",
            "mean Vdd (mV)",
            "vs fixed supply",
            "vs uncompensated",
            "oracle efficiency",
            "loss rate",
        ],
    );
    for report in savings_matrix() {
        t.row(&[
            report.scenario.clone(),
            format!("{:+}", report.compensated.compensation),
            f(report.compensated.mean_vout.millivolts(), 1),
            pct(report.savings_vs_fixed()),
            pct(report.savings_vs_uncompensated()),
            f(report.oracle_efficiency(), 3),
            format!("{:.2e}", report.compensated.loss_rate()),
        ]);
    }
    println!("{}", t.render());

    let mut mc = Table::new(
        "Monte-Carlo dies (global + correlated N/P Vth variation)",
        &[
            "die",
            "severity (corner units)",
            "LUT shift",
            "savings vs fixed",
        ],
    );
    let rows = savings_rows(&StudyConfig::new(12, 2026).exec(cfg), EvalMode::Analytic);
    for row in &rows {
        mc.row(&[
            row.die.to_string(),
            f(row.corner_units, 2),
            format!("{:+}", row.compensation),
            pct(row.savings_vs_fixed),
        ]);
    }
    println!("{}", mc.render());

    let best = rows
        .iter()
        .map(|r| r.savings_vs_fixed)
        .fold(0.0f64, f64::max);
    println!("Best-case saving across sampled dies: {}", pct(best));

    // The worked example once more on the selected supply backend. The
    // matrix above always uses the ideal rail (the paper's Sec. IV
    // framing); this section shows what survives a real regulator. The
    // transient controller only models the buck stage electrically, so
    // the dldo/dlr backends run on the ideal rail and report their own
    // closed-form regulation figures below.
    let supply_note = match opts.supply {
        SupplyBackendKind::Ideal => "ideal supply",
        SupplyBackendKind::Buck => "buck supply, closed-form solver",
        SupplyBackendKind::Dldo => "ideal rail (dldo figures below)",
        SupplyBackendKind::Dlr => "ideal rail (dlr figures below)",
    };
    let scenario_supply = match opts.supply {
        SupplyBackendKind::Buck => SupplyKind::Switched,
        _ => SupplyKind::Ideal,
    };
    let scenario = Scenario::paper_worked_example().with_supply(scenario_supply);
    let report = savings_experiment(&scenario).expect("worked example runs");
    println!(
        "\nWorked example on the {supply_note}: LUT {:+} LSB, mean Vdd {} mV, \
         {} vs fixed supply, {} vs uncompensated",
        report.compensated.compensation,
        f(report.compensated.mean_vout.millivolts(), 1),
        pct(report.savings_vs_fixed()),
        pct(report.savings_vs_uncompensated()),
    );
    if opts.supply == SupplyBackendKind::Buck {
        println!(
            "Converter conduction loss booked against the compensated run: {} fJ",
            f(report.compensated.account.converter().femtos(), 3)
        );
    }
    if let SupplySim::Regulated(model) = opts.supply.build_sim(opts.study.solver) {
        if opts.supply != SupplyBackendKind::Buck {
            println!(
                "{} regulation at word 11: ripple {} mV pp, settle {} cycle(s), \
                 overhead {} fJ/cycle",
                model.tag(),
                f(model.point(11).ripple().millivolts(), 3),
                model.response_cycles(),
                f(model.regulation_energy_per_cycle().femtos(), 1),
            );
        }
    }
}
