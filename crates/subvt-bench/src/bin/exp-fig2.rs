//! Regenerates the paper's Fig. 2: minimum energy point with
//! temperature variation (TT corner, 25/85/115 °C).

use subvt_bench::figures::fig2_mep_temperature;
use subvt_bench::report::{f, Table};

fn main() {
    println!("Fig. 2 — MEP with temperature variation (ring oscillator, α = 0.1, TT)\n");

    let series = fig2_mep_temperature();

    let mut sweep = Table::new(
        "Energy vs supply voltage (fJ per operation)",
        &["Vdd (mV)", "T=25", "T=85", "T=115"],
    );
    for (i, point) in series[0].sweep.iter().enumerate() {
        let mut cells = vec![f(point.vdd.millivolts(), 0)];
        for s in &series {
            cells.push(f(s.sweep[i].total().femtos(), 3));
        }
        sweep.row(&cells);
    }
    println!("{}", sweep.render());

    let mut mep = Table::new(
        "Located minimum-energy points (paper: 200 mV/2.6 fJ @25 °C, 250 mV/3.2 fJ @85 °C)",
        &["T (°C)", "Vopt (mV)", "Emin (fJ)"],
    );
    for s in &series {
        mep.row(&[
            f(s.celsius, 0),
            f(s.mep.vopt.millivolts(), 1),
            f(s.mep.energy.femtos(), 3),
        ]);
    }
    println!("{}", mep.render());

    let cold = &series[0].mep;
    let hot = &series[1].mep;
    println!(
        "25→85 °C: Vopt {:.0} → {:.0} mV, energy {:+.1}% (paper: 200 → 250 mV, +25%)",
        cold.vopt.millivolts(),
        hot.vopt.millivolts(),
        (hot.energy.value() / cold.energy.value() - 1.0) * 100.0
    );
}
