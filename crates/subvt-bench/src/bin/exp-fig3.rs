//! Regenerates the paper's Fig. 3: delay vs supply voltage per process
//! corner (five decades, log scale).

use subvt_bench::figures::fig3_delay_corners;
use subvt_bench::report::{f, Table};

fn main() {
    println!("Fig. 3 — Delay with process variation (inverter, SS/TT/FS)\n");

    let series = fig3_delay_corners();
    let mut t = Table::new("Inverter delay (ns)", &["Vdd (mV)", "SS", "TT", "FS"]);
    for (i, &(v, _)) in series[0].delays.iter().enumerate() {
        t.row(&[
            f(v.millivolts(), 0),
            format!("{:.4e}", series[0].delays[i].1),
            format!("{:.4e}", series[1].delays[i].1),
            format!("{:.4e}", series[2].delays[i].1),
        ]);
    }
    println!("{}", t.render());

    // The paper's calibration anchors (TT).
    let tt = &series[1];
    let at = |mv: f64| {
        tt.delays
            .iter()
            .min_by(|a, b| {
                (a.0.millivolts() - mv)
                    .abs()
                    .partial_cmp(&(b.0.millivolts() - mv).abs())
                    .unwrap()
            })
            .unwrap()
            .1
    };
    println!(
        "TT anchors: {:.0} ps @1.2 V (paper 102), {:.0} ps @0.6 V (paper 442), {:.0} ns @0.2 V (paper 79.43)",
        at(1200.0) * 1e3,
        at(600.0) * 1e3,
        at(200.0)
    );
    // The paper's "10% Vdd variation → up to 30% delay" claim: the
    // sensitivity grows as Vdd sinks; ~30% is reached near the top of
    // the subthreshold-affected region and it only gets worse below.
    for mv in [700.0, 500.0, 350.0, 250.0] {
        let d0 = at(mv);
        let d1 = at(mv * 0.9);
        println!(
            "10% Vdd drop at {mv:.0} mV changes delay by {:+.0}% (paper: up to ~30% and beyond in subthreshold)",
            (d1 / d0 - 1.0) * 100.0
        );
    }
}
