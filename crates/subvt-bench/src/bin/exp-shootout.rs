//! Supply-backend shoot-out: the all-digital buck converter vs the
//! time-interleaved digital LDO vs the discrete-time linear regulator,
//! scored on the same Monte-Carlo population across process corners
//! and fault rates.
//!
//! Results are bit-identical for any `--jobs`/`--batch` (every
//! backend's droop/ripple table is built serially before the fan-out)
//! and across kill/resume; the committed reference output lives in
//! `docs/results/supply_shootout.txt`.
//!
//! Since PR 9 the 18 cells are scored by the fused [`StudyMatrix`]
//! engine on ONE shared die stream — each (corner, die) is drawn and
//! device-evaluated once and every compatible cell folds from the same
//! lanes — instead of 18 independent studies. The matrix engine's
//! byte-identity contract (`tests/matrix_equivalence.rs`) is what
//! keeps the committed reference output unchanged.

use subvt_bench::jobs::harness_options;
use subvt_bench::report::{f, pct, Table};
use subvt_core::matrix::{CellSummary, MatrixCell, StudyMatrix};
use subvt_core::study::{FaultPlan, SupplyBackendKind, STUDY_HELP};
use subvt_core::SupplySim;
use subvt_device::corner::ProcessCorner;
use subvt_device::mosfet::Environment;

const BACKENDS: [SupplyBackendKind; 3] = [
    SupplyBackendKind::Buck,
    SupplyBackendKind::Dldo,
    SupplyBackendKind::Dlr,
];

const CORNERS: [(ProcessCorner, &str); 3] = [
    (ProcessCorner::Tt, "TT"),
    (ProcessCorner::Ss, "SS"),
    (ProcessCorner::Ff, "FF"),
];

/// Per-cycle fault probabilities swept per (backend, corner) cell:
/// clean, and the mid rate of the fault study's low/mid/high sweep.
const FAULT_RATES: [f64; 2] = [0.0, 0.02];

fn usage() -> String {
    format!(
        "exp-shootout — three-way supply-backend comparison\n\n\
         USAGE: exp-shootout [study flags]\n\n\
         Sweeps buck/dldo/dlr across TT/SS/FF corners and fault rates\n\
         {{0, 0.02}}; --supply is ignored (all backends always run).\n\n{STUDY_HELP}"
    )
}

fn main() {
    let opts = harness_options(&usage());
    let args = opts.study;

    println!(
        "Supply-backend shoot-out ({} dies per cell, seed {})\n",
        args.dies, args.seed
    );

    // Static figures first: everything here is a closed-form property
    // of the backend itself, independent of the die population.
    let mut fig = Table::new(
        "Backend figures at the design word (11)",
        &[
            "backend",
            "ripple (mV pp)",
            "settle (cycles)",
            "regulation (fJ/cycle)",
            "glitch droop (mV)",
            "missed-update droop (mV)",
        ],
    );
    for kind in BACKENDS {
        if let SupplySim::Regulated(model) = kind.build_sim(args.solver) {
            fig.row(&[
                kind.label().to_owned(),
                f(model.point(11).ripple().millivolts(), 3),
                model.response_cycles().to_string(),
                f(model.regulation_energy_per_cycle().femtos(), 1),
                f(model.comparator_glitch_droop().millivolts(), 2),
                f(model.missed_update_droop().millivolts(), 2),
            ]);
        }
    }
    println!("{}", fig.render());

    let mut t = Table::new(
        "Monte-Carlo yield per backend x corner x per-cycle fault rate",
        &[
            "backend",
            "corner",
            "fault rate",
            "fixed",
            "adaptive",
            "dithered",
            "mean adaptive E (fJ)",
            "tracking err (LSB)",
        ],
    );
    // One fused run over the whole grid: the matrix engine draws and
    // device-evaluates each (corner, die) once and scores all 18 cells
    // from the shared lanes.
    let mut cells: Vec<(MatrixCell, &str, f64)> = Vec::new();
    for kind in BACKENDS {
        for (corner, corner_label) in CORNERS {
            for rate in FAULT_RATES {
                let faults =
                    (rate > 0.0).then(|| FaultPlan::uniform(rate).with_mitigation(args.mitigation));
                let cell = MatrixCell {
                    supply: kind,
                    env: Environment::at_corner(corner),
                    faults,
                };
                cells.push((cell, corner_label, rate));
            }
        }
    }
    let matrix = cells.iter().fold(StudyMatrix::new(args.study()), |m, c| {
        m.cell(c.0.supply, c.0.env, c.0.faults)
    });
    let results = matrix.run();

    for ((cell, corner_label, rate), result) in cells.iter().zip(&results) {
        let (summary, tracking) = match result {
            CellSummary::Yield(s) => (s, "-".to_owned()),
            CellSummary::Faults(s) => (&s.base, f(s.mean_tracking_error(), 2)),
        };
        t.row(&[
            cell.supply.label().to_owned(),
            (*corner_label).to_owned(),
            format!("{rate}"),
            pct(summary.fixed_yield()),
            pct(summary.adaptive_yield()),
            pct(summary.dithered_yield()),
            summary
                .mean_adaptive_energy()
                .map_or("-".into(), |e| f(e.femtos(), 3)),
            tracking,
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading the table: the DLDO's one-LSB-of-charge ripple (0.15 mV pp) makes\n\
         it electrically closest to the ideal rail, so its yields track the ideal\n\
         study and it pays the least regulation overhead. The DLR sits between:\n\
         quiet in steady state but slow-sampled (1 MHz), so a corrupted decision\n\
         costs a full 20 mV excursion. The buck trades the worst ripple and the\n\
         slowest settle for the simplest hardware story; its trough scoring is\n\
         what cut adaptive yield below the ideal rail in the PR 4 study.\n"
    );
}
