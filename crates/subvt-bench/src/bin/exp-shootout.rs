//! Supply-backend shoot-out: the all-digital buck converter vs the
//! time-interleaved digital LDO vs the discrete-time linear regulator,
//! scored on the same Monte-Carlo population across process corners
//! and fault rates.
//!
//! Results are bit-identical for any `--jobs`/`--batch` (every
//! backend's droop/ripple table is built serially before the fan-out)
//! and across kill/resume; the committed reference output lives in
//! `docs/results/supply_shootout.txt`.
//!
//! Since PR 10 the whole study is the declarative scenario
//! [`Scenario::supply_shootout`] — the same 18-cell grid that
//! `subvt suite docs/scenarios/supply_shootout.toml` runs, rendered by
//! the shared report model, so this binary and the suite runner cannot
//! drift apart. The fused `StudyMatrix` engine (PR 9) still scores all
//! cells from ONE shared die stream; the matrix engine's byte-identity
//! contract (`tests/matrix_equivalence.rs`) is what keeps the committed
//! reference output unchanged.

use subvt_bench::jobs::harness_options;
use subvt_core::study::STUDY_HELP;
use subvt_scenario::{RunOptions, Scenario};

fn usage() -> String {
    format!(
        "exp-shootout — three-way supply-backend comparison\n\n\
         USAGE: exp-shootout [study flags]\n\n\
         Sweeps buck/dldo/dlr across TT/SS/FF corners and fault rates\n\
         {{0, 0.02}}; --supply is ignored (all backends always run).\n\n{STUDY_HELP}"
    )
}

fn main() {
    let opts = harness_options(&usage());
    let mut scenario = Scenario::supply_shootout();
    scenario.apply_args(&opts.study);
    let report = scenario.run(&RunOptions {
        exec: Some(opts.cfg),
        checkpoint: None,
    });
    print!("{}", report.to_text());
}
