//! Parametric yield: fraction of Monte-Carlo dies meeting a
//! (throughput, energy) spec with and without the adaptive controller.
//!
//! Since PR 10 the output renders through the shared [`Report`] model
//! (same text backend as `subvt suite`); the committed reference in
//! `docs/results/yield.txt` is byte-identical to the pre-port output.

use subvt_bench::jobs::harness_options;
use subvt_bench::report::{f, pct, Table};
use subvt_core::study::{StudyConfig, SupplyBackendKind, STUDY_HELP};
use subvt_core::yield_study::YieldSpec;
use subvt_dcdc::SolverMode;
use subvt_device::technology::Technology;
use subvt_device::units::{Hertz, Joules};
use subvt_device::MetricsSnapshot;
use subvt_scenario::Report;

fn usage() -> String {
    format!(
        "exp-yield — parametric yield under Monte-Carlo variation\n\n\
         USAGE: exp-yield [study flags]\n\n{STUDY_HELP}"
    )
}

fn main() {
    let opts = harness_options(&usage());
    let cfg = &opts.cfg;

    // Built once, serially, before any Monte-Carlo fan-out: every
    // backend's droop/ripple table is die-independent, so regulated
    // runs stay bit-identical at any --jobs.
    let supply = opts.supply.build_sim(opts.study.solver);
    let supply_note = match opts.supply {
        SupplyBackendKind::Ideal => "ideal supply".to_owned(),
        SupplyBackendKind::Buck => match opts.study.solver {
            SolverMode::ClosedForm => "buck supply [closed-form solver]".to_owned(),
            SolverMode::Rk4 => "buck supply [rk4 solver]".to_owned(),
        },
        kind => format!("{} supply", kind.label()),
    };

    let mut report = Report::new(format!(
        "Parametric yield under Monte-Carlo variation (500 dies per row, {} device model, {})",
        opts.eval.label(),
        supply_note
    ));

    let tech = Technology::st_130nm();
    let before = MetricsSnapshot::snapshot();
    let eval = opts.eval.build(&tech);

    let mut t = Table::new(
        "Spec: sustain the rate at ≤ the energy bound (design word 11 = TT MEP)",
        &[
            "spec rate (kHz)",
            "energy bound (fJ)",
            "fixed @MEP word",
            "fixed +2 guard",
            "adaptive",
            "dithered (sub-LSB)",
            "mean adaptive E (fJ)",
        ],
    );
    for (rate_khz, e_fj) in [(110.0, 2.9), (110.0, 3.5), (60.0, 2.9), (125.0, 2.8)] {
        let spec = YieldSpec {
            min_rate: Hertz(rate_khz * 1e3),
            max_energy_per_op: Joules::from_femtos(e_fj),
        };
        let run = |fixed_word: u8, seed: u64| {
            StudyConfig::new(500, seed)
                .eval(eval.clone())
                .spec(spec)
                .words(fixed_word, 11)
                .supply(supply.clone())
                .exec(*cfg)
                .run()
        };
        let at_mep = run(11, 1);
        let guarded = run(13, 1);
        t.row(&[
            f(rate_khz, 0),
            f(e_fj, 2),
            pct(at_mep.fixed_yield()),
            pct(guarded.fixed_yield()),
            pct(at_mep.adaptive_yield()),
            pct(at_mep.dithered_yield()),
            at_mep
                .mean_adaptive_energy()
                .map_or("-".into(), |e| f(e.femtos(), 3)),
        ]);
    }
    report.table(t);
    report.note([
        "The fixed design is squeezed: at the MEP word it fails slow dies on rate;",
        "guard-banded up it fails the energy bound. The adaptive design settles",
        "each die at its own word and escapes the squeeze (residual misses are",
        "18.75 mV quantization — the dithering extension's territory).",
    ]);

    // Large-population confirmation: the summary-only path never
    // materialises per-die outcomes, so the population can be scaled
    // far beyond what the row tables above would tolerate.
    let dies = 20_000;
    let spec = YieldSpec {
        min_rate: Hertz(110e3),
        max_energy_per_op: Joules::from_femtos(2.9),
    };
    let summary = StudyConfig::new(dies, 1)
        .eval(eval.clone())
        .spec(spec)
        .words(11, 11)
        .supply(supply.clone())
        .exec(*cfg)
        .run_summary();
    let mut big = Table::new(
        format!("Large-population check ({dies} dies, summary-only streaming path)"),
        &[
            "dies",
            "fixed",
            "adaptive",
            "dithered",
            "mean adaptive E (fJ)",
        ],
    );
    big.row(&[
        summary.dies.to_string(),
        pct(summary.fixed_yield()),
        pct(summary.adaptive_yield()),
        pct(summary.dithered_yield()),
        summary
            .mean_adaptive_energy()
            .map_or("-".into(), |e| f(e.femtos(), 3)),
    ]);
    report.table(big);

    let delta = MetricsSnapshot::snapshot().since(&before);
    // Zero the build wall time before printing: harness output is held
    // to byte-identical reruns, and build nanos are the one counter
    // that is timing, not accounting (the device_eval bench measures
    // build cost properly).
    let delta = MetricsSnapshot {
        table_build_nanos: 0,
        ..delta
    };
    let mut counters = vec![
        format!("device-model counters ({} mode):", opts.eval.label()),
        format!("  {delta}"),
    ];
    if delta.interp_hits() > 0 {
        let total = delta.analytic_evals() + delta.interp_hits();
        counters.push(format!(
            "  analytic share {:.2}% of {total} model queries \
             ({:.1}× fewer analytic evals than an all-analytic run)",
            delta.analytic_evals() as f64 / total as f64 * 100.0,
            total as f64 / delta.analytic_evals().max(1) as f64,
        ));
    }
    report.note(counters);
    print!("{}", report.to_text());
}
