//! Fault-injection study: parametric yield, MEP-tracking error and
//! recovery cost under loop-hardware faults, with and without the
//! graceful-degradation machinery (triple-sample TDC vote, signature
//! debounce, LUT scrub, rail watchdog).
//!
//! Results are bit-identical for any `--jobs`; the committed reference
//! output lives in `docs/results/faults.txt`.
//!
//! Since PR 10 the clean baseline and every (rate, mitigation) arm are
//! cells of ONE fused [`StudyMatrix`] run — each die is drawn and
//! device-evaluated once and all arms fold from the shared lanes — and
//! the output renders through the shared [`Report`] model. The matrix
//! engine's byte-identity contract keeps the reference output
//! unchanged from the standalone-runs era.

use subvt_bench::jobs::harness_options;
use subvt_bench::report::{f, pct, Table};
use subvt_core::matrix::{CellSummary, StudyMatrix};
use subvt_core::study::{FaultPlan, STUDY_HELP};
use subvt_device::mosfet::Environment;
use subvt_scenario::Report;

fn usage() -> String {
    format!(
        "exp-faults — yield and MEP tracking under fault injection\n\n\
         USAGE: exp-faults [study flags]\n\n\
         With --faults R only that rate is swept (both mitigation\n\
         arms); otherwise the default low/mid/high sweep runs.\n\n{STUDY_HELP}"
    )
}

fn main() {
    let opts = harness_options(&usage());
    let args = opts.study;

    let rates: Vec<f64> = match args.faults {
        Some(rate) => vec![rate],
        None => vec![0.005, 0.02, 0.08],
    };

    // One fused run: cell 0 is the clean baseline, then an
    // (off, on) mitigation pair per rate, all folding from one shared
    // die stream.
    let mut clean_args = args.clone();
    clean_args.faults = None;
    let env = Environment::nominal();
    let mut matrix = StudyMatrix::new(clean_args.study()).cell(args.supply, env, None);
    for &rate in &rates {
        for mitigation in [false, true] {
            matrix = matrix.cell(
                args.supply,
                env,
                Some(FaultPlan::uniform(rate).with_mitigation(mitigation)),
            );
        }
    }
    let results = matrix.run();
    let clean = match &results[0] {
        CellSummary::Yield(s) => s.clone(),
        CellSummary::Faults(_) => unreachable!("cell 0 carries no fault plan"),
    };

    let mut report = Report::new(format!(
        "Fault injection & graceful degradation ({} dies, seed {})",
        args.dies, args.seed
    ));
    report.note([format!(
        "Clean baseline: adaptive yield {}, fixed yield {}, dithered yield {}",
        pct(clean.adaptive_yield()),
        pct(clean.fixed_yield()),
        pct(clean.dithered_yield()),
    )]);

    let mut t = Table::new(
        "Per-domain fault rate (probability per system cycle) vs the clean baseline",
        &[
            "rate",
            "mitigation",
            "adaptive yield",
            "yield loss",
            "tracking err (LSB)",
            "recovery (fJ/die)",
            "watchdog trips",
            "faults injected",
        ],
    );
    let mut notes = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        let arm = |idx: usize| match &results[idx] {
            CellSummary::Faults(s) => s.clone(),
            CellSummary::Yield(_) => unreachable!("fault arms carry a plan"),
        };
        let off = arm(1 + 2 * i);
        let on = arm(2 + 2 * i);
        for (label, s) in [("off", &off), ("on", &on)] {
            t.row(&[
                format!("{rate}"),
                (*label).to_owned(),
                pct(s.adaptive_yield()),
                pct(clean.adaptive_yield() - s.adaptive_yield()),
                f(s.mean_tracking_error(), 2),
                f(s.mean_recovery_energy().femtos(), 3),
                s.watchdog_trips.to_string(),
                s.faults_injected.to_string(),
            ]);
        }
        let loss_off = clean.adaptive_yield() - off.adaptive_yield();
        let loss_on = clean.adaptive_yield() - on.adaptive_yield();
        if loss_off > 0.0 {
            notes.push(format!(
                "rate {rate}: mitigation recovers {} of the fault-induced yield loss \
                 ({} -> {})",
                pct((loss_off - loss_on) / loss_off),
                pct(off.adaptive_yield()),
                pct(on.adaptive_yield()),
            ));
        }
    }
    report.table(t);
    if !notes.is_empty() {
        report.note(notes);
    }
    print!("{}", report.to_text());
}
