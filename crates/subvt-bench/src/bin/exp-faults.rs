//! Fault-injection study: parametric yield, MEP-tracking error and
//! recovery cost under loop-hardware faults, with and without the
//! graceful-degradation machinery (triple-sample TDC vote, signature
//! debounce, LUT scrub, rail watchdog).
//!
//! Results are bit-identical for any `--jobs`; the committed reference
//! output lives in `docs/results/faults.txt`.

use subvt_bench::jobs::harness_options;
use subvt_bench::report::{f, pct, Table};
use subvt_core::study::{StudyArgs, STUDY_HELP};

fn usage() -> String {
    format!(
        "exp-faults — yield and MEP tracking under fault injection\n\n\
         USAGE: exp-faults [study flags]\n\n\
         With --faults R only that rate is swept (both mitigation\n\
         arms); otherwise the default low/mid/high sweep runs.\n\n{STUDY_HELP}"
    )
}

fn main() {
    let opts = harness_options(&usage());
    let args = opts.study;

    // The clean baseline: the same population with no fault plan.
    let mut clean_args = args.clone();
    clean_args.faults = None;
    let clean = clean_args.study().run_summary();

    println!(
        "Fault injection & graceful degradation ({} dies, seed {})\n",
        args.dies, args.seed
    );
    println!(
        "Clean baseline: adaptive yield {}, fixed yield {}, dithered yield {}\n",
        pct(clean.adaptive_yield()),
        pct(clean.fixed_yield()),
        pct(clean.dithered_yield()),
    );

    let rates: Vec<f64> = match args.faults {
        Some(rate) => vec![rate],
        None => vec![0.005, 0.02, 0.08],
    };

    let mut t = Table::new(
        "Per-domain fault rate (probability per system cycle) vs the clean baseline",
        &[
            "rate",
            "mitigation",
            "adaptive yield",
            "yield loss",
            "tracking err (LSB)",
            "recovery (fJ/die)",
            "watchdog trips",
            "faults injected",
        ],
    );
    let mut notes = Vec::new();
    for &rate in &rates {
        let run = |mitigation: bool| {
            let mut a: StudyArgs = args.clone();
            a.faults = Some(rate);
            a.mitigation = mitigation;
            a.study().run_faults()
        };
        let off = run(false);
        let on = run(true);
        for (label, s) in [("off", &off), ("on", &on)] {
            t.row(&[
                format!("{rate}"),
                (*label).to_owned(),
                pct(s.adaptive_yield()),
                pct(clean.adaptive_yield() - s.adaptive_yield()),
                f(s.mean_tracking_error(), 2),
                f(s.mean_recovery_energy().femtos(), 3),
                s.watchdog_trips.to_string(),
                s.faults_injected.to_string(),
            ]);
        }
        let loss_off = clean.adaptive_yield() - off.adaptive_yield();
        let loss_on = clean.adaptive_yield() - on.adaptive_yield();
        if loss_off > 0.0 {
            notes.push(format!(
                "rate {rate}: mitigation recovers {} of the fault-induced yield loss \
                 ({} -> {})",
                pct((loss_off - loss_on) / loss_off),
                pct(off.adaptive_yield()),
                pct(on.adaptive_yield()),
            ));
        }
    }
    println!("{}", t.render());
    for line in &notes {
        println!("{line}");
    }
}
