//! Regenerates the paper's Fig. 1: minimum energy point with process
//! variation (NAND ring oscillator, α = 0.1, SS/TT/FS corners).

use subvt_bench::figures::fig1_mep_corners;
use subvt_bench::report::{f, Table};

fn main() {
    println!("Fig. 1 — MEP with process variation (ring oscillator, α = 0.1, 25 °C)\n");

    let series = fig1_mep_corners();

    let mut sweep = Table::new(
        "Energy vs supply voltage (fJ per operation)",
        &["Vdd (mV)", "SS", "TT", "FS"],
    );
    let grid = &series[0].sweep;
    for (i, point) in grid.iter().enumerate() {
        let mut cells = vec![f(point.vdd.millivolts(), 0)];
        for s in &series {
            cells.push(f(s.sweep[i].total().femtos(), 3));
        }
        sweep.row(&cells);
    }
    println!("{}", sweep.render());

    let mut mep = Table::new(
        "Located minimum-energy points (paper: SS 220 mV/1.70 fJ, TT 200 mV/2.65 fJ, FS 250 mV/2.42 fJ)",
        &["corner", "Vopt (mV)", "Emin (fJ)", "leakage fraction"],
    );
    for s in &series {
        mep.row(&[
            s.corner.to_string(),
            f(s.mep.vopt.millivolts(), 1),
            f(s.mep.energy.femtos(), 3),
            f(s.mep.breakdown.leakage_fraction(), 3),
        ]);
    }
    println!("{}", mep.render());

    let vopt: Vec<f64> = series.iter().map(|s| s.mep.vopt.volts()).collect();
    let e: Vec<f64> = series.iter().map(|s| s.mep.energy.value()).collect();
    let vmin = vopt.iter().fold(f64::MAX, |a, &b| a.min(b));
    let vmax = vopt.iter().fold(0.0f64, |a, &b| a.max(b));
    let emin = e.iter().fold(f64::MAX, |a, &b| a.min(b));
    let emax = e.iter().fold(0.0f64, |a, &b| a.max(b));
    println!(
        "Vopt spread: {:.1}% (paper: ~25%); energy spread: {:.1}% (paper: ~55%)",
        (vmax - vmin) / vmin * 100.0,
        (emax - emin) / emin * 100.0
    );
}
