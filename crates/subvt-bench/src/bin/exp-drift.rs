//! Dynamic variation: the environment drifts while the controller runs,
//! and compensation has to track it through the TDC signature alone.

use subvt_bench::report::{f, Table};
use subvt_core::controller::{AdaptiveController, ControllerConfig, SupplyKind, SupplyPolicy};
use subvt_core::drift::{run_with_drift, DriftSchedule};
use subvt_core::experiment::design_rate_controller;
use subvt_device::corner::ProcessCorner;
use subvt_device::delay::GateMismatch;
use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_loads::ring_oscillator::RingOscillator;
use subvt_loads::workload::{WorkloadPattern, WorkloadSource};
use subvt_rng::StdRng;

fn run(schedule: &DriftSchedule, cycles: u64, title: &str) {
    let tech = Technology::st_130nm();
    let design = Environment::nominal();
    let rate = design_rate_controller(&tech, design).expect("designable");
    let mut c = AdaptiveController::new(
        tech,
        RingOscillator::paper_circuit(),
        rate,
        design,
        design,
        GateMismatch::NOMINAL,
        SupplyPolicy::AdaptiveCompensated,
        SupplyKind::Ideal,
        ControllerConfig::default(),
    );
    let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 0 });
    let mut rng = StdRng::seed_from_u64(3);
    let r = run_with_drift(&mut c, schedule, &mut wl, cycles, &mut rng);

    let mut t = Table::new(
        title,
        &[
            "segment start (µs)",
            "environment",
            "compensation at segment end (LSB)",
        ],
    );
    for (i, &(start, comp)) in r.segment_compensation.iter().enumerate() {
        let env = schedule.segments()[i].1;
        t.row(&[
            start.to_string(),
            format!("{} @ {:.0} °C", env.corner, env.temperature.celsius()),
            format!("{comp:+}"),
        ]);
    }
    println!("{}", t.render());
    let final_v = r.history.last().map(|h| h.vout.millivolts()).unwrap_or(0.0);
    println!("final supply: {} mV\n", f(final_v, 1));
}

fn main() {
    println!("Runtime drift tracking (not in the paper: its validation is static)\n");

    run(
        &DriftSchedule::new(vec![
            (0, Environment::nominal()),
            (60, Environment::at_corner(ProcessCorner::Ss)),
            (180, Environment::nominal()),
        ]),
        260,
        "Corner step: nominal → slow → nominal",
    );

    run(
        &DriftSchedule::heat_ramp(80),
        400,
        "Heat ramp: 25 → 55 → 85 → 55 → 25 °C",
    );
}
