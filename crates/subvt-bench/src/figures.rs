//! Data generators for the paper's Figs. 1-3 and Table I.
//!
//! Each generator returns the raw series; the `exp-*` binaries render
//! them and the Criterion benches time them.

use subvt_device::corner::ProcessCorner;
use subvt_device::delay::GateTiming;
use subvt_device::energy::{CircuitProfile, EnergyBreakdown};
use subvt_device::mep::{energy_sweep, find_mep, MepPoint};
use subvt_device::mosfet::Environment;
use subvt_device::technology::{GateKind, Technology};
use subvt_device::units::Volts;
use subvt_tdc::table1::{reproduce_table1, Table1Row};

/// One corner's series of Fig. 1.
#[derive(Debug, Clone)]
pub struct Fig1Series {
    /// The process corner.
    pub corner: ProcessCorner,
    /// Energy vs Vdd sweep (α = 0.1).
    pub sweep: Vec<EnergyBreakdown>,
    /// The located minimum-energy point.
    pub mep: MepPoint,
}

/// Fig. 1: MEP with process variation (SS/TT/FS, α = 0.1, 25 °C).
pub fn fig1_mep_corners() -> Vec<Fig1Series> {
    let tech = Technology::st_130nm();
    let ring = CircuitProfile::ring_oscillator();
    ProcessCorner::FIGURE_CORNERS
        .iter()
        .map(|&corner| {
            let env = Environment::at_corner(corner);
            Fig1Series {
                corner,
                sweep: energy_sweep(&tech, &ring, env, Volts(0.10), Volts(0.90), 40),
                mep: find_mep(&tech, &ring, env, Volts(0.12), Volts(0.60))
                    .expect("sweep range valid"),
            }
        })
        .collect()
}

/// One temperature's series of Fig. 2.
#[derive(Debug, Clone)]
pub struct Fig2Series {
    /// Die temperature in °C.
    pub celsius: f64,
    /// Energy vs Vdd sweep.
    pub sweep: Vec<EnergyBreakdown>,
    /// The located minimum-energy point.
    pub mep: MepPoint,
}

/// Fig. 2: MEP with temperature variation (TT corner, 25/85/115 °C).
pub fn fig2_mep_temperature() -> Vec<Fig2Series> {
    let tech = Technology::st_130nm();
    let ring = CircuitProfile::ring_oscillator();
    [25.0, 85.0, 115.0]
        .iter()
        .map(|&celsius| {
            let env = Environment::at_celsius(celsius);
            Fig2Series {
                celsius,
                sweep: energy_sweep(&tech, &ring, env, Volts(0.10), Volts(1.40), 52),
                mep: find_mep(&tech, &ring, env, Volts(0.12), Volts(0.90))
                    .expect("sweep range valid"),
            }
        })
        .collect()
}

/// One corner's series of Fig. 3.
#[derive(Debug, Clone)]
pub struct Fig3Series {
    /// The process corner.
    pub corner: ProcessCorner,
    /// `(Vdd, inverter delay in ns)` samples.
    pub delays: Vec<(Volts, f64)>,
}

/// Fig. 3: delay vs supply voltage per corner, 0.1-1.4 V log scale.
pub fn fig3_delay_corners() -> Vec<Fig3Series> {
    let tech = Technology::st_130nm();
    let timing = GateTiming::new(&tech);
    ProcessCorner::FIGURE_CORNERS
        .iter()
        .map(|&corner| {
            let env = Environment::at_corner(corner);
            let delays = (0..=52)
                .filter_map(|i| {
                    let v = Volts(0.10 + 0.025 * f64::from(i));
                    timing
                        .gate_delay(GateKind::Inverter, v, env)
                        .ok()
                        .map(|d| (v, d.nanos()))
                })
                .collect();
            Fig3Series { corner, delays }
        })
        .collect()
}

/// Table I: the quantizer signatures at 1.2/1.0/0.8/0.6 V.
pub fn table1_rows() -> Vec<Table1Row> {
    reproduce_table1(&Technology::st_130nm(), Environment::nominal()).expect("published voltages")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_has_three_corners_with_subthreshold_meps() {
        let series = fig1_mep_corners();
        assert_eq!(series.len(), 3);
        for s in &series {
            assert!(!s.sweep.is_empty());
            assert!(s.mep.vopt.volts() < 0.3, "{}: {}", s.corner, s.mep.vopt);
        }
    }

    #[test]
    fn fig1_order_matches_paper() {
        let series = fig1_mep_corners();
        let vopt: Vec<f64> = series.iter().map(|s| s.mep.vopt.millivolts()).collect();
        // SS, TT, FS order → 220, 200, 250.
        assert!((vopt[0] - 220.0).abs() < 5.0);
        assert!((vopt[1] - 200.0).abs() < 5.0);
        assert!((vopt[2] - 250.0).abs() < 5.0);
    }

    #[test]
    fn fig2_mep_rises_with_temperature() {
        let series = fig2_mep_temperature();
        assert!(series[0].mep.vopt < series[1].mep.vopt);
        assert!(series[1].mep.vopt < series[2].mep.vopt);
        assert!(series[0].mep.energy.value() < series[2].mep.energy.value());
    }

    #[test]
    fn fig3_spans_five_decades() {
        let series = fig3_delay_corners();
        for s in &series {
            let min = s.delays.iter().map(|&(_, d)| d).fold(f64::MAX, f64::min);
            let max = s.delays.iter().map(|&(_, d)| d).fold(0.0, f64::max);
            assert!(
                max / min > 1e4,
                "{}: {min} .. {max} ns spans too little",
                s.corner
            );
        }
    }

    #[test]
    fn table1_produces_four_rows() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 4);
        assert!(rows[3].bursts >= 2, "0.6 V must double-latch");
    }
}
