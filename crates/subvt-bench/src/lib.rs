//! # subvt-bench
//!
//! Experiment harnesses reproducing **every table and figure** of
//! *"Variation Resilient Adaptive Controller for Subthreshold
//! Circuits"* (DATE 2009), plus the ablations DESIGN.md calls out.
//!
//! Each experiment has a data generator here, a printable harness
//! binary (`exp-fig1`, `exp-fig2`, `exp-fig3`, `exp-table1`,
//! `exp-fig6`, `exp-savings`, `exp-ablations`) and a Criterion bench.
//!
//! | Experiment | Generator | Binary |
//! |---|---|---|
//! | Fig. 1 MEP vs corner | [`figures::fig1_mep_corners`] | `exp-fig1` |
//! | Fig. 2 MEP vs temperature | [`figures::fig2_mep_temperature`] | `exp-fig2` |
//! | Fig. 3 delay vs Vdd | [`figures::fig3_delay_corners`] | `exp-fig3` |
//! | Table I quantizer output | [`figures::table1_rows`] | `exp-table1` |
//! | Fig. 6 transient | [`savings::fig6_transient`] | `exp-fig6` |
//! | Sec. IV savings | [`savings::savings_matrix`] | `exp-savings` |
//! | Ablations | [`ablation`] | `exp-ablations` |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod figures;
pub mod jobs;
pub mod report;
pub mod savings;
