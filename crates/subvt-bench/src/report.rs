//! Plain-text table rendering for the experiment harnesses.
//!
//! The implementation moved to [`subvt_scenario::render`] so the
//! `subvt suite` report backend and the `exp-*` binaries share one
//! byte format (the committed `docs/results/*.txt` references are
//! rendered by both); this module re-exports it for the harnesses.

pub use subvt_scenario::render::{f, pct, sci, Table};
