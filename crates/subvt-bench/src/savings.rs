//! Data generators for Fig. 6 and the Sec. IV savings study.

use subvt_exec::Welford;
use subvt_rng::StdRng;

use subvt_core::experiment::{
    savings_experiment, savings_experiment_eval, SavingsReport, Scenario,
};
use subvt_core::study::StudyConfig;
use subvt_core::transient::{fig6_schedule, run_transient, TransientResult};
use subvt_dcdc::converter::ConverterParams;
use subvt_dcdc::filter::ConstantLoad;
use subvt_device::corner::ProcessCorner;
use subvt_device::mosfet::Environment;
use subvt_device::tabulate::{EvalMode, SharedEval};
use subvt_device::technology::Technology;
use subvt_device::units::Amps;
use subvt_device::variation::VariationModel;

/// Runs the Fig. 6 transient (words 19 → 12 → 47 on the switched
/// converter).
pub fn fig6_transient() -> TransientResult {
    run_transient(
        ConverterParams::default(),
        Box::new(ConstantLoad(Amps(5e-6))),
        &fig6_schedule(),
    )
}

/// The corner/temperature scenario matrix of the savings study.
pub fn savings_scenarios() -> Vec<Scenario> {
    let base = Scenario::paper_worked_example();
    vec![
        Scenario {
            name: "tt-design-on-tt-die".into(),
            ..base.clone().with_actual_env(Environment::nominal())
        },
        base.clone(), // tt-design-on-ss-die (the paper's worked example)
        Scenario {
            name: "tt-design-on-ff-die".into(),
            ..base
                .clone()
                .with_actual_env(Environment::at_corner(ProcessCorner::Ff))
        },
        Scenario {
            name: "tt-design-on-fs-die".into(),
            ..base
                .clone()
                .with_actual_env(Environment::at_corner(ProcessCorner::Fs))
        },
        Scenario {
            name: "tt-design-at-85C".into(),
            ..base.clone().with_actual_env(Environment::at_celsius(85.0))
        },
        Scenario {
            name: "tt-design-at-115C".into(),
            ..base.with_actual_env(Environment::at_celsius(115.0))
        },
    ]
}

/// Runs the full savings comparison over the scenario matrix.
pub fn savings_matrix() -> Vec<SavingsReport> {
    savings_scenarios()
        .iter()
        .map(|s| savings_experiment(s).expect("designable scenario"))
        .collect()
}

/// One Monte-Carlo die's savings result.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloRow {
    /// Die index.
    pub die: usize,
    /// Die severity in corner units (+1 ≈ SS, −1 ≈ FF).
    pub corner_units: f64,
    /// LUT compensation the controller settled on (LSBs).
    pub compensation: i16,
    /// Saving vs the fixed-supply baseline.
    pub savings_vs_fixed: f64,
}

/// One die's full savings experiment — a pure function of the die
/// index, its forked stream, and the study's root seed, so it runs on
/// any worker thread. `eval` carries the device surfaces (analytic or
/// tabulated).
fn mc_die(
    model: &VariationModel,
    die: usize,
    mut die_rng: StdRng,
    seed: u64,
    eval: &SharedEval,
) -> MonteCarloRow {
    let variation = model.sample_die(&mut die_rng);
    let mut scenario = Scenario::paper_worked_example().with_actual_env(Environment::nominal());
    scenario.name = format!("mc-die-{die}");
    scenario.die = variation.mean_gate();
    scenario.seed = seed.wrapping_add(die as u64);
    let report = savings_experiment_eval(&scenario, eval).expect("designable");
    MonteCarloRow {
        die,
        corner_units: variation.corner_units(),
        compensation: report.compensated.compensation,
        savings_vs_fixed: report.savings_vs_fixed(),
    }
}

/// Monte-Carlo savings rows for a configured study — the builder-first
/// path. Die count, seed and worker count come from `study`; the
/// device surfaces are built once (before the fan-out) and shared
/// read-only by every worker. Rows are bit-identical for any worker
/// count (and bit-identical to what the removed `savings_monte_carlo_*`
/// entry points computed).
pub fn savings_rows(study: &StudyConfig<'_>, mode: EvalMode) -> Vec<MonteCarloRow> {
    let eval = mode.build(&Technology::st_130nm());
    let model = VariationModel::st_130nm();
    let seed = study.seed();
    study.run_dies("mc-die", |die, die_rng| {
        mc_die(&model, die, die_rng, seed, &eval)
    })
}

/// Streaming aggregate of the Monte-Carlo savings study: everything
/// the fleet reports (mean/spread of savings, corner severity, the
/// compensation range) without ever materializing a per-die row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SavingsSummary {
    /// Dies aggregated.
    pub dies: u64,
    /// Running moments of the per-die saving vs the fixed supply.
    pub savings_vs_fixed: Welford,
    /// Running moments of the die severity in corner units.
    pub corner_units: Welford,
    /// Sum of the LUT compensations (LSB·dies), for the fleet mean.
    pub compensation_sum: i64,
    /// Most negative LUT compensation seen.
    pub compensation_min: i16,
    /// Most positive LUT compensation seen.
    pub compensation_max: i16,
}

impl SavingsSummary {
    /// The identity aggregate.
    pub fn empty() -> SavingsSummary {
        SavingsSummary {
            dies: 0,
            savings_vs_fixed: Welford::new(),
            corner_units: Welford::new(),
            compensation_sum: 0,
            compensation_min: i16::MAX,
            compensation_max: i16::MIN,
        }
    }

    /// Folds one die's row into the aggregate.
    pub fn absorb(&mut self, row: &MonteCarloRow) {
        self.dies += 1;
        self.savings_vs_fixed.push(row.savings_vs_fixed);
        self.corner_units.push(row.corner_units);
        self.compensation_sum += i64::from(row.compensation);
        self.compensation_min = self.compensation_min.min(row.compensation);
        self.compensation_max = self.compensation_max.max(row.compensation);
    }

    /// Merges a later aggregate into this one (chunk-order merge).
    pub fn merge(&mut self, other: SavingsSummary) {
        self.dies += other.dies;
        self.savings_vs_fixed.merge(other.savings_vs_fixed);
        self.corner_units.merge(other.corner_units);
        self.compensation_sum += other.compensation_sum;
        self.compensation_min = self.compensation_min.min(other.compensation_min);
        self.compensation_max = self.compensation_max.max(other.compensation_max);
    }

    /// Mean saving vs the fixed supply, if any dies were aggregated.
    pub fn mean_savings(&self) -> Option<f64> {
        self.savings_vs_fixed.mean()
    }

    /// Mean LUT compensation in LSB.
    pub fn mean_compensation(&self) -> Option<f64> {
        (self.dies > 0).then(|| self.compensation_sum as f64 / self.dies as f64)
    }
}

/// Streaming Monte-Carlo savings: [`savings_rows`] folded die-by-die
/// through [`StudyConfig::fold_dies`], in constant memory. The
/// fold/merge sequence is a pure function of the die count, so the
/// result is bit-identical for any worker count — and to folding the
/// materialized [`savings_rows`] through the same chunk-ordered merge.
pub fn savings_summary(study: &StudyConfig<'_>, mode: EvalMode) -> SavingsSummary {
    let eval = mode.build(&Technology::st_130nm());
    let model = VariationModel::st_130nm();
    let seed = study.seed();
    study.fold_dies(
        "mc-die",
        SavingsSummary::empty,
        |acc, die, die_rng| acc.absorb(&mc_die(&model, die, die_rng, seed, &eval)),
        SavingsSummary::merge,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_exec::{par_fold_chunked, ExecConfig};

    #[test]
    fn streaming_summary_matches_the_materialized_rows() {
        let rows = savings_rows(&StudyConfig::new(10, 7), EvalMode::Analytic);
        // The reference replays the engine's own chunk geometry over
        // the materialized rows, so every Welford push/merge rounds
        // identically.
        let reference = par_fold_chunked(
            &ExecConfig::serial(),
            rows.len(),
            SavingsSummary::empty,
            |acc, i| acc.absorb(&rows[i]),
            SavingsSummary::merge,
        );
        assert_eq!(reference.dies, 10);
        assert!(reference.mean_savings().unwrap() > 0.0);
        assert!(reference.compensation_min <= reference.compensation_max);
        for jobs in [1, 2, 7] {
            let study = StudyConfig::new(10, 7).exec(ExecConfig::with_jobs(jobs));
            let got = savings_summary(&study, EvalMode::Analytic);
            assert_eq!(got, reference, "jobs={jobs}");
            // PartialEq on f64 fields is too lenient for the contract
            // (it would accept -0.0 vs 0.0); pin the moments in bits.
            assert_eq!(
                got.savings_vs_fixed.mean().unwrap().to_bits(),
                reference.savings_vs_fixed.mean().unwrap().to_bits(),
            );
        }
    }

    #[test]
    fn matrix_covers_six_scenarios() {
        let scenarios = savings_scenarios();
        assert_eq!(scenarios.len(), 6);
        let names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"tt-design-on-ss-die"));
        assert!(names.contains(&"tt-design-at-85C"));
    }

    #[test]
    fn every_scenario_saves_energy_vs_fixed() {
        for report in savings_matrix() {
            let s = report.savings_vs_fixed();
            // Corner scenarios comfortably clear 30 %; the pure
            // temperature scenarios are dragged down by the
            // delay-vs-MEP divergence (see EXPERIMENTS.md) but still
            // beat the fixed supply.
            let floor = if report.scenario.contains("85C") || report.scenario.contains("115C") {
                0.1
            } else {
                0.3
            };
            assert!(
                s > floor,
                "{}: only {:.1}% savings",
                report.scenario,
                s * 100.0
            );
        }
    }

    #[test]
    fn tabulated_mode_tracks_the_analytic_rows() {
        let study = StudyConfig::new(4, 7).exec(ExecConfig::with_jobs(2));
        let analytic = savings_rows(&study, EvalMode::Analytic);
        let tabulated = savings_rows(&study, EvalMode::Tabulated);
        assert_eq!(analytic.len(), tabulated.len());
        for (a, t) in analytic.iter().zip(&tabulated) {
            assert_eq!(a.die, t.die);
            assert_eq!(
                a.corner_units, t.corner_units,
                "die sampling must not change"
            );
            assert_eq!(a.compensation, t.compensation, "die {}", a.die);
            assert!(
                (a.savings_vs_fixed - t.savings_vs_fixed).abs() < 0.03,
                "die {}: {} vs {}",
                a.die,
                a.savings_vs_fixed,
                t.savings_vs_fixed
            );
        }
    }

    #[test]
    fn slow_dies_compensate_up_fast_dies_down() {
        let rows = savings_rows(&StudyConfig::new(8, 7), EvalMode::Analytic);
        assert_eq!(rows.len(), 8);
        for row in &rows {
            if row.corner_units > 0.8 {
                assert!(
                    row.compensation >= 1,
                    "slow die {} comp {}",
                    row.die,
                    row.compensation
                );
            }
            if row.corner_units < -0.8 {
                assert!(
                    row.compensation <= -1,
                    "fast die {} comp {}",
                    row.die,
                    row.compensation
                );
            }
            assert!(row.savings_vs_fixed > 0.2);
        }
    }
}
