//! Ablation studies over the design choices DESIGN.md calls out:
//! code width (6 bits), Ref_clk strategy, pulse-shrink β, FIFO depth.

use subvt_core::controller::ControllerConfig;
use subvt_core::experiment::{run_scenario, Scenario};
use subvt_core::SupplyPolicy;
use subvt_device::energy::CircuitProfile;
use subvt_device::mep::find_mep;
use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_device::units::{Seconds, Volts};
use subvt_loads::workload::WorkloadPattern;
use subvt_tdc::delay_line::{CellKind, DelayLine};
use subvt_tdc::pulse::{PulseShrinkRing, PulseShrinkStage};
use subvt_tdc::quantizer::{Quantizer, RefClock};

/// One row of the code-width ablation.
#[derive(Debug, Clone, Copy)]
pub struct BitsRow {
    /// Code width in bits.
    pub bits: u8,
    /// Converter LSB at this width (mV).
    pub lsb_mv: f64,
    /// Worst quantization distance from the true MEP voltage across
    /// the studied corners (mV).
    pub worst_error_mv: f64,
    /// Worst relative energy overhead vs. sitting exactly on the MEP.
    pub worst_energy_overhead: f64,
    /// System-cycle length implied by the PWM terminal count at 64 MHz
    /// (µs) — the controller's reaction latency.
    pub system_cycle_us: f64,
}

/// Sweeps the voltage-code width (the paper fixes 6 bits as "the best
/// resolution and best tradeoffs").
pub fn ablation_bits() -> Vec<BitsRow> {
    let tech = Technology::st_130nm();
    let ring = CircuitProfile::ring_oscillator();
    let corners = [
        Environment::nominal(),
        Environment::at_corner(subvt_device::corner::ProcessCorner::Ss),
        Environment::at_corner(subvt_device::corner::ProcessCorner::Fs),
    ];
    let meps: Vec<_> = corners
        .iter()
        .map(|&env| find_mep(&tech, &ring, env, Volts(0.12), Volts(0.6)).expect("valid range"))
        .collect();

    (3..=9)
        .map(|bits| {
            let lsb = 1.2 / f64::from(1u32 << bits);
            let mut worst_error = 0.0f64;
            let mut worst_overhead = 0.0f64;
            for (mep, env) in meps.iter().zip(&corners) {
                let word = (mep.vopt.volts() / lsb).round();
                let quantized = Volts(word * lsb);
                worst_error = worst_error.max((quantized - mep.vopt).abs().volts() * 1e3);
                if let Ok(e) = subvt_device::energy::energy_per_cycle(&tech, &ring, quantized, *env)
                {
                    let overhead = e.total().value() / mep.energy.value() - 1.0;
                    worst_overhead = worst_overhead.max(overhead);
                }
            }
            BitsRow {
                bits,
                lsb_mv: lsb * 1e3,
                worst_error_mv: worst_error,
                worst_energy_overhead: worst_overhead,
                system_cycle_us: f64::from(1u32 << bits) / 64.0,
            }
        })
        .collect()
}

/// One row of the Ref_clk ablation.
#[derive(Debug, Clone, Copy)]
pub struct RefClkRow {
    /// Ref_clk period (ns); `None` = the per-band adaptive clock.
    pub period_ns: Option<f64>,
    /// Lowest supply (mV) at which the quantizer word is still a
    /// single clean burst.
    pub min_reliable_mv: Option<f64>,
    /// Highest supply (mV) at which it is reliable.
    pub max_reliable_mv: Option<f64>,
}

/// Sweeps the Ref_clk strategy: fixed periods (the paper's 14 ns
/// direct method) vs the per-band "much lower frequency" method.
pub fn ablation_refclk() -> Vec<RefClkRow> {
    let tech = Technology::st_130nm();
    let env = Environment::nominal();
    let line = DelayLine::new(64, CellKind::Inverter);
    let voltages: Vec<Volts> = (4..=63).map(|w| Volts(f64::from(w) * 0.01875)).collect();

    let reliable_at = |period: Seconds, anchor: Seconds, v: Volts| -> bool {
        let Ok(cell) = line.cell_delay(&tech, v, env) else {
            return false;
        };
        let q = Quantizer::new(64, RefClock::square(period), anchor);
        q.sample(cell).encode().is_ok()
    };

    let mut rows = Vec::new();
    for period_ns in [14.0, 50.0, 200.0, 1000.0] {
        let period = Seconds::from_nanos(period_ns);
        let anchor = Seconds::from_nanos(period_ns * 0.43);
        let reliable: Vec<f64> = voltages
            .iter()
            .filter(|&&v| reliable_at(period, anchor, v))
            .map(|v| v.millivolts())
            .collect();
        rows.push(RefClkRow {
            period_ns: Some(period_ns),
            min_reliable_mv: reliable.first().copied(),
            max_reliable_mv: reliable.last().copied(),
        });
    }
    // Per-band method: period = 256 cells, anchor = 31.5 cells.
    let reliable: Vec<f64> = voltages
        .iter()
        .filter(|&&v| {
            let Ok(cell) = line.cell_delay(&tech, v, env) else {
                return false;
            };
            reliable_at(
                Seconds(cell.value() * 256.0),
                Seconds(cell.value() * 31.5),
                v,
            )
        })
        .map(|v| v.millivolts())
        .collect();
    rows.push(RefClkRow {
        period_ns: None,
        min_reliable_mv: reliable.first().copied(),
        max_reliable_mv: reliable.last().copied(),
    });
    rows
}

/// One row of the pulse-shrink β ablation.
#[derive(Debug, Clone, Copy)]
pub struct ShrinkRow {
    /// Aspect-ratio factor β.
    pub beta: f64,
    /// Width change per circulation (ps; negative = expands).
    pub shrink_ps: f64,
    /// Circulations to absorb a 7 ns reference pulse (`None` if the
    /// pulse never vanishes).
    pub cycles_for_7ns: Option<u32>,
}

/// Sweeps β through Eq. 1 (β > 1 shrinks, β < 1 expands).
pub fn ablation_shrink() -> Vec<ShrinkRow> {
    [0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.5]
        .iter()
        .map(|&beta| {
            let stage = PulseShrinkStage::nominal_130nm().with_beta(beta);
            let ring = PulseShrinkRing::new(stage, Seconds::from_picos(10.0));
            ShrinkRow {
                beta,
                shrink_ps: stage.width_change().picos(),
                cycles_for_7ns: ring
                    .circulate(Seconds::from_nanos(7.0), 1_000_000)
                    .map(|r| r.cycles),
            }
        })
        .collect()
}

/// One row of the FIFO-depth ablation.
#[derive(Debug, Clone, Copy)]
pub struct FifoRow {
    /// FIFO capacity.
    pub depth: usize,
    /// Mean arrivals per cycle offered.
    pub arrivals_per_cycle: f64,
    /// Fraction of offered items lost.
    pub loss_rate: f64,
    /// Mean supply voltage the controller chose (mV).
    pub mean_vout_mv: f64,
}

/// Sweeps FIFO depth × arrival rate under the full controller.
pub fn ablation_fifo() -> Vec<FifoRow> {
    let mut rows = Vec::new();
    for depth in [4usize, 8, 16, 32, 64] {
        for rate in [1u32, 2, 4] {
            let mut scenario =
                Scenario::paper_worked_example().with_workload(WorkloadPattern::Poisson {
                    mean: f64::from(rate),
                });
            scenario.cycles = 800;
            scenario.config = ControllerConfig {
                fifo_capacity: depth,
                ..ControllerConfig::default()
            };
            let summary =
                run_scenario(&scenario, SupplyPolicy::AdaptiveCompensated).expect("designable");
            rows.push(FifoRow {
                depth,
                arrivals_per_cycle: f64::from(rate),
                loss_rate: summary.loss_rate(),
                mean_vout_mv: summary.mean_vout.millivolts(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_bits_is_near_the_knee() {
        let rows = ablation_bits();
        let at = |bits: u8| rows.iter().find(|r| r.bits == bits).copied().unwrap();
        // Energy overhead collapses going 3→6 bits, but 6→9 buys little.
        let gain_3_to_6 = at(3).worst_energy_overhead - at(6).worst_energy_overhead;
        let gain_6_to_9 = at(6).worst_energy_overhead - at(9).worst_energy_overhead;
        assert!(
            gain_3_to_6 > 5.0 * gain_6_to_9.max(1e-4),
            "knee not at 6 bits: {gain_3_to_6} vs {gain_6_to_9}"
        );
        assert!((at(6).lsb_mv - 18.75).abs() < 1e-9);
        assert!(at(6).worst_energy_overhead < 0.05);
    }

    #[test]
    fn fixed_fast_refclk_fails_in_subthreshold() {
        let rows = ablation_refclk();
        let fixed14 = rows[0];
        assert_eq!(fixed14.period_ns, Some(14.0));
        // The 14 ns clock cannot cover the subthreshold region...
        if let Some(min) = fixed14.min_reliable_mv {
            assert!(min > 300.0, "14 ns clock reliable down to {min} mV?");
        }
        // ...while the per-band method covers everything measurable.
        let adaptive = rows.last().unwrap();
        assert!(adaptive.period_ns.is_none());
        let min = adaptive.min_reliable_mv.unwrap();
        assert!(min < 150.0, "adaptive method floor {min} mV");
    }

    #[test]
    fn shrink_only_for_beta_above_one() {
        for row in ablation_shrink() {
            if row.beta > 1.0 {
                assert!(row.shrink_ps > 0.0);
                assert!(row.cycles_for_7ns.is_some());
            } else {
                assert!(row.cycles_for_7ns.is_none());
            }
        }
    }

    #[test]
    fn bigger_beta_converts_faster() {
        let rows = ablation_shrink();
        let c12 = rows
            .iter()
            .find(|r| r.beta == 1.2)
            .unwrap()
            .cycles_for_7ns
            .unwrap();
        let c15 = rows
            .iter()
            .find(|r| r.beta == 1.5)
            .unwrap()
            .cycles_for_7ns
            .unwrap();
        assert!(c15 < c12);
    }

    #[test]
    fn deeper_fifo_loses_less() {
        let rows = ablation_fifo();
        let loss = |depth: usize, rate: f64| {
            rows.iter()
                .find(|r| r.depth == depth && r.arrivals_per_cycle == rate)
                .unwrap()
                .loss_rate
        };
        assert!(loss(64, 4.0) <= loss(4, 4.0));
    }

    #[test]
    fn heavier_arrivals_raise_the_voltage() {
        let rows = ablation_fifo();
        let vout = |rate: f64| {
            rows.iter()
                .find(|r| r.depth == 64 && r.arrivals_per_cycle == rate)
                .unwrap()
                .mean_vout_mv
        };
        assert!(vout(4.0) > vout(1.0), "{} vs {}", vout(4.0), vout(1.0));
    }
}
