//! The rate controller: queue length → desired 6-bit voltage word.
//!
//! Paper Sec. III: "there is a direct relationship between the queue
//! length and the processing rate … It is implemented as a 6-bit look
//! up table. … The rate controller consists of only an adder and a
//! LUT, hence area consumed by the rate controller is not significant."

use std::fmt;

use subvt_device::delay::GateMismatch;
use subvt_device::mep::{find_mep, find_mep_eval};
use subvt_device::mosfet::Environment;
use subvt_device::tabulate::DeviceEval;
use subvt_device::technology::Technology;
use subvt_device::units::{Hertz, Volts};
use subvt_digital::lut::{VoltageLut, VoltageWord};
use subvt_loads::load::CircuitLoad;
use subvt_tdc::sensor::{voltage_word, word_voltage};

/// Error from rate-controller design.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignError {
    /// No 6-bit word gives the load the requested processing rate.
    RateUnreachable {
        /// The unreachable rate.
        rate: Hertz,
    },
    /// The MEP search failed (supply range invalid for the load).
    MepSearchFailed,
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::RateUnreachable { rate } => {
                write!(f, "no supply word reaches {rate}")
            }
            DesignError::MepSearchFailed => write!(f, "minimum-energy-point search failed"),
        }
    }
}

impl std::error::Error for DesignError {}

/// The rate controller: a designed LUT plus the compensation shift.
#[derive(Debug, Clone, PartialEq)]
pub struct RateController {
    lut: VoltageLut,
}

impl RateController {
    /// Wraps an explicit LUT.
    pub fn new(lut: VoltageLut) -> RateController {
        RateController { lut }
    }

    /// Designs the LUT for a load at a design environment:
    ///
    /// * the empty-queue band issues the load's MEP word (idle work is
    ///   done at minimum energy);
    /// * each busier band issues the smallest word at which the load
    ///   sustains the band's target processing rate.
    ///
    /// `band_rates` are `(queue_bound, required_rate)` pairs with
    /// ascending bounds; queue lengths above the last bound use the
    /// last (fastest) rate.
    ///
    /// # Errors
    ///
    /// [`DesignError::RateUnreachable`] if the fastest word cannot
    /// sustain a requested rate; [`DesignError::MepSearchFailed`] if
    /// the MEP cannot be located.
    pub fn design(
        tech: &Technology,
        load: &dyn CircuitLoad,
        design_env: Environment,
        band_rates: &[(usize, Hertz)],
    ) -> Result<RateController, DesignError> {
        let mep = find_mep(
            tech,
            load.profile(),
            design_env,
            tech.min_vdd + Volts(0.02),
            Volts(0.9),
        )
        .map_err(|_| DesignError::MepSearchFailed)?;
        let mep_word = voltage_word(mep.vopt);

        let mut bounds = Vec::with_capacity(band_rates.len());
        let mut words = vec![mep_word.max(1)];
        for &(bound, rate) in band_rates {
            bounds.push(bound);
            let word = Self::word_for_rate(tech, load, design_env, rate)?;
            // Never slower than the MEP word: the MEP is the energy
            // floor, not a performance ceiling.
            words.push(word.max(mep_word));
        }
        let lut = VoltageLut::new(bounds, words).expect("designed LUT is well-formed");
        Ok(RateController { lut })
    }

    /// [`RateController::design`] through a [`DeviceEval`]: the MEP
    /// search and the per-band rate sweep run on the evaluator's
    /// surfaces (tabulated surfaces make repeated designs cheap in
    /// Monte-Carlo studies).
    ///
    /// # Errors
    ///
    /// As [`RateController::design`].
    pub fn design_eval(
        eval: &dyn DeviceEval,
        load: &dyn CircuitLoad,
        design_env: Environment,
        band_rates: &[(usize, Hertz)],
    ) -> Result<RateController, DesignError> {
        let tech = eval.technology();
        let mep = find_mep_eval(
            eval,
            load.profile(),
            design_env,
            tech.min_vdd + Volts(0.02),
            Volts(0.9),
        )
        .map_err(|_| DesignError::MepSearchFailed)?;
        let mep_word = voltage_word(mep.vopt);

        let mut bounds = Vec::with_capacity(band_rates.len());
        let mut words = vec![mep_word.max(1)];
        for &(bound, rate) in band_rates {
            bounds.push(bound);
            let word = Self::word_for_rate_eval(eval, load, design_env, rate)?;
            words.push(word.max(mep_word));
        }
        let lut = VoltageLut::new(bounds, words).expect("designed LUT is well-formed");
        Ok(RateController { lut })
    }

    /// Designs the LUT automatically from workload statistics: band
    /// bounds are placed at fractions of the FIFO depth (so every band
    /// is reachable — the design rule the FIFO-depth ablation exposes)
    /// and each band's rate target scales from the workload's mean
    /// arrival rate to a peak-absorbing rate at the top band.
    ///
    /// `cycle` is the system-cycle length the arrival counts are per.
    ///
    /// # Errors
    ///
    /// As [`RateController::design`].
    pub fn design_auto(
        tech: &Technology,
        load: &dyn CircuitLoad,
        design_env: Environment,
        pattern: &subvt_loads::workload::WorkloadPattern,
        fifo_depth: usize,
        cycle: subvt_device::units::Seconds,
    ) -> Result<RateController, DesignError> {
        let mean_rate = pattern.mean_rate() / cycle.value();
        // Three bands inside the FIFO: at 1/8, 1/4 and 1/2 of depth,
        // with rate targets 1×, 4× and 16× the mean (the top band must
        // out-run any sustained burst before the FIFO overflows).
        let b1 = (fifo_depth / 8).max(1);
        let b2 = (fifo_depth / 4).max(b1 + 1);
        let b3 = (fifo_depth / 2).max(b2 + 1);
        let bands = [
            (b1, Hertz(mean_rate.max(1.0))),
            (b2, Hertz(mean_rate.max(1.0) * 4.0)),
            (b3, Hertz(mean_rate.max(1.0) * 16.0)),
        ];
        RateController::design(tech, load, design_env, &bands)
    }

    /// Smallest 6-bit word at which `load` sustains `rate`.
    ///
    /// # Errors
    ///
    /// [`DesignError::RateUnreachable`] when even word 63 is too slow.
    pub fn word_for_rate(
        tech: &Technology,
        load: &dyn CircuitLoad,
        env: Environment,
        rate: Hertz,
    ) -> Result<VoltageWord, DesignError> {
        for word in 1u8..64 {
            let v = word_voltage(word);
            if let Ok(max) = load.max_rate(tech, v, env, GateMismatch::NOMINAL) {
                if max.value() >= rate.value() {
                    return Ok(word);
                }
            }
        }
        Err(DesignError::RateUnreachable { rate })
    }

    /// [`RateController::word_for_rate`] through a [`DeviceEval`].
    ///
    /// # Errors
    ///
    /// [`DesignError::RateUnreachable`] when even word 63 is too slow.
    pub fn word_for_rate_eval(
        eval: &dyn DeviceEval,
        load: &dyn CircuitLoad,
        env: Environment,
        rate: Hertz,
    ) -> Result<VoltageWord, DesignError> {
        for word in 1u8..64 {
            let v = word_voltage(word);
            if let Ok(max) = load.max_rate_with(eval, v, env, GateMismatch::NOMINAL) {
                if max.value() >= rate.value() {
                    return Ok(word);
                }
            }
        }
        Err(DesignError::RateUnreachable { rate })
    }

    /// Desired word for the current queue length, including any applied
    /// compensation shift.
    pub fn desired_word(&self, queue_length: usize) -> VoltageWord {
        self.lut.lookup(queue_length)
    }

    /// Applies a compensation shift to the whole LUT (the paper's
    /// signature-driven correction).
    pub fn apply_compensation(&mut self, delta: i16) {
        self.lut.apply_shift(delta);
    }

    /// Net compensation applied so far.
    pub fn compensation(&self) -> i16 {
        self.lut.shift()
    }

    /// The underlying LUT.
    pub fn lut(&self) -> &VoltageLut {
        &self.lut
    }

    /// Snapshots the designed LUT as the golden copy for later
    /// [`RateController::scrub`] passes — the shadow register a
    /// rad-tolerant implementation would keep.
    pub fn checkpoint(&self) -> LutCheckpoint {
        LutCheckpoint {
            lut: self.lut.clone(),
        }
    }

    /// Compares the live *designed band words* against a checkpoint and
    /// restores any that diverged (an SEU scrub cycle). The
    /// compensation shift is live loop state, not a design-time
    /// constant, so it is left untouched — scrubbing never undoes a
    /// legitimate correction. Returns `true` when an upset was found
    /// and repaired.
    pub fn scrub(&mut self, golden: &LutCheckpoint) -> bool {
        let mut repaired = false;
        for band in 0..golden.lut.bands() {
            let want = golden.lut.raw_word(band);
            if self.lut.raw_word(band) != want {
                self.lut.set_word(band, want);
                repaired = true;
            }
        }
        repaired
    }

    /// Flips bit `bit` of band `band`'s stored word — the fault
    /// injector's hook for a LUT-entry single-event upset. The result
    /// is masked to the 6-bit word range.
    pub fn upset_word(&mut self, band: usize, bit: u8) {
        let word = self.lut.raw_word(band) ^ (1 << (bit % 6));
        self.lut.set_word(band, word & 0x3f);
    }
}

/// Golden copy of a designed LUT, held outside the upset-prone
/// register file. Created by [`RateController::checkpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct LutCheckpoint {
    lut: VoltageLut,
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_loads::ring_oscillator::RingOscillator;

    fn designed() -> (Technology, RateController) {
        let tech = Technology::st_130nm();
        let ring = RingOscillator::paper_circuit();
        let rc = RateController::design(
            &tech,
            &ring,
            Environment::nominal(),
            &[(8, Hertz(50e3)), (16, Hertz(500e3)), (32, Hertz(5e6))],
        )
        .expect("designable");
        (tech, rc)
    }

    #[test]
    fn idle_band_issues_the_mep_word() {
        let (tech, rc) = designed();
        let ring = RingOscillator::paper_circuit();
        let mep = find_mep(
            &tech,
            ring.profile(),
            Environment::nominal(),
            Volts(0.12),
            Volts(0.9),
        )
        .unwrap();
        let idle = rc.desired_word(0);
        assert_eq!(idle, voltage_word(mep.vopt));
        // The paper's MEP at TT is 200 mV ≈ word 11.
        assert_eq!(idle, 11);
    }

    #[test]
    fn words_rise_with_queue_pressure() {
        let (_, rc) = designed();
        let w0 = rc.desired_word(0);
        let w1 = rc.desired_word(10);
        let w2 = rc.desired_word(20);
        let w3 = rc.desired_word(40);
        assert!(w0 <= w1 && w1 <= w2 && w2 <= w3);
        assert!(w3 > w0, "busy band must run faster than idle");
    }

    #[test]
    fn word_for_rate_is_minimal() {
        let tech = Technology::st_130nm();
        let ring = RingOscillator::paper_circuit();
        let env = Environment::nominal();
        let word = RateController::word_for_rate(&tech, &ring, env, Hertz(1e6)).unwrap();
        // The chosen word sustains the rate...
        let ok = ring
            .max_rate(&tech, word_voltage(word), env, GateMismatch::NOMINAL)
            .unwrap();
        assert!(ok.value() >= 1e6);
        // ...and the next-lower word does not.
        let below = ring
            .max_rate(&tech, word_voltage(word - 1), env, GateMismatch::NOMINAL)
            .unwrap();
        assert!(below.value() < 1e6);
    }

    #[test]
    fn unreachable_rate_is_an_error() {
        let tech = Technology::st_130nm();
        let ring = RingOscillator::paper_circuit();
        let err = RateController::word_for_rate(&tech, &ring, Environment::nominal(), Hertz(1e12))
            .unwrap_err();
        assert!(matches!(err, DesignError::RateUnreachable { .. }));
        assert!(err.to_string().contains("no supply word"));
    }

    #[test]
    fn auto_design_fits_its_bands_inside_the_fifo() {
        use subvt_loads::workload::WorkloadPattern;
        let tech = Technology::st_130nm();
        let ring = RingOscillator::paper_circuit();
        let pattern = WorkloadPattern::Poisson { mean: 0.5 };
        for depth in [16usize, 32, 64] {
            let rc = RateController::design_auto(
                &tech,
                &ring,
                Environment::nominal(),
                &pattern,
                depth,
                subvt_device::units::Seconds::from_micros(1.0),
            )
            .expect("designable");
            // The top band must be reachable: its bound sits below the
            // FIFO depth, so queue pressure can actually select it.
            assert!(rc.lut().band_of(depth) == rc.lut().bands() - 1);
            assert!(rc.lut().band_of(depth / 2 + 1) == rc.lut().bands() - 1);
            // Words are monotone and start at the MEP word.
            assert_eq!(rc.desired_word(0), 11);
            assert!(rc.desired_word(depth) >= rc.desired_word(0));
        }
    }

    #[test]
    fn auto_design_carries_the_offered_load_without_loss() {
        use crate::controller::{AdaptiveController, ControllerConfig, SupplyKind, SupplyPolicy};
        use subvt_loads::workload::{WorkloadPattern, WorkloadSource};
        let tech = Technology::st_130nm();
        let ring = RingOscillator::paper_circuit();
        let pattern = WorkloadPattern::Poisson { mean: 0.5 };
        let depth = 32usize;
        let rc = RateController::design_auto(
            &tech,
            &ring,
            Environment::nominal(),
            &pattern,
            depth,
            subvt_device::units::Seconds::from_micros(1.0),
        )
        .expect("designable");
        let config = ControllerConfig {
            fifo_capacity: depth,
            ..ControllerConfig::default()
        };
        let mut c = AdaptiveController::new(
            tech,
            ring,
            rc,
            Environment::nominal(),
            Environment::nominal(),
            subvt_device::delay::GateMismatch::NOMINAL,
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
            config,
        );
        let mut wl = WorkloadSource::new(pattern);
        let mut rng = subvt_rng::StdRng::seed_from_u64(17);
        let s = c.run(&mut wl, 2_000, &mut rng);
        assert!(
            s.loss_rate() < 0.01,
            "auto-designed LUT lost {:.2}% of items",
            s.loss_rate() * 100.0
        );
    }

    #[test]
    fn eval_design_reproduces_the_analytic_lut() {
        use subvt_device::tabulate::{AnalyticEval, TabulatedEval};
        let tech = Technology::st_130nm();
        let ring = RingOscillator::paper_circuit();
        let env = Environment::nominal();
        let bands = [(8, Hertz(50e3)), (16, Hertz(500e3)), (32, Hertz(5e6))];
        let direct = RateController::design(&tech, &ring, env, &bands).unwrap();
        let analytic = AnalyticEval::new(&tech);
        let via_analytic = RateController::design_eval(&analytic, &ring, env, &bands).unwrap();
        assert_eq!(
            direct, via_analytic,
            "analytic eval must design identically"
        );
        // LUT words quantize to 18.75 mV LSBs, far coarser than the
        // interpolation budget: the tabulated design picks the same LUT.
        let tabulated = TabulatedEval::new(&tech);
        let via_table = RateController::design_eval(&tabulated, &ring, env, &bands).unwrap();
        assert_eq!(direct, via_table, "tabulated design diverged");
    }

    #[test]
    fn scrub_repairs_an_injected_lut_upset() {
        let (_, mut rc) = designed();
        let golden = rc.checkpoint();
        assert!(!rc.scrub(&golden), "pristine LUT needs no repair");
        let before = rc.desired_word(0);
        rc.upset_word(0, 4);
        assert_ne!(rc.desired_word(0), before, "upset must be visible");
        assert!(rc.scrub(&golden), "scrub detects the upset");
        assert_eq!(rc.desired_word(0), before, "scrub restores the word");
        assert!(!rc.scrub(&golden));
    }

    #[test]
    fn scrub_never_undoes_a_legitimate_correction() {
        let (_, mut rc) = designed();
        let golden = rc.checkpoint();
        // Compensation landed after the checkpoint: it is live loop
        // state, and a scrub pass must leave it alone.
        rc.apply_compensation(2);
        assert!(!rc.scrub(&golden), "shift alone is not an upset");
        assert_eq!(rc.compensation(), 2);
        rc.upset_word(1, 5);
        assert!(rc.scrub(&golden));
        assert_eq!(rc.compensation(), 2, "shift survives the scrub");
    }

    #[test]
    fn upset_word_stays_in_the_word_range() {
        let (_, mut rc) = designed();
        for band in 0..rc.lut().bands() {
            for bit in 0..6 {
                rc.upset_word(band, bit);
                assert!(rc.lut().raw_word(band) < 64);
                rc.upset_word(band, bit); // flip back
            }
        }
        // Bit indices wrap into the register width.
        let golden = rc.checkpoint();
        rc.upset_word(0, 6);
        rc.upset_word(0, 0);
        assert!(!rc.scrub(&golden), "bit 6 aliases bit 0");
    }

    #[test]
    fn compensation_shifts_every_band() {
        let (_, mut rc) = designed();
        let before: Vec<VoltageWord> = [0, 10, 20, 40]
            .iter()
            .map(|&q| rc.desired_word(q))
            .collect();
        rc.apply_compensation(1);
        assert_eq!(rc.compensation(), 1);
        for (&q, &w) in [0usize, 10, 20, 40].iter().zip(&before) {
            assert_eq!(rc.desired_word(q), w + 1);
        }
    }
}
