//! Shared-rail analysis: several loads on one DC-DC output.
//!
//! The paper's controller drives a single load. A real SoC hangs many
//! blocks off one converter, and the rail must satisfy the *fastest*
//! demand among them while every other block burns energy above its
//! own optimum — the classic argument for (and cost model of) voltage
//! islands. This module prices that compromise: one shared rail vs
//! per-load rails, for a set of loads with individual rate demands.

use subvt_device::delay::{GateMismatch, SupplyRangeError};
use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_device::units::{Hertz, Joules, Volts};
use subvt_digital::lut::VoltageWord;
use subvt_loads::load::CircuitLoad;
use subvt_tdc::sensor::word_voltage;

/// One block on the rail: a load plus its required rate.
#[derive(Debug)]
pub struct RailClient<'a> {
    /// The circuit.
    pub load: &'a dyn CircuitLoad,
    /// Required operation rate.
    pub rate: Hertz,
}

/// Result of the shared-vs-island comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RailComparison {
    /// The word a shared rail must run at (max of the per-load words).
    pub shared_word: VoltageWord,
    /// Per-load words an island design would use.
    pub island_words: Vec<VoltageWord>,
    /// Energy per second on the shared rail.
    pub shared_power: Joules,
    /// Energy per second with per-load islands.
    pub island_power: Joules,
    /// Per-client `(shared, island)` powers, in client order.
    pub client_powers: Vec<(Joules, Joules)>,
}

impl RailComparison {
    /// Fractional energy penalty of sharing (`shared/island − 1`).
    pub fn sharing_penalty(&self) -> f64 {
        if self.island_power.value() == 0.0 {
            return 0.0;
        }
        self.shared_power.value() / self.island_power.value() - 1.0
    }

    /// Per-client sharing penalty (the compromise is invisible in the
    /// total when one client dominates the power budget).
    pub fn client_penalty(&self, index: usize) -> f64 {
        let (shared, island) = self.client_powers[index];
        if island.value() == 0.0 {
            0.0
        } else {
            shared.value() / island.value() - 1.0
        }
    }
}

/// Smallest word at which `load` sustains `rate`, floored at the
/// load's MEP word.
fn word_for(
    tech: &Technology,
    load: &dyn CircuitLoad,
    env: Environment,
    rate: Hertz,
) -> Result<VoltageWord, SupplyRangeError> {
    let mep = subvt_device::mep::find_mep(
        tech,
        load.profile(),
        env,
        tech.min_vdd + Volts(0.02),
        Volts(0.9),
    )?;
    let mep_word = ((mep.vopt.volts() / 0.018_75).ceil().clamp(1.0, 63.0)) as VoltageWord;
    for word in mep_word..=63 {
        let v = word_voltage(word);
        if let Ok(max) = load.max_rate(tech, v, env, GateMismatch::NOMINAL) {
            if max.value() >= rate.value() {
                return Ok(word);
            }
        }
    }
    Ok(63)
}

/// Power of `load` meeting `rate` at supply `v` (per-op energy at the
/// offered rate plus gated idle leakage).
fn power_at(
    tech: &Technology,
    load: &dyn CircuitLoad,
    env: Environment,
    v: Volts,
    rate: Hertz,
    idle_retention: f64,
) -> Result<Joules, SupplyRangeError> {
    let e = load.energy_per_op(tech, v, env)?;
    let busy = (rate.value() * e.cycle_time.value()).min(1.0);
    let idle_power = e.leak_current.value() * v.volts() * idle_retention;
    Ok(Joules(
        rate.value() * e.total().value() + idle_power * (1.0 - busy),
    ))
}

/// Compares one shared rail against per-load islands for `clients`.
///
/// # Errors
///
/// Returns [`SupplyRangeError`] when any load's demand is unreachable.
///
/// # Panics
///
/// Panics if `clients` is empty.
pub fn compare_shared_rail(
    tech: &Technology,
    env: Environment,
    clients: &[RailClient<'_>],
    idle_retention: f64,
) -> Result<RailComparison, SupplyRangeError> {
    assert!(!clients.is_empty(), "need at least one rail client");
    let mut island_words = Vec::with_capacity(clients.len());
    for c in clients {
        island_words.push(word_for(tech, c.load, env, c.rate)?);
    }
    let shared_word = *island_words.iter().max().expect("non-empty");

    let mut shared_power = 0.0;
    let mut island_power = 0.0;
    let mut client_powers = Vec::with_capacity(clients.len());
    for (c, &w) in clients.iter().zip(&island_words) {
        let shared = power_at(
            tech,
            c.load,
            env,
            word_voltage(shared_word),
            c.rate,
            idle_retention,
        )?;
        let island = power_at(tech, c.load, env, word_voltage(w), c.rate, idle_retention)?;
        shared_power += shared.value();
        island_power += island.value();
        client_powers.push((shared, island));
    }
    Ok(RailComparison {
        shared_word,
        island_words,
        shared_power: Joules(shared_power),
        island_power: Joules(island_power),
        client_powers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_loads::adder::RippleCarryAdder;
    use subvt_loads::fir::FirFilter;
    use subvt_loads::ring_oscillator::RingOscillator;

    #[test]
    fn mismatched_demands_make_sharing_expensive_for_the_slow_client() {
        // A slow sensor-sampling ring plus a fast FIR: the shared rail
        // must run at the FIR's word and the ring pays the V² premium —
        // invisible in the total (the FIR dominates) but large for the
        // ring itself.
        let tech = Technology::st_130nm();
        let env = Environment::nominal();
        let ring = RingOscillator::paper_circuit();
        let fir = FirFilter::lowpass_9tap();
        let clients = [
            RailClient {
                load: &ring,
                rate: Hertz(20e3),
            },
            RailClient {
                load: &fir,
                rate: Hertz(2e6),
            },
        ];
        let cmp = compare_shared_rail(&tech, env, &clients, 0.05).unwrap();
        assert!(cmp.shared_word > cmp.island_words[0]);
        assert!(
            cmp.client_penalty(0) > 0.5,
            "ring's own penalty {}",
            cmp.client_penalty(0)
        );
        assert!(
            cmp.client_penalty(1).abs() < 1e-9,
            "the pace-setter pays nothing"
        );
    }

    #[test]
    fn comparable_clients_show_the_penalty_in_the_total() {
        // Two FIR-class blocks with a 3-4 word spread in demand and
        // comparable power budgets: the total rises visibly.
        let tech = Technology::st_130nm();
        let env = Environment::nominal();
        let a = FirFilter::lowpass_9tap();
        let b = FirFilter::lowpass_9tap();
        let clients = [
            RailClient {
                load: &a,
                rate: Hertz(1.0e6),
            },
            RailClient {
                load: &b,
                rate: Hertz(2.5e6),
            },
        ];
        let cmp = compare_shared_rail(&tech, env, &clients, 0.05).unwrap();
        assert!(cmp.island_words[1] > cmp.island_words[0]);
        assert!(
            cmp.sharing_penalty() > 0.05,
            "total penalty {}",
            cmp.sharing_penalty()
        );
    }

    #[test]
    fn matched_demands_share_for_free() {
        let tech = Technology::st_130nm();
        let env = Environment::nominal();
        let a = RingOscillator::paper_circuit();
        let b = RingOscillator::paper_circuit();
        let clients = [
            RailClient {
                load: &a,
                rate: Hertz(100e3),
            },
            RailClient {
                load: &b,
                rate: Hertz(100e3),
            },
        ];
        let cmp = compare_shared_rail(&tech, env, &clients, 0.05).unwrap();
        assert_eq!(cmp.island_words[0], cmp.island_words[1]);
        assert!(cmp.sharing_penalty().abs() < 1e-9);
    }

    #[test]
    fn shared_word_is_the_max_island_word() {
        let tech = Technology::st_130nm();
        let env = Environment::nominal();
        let ring = RingOscillator::paper_circuit();
        let fir = FirFilter::lowpass_9tap();
        let adder = RippleCarryAdder::new(16);
        let clients = [
            RailClient {
                load: &ring,
                rate: Hertz(50e3),
            },
            RailClient {
                load: &fir,
                rate: Hertz(500e3),
            },
            RailClient {
                load: &adder,
                rate: Hertz(3e6),
            },
        ];
        let cmp = compare_shared_rail(&tech, env, &clients, 0.05).unwrap();
        assert_eq!(cmp.shared_word, *cmp.island_words.iter().max().unwrap());
        assert_eq!(cmp.island_words.len(), 3);
        assert!(cmp.shared_power.value() >= cmp.island_power.value());
    }

    #[test]
    fn island_words_never_sink_below_each_mep() {
        // Even a trivial rate demand floors at the load's MEP word.
        let tech = Technology::st_130nm();
        let env = Environment::nominal();
        let ring = RingOscillator::paper_circuit();
        let clients = [RailClient {
            load: &ring,
            rate: Hertz(1.0),
        }];
        let cmp = compare_shared_rail(&tech, env, &clients, 0.05).unwrap();
        assert!(cmp.island_words[0] >= 11);
    }

    #[test]
    #[should_panic(expected = "at least one rail client")]
    fn empty_client_list_rejected() {
        let tech = Technology::st_130nm();
        let _ = compare_shared_rail(&tech, Environment::nominal(), &[], 0.05);
    }
}
