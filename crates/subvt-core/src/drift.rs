//! Runtime environment drift: the controller re-adapting as the die
//! heats, cools, or a voltage island's corner-like aging shift arrives
//! mid-run.
//!
//! The paper's Sec. IV validates a single static shift (designed at
//! TT, operated slow). This module exercises the dynamic version: the
//! environment changes *while the controller runs*, and the only way
//! it can know is through its own TDC signature.

use subvt_rng::Rng;

use subvt_device::mosfet::Environment;
use subvt_loads::load::CircuitLoad;
use subvt_loads::workload::WorkloadSource;

use crate::controller::{AdaptiveController, CycleRecord};

/// An environment schedule: `(starting_cycle, environment)` segments in
/// ascending cycle order.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSchedule {
    segments: Vec<(u64, Environment)>,
}

impl DriftSchedule {
    /// Builds a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, does not start at cycle 0, or is
    /// not strictly ascending.
    pub fn new(segments: Vec<(u64, Environment)>) -> DriftSchedule {
        assert!(!segments.is_empty(), "need at least one segment");
        assert_eq!(segments[0].0, 0, "schedule must start at cycle 0");
        assert!(
            segments.windows(2).all(|w| w[0].0 < w[1].0),
            "segment starts must be strictly ascending"
        );
        DriftSchedule { segments }
    }

    /// A heat ramp: nominal, then progressively hotter plateaus.
    pub fn heat_ramp(cycles_per_step: u64) -> DriftSchedule {
        DriftSchedule::new(vec![
            (0, Environment::at_celsius(25.0)),
            (cycles_per_step, Environment::at_celsius(55.0)),
            (2 * cycles_per_step, Environment::at_celsius(85.0)),
            (3 * cycles_per_step, Environment::at_celsius(55.0)),
            (4 * cycles_per_step, Environment::at_celsius(25.0)),
        ])
    }

    /// Environment in force at a cycle.
    pub fn environment_at(&self, cycle: u64) -> Environment {
        let idx = self
            .segments
            .partition_point(|&(start, _)| start <= cycle)
            .saturating_sub(1);
        self.segments[idx].1
    }

    /// The segments.
    pub fn segments(&self) -> &[(u64, Environment)] {
        &self.segments
    }
}

/// Result of a drift run: the full history plus per-segment
/// compensation states.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftResult {
    /// Per-cycle records.
    pub history: Vec<CycleRecord>,
    /// `(segment start cycle, compensation at segment end)` pairs.
    pub segment_compensation: Vec<(u64, i16)>,
}

/// Runs `controller` for `cycles`, switching its hidden environment per
/// `schedule`, and records how the compensation tracks.
pub fn run_with_drift<L: CircuitLoad, R: Rng + ?Sized>(
    controller: &mut AdaptiveController<L>,
    schedule: &DriftSchedule,
    workload: &mut WorkloadSource,
    cycles: u64,
    rng: &mut R,
) -> DriftResult {
    let mut segment_compensation = Vec::new();
    let mut current = schedule.environment_at(0);
    controller.set_actual_env(current);
    let mut segment_start = 0u64;
    let mut history = Vec::with_capacity(cycles as usize);

    for cycle in 0..cycles {
        let env = schedule.environment_at(cycle);
        if env != current {
            segment_compensation.push((segment_start, controller.rate_controller().compensation()));
            current = env;
            segment_start = cycle;
            controller.set_actual_env(env);
        }
        let arrivals = workload.next_arrivals(rng);
        history.push(controller.step(arrivals));
    }
    segment_compensation.push((segment_start, controller.rate_controller().compensation()));

    DriftResult {
        history,
        segment_compensation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ControllerConfig, SupplyKind, SupplyPolicy};
    use crate::experiment::design_rate_controller;
    use subvt_device::corner::ProcessCorner;
    use subvt_device::delay::GateMismatch;
    use subvt_device::technology::Technology;
    use subvt_loads::ring_oscillator::RingOscillator;
    use subvt_loads::workload::WorkloadPattern;
    use subvt_rng::StdRng;

    fn controller() -> AdaptiveController<RingOscillator> {
        let tech = Technology::st_130nm();
        let design = Environment::nominal();
        let rate = design_rate_controller(&tech, design).expect("designable");
        AdaptiveController::new(
            tech,
            RingOscillator::paper_circuit(),
            rate,
            design,
            design,
            GateMismatch::NOMINAL,
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
            ControllerConfig::default(),
        )
    }

    #[test]
    fn schedule_lookup() {
        let s = DriftSchedule::heat_ramp(100);
        assert_eq!(s.environment_at(0).temperature.celsius().round(), 25.0);
        assert_eq!(s.environment_at(99).temperature.celsius().round(), 25.0);
        assert_eq!(s.environment_at(100).temperature.celsius().round(), 55.0);
        assert_eq!(s.environment_at(250).temperature.celsius().round(), 85.0);
        assert_eq!(s.environment_at(10_000).temperature.celsius().round(), 25.0);
        assert_eq!(s.segments().len(), 5);
    }

    #[test]
    #[should_panic(expected = "start at cycle 0")]
    fn schedule_must_start_at_zero() {
        let _ = DriftSchedule::new(vec![(5, Environment::nominal())]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn schedule_must_ascend() {
        let _ = DriftSchedule::new(vec![
            (0, Environment::nominal()),
            (0, Environment::at_celsius(85.0)),
        ]);
    }

    #[test]
    fn corner_step_is_tracked_and_released() {
        // Nominal → slow → nominal: compensation should rise then fall
        // back, all discovered through the sensor.
        let schedule = DriftSchedule::new(vec![
            (0, Environment::nominal()),
            (50, Environment::at_corner(ProcessCorner::Ss)),
            (150, Environment::nominal()),
        ]);
        let mut c = controller();
        let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 0 });
        let mut rng = StdRng::seed_from_u64(0);
        let r = run_with_drift(&mut c, &schedule, &mut wl, 250, &mut rng);

        assert_eq!(r.segment_compensation.len(), 3);
        let (_, comp_nominal) = r.segment_compensation[0];
        let (_, comp_slow) = r.segment_compensation[1];
        let (_, comp_back) = r.segment_compensation[2];
        assert_eq!(comp_nominal, 0);
        assert!((1..=2).contains(&comp_slow), "slow segment: {comp_slow}");
        assert_eq!(comp_back, 0, "compensation released on return");
    }

    #[test]
    fn heat_ramp_pulls_compensation_down_then_back() {
        let schedule = DriftSchedule::heat_ramp(80);
        let mut c = controller();
        let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 0 });
        let mut rng = StdRng::seed_from_u64(1);
        let r = run_with_drift(&mut c, &schedule, &mut wl, 400, &mut rng);

        let comps: Vec<i16> = r.segment_compensation.iter().map(|&(_, c)| c).collect();
        // Hot plateaus read "fast" → negative compensation (bounded by
        // the ±3 budget), releasing as it cools.
        assert!(comps[2] < 0, "85 °C plateau: {comps:?}");
        assert!(
            comps[4] > comps[2],
            "cooling must release compensation: {comps:?}"
        );
    }

    #[test]
    fn history_covers_every_cycle() {
        let schedule = DriftSchedule::heat_ramp(10);
        let mut c = controller();
        let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 1 });
        let mut rng = StdRng::seed_from_u64(2);
        let r = run_with_drift(&mut c, &schedule, &mut wl, 60, &mut rng);
        assert_eq!(r.history.len(), 60);
        assert!(r
            .history
            .iter()
            .enumerate()
            .all(|(i, rec)| rec.cycle == i as u64));
    }
}
