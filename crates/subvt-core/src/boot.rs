//! Startup sequencing: soft-start and the initial calibration check.
//!
//! Paper Sec. II-A: "the reference signal is chosen carefully so that
//! the range of the conversion is quantified by an initial calibration
//! process" — and any buck converter started straight into a high duty
//! value slams the inductor. The boot sequence ramps the duty one LSB
//! per system cycle and then verifies the sensor reads on-target before
//! handing control to the adaptive loop.

use std::fmt;

use subvt_dcdc::converter::DcDcConverter;
use subvt_device::delay::GateMismatch;
use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_digital::lut::VoltageWord;
use subvt_tdc::sensor::{SenseError, VariationSensor};

/// Boot progress states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootState {
    /// Ramping the duty toward the target word.
    SoftStart {
        /// Duty currently applied.
        current: VoltageWord,
    },
    /// Waiting for the output to settle at the target.
    Settling {
        /// Cycles remaining in the settle window.
        remaining: u32,
    },
    /// Measuring the sensor against the expected code.
    CalibrationCheck,
    /// Boot complete; the adaptive loop may take over.
    Ready {
        /// Deviation observed during the calibration check.
        initial_deviation: i16,
    },
    /// The calibration check failed repeatedly.
    Failed,
}

/// The boot sequencer.
#[derive(Debug)]
pub struct BootSequence {
    target: VoltageWord,
    settle_cycles: u32,
    max_calibration_retries: u32,
    retries: u32,
    state: BootState,
    peak_inductor_current: f64,
}

impl BootSequence {
    /// Creates a sequencer targeting `target` with a settle window.
    ///
    /// # Panics
    ///
    /// Panics if `target` is zero or the settle window is zero.
    pub fn new(target: VoltageWord, settle_cycles: u32) -> BootSequence {
        assert!(target > 0, "boot target must be non-zero");
        assert!(settle_cycles > 0, "need a settle window");
        BootSequence {
            target,
            settle_cycles,
            max_calibration_retries: 5,
            retries: 0,
            state: BootState::SoftStart { current: 0 },
            peak_inductor_current: 0.0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BootState {
        self.state
    }

    /// Peak inductor current magnitude observed during boot (A).
    pub fn peak_inductor_current(&self) -> f64 {
        self.peak_inductor_current
    }

    /// True once the sequencer reached `Ready`.
    pub fn is_ready(&self) -> bool {
        matches!(self.state, BootState::Ready { .. })
    }

    /// Advances one system cycle against the converter and sensor.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable sensor errors (unusable band).
    pub fn step(
        &mut self,
        converter: &mut DcDcConverter,
        sensor: &VariationSensor,
        tech: &Technology,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<BootState, SenseError> {
        match self.state {
            BootState::SoftStart { current } => {
                let next = (current + 1).min(self.target);
                converter.set_word(next);
                converter.run_system_cycles(1);
                self.peak_inductor_current = self
                    .peak_inductor_current
                    .max(converter.inductor_current().abs());
                self.state = if next == self.target {
                    BootState::Settling {
                        remaining: self.settle_cycles,
                    }
                } else {
                    BootState::SoftStart { current: next }
                };
            }
            BootState::Settling { remaining } => {
                converter.run_system_cycles(1);
                self.peak_inductor_current = self
                    .peak_inductor_current
                    .max(converter.inductor_current().abs());
                self.state = if remaining <= 1 {
                    BootState::CalibrationCheck
                } else {
                    BootState::Settling {
                        remaining: remaining - 1,
                    }
                };
            }
            BootState::CalibrationCheck => {
                converter.run_system_cycles(1);
                let deviation = sensor.sense(tech, self.target, converter.vout(), env, mismatch)?;
                // A fresh, nominal-corner chip should read within the
                // sensor quantization; larger readings mean the supply
                // has not settled or the die is far off — retry.
                if deviation.abs() <= 1 {
                    self.state = BootState::Ready {
                        initial_deviation: deviation,
                    };
                } else {
                    self.retries += 1;
                    self.state = if self.retries >= self.max_calibration_retries {
                        BootState::Failed
                    } else {
                        BootState::Settling { remaining: 4 }
                    };
                }
            }
            BootState::Ready { .. } | BootState::Failed => {}
        }
        Ok(self.state)
    }

    /// Runs the sequence to completion (or failure), bounded by
    /// `max_cycles`.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable sensor errors.
    pub fn run(
        &mut self,
        converter: &mut DcDcConverter,
        sensor: &VariationSensor,
        tech: &Technology,
        env: Environment,
        mismatch: GateMismatch,
        max_cycles: u32,
    ) -> Result<BootState, SenseError> {
        for _ in 0..max_cycles {
            let state = self.step(converter, sensor, tech, env, mismatch)?;
            if matches!(state, BootState::Ready { .. } | BootState::Failed) {
                break;
            }
        }
        Ok(self.state)
    }
}

impl fmt::Display for BootSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "boot → {:?} (peak |i_L| {:.1} mA)",
            self.state,
            self.peak_inductor_current * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_dcdc::converter::ConverterParams;
    use subvt_dcdc::filter::NoLoad;
    use subvt_tdc::sensor::SensorConfig;

    fn setup() -> (Technology, VariationSensor, DcDcConverter) {
        let tech = Technology::st_130nm();
        let sensor = VariationSensor::new(&tech, Environment::nominal(), SensorConfig::default());
        let converter = DcDcConverter::new(ConverterParams::default(), Box::new(NoLoad));
        (tech, sensor, converter)
    }

    #[test]
    fn boot_reaches_ready_on_a_nominal_chip() {
        let (tech, sensor, mut converter) = setup();
        let mut boot = BootSequence::new(19, 30);
        let state = boot
            .run(
                &mut converter,
                &sensor,
                &tech,
                Environment::nominal(),
                GateMismatch::NOMINAL,
                200,
            )
            .expect("sensor usable");
        assert!(
            matches!(state, BootState::Ready { initial_deviation } if initial_deviation.abs() <= 1),
            "{state:?}"
        );
        assert!(boot.is_ready());
        // The output really is at the target.
        assert!((converter.vout().millivolts() - 356.25).abs() < 10.0);
    }

    #[test]
    fn soft_start_limits_inrush_current() {
        let (tech, sensor, mut soft_conv) = setup();
        let mut boot = BootSequence::new(47, 30);
        boot.run(
            &mut soft_conv,
            &sensor,
            &tech,
            Environment::nominal(),
            GateMismatch::NOMINAL,
            300,
        )
        .unwrap();
        let soft_peak = boot.peak_inductor_current();

        // Hard start: slam the full word immediately.
        let (_, _, mut hard_conv) = setup();
        hard_conv.set_word(47);
        let mut hard_peak = 0.0f64;
        for _ in 0..100 {
            hard_conv.run_system_cycles(1);
            hard_peak = hard_peak.max(hard_conv.inductor_current().abs());
        }
        assert!(
            soft_peak < 0.7 * hard_peak,
            "soft {soft_peak} A vs hard {hard_peak} A"
        );
    }

    #[test]
    fn boot_state_machine_passes_through_all_phases() {
        let (tech, sensor, mut converter) = setup();
        let mut boot = BootSequence::new(12, 2);
        let mut seen_soft = false;
        let mut seen_settle = false;
        let mut seen_check = false;
        for _ in 0..200 {
            match boot.state() {
                BootState::SoftStart { .. } => seen_soft = true,
                BootState::Settling { .. } => seen_settle = true,
                BootState::CalibrationCheck => seen_check = true,
                _ => {}
            }
            if boot.is_ready() {
                break;
            }
            boot.step(
                &mut converter,
                &sensor,
                &tech,
                Environment::nominal(),
                GateMismatch::NOMINAL,
            )
            .unwrap();
        }
        assert!(
            seen_soft && seen_settle && seen_check,
            "soft {seen_soft} settle {seen_settle} check {seen_check}"
        );
    }

    #[test]
    fn boot_to_an_unusable_band_reports_the_error() {
        let (tech, sensor, mut converter) = setup();
        let mut boot = BootSequence::new(3, 2);
        let result = boot.run(
            &mut converter,
            &sensor,
            &tech,
            Environment::nominal(),
            GateMismatch::NOMINAL,
            100,
        );
        assert!(matches!(result, Err(SenseError::BandUnusable { word: 3 })));
    }

    #[test]
    fn boot_fails_on_a_wildly_shifted_die() {
        let (tech, sensor, mut converter) = setup();
        let mut boot = BootSequence::new(12, 10);
        let wild = GateMismatch {
            nmos_dvth: subvt_device::units::Volts(0.08),
            pmos_dvth: subvt_device::units::Volts(0.08),
        };
        let state = boot
            .run(
                &mut converter,
                &sensor,
                &tech,
                Environment::nominal(),
                wild,
                400,
            )
            .unwrap();
        assert_eq!(
            state,
            BootState::Failed,
            "an 80 mV die must fail calibration"
        );
    }

    #[test]
    fn display_reports_state() {
        let boot = BootSequence::new(19, 10);
        assert!(format!("{boot}").contains("SoftStart"));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_target_rejected() {
        let _ = BootSequence::new(0, 10);
    }
}
