//! Rail watchdog: last-known-good fallback with bounded retry.
//!
//! The compensation loop assumes the sensed signature reflects the
//! die; a faulted loop (reference-word SEU, a run of corrupted TDC
//! samples) can chase a phantom signature and walk the rail away from
//! the MEP, or oscillate without settling. The watchdog is the
//! graceful-degradation backstop: once the loop has demonstrably
//! locked (a zero-deviation cycle), it remembers that word, and a
//! sustained large deviation afterwards — something parametric
//! variation cannot produce on a locked loop — trips a fallback to the
//! last-known-good word.
//!
//! Detection latency is [`WatchdogPolicy::trip_cycles`] system cycles;
//! retries are bounded by [`WatchdogPolicy::max_retries`] with a
//! doubling backoff of [`WatchdogPolicy::backoff_cycles`] cycles
//! during which detection is suspended (the rail needs time to
//! re-settle before deviations mean anything).

use subvt_digital::lut::VoltageWord;

/// Trip/retry policy for the rail watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogPolicy {
    /// Consecutive cycles the deviation must stay at or beyond
    /// [`WatchdogPolicy::trip_threshold`] before the watchdog trips
    /// (the detection latency).
    pub trip_cycles: u32,
    /// Deviation magnitude (LSBs) treated as a rail fault rather than
    /// residual variation. A locked loop sits at 0 with ±1 limit
    /// cycles, so 2 is the smallest trustworthy threshold.
    pub trip_threshold: i16,
    /// Maximum fallbacks per run — after this the watchdog stays
    /// silent (a permanently faulted loop should fail visibly, not
    /// thrash).
    pub max_retries: u32,
    /// Base backoff after a trip, in cycles; doubles per retry.
    pub backoff_cycles: u32,
}

impl Default for WatchdogPolicy {
    fn default() -> WatchdogPolicy {
        WatchdogPolicy {
            trip_cycles: 3,
            trip_threshold: 2,
            max_retries: 2,
            backoff_cycles: 4,
        }
    }
}

/// The watchdog state machine. Feed it every cycle's commanded word
/// and sensed deviation; it answers with a fallback word when it
/// trips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RailWatchdog {
    policy: WatchdogPolicy,
    last_good: Option<VoltageWord>,
    streak: u32,
    trips: u32,
    cooldown: u32,
}

impl RailWatchdog {
    /// Creates a watchdog with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if `trip_cycles` is zero or `trip_threshold` is not
    /// positive.
    pub fn new(policy: WatchdogPolicy) -> RailWatchdog {
        assert!(policy.trip_cycles > 0, "need at least one trip cycle");
        assert!(policy.trip_threshold > 0, "trip threshold must be positive");
        RailWatchdog {
            policy,
            last_good: None,
            streak: 0,
            trips: 0,
            cooldown: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> WatchdogPolicy {
        self.policy
    }

    /// True once a zero-deviation cycle has armed the watchdog.
    pub fn armed(&self) -> bool {
        self.last_good.is_some()
    }

    /// The last-known-good word, once armed.
    pub fn last_good(&self) -> Option<VoltageWord> {
        self.last_good
    }

    /// Fallbacks issued so far.
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// Feeds one cycle. Returns the last-known-good word when the
    /// watchdog trips; the caller is expected to command it and to
    /// book the recovery cost.
    pub fn observe(&mut self, word: VoltageWord, deviation: i16) -> Option<VoltageWord> {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        if deviation == 0 {
            // The loop is on target: (re-)arm on this word.
            self.last_good = Some(word);
            self.streak = 0;
            return None;
        }
        if deviation.abs() < self.policy.trip_threshold {
            // Small deviations are the loop's normal limit cycle.
            self.streak = 0;
            return None;
        }
        let Some(good) = self.last_good else {
            // Not armed yet: large deviations during initial settling
            // are expected, not a fault.
            return None;
        };
        self.streak += 1;
        if self.streak < self.policy.trip_cycles || self.trips >= self.policy.max_retries {
            return None;
        }
        self.trips += 1;
        self.streak = 0;
        self.cooldown = self.policy.backoff_cycles << (self.trips - 1);
        Some(good)
    }

    /// Forgets streak state (not the arm point) — e.g. after the
    /// caller performed its own recovery action.
    pub fn reset_streak(&mut self) {
        self.streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dog() -> RailWatchdog {
        RailWatchdog::new(WatchdogPolicy::default())
    }

    #[test]
    fn trips_only_after_arming_and_sustained_deviation() {
        let mut w = dog();
        // Big deviations while settling: never trips unarmed.
        for _ in 0..10 {
            assert_eq!(w.observe(14, 3), None);
        }
        assert!(!w.armed());
        // Lock at word 12.
        assert_eq!(w.observe(12, 0), None);
        assert!(w.armed());
        assert_eq!(w.last_good(), Some(12));
        // Two bad cycles: below the detection latency.
        assert_eq!(w.observe(15, 3), None);
        assert_eq!(w.observe(16, -3), None);
        // Third consecutive bad cycle trips to the locked word.
        assert_eq!(w.observe(17, 3), Some(12));
        assert_eq!(w.trips(), 1);
    }

    #[test]
    fn limit_cycle_noise_never_trips() {
        let mut w = dog();
        w.observe(12, 0);
        for _ in 0..50 {
            assert_eq!(w.observe(12, 1), None);
            assert_eq!(w.observe(11, -1), None);
        }
        assert_eq!(w.trips(), 0);
    }

    #[test]
    fn small_deviation_resets_the_streak() {
        let mut w = dog();
        w.observe(12, 0);
        assert_eq!(w.observe(13, 2), None);
        assert_eq!(w.observe(13, 2), None);
        assert_eq!(w.observe(12, 1), None, "streak broken");
        assert_eq!(w.observe(13, 2), None);
        assert_eq!(w.observe(13, 2), None);
        assert_eq!(w.observe(13, 2), Some(12));
    }

    #[test]
    fn retries_are_bounded_with_doubling_backoff() {
        let mut w = dog();
        w.observe(12, 0);
        let mut trips = 0;
        let mut fed = 0;
        // A permanently broken loop: deviation pinned at +3.
        for _ in 0..100 {
            fed += 1;
            if w.observe(20, 3).is_some() {
                trips += 1;
            }
        }
        assert_eq!(trips, 2, "bounded retries after {fed} cycles");
        assert_eq!(w.trips(), 2);
    }

    #[test]
    fn backoff_suspends_detection() {
        let mut w = dog();
        w.observe(12, 0);
        for _ in 0..2 {
            assert_eq!(w.observe(20, 3), None);
        }
        assert_eq!(w.observe(20, 3), Some(12));
        // Backoff (4 cycles): even a pinned deviation does not count.
        for _ in 0..4 {
            assert_eq!(w.observe(20, 3), None);
        }
        // Detection resumes: three more bad cycles re-trip.
        for _ in 0..2 {
            assert_eq!(w.observe(20, 3), None);
        }
        assert_eq!(w.observe(20, 3), Some(12));
    }

    #[test]
    fn rearming_moves_the_fallback_word() {
        let mut w = dog();
        w.observe(12, 0);
        w.observe(13, 0);
        for _ in 0..2 {
            w.observe(20, 3);
        }
        assert_eq!(w.observe(20, 3), Some(13), "newest lock wins");
    }

    #[test]
    #[should_panic(expected = "trip cycle")]
    fn zero_trip_cycles_rejected() {
        let _ = RailWatchdog::new(WatchdogPolicy {
            trip_cycles: 0,
            ..WatchdogPolicy::default()
        });
    }
}
