//! # subvt-core
//!
//! The variation resilient adaptive controller of Mishra, Al-Hashimi &
//! Zwolinski, *"Variation Resilient Adaptive Controller for
//! Subthreshold Circuits"*, DATE 2009 — the paper's primary
//! contribution, assembled from the substrate crates:
//!
//! * [`rate_controller`] — queue length → 6-bit voltage word via the
//!   designed LUT (idle band = the load's minimum-energy point);
//! * [`compensation`] — the TDC-signature-driven LUT correction loop;
//! * [`controller`] — the full system: FIFO + rate controller + TDC
//!   sensor + DC-DC converter + load, stepped in 1 µs system cycles,
//!   with per-cycle history and energy accounting;
//! * [`transient`] — the Fig. 6 closed-loop voltage-step reproduction
//!   on the switched converter;
//! * [`experiment`] — scenarios and the headline savings comparison
//!   (controller vs. fixed supply vs. uncompensated vs. oracle);
//! * [`energy_account`] — energy bookkeeping.
//!
//! ## Example
//!
//! Run the paper's worked example (typical-corner design on slow
//! silicon) and watch the controller find the true MEP:
//!
//! ```
//! use subvt_core::experiment::{savings_experiment, Scenario};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = savings_experiment(&Scenario::paper_worked_example())?;
//! println!(
//!     "controller saves {:.0}% vs a fixed supply; LUT corrected by {} LSB",
//!     100.0 * report.savings_vs_fixed(),
//!     report.compensated.compensation,
//! );
//! assert!(report.savings_vs_fixed() > 0.3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod abb;
mod batch;
pub mod boot;
pub mod compensation;
pub mod controller;
pub mod dithering;
pub mod drift;
pub mod energy_account;
pub mod experiment;
pub mod fault_study;
pub mod idle_policy;
pub mod matrix;
pub mod overhead;
pub mod profile;
pub mod rate_controller;
pub mod shared_rail;
pub mod study;
pub mod transient;
pub mod watchdog;
pub mod yield_study;

pub use abb::{AbbCompensator, AbbStep};
pub use boot::{BootSequence, BootState};
pub use compensation::{CompensationLoop, CompensationPolicy, SignatureDebounce};
pub use controller::{
    AdaptiveController, ControllerConfig, CycleRecord, RunSummary, SupplyKind, SupplyPolicy,
};
pub use dithering::{compare_dither, DitherComparison, DitherPlan};
pub use drift::{run_with_drift, DriftResult, DriftSchedule};
pub use energy_account::EnergyAccount;
pub use experiment::{
    design_rate_controller, fixed_baseline_word, run_scenario, savings_experiment, SavingsReport,
    Scenario,
};
pub use fault_study::{FaultDieOutcome, FaultStudySummary};
pub use idle_policy::{breakeven_retention, compare_idle_policies, IdlePolicyComparison};
pub use matrix::{CellSummary, MatrixCell, StudyMatrix};
pub use overhead::{overhead_per_cycle, ControllerInventory, NetSavings, OverheadBreakdown};
pub use profile::PhaseProfile;
pub use rate_controller::{DesignError, LutCheckpoint, RateController};
pub use shared_rail::{compare_shared_rail, RailClient, RailComparison};
pub use study::{
    ArgError, FaultPlan, StudyArgs, StudyConfig, StudyError, SupplyBackendKind, DEFAULT_BATCH,
    STUDY_HELP,
};
pub use transient::{fig6_schedule, run_transient, SegmentSummary, TransientResult, TransientStep};
pub use watchdog::{RailWatchdog, WatchdogPolicy};
pub use yield_study::{DieOutcome, SupplySim, YieldReport, YieldSpec, YieldSummary};
