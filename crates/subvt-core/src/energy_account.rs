//! Energy bookkeeping for controller runs.

use std::fmt;

use subvt_device::units::{Joules, Seconds};

/// Accumulated energy of one run, split by mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyAccount {
    dynamic: Joules,
    leakage: Joules,
    converter: Joules,
    recovery: Joules,
    operations: u64,
    active_time: Seconds,
}

impl EnergyAccount {
    /// An empty account.
    pub fn new() -> EnergyAccount {
        EnergyAccount::default()
    }

    /// Adds switching energy for `ops` operations.
    pub fn add_dynamic(&mut self, energy: Joules, ops: u64) {
        self.dynamic += energy;
        self.operations += ops;
    }

    /// Adds leakage energy over a span.
    pub fn add_leakage(&mut self, energy: Joules, span: Seconds) {
        self.leakage += energy;
        self.active_time += span;
    }

    /// Adds converter (conduction + switching) loss.
    pub fn add_converter(&mut self, energy: Joules) {
        self.converter += energy;
    }

    /// Adds fault-recovery cost: register scrubs, watchdog fallbacks
    /// and the retry cycles they trigger. Kept as its own line item so
    /// degradation studies can report what resilience costs.
    pub fn add_recovery(&mut self, energy: Joules) {
        self.recovery += energy;
    }

    /// Total switching energy.
    pub fn dynamic(&self) -> Joules {
        self.dynamic
    }

    /// Total leakage energy.
    pub fn leakage(&self) -> Joules {
        self.leakage
    }

    /// Total converter loss.
    pub fn converter(&self) -> Joules {
        self.converter
    }

    /// Total fault-recovery cost.
    pub fn recovery(&self) -> Joules {
        self.recovery
    }

    /// Total of all mechanisms.
    pub fn total(&self) -> Joules {
        self.dynamic + self.leakage + self.converter + self.recovery
    }

    /// Operations performed.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Wall-clock simulated.
    pub fn active_time(&self) -> Seconds {
        self.active_time
    }

    /// Average energy per operation (load energy only, excluding
    /// converter loss), or `None` when no operations ran.
    pub fn energy_per_op(&self) -> Option<Joules> {
        if self.operations == 0 {
            None
        } else {
            Some((self.dynamic + self.leakage) / self.operations as f64)
        }
    }

    /// Fractional saving of `self` relative to `baseline`
    /// (`1 − self/baseline`), comparing total energy.
    pub fn savings_vs(&self, baseline: &EnergyAccount) -> f64 {
        let b = baseline.total().value();
        if b == 0.0 {
            0.0
        } else {
            1.0 - self.total().value() / b
        }
    }
}

impl fmt::Display for EnergyAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} fJ total ({:.3} dyn + {:.3} leak + {:.3} conv + {:.3} rcvy) over {} ops",
            self.total().femtos(),
            self.dynamic.femtos(),
            self.leakage.femtos(),
            self.converter.femtos(),
            self.recovery.femtos(),
            self.operations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_totals() {
        let mut a = EnergyAccount::new();
        a.add_dynamic(Joules::from_femtos(10.0), 4);
        a.add_leakage(Joules::from_femtos(6.0), Seconds::from_micros(2.0));
        a.add_converter(Joules::from_femtos(1.0));
        a.add_recovery(Joules::from_femtos(0.5));
        assert!((a.total().femtos() - 17.5).abs() < 1e-9);
        assert!((a.recovery().femtos() - 0.5).abs() < 1e-12);
        assert_eq!(a.operations(), 4);
        assert!((a.energy_per_op().unwrap().femtos() - 4.0).abs() < 1e-9);
        assert!((a.active_time().value() - 2e-6).abs() < 1e-18);
    }

    #[test]
    fn empty_account_has_no_per_op() {
        assert_eq!(EnergyAccount::new().energy_per_op(), None);
    }

    #[test]
    fn savings_comparison() {
        let mut a = EnergyAccount::new();
        a.add_dynamic(Joules::from_femtos(45.0), 1);
        let mut b = EnergyAccount::new();
        b.add_dynamic(Joules::from_femtos(100.0), 1);
        assert!((a.savings_vs(&b) - 0.55).abs() < 1e-12);
        assert_eq!(a.savings_vs(&EnergyAccount::new()), 0.0);
    }

    #[test]
    fn display_reports_breakdown() {
        let mut a = EnergyAccount::new();
        a.add_dynamic(Joules::from_femtos(1.0), 1);
        assert!(format!("{a}").contains("1 ops"));
    }
}
