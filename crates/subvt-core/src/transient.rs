//! Closed-loop transient reproduction of the paper's Fig. 6.
//!
//! The figure shows the switched converter stepping its output as the
//! rate controller issues new words: an initial 350 mV (word 19), a
//! step down to 220 mV (word 12), and a step up to 880 mV (word 47),
//! with the PWM waveform underneath.

use subvt_dcdc::converter::{ConverterParams, DcDcConverter};
use subvt_dcdc::filter::LoadCurrent;
use subvt_device::units::Volts;
use subvt_digital::lut::VoltageWord;
use subvt_sim::time::SimTime;
use subvt_sim::trace::AnalogTrace;

/// One commanded step of the transient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientStep {
    /// Voltage word loaded into the converter.
    pub word: VoltageWord,
    /// System cycles (µs) to hold it.
    pub cycles: u64,
}

/// The paper's Fig. 6 schedule. The figure's annotations: "Initial
/// V_dd = 350 mV" (word 19 ≈ 356 mV), "V_dd from 350 mV to 220 mV"
/// (word 12 ≈ 225 mV), "V_dd from 220 mV to 880 mV" (word 47 ≈ 881 mV).
pub fn fig6_schedule() -> Vec<TransientStep> {
    vec![
        TransientStep {
            word: 19,
            cycles: 60,
        },
        TransientStep {
            word: 12,
            cycles: 60,
        },
        TransientStep {
            word: 47,
            cycles: 60,
        },
    ]
}

/// Summary of one settled segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentSummary {
    /// The commanded word.
    pub word: VoltageWord,
    /// Ideal target voltage (`word × 18.75 mV`).
    pub target: Volts,
    /// Mean output over the last fifth of the segment.
    pub settled: Volts,
    /// Peak-to-peak ripple over the last fifth of the segment.
    pub ripple: Volts,
    /// System cycles until the output entered and stayed within
    /// half an LSB of the settled value (`None` if it never did).
    pub settling_cycles: Option<u64>,
    /// Segment start time.
    pub start: SimTime,
    /// Segment end time.
    pub end: SimTime,
}

/// Result of a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    /// The full output-voltage trace (one sample per 64 MHz tick).
    pub trace: AnalogTrace,
    /// Per-step summaries.
    pub segments: Vec<SegmentSummary>,
}

/// Runs a transient schedule on the switched converter driving `load`.
///
/// # Panics
///
/// Panics if `steps` is empty.
pub fn run_transient(
    params: ConverterParams,
    load: Box<dyn LoadCurrent>,
    steps: &[TransientStep],
) -> TransientResult {
    assert!(!steps.is_empty(), "need at least one transient step");
    let mut converter = DcDcConverter::new(params, load);
    converter.enable_trace("v_out");
    let mut segments = Vec::with_capacity(steps.len());
    for step in steps {
        let start = converter.now();
        converter.set_word(step.word);
        converter.run_system_cycles(step.cycles);
        let end = converter.now();
        segments.push((step.word, start, end));
    }
    let trace = converter.take_trace().expect("tracing was enabled");

    let cycle = SimTime::ZERO + subvt_sim::time::SimDuration::from_micros(1);
    let cycle_span = cycle.since(SimTime::ZERO);
    let summaries = segments
        .into_iter()
        .map(|(word, start, end)| {
            let span = end.since(start);
            let tail_start = start + (span - span / 5);
            let settled = Volts(trace.mean(tail_start, end).unwrap_or(0.0));
            let ripple = Volts(trace.ripple(tail_start, end).unwrap_or(0.0));
            let target = DcDcConverter::ideal_vout(word);
            let settling_cycles = trace
                .settling_time_in(start, end, settled.volts(), 0.009_375)
                .map(|t| t.since(start).femtos() / cycle_span.femtos());
            SegmentSummary {
                word,
                target,
                settled,
                ripple,
                settling_cycles,
                start,
                end,
            }
        })
        .collect();
    TransientResult {
        trace,
        segments: summaries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_dcdc::filter::ConstantLoad;
    use subvt_device::units::Amps;

    fn fig6() -> TransientResult {
        run_transient(
            ConverterParams::default(),
            Box::new(ConstantLoad(Amps(5e-6))),
            &fig6_schedule(),
        )
    }

    #[test]
    fn fig6_reaches_all_three_levels() {
        let r = fig6();
        assert_eq!(r.segments.len(), 3);
        let targets = [356.25, 225.0, 881.25];
        for (seg, target) in r.segments.iter().zip(targets) {
            assert!(
                (seg.settled.millivolts() - target).abs() < 12.0,
                "word {}: settled {} vs {target} mV",
                seg.word,
                seg.settled.millivolts()
            );
        }
    }

    #[test]
    fn fig6_steps_in_the_right_directions() {
        let r = fig6();
        assert!(r.segments[1].settled.volts() < r.segments[0].settled.volts());
        assert!(r.segments[2].settled.volts() > r.segments[1].settled.volts());
    }

    #[test]
    fn ripple_stays_below_one_lsb() {
        let r = fig6();
        for seg in &r.segments {
            assert!(
                seg.ripple.millivolts() < 18.75,
                "word {}: ripple {} mV",
                seg.word,
                seg.ripple.millivolts()
            );
        }
    }

    #[test]
    fn settling_happens_within_the_segment() {
        let r = fig6();
        for seg in &r.segments {
            let cycles = seg.settling_cycles.expect("settles");
            assert!(cycles < 55, "word {}: {} cycles", seg.word, cycles);
        }
    }

    #[test]
    fn never_settling_segment_reports_none() {
        // A gutted output capacitor leaves the ripple far above the
        // half-LSB settling band, so the output never "enters and
        // stays": the never-settles path must report `None`, not 0.
        use subvt_device::units::Farads;
        let params = ConverterParams {
            filter: subvt_dcdc::filter::FilterParams {
                capacitance: Farads(10e-9),
                ..subvt_dcdc::filter::FilterParams::default()
            },
            ..ConverterParams::default()
        };
        let r = run_transient(
            params,
            Box::new(ConstantLoad(Amps(5e-6))),
            &[TransientStep {
                word: 19,
                cycles: 60,
            }],
        );
        let seg = &r.segments[0];
        assert!(
            seg.ripple.millivolts() > 18.75,
            "test needs ripple above the band, got {}",
            seg.ripple.millivolts()
        );
        assert_eq!(seg.settling_cycles, None);
    }

    #[test]
    fn closed_form_fig6_stays_within_budget_of_the_committed_rk4_table() {
        // The committed docs/results/fig6.txt table as produced by the
        // RK4 reference solver (see DESIGN.md "Converter solver &
        // accuracy contract"): settled mV, ripple mV, settling cycles.
        const RK4_TABLE: [(VoltageWord, f64, f64, u64); 3] = [
            (19, 356.14, 3.50, 26),
            (12, 224.94, 2.39, 16),
            (47, 881.08, 3.38, 27),
        ];
        let r = fig6(); // ConverterParams::default() = ClosedForm
        for (seg, (word, settled_mv, ripple_mv, cycles)) in r.segments.iter().zip(RK4_TABLE) {
            assert_eq!(seg.word, word);
            // ≤ 0.1 mV on settled voltage (+0.005 mV print rounding).
            assert!(
                (seg.settled.millivolts() - settled_mv).abs() < 0.105,
                "word {word}: settled {} vs committed {settled_mv} mV",
                seg.settled.millivolts()
            );
            // ≤ 5 % on ripple (+0.005 mV print rounding).
            assert!(
                (seg.ripple.millivolts() - ripple_mv).abs() < 0.05 * ripple_mv + 0.005,
                "word {word}: ripple {} vs committed {ripple_mv} mV",
                seg.ripple.millivolts()
            );
            let seg_cycles = seg.settling_cycles.expect("settles");
            assert!(
                seg_cycles.abs_diff(cycles) <= 2,
                "word {word}: settling {seg_cycles} vs committed {cycles} cycles"
            );
        }
    }

    #[test]
    fn trace_covers_the_whole_run() {
        let r = fig6();
        assert!(!r.trace.is_empty());
        let last = r.segments.last().unwrap().end;
        assert!(r.trace.samples().last().unwrap().0 >= last);
    }

    #[test]
    #[should_panic(expected = "at least one transient step")]
    fn empty_schedule_rejected() {
        let _ = run_transient(
            ConverterParams::default(),
            Box::new(ConstantLoad(Amps(1e-6))),
            &[],
        );
    }
}
