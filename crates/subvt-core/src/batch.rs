//! Structure-of-arrays die scoring: the fleet-scale hot path.
//!
//! The scalar path ([`StudyContext::score_die`]) walks one die at a
//! time through the spec checks and settling loops. This module scores
//! a whole *sub-batch* of dies per pass instead, holding the per-die
//! quantities in flat arrays (`Vec<GateMismatch>`, `Vec<Seconds>`, …)
//! so the common-voltage spec checks run as lanes through
//! [`subvt_loads::load::CircuitLoad::critical_path_lane`] — one grid
//! resolution per lane
//! for tabulated surfaces, auto-vectorizable inner loops — and the
//! die-independent energy evaluations happen once per operating point
//! instead of once per die.
//!
//! Bit-identity contract: for every die the batched path performs the
//! *same arithmetic on the same inputs* as the scalar path — lanes are
//! pure-function hoists (pinned in `subvt-device`), the shared
//! [`CachedEval`] is pure memoization, and outcomes are handed to the
//! caller in die order — so any sub-batch size, including the ragged
//! final sub-batch, reproduces the scalar study bit-for-bit. The
//! property suite in `tests/batch_equivalence.rs` pins this.

use std::borrow::Cow;
use std::fmt::Write as _;
use std::ops::Range;
use std::time::Instant;

use subvt_device::delay::GateMismatch;
use subvt_device::tabulate::{CachedEval, DeviceEval};
use subvt_device::units::{Joules, Seconds, Volts};
use subvt_digital::lut::VoltageWord;
use subvt_exec::chunk_len;
use subvt_faults::FaultPlan;
use subvt_rng::{Jump, Rng, StdRng};
use subvt_tdc::sensor::{word_voltage, SenseError};

use crate::fault_study::{score_faulted_die_with, FaultDieOutcome};
use crate::profile::{record_phase, record_sub_batch, Phase};
use crate::yield_study::{DieOutcome, StudyContext, SupplySim};

/// The per-die seed stream in `O(chunks)` memory.
///
/// The scalar path materializes one forked seed per die
/// (`die_seeds`), which is an `O(dies)` vector — 80 MB for a 10⁷-die
/// fleet. The parent generator only ever advances one draw per die,
/// though, so snapshotting its 32-byte state at every chunk boundary
/// is enough: a worker clones its chunk's snapshot and re-derives the
/// chunk's seeds locally, bit-identical to the scalar stream. The
/// `Flat` arm keeps the materialized form for caller-owned generators
/// (`run_*_with_rng`), whose concrete type cannot be snapshotted.
pub(crate) enum ChunkSeeds {
    /// Parent-state snapshot per chunk boundary (seeded studies).
    Snapshots {
        /// The parent's state at the start of each chunk.
        states: Vec<StdRng>,
        /// The chunk length the snapshots were taken at.
        chunk: usize,
    },
    /// The materialized per-die stream (external-generator studies).
    Flat(Vec<u64>),
}

impl ChunkSeeds {
    /// Snapshots the seed stream of `StdRng::seed_from_u64(seed)` at
    /// every [`chunk_len`] boundary of a `dies`-sized population.
    pub(crate) fn from_seed(seed: u64, dies: usize) -> ChunkSeeds {
        let chunk = chunk_len(dies);
        let mut parent = StdRng::seed_from_u64(seed);
        let mut states = Vec::with_capacity(dies.div_ceil(chunk));
        // The parent advances exactly one draw per die (`fork_seed`'s
        // label hash never touches it), so each boundary state is one
        // chunk-length jump past the previous — O(chunks) total, with
        // one O(log chunk) matrix build, instead of O(dies) draws. The
        // KAT suite in subvt-rng pins the jump to the sequential
        // stream; the final jump overshoots a ragged last chunk, but
        // that state is never snapshotted.
        let jump = Jump::by(chunk as u64);
        for _ in 0..dies.div_ceil(chunk) {
            states.push(parent.clone());
            jump.apply(&mut parent);
        }
        ChunkSeeds::Snapshots { states, chunk }
    }

    /// The seeds of one chunk-aligned `range` of dies. `Snapshots`
    /// re-derives them from the boundary state (a small, transient
    /// per-worker vector); `Flat` borrows.
    pub(crate) fn for_range(&self, range: Range<usize>) -> Cow<'_, [u64]> {
        match self {
            ChunkSeeds::Flat(seeds) => Cow::Borrowed(&seeds[range]),
            ChunkSeeds::Snapshots { states, chunk } => {
                debug_assert_eq!(range.start % chunk, 0, "range must be chunk-aligned");
                let mut rng = states[range.start / chunk].clone();
                // One reused label buffer instead of a heap allocation
                // per die — the label bytes (and so the seeds) are
                // unchanged.
                let mut label = String::with_capacity(24);
                Cow::Owned(
                    range
                        .map(|i| {
                            label.clear();
                            write!(label, "die-{i}").expect("in-memory write");
                            rng.fork_seed(&label)
                        })
                        .collect(),
                )
            }
        }
    }
}

/// The rate/energy evaluation voltages for a commanded word — the same
/// split [`StudyContext::passes`] makes (trough for rate, mean for
/// energy on a switched supply; the exact word voltage on an ideal
/// rail).
fn word_voltages(ctx: &StudyContext<'_>, word: VoltageWord) -> (Volts, Volts) {
    match ctx.supply {
        SupplySim::Ideal => {
            let v = word_voltage(word);
            (v, v)
        }
        SupplySim::Regulated(model) => {
            let op = model.point(word);
            (op.v_min, op.v_mean)
        }
    }
}

/// Spec-checks one lane of dies at a common commanded word: the energy
/// leg (die-independent) is evaluated once through `energy_eval`, the
/// rate leg runs as a critical-path lane. Writes the per-die pass flag
/// and returns the shared energy — the exact quantities
/// [`StudyContext::passes`] produces per die.
fn lane_passes(
    ctx: &StudyContext<'_>,
    energy_eval: &dyn DeviceEval,
    word: VoltageWord,
    mismatches: &[GateMismatch],
    delays: &mut [Seconds],
    pass: &mut [bool],
) -> Joules {
    let (v_rate, v_energy) = word_voltages(ctx, word);
    let energy = ctx
        .load
        .energy_per_op_with(energy_eval, v_energy, ctx.env)
        .map(|e| e.total())
        .unwrap_or(Joules(f64::INFINITY));
    let energy_ok = energy.value() <= ctx.spec.max_energy_per_op.value();
    match ctx
        .load
        .critical_path_lane(ctx.eval.as_ref(), v_rate, ctx.env, mismatches, delays)
    {
        Ok(()) => {
            for (t, p) in delays.iter().zip(pass.iter_mut()) {
                *p = energy_ok && t.to_frequency().value() >= ctx.spec.min_rate.value();
            }
        }
        // The lane error is die-independent (supply below the floor):
        // the scalar path's per-die `unwrap_or(false)` on every die.
        Err(_) => pass.fill(false),
    }
    energy
}

/// Reusable SoA scratch for one sub-batch of dies. All arrays are
/// bounded by the sub-batch size, so a million-die study's working set
/// stays `O(jobs × batch)`, never `O(dies)`.
///
/// The phases are individually callable so the matrix path
/// ([`crate::matrix`]) can run the shared ones (draw, word settle,
/// dither walk) once per corner group and the supply-dependent tails
/// (fixed lane, adaptive lanes, dithered check) once per cell group,
/// against the same lanes. [`DieBatch::score`] composes them in the
/// original order for the single-cell path.
pub(crate) struct DieBatch {
    corner_units: Vec<f64>,
    mismatches: Vec<GateMismatch>,
    delays: Vec<Seconds>,
    fixed_pass: Vec<bool>,
    words: Vec<VoltageWord>,
    adaptive_pass: Vec<bool>,
    adaptive_energy: Vec<Joules>,
    dithered_pass: Vec<bool>,
    // Gather/scatter scratch for the by-settled-word adaptive lanes.
    group_idx: Vec<usize>,
    group_mm: Vec<GateMismatch>,
    group_t: Vec<Seconds>,
    group_pass: Vec<bool>,
    // Lockstep-settle scratch: the dies still walking, their next
    // round, and the per-die sense results and dither voltages.
    active: Vec<usize>,
    next_active: Vec<usize>,
    round_words: Vec<VoltageWord>,
    sense_out: Vec<Result<i16, SenseError>>,
    voltages: Vec<Volts>,
    group_v: Vec<Volts>,
    frac_out: Vec<Result<f64, SenseError>>,
}

impl DieBatch {
    pub(crate) fn with_capacity(batch: usize) -> DieBatch {
        DieBatch {
            corner_units: Vec::with_capacity(batch),
            mismatches: Vec::with_capacity(batch),
            delays: Vec::with_capacity(batch),
            fixed_pass: Vec::with_capacity(batch),
            words: Vec::with_capacity(batch),
            adaptive_pass: Vec::with_capacity(batch),
            adaptive_energy: Vec::with_capacity(batch),
            dithered_pass: Vec::with_capacity(batch),
            group_idx: Vec::with_capacity(batch),
            group_mm: Vec::with_capacity(batch),
            group_t: Vec::with_capacity(batch),
            group_pass: Vec::with_capacity(batch),
            active: Vec::with_capacity(batch),
            next_active: Vec::with_capacity(batch),
            round_words: Vec::with_capacity(batch),
            sense_out: Vec::with_capacity(batch),
            voltages: Vec::with_capacity(batch),
            group_v: Vec::with_capacity(batch),
            frac_out: Vec::with_capacity(batch),
        }
    }

    fn reset(&mut self, n: usize) {
        self.corner_units.clear();
        self.corner_units.resize(n, 0.0);
        self.mismatches.clear();
        self.mismatches.resize(n, GateMismatch::NOMINAL);
        self.delays.clear();
        self.delays.resize(n, Seconds(0.0));
        self.fixed_pass.clear();
        self.fixed_pass.resize(n, false);
        self.words.clear();
        self.words.resize(n, 0);
        self.adaptive_pass.clear();
        self.adaptive_pass.resize(n, false);
        self.adaptive_energy.clear();
        self.adaptive_energy.resize(n, Joules(0.0));
        self.dithered_pass.clear();
        self.dithered_pass.resize(n, false);
    }

    /// Scores the dies of `seeds` through the phased SoA pipeline,
    /// sharing `cached` (pure memoization) across the sub-batch.
    fn score(&mut self, ctx: &StudyContext<'_>, cached: &CachedEval<'_>, seeds: &[u64]) {
        record_sub_batch();

        let t0 = Instant::now();
        self.draw(ctx, seeds);
        record_phase(Phase::Draw, t0.elapsed().as_nanos() as u64);

        let t0 = Instant::now();
        self.fixed_lane(ctx, cached);
        record_phase(Phase::Fixed, t0.elapsed().as_nanos() as u64);

        let t0 = Instant::now();
        self.settle_words(ctx);
        record_phase(Phase::SettleWord, t0.elapsed().as_nanos() as u64);

        let t0 = Instant::now();
        self.adaptive_lanes(ctx, cached);
        record_phase(Phase::AdaptiveLanes, t0.elapsed().as_nanos() as u64);

        let t0 = Instant::now();
        self.dither_walk(ctx);
        self.dither_check(ctx, cached);
        record_phase(Phase::Dither, t0.elapsed().as_nanos() as u64);
    }

    /// Dies currently held in the scratch lanes.
    pub(crate) fn len(&self) -> usize {
        self.corner_units.len()
    }

    /// The mismatch lane entry of die `k` (for the matrix fault path's
    /// clean reference pieces).
    pub(crate) fn mismatch(&self, k: usize) -> GateMismatch {
        self.mismatches[k]
    }

    /// Phase A: sample the die population into the SoA lanes. One
    /// pre-forked stream per die, exactly as the scalar path draws;
    /// the correlation/scale arithmetic runs four dies wide. Resets
    /// every lane, so this must come first. Depends only on the seeds
    /// and the variation model — never the corner or the supply — so
    /// the matrix path runs it once for all cells.
    pub(crate) fn draw(&mut self, ctx: &StudyContext<'_>, seeds: &[u64]) {
        self.reset(seeds.len());
        ctx.variation
            .sample_die_lane(seeds, &mut self.corner_units, &mut self.mismatches);
    }

    /// Phase B: the fixed design — every die at one commanded word,
    /// the natural lane. Depends on the corner and the supply.
    pub(crate) fn fixed_lane(&mut self, ctx: &StudyContext<'_>, cached: &dyn DeviceEval) {
        lane_passes(
            ctx,
            cached,
            ctx.fixed_word,
            &self.mismatches,
            &mut self.delays,
            &mut self.fixed_pass,
        );
    }

    /// Phase C: the adaptive compensation walk, in lockstep — every
    /// die takes one walk step per round, and the dies currently
    /// testing the same candidate word share one fused sensor lane.
    /// Each die's step sequence (sense → dev == 0? → clamp walk →
    /// fixed-point?) is exactly `yield_study::settled_word`'s. Senses
    /// the exact candidate-word voltage, so it depends on the corner
    /// but not the supply.
    pub(crate) fn settle_words(&mut self, ctx: &StudyContext<'_>) {
        let n = self.len();
        // The settle lanes go straight to the study evaluator: every
        // iteration visits a fresh operating point, so the per-batch
        // memo (pure, and kept for the energy legs) would only add
        // lookups — bypassing it cannot change a bit.
        let eval = ctx.eval.as_ref();
        self.words[..n].fill(ctx.design_word);
        self.active.clear();
        self.active.extend(0..n);
        for _ in 0..8 {
            if self.active.is_empty() {
                break;
            }
            self.next_active.clear();
            // Snapshot each walker's word at the round boundary: a die
            // stepping up must not be re-sensed by a later cohort of
            // the same round.
            self.round_words.clear();
            self.round_words
                .extend(self.active.iter().map(|&k| self.words[k]));
            let mut word = 0usize;
            let mut remaining = self.active.len();
            while remaining > 0 && word < 64 {
                let w = word as VoltageWord;
                word += 1;
                self.group_idx.clear();
                self.group_idx.extend(
                    self.active
                        .iter()
                        .zip(&self.round_words)
                        .filter(|&(_, &rw)| rw == w)
                        .map(|(&k, _)| k),
                );
                if self.group_idx.is_empty() {
                    continue;
                }
                remaining -= self.group_idx.len();
                self.group_mm.clear();
                self.group_mm
                    .extend(self.group_idx.iter().map(|&k| self.mismatches[k]));
                self.sense_out.clear();
                self.sense_out.resize(self.group_idx.len(), Ok(0));
                let sensed = ctx.sensor.sense_lane_with(
                    eval,
                    ctx.design_word,
                    word_voltage(w),
                    ctx.env,
                    &self.group_mm,
                    &mut self.sense_out,
                );
                // A band error is die-independent: the whole cohort
                // stops walking, exactly as each scalar walk breaks.
                if sensed.is_err() {
                    continue;
                }
                for (j, &k) in self.group_idx.iter().enumerate() {
                    let Ok(dev) = self.sense_out[j] else {
                        continue;
                    };
                    if dev == 0 {
                        continue;
                    }
                    let next = (i16::from(w) - dev.signum()).clamp(1, 63) as VoltageWord;
                    if next != w {
                        self.words[k] = next;
                        self.next_active.push(k);
                    }
                }
            }
            std::mem::swap(&mut self.active, &mut self.next_active);
        }
    }

    /// Phase D: score each settled word's cohort as a lane — one
    /// grid resolution and one energy evaluation per distinct word.
    /// Depends on the corner and the supply.
    pub(crate) fn adaptive_lanes(&mut self, ctx: &StudyContext<'_>, cached: &dyn DeviceEval) {
        let n = self.len();
        let mut remaining = n;
        let mut word = 0usize;
        while remaining > 0 && word < 64 {
            let w = word as VoltageWord;
            self.group_idx.clear();
            self.group_idx
                .extend((0..n).filter(|&k| self.words[k] == w));
            word += 1;
            if self.group_idx.is_empty() {
                continue;
            }
            remaining -= self.group_idx.len();
            self.group_mm.clear();
            self.group_mm
                .extend(self.group_idx.iter().map(|&k| self.mismatches[k]));
            self.group_t.clear();
            self.group_t.resize(self.group_idx.len(), Seconds(0.0));
            self.group_pass.clear();
            self.group_pass.resize(self.group_idx.len(), false);
            let energy = lane_passes(
                ctx,
                cached,
                w,
                &self.group_mm,
                &mut self.group_t,
                &mut self.group_pass,
            );
            for (j, &k) in self.group_idx.iter().enumerate() {
                self.adaptive_pass[k] = self.group_pass[j];
                self.adaptive_energy[k] = energy;
            }
        }
    }

    /// Phase E (walk): the sub-LSB dither settle, in lockstep — every
    /// die walks its own continuous voltage, so the rounds lane over
    /// the per-die-supply fused kernel instead of a common word.
    /// Per die the update sequence is exactly
    /// `yield_study::settled_voltage_dithered`'s. Senses the exact
    /// walked voltage, so it depends on the corner but not the supply.
    pub(crate) fn dither_walk(&mut self, ctx: &StudyContext<'_>) {
        let n = self.len();
        let eval = ctx.eval.as_ref();
        self.voltages.clear();
        self.voltages.resize(n, word_voltage(ctx.design_word));
        self.active.clear();
        self.active.extend(0..n);
        for _ in 0..40 {
            if self.active.is_empty() {
                break;
            }
            self.group_v.clear();
            self.group_v
                .extend(self.active.iter().map(|&k| self.voltages[k]));
            self.group_mm.clear();
            self.group_mm
                .extend(self.active.iter().map(|&k| self.mismatches[k]));
            self.frac_out.clear();
            self.frac_out.resize(self.active.len(), Ok(0.0));
            let sensed = ctx.sensor.sense_fractional_multi_with(
                eval,
                ctx.design_word,
                &self.group_v,
                ctx.env,
                &self.group_mm,
                &mut self.frac_out,
            );
            if sensed.is_err() {
                // Die-independent band error: every walk breaks at its
                // current voltage.
                break;
            }
            self.next_active.clear();
            for (j, &k) in self.active.iter().enumerate() {
                let Ok(frac) = self.frac_out[j] else {
                    continue;
                };
                if frac.abs() < 0.02 {
                    continue;
                }
                let v = self.voltages[k].volts();
                self.voltages[k] = Volts((v - 0.2 * frac * 0.018_75).clamp(0.018_75, 1.18));
                self.next_active.push(k);
            }
            std::mem::swap(&mut self.active, &mut self.next_active);
        }
    }

    /// Phase E (check): the dithered spec check at each die's settled
    /// voltage. Depends on the corner and the supply.
    pub(crate) fn dither_check(&mut self, ctx: &StudyContext<'_>, cached: &dyn DeviceEval) {
        for k in 0..self.len() {
            let (pass, _) = ctx.passes_dithered(cached, self.voltages[k], self.mismatches[k]);
            self.dithered_pass[k] = pass;
        }
    }

    pub(crate) fn outcome(&self, k: usize) -> DieOutcome {
        DieOutcome {
            corner_units: self.corner_units[k],
            fixed_passes: self.fixed_pass[k],
            adaptive_passes: self.adaptive_pass[k],
            dithered_passes: self.dithered_pass[k],
            adaptive_word: self.words[k],
            adaptive_energy: self.adaptive_energy[k],
        }
    }
}

/// Scores one chunk's dies (`seeds`, whose first die has population
/// index `first_die`) in sub-batches of `batch`, handing each
/// [`DieOutcome`] to `sink` in die order — the fold kernel of the
/// batched summary path. Scratch is reused across sub-batches; nothing
/// scales with the population size.
pub(crate) fn fold_dies(
    ctx: &StudyContext<'_>,
    seeds: &[u64],
    first_die: usize,
    batch: usize,
    mut sink: impl FnMut(usize, &DieOutcome),
) {
    let batch = batch.max(1);
    let mut scratch = DieBatch::with_capacity(batch.min(seeds.len().max(1)));
    let mut lo = 0;
    while lo < seeds.len() {
        let hi = (lo + batch).min(seeds.len());
        let cached = CachedEval::new(ctx.eval.as_ref());
        scratch.score(ctx, &cached, &seeds[lo..hi]);
        for k in 0..(hi - lo) {
            sink(first_die + lo + k, &scratch.outcome(k));
        }
        lo = hi;
    }
}

/// The fault-study counterpart of [`fold_dies`]: the faulted
/// compensation walk is cycle-by-cycle per die, so the batch win is
/// the shared operating-point memo, not lanes. Outcomes stream to
/// `sink` in die order.
pub(crate) fn fold_faulted_dies(
    ctx: &StudyContext<'_>,
    plan: FaultPlan,
    seeds: &[u64],
    first_die: usize,
    batch: usize,
    mut sink: impl FnMut(usize, &FaultDieOutcome),
) {
    let batch = batch.max(1);
    let mut lo = 0;
    while lo < seeds.len() {
        let hi = (lo + batch).min(seeds.len());
        let cached = CachedEval::new(ctx.eval.as_ref());
        for (k, &seed) in seeds.iter().enumerate().take(hi).skip(lo) {
            let die = score_faulted_die_with(ctx, plan, StdRng::seed_from_u64(seed), &cached);
            sink(first_die + k, &die);
        }
        lo = hi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Serial reference for [`ChunkSeeds::from_seed`]: walk the parent
    /// die by die with the real `fork_seed` labels, snapshotting its
    /// state at every chunk boundary.
    fn serial_boundary_states(seed: u64, dies: usize, chunk: usize) -> Vec<[u64; 4]> {
        let mut parent = StdRng::seed_from_u64(seed);
        let mut states = Vec::with_capacity(dies.div_ceil(chunk));
        let mut label = String::with_capacity(24);
        for i in 0..dies {
            if i % chunk == 0 {
                states.push(parent.state());
            }
            label.clear();
            write!(label, "die-{i}").expect("in-memory write");
            parent.fork_seed(&label);
        }
        states
    }

    #[test]
    fn jump_ahead_matches_serial_reseeding_at_ten_thousand_chunks() {
        // ≥10⁴ chunks forces dies ≥ 2048 · 10⁴ (chunk_len saturates at
        // 2048): the jump table is exercised far past the small chunk
        // counts the study suite reaches.
        const CHUNKS: usize = 10_000;
        let chunk = 2048;
        let dies = chunk * CHUNKS;
        assert_eq!(chunk_len(dies), chunk, "fixture: chunk_len saturated");
        let seeds = ChunkSeeds::from_seed(2009, dies);
        let ChunkSeeds::Snapshots { states, chunk: c } = &seeds else {
            panic!("from_seed must snapshot");
        };
        assert_eq!((*c, states.len()), (chunk, CHUNKS));
        let serial = serial_boundary_states(2009, dies, chunk);
        for (i, (jumped, walked)) in states.iter().zip(&serial).enumerate() {
            assert_eq!(jumped.state(), *walked, "boundary state of chunk {i}");
        }
        // And the re-derived per-die seeds of a far chunk are the
        // serial stream's bytes, not merely the same parent state.
        let last = (CHUNKS - 1) * chunk..CHUNKS * chunk;
        let mut parent = StdRng::from_state(serial[CHUNKS - 1]);
        let mut label = String::new();
        let want: Vec<u64> = last
            .clone()
            .map(|i| {
                label.clear();
                write!(label, "die-{i}").expect("in-memory write");
                parent.fork_seed(&label)
            })
            .collect();
        assert_eq!(seeds.for_range(last).as_ref(), &want[..]);
    }

    #[test]
    fn chunk_boundary_states_are_pairwise_distinct() {
        const CHUNKS: usize = 10_000;
        let dies = 2048 * CHUNKS;
        let ChunkSeeds::Snapshots { states, .. } = ChunkSeeds::from_seed(42, dies) else {
            panic!("from_seed must snapshot");
        };
        let distinct: HashSet<[u64; 4]> = states.iter().map(|s| s.state()).collect();
        assert_eq!(
            distinct.len(),
            CHUNKS,
            "a colliding boundary state would fold two chunks onto one stream"
        );
    }
}
