//! The variation resilient adaptive controller (paper Fig. 5).
//!
//! One instance wires together the FIFO, the rate controller, the
//! TDC variation sensor, the compensation loop, the DC-DC converter
//! (switched or ideal) and a load. It advances in 1 µs system cycles
//! (the 64 MHz clock divided by the 6-bit terminal count) and keeps a
//! full per-cycle history plus an energy account.
//!
//! The same engine runs the baselines: a fixed-supply design (no
//! controller), an adaptive-but-uncompensated controller (sensor off),
//! and — by constructing it with `design_env == actual_env` — an
//! oracle that knows the die.

use std::fmt;

use subvt_rng::Rng;

use subvt_dcdc::converter::{ConverterParams, DcDcConverter};
use subvt_dcdc::filter::ConstantLoad;
use subvt_dcdc::ideal::IdealConverter;
use subvt_device::delay::GateMismatch;
use subvt_device::mosfet::Environment;
use subvt_device::tabulate::SharedEval;
use subvt_device::technology::Technology;
use subvt_device::units::{Joules, Seconds, Volts};
use subvt_digital::fifo::Fifo;
use subvt_digital::lut::VoltageWord;
use subvt_loads::load::CircuitLoad;
use subvt_loads::workload::WorkloadSource;
use subvt_tdc::sensor::{SenseError, SensorConfig, VariationSensor};

use crate::compensation::{CompensationLoop, CompensationPolicy};
use crate::energy_account::EnergyAccount;
use crate::fault_study::{scrub_cost, trip_cost};
use crate::rate_controller::{LutCheckpoint, RateController};
use crate::watchdog::{RailWatchdog, WatchdogPolicy};

/// How the supply voltage is decided each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupplyPolicy {
    /// Full controller: rate LUT + TDC sensing + LUT compensation.
    AdaptiveCompensated,
    /// Sub-LSB controller: fractional TDC sensing drives a sigma-delta
    /// dither between adjacent words (the UDVS extension, paper
    /// ref. \[12\]), landing the *average* supply on the iso-delay
    /// point between 18.75 mV steps. Ideal-supply runs only.
    AdaptiveDithered,
    /// Rate LUT only; the sensor and compensation are disabled.
    AdaptiveUncompensated,
    /// A fixed design-time word — the paper's "no controller" baseline.
    FixedWord(VoltageWord),
}

/// Which converter model supplies the load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SupplyKind {
    /// Instantaneous ideal converter (fast, for long energy studies).
    #[default]
    Ideal,
    /// The switched PWM + LC converter (for transient fidelity).
    Switched,
}

/// Controller-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// FIFO depth.
    pub fifo_capacity: usize,
    /// System cycle length (the paper's 1 µs).
    pub system_cycle: Seconds,
    /// TDC sensor geometry.
    pub sensor: SensorConfig,
    /// Compensation confirmation policy.
    pub compensation: CompensationPolicy,
    /// Fraction of the cycle the load may spend processing.
    pub utilization: f64,
    /// Leakage fraction retained while power-gated idle (0 = perfect
    /// gating; 1 = no gating).
    pub idle_retention: f64,
    /// System cycles between duty-trim updates on the switched
    /// converter. Must exceed the LC settling time or the trim
    /// integrator pumps the filter resonance.
    pub trim_interval: u64,
    /// Converter configuration for [`SupplyKind::Switched`] runs
    /// (solver mode, passives, power stage); ignored by the ideal
    /// supply.
    pub converter: ConverterParams,
}

impl Default for ControllerConfig {
    fn default() -> ControllerConfig {
        ControllerConfig {
            fifo_capacity: 64,
            system_cycle: Seconds::from_micros(1.0),
            sensor: SensorConfig::default(),
            compensation: CompensationPolicy::default(),
            utilization: 1.0,
            idle_retention: 0.05,
            trim_interval: 20,
            converter: ConverterParams::default(),
        }
    }
}

enum Supply {
    Ideal(IdealConverter),
    Switched(Box<DcDcConverter>),
}

impl fmt::Debug for Supply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Supply::Ideal(_) => write!(f, "Supply::Ideal"),
            Supply::Switched(_) => write!(f, "Supply::Switched"),
        }
    }
}

/// One system cycle of recorded history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleRecord {
    /// Cycle index.
    pub cycle: u64,
    /// Items that arrived this cycle.
    pub arrivals: u32,
    /// Queue length after arrivals.
    pub queue: usize,
    /// Voltage word issued by the rate controller.
    pub word: VoltageWord,
    /// Supply voltage seen by the load at cycle end.
    pub vout: Volts,
    /// Sensed deviation in LSBs (`None` when sensing is off or the
    /// band is unusable).
    pub deviation: Option<i16>,
    /// LUT shift applied this cycle.
    pub shift: i16,
    /// Operations completed this cycle.
    pub ops: u32,
}

/// Summary of a finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Total energy account.
    pub account: EnergyAccount,
    /// System cycles simulated.
    pub cycles: u64,
    /// Operations completed.
    pub operations: u64,
    /// Items lost to FIFO overflow.
    pub dropped: u64,
    /// Net LUT compensation at the end (LSBs).
    pub compensation: i16,
    /// Mean supply voltage over the run.
    pub mean_vout: Volts,
    /// Items still queued at the end.
    pub backlog: usize,
}

impl RunSummary {
    /// Fraction of offered items that were lost.
    pub fn loss_rate(&self) -> f64 {
        let offered = self.operations + self.dropped + self.backlog as u64;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }
}

/// The assembled adaptive controller.
#[derive(Debug)]
pub struct AdaptiveController<L: CircuitLoad> {
    tech: Technology,
    /// Optional device-surface evaluator: when set, the sensor, the
    /// load's rate and the energy account all run on it (tabulated
    /// surfaces take the analytic model off the per-cycle path).
    eval: Option<SharedEval>,
    design_env: Environment,
    actual_env: Environment,
    die_mismatch: GateMismatch,
    load: L,
    policy: SupplyPolicy,
    config: ControllerConfig,
    fifo: Fifo<u64>,
    rate: RateController,
    sensor: VariationSensor,
    compensation: CompensationLoop,
    supply: Supply,
    account: EnergyAccount,
    history: Vec<CycleRecord>,
    cycle: u64,
    next_item: u64,
    work_carry: f64,
    duty_trim: i16,
    /// Continuous LUT shift maintained by the dithered policy (LSBs).
    frac_shift: f64,
    /// First-order sigma-delta accumulator for word emission.
    sigma_delta_acc: f64,
    /// Optional rail watchdog: last-known-good fallback when the
    /// sensed deviation refuses to settle.
    watchdog: Option<RailWatchdog>,
    /// Golden LUT copy for the end-of-cycle scrub (SEU hardening).
    golden: Option<LutCheckpoint>,
}

impl<L: CircuitLoad> AdaptiveController<L> {
    /// Builds a controller.
    ///
    /// * `design_env` — the corner/temperature the LUT and sensor were
    ///   calibrated for at design time;
    /// * `actual_env` + `die_mismatch` — what the silicon actually is.
    #[allow(clippy::too_many_arguments)] // mirrors the physical wiring of Fig. 5
    pub fn new(
        tech: Technology,
        load: L,
        rate: RateController,
        design_env: Environment,
        actual_env: Environment,
        die_mismatch: GateMismatch,
        policy: SupplyPolicy,
        kind: SupplyKind,
        config: ControllerConfig,
    ) -> AdaptiveController<L> {
        let sensor = VariationSensor::new(&tech, design_env, config.sensor);
        let supply = match kind {
            SupplyKind::Ideal => Supply::Ideal(IdealConverter::new()),
            SupplyKind::Switched => {
                // The converter load is the electrical image of the
                // digital load at a representative operating point; it
                // is refreshed implicitly through the voltage ODE.
                let dc = DcDcConverter::new(
                    config.converter,
                    Box::new(ConstantLoad(subvt_device::units::Amps(2e-6))),
                );
                Supply::Switched(Box::new(dc))
            }
        };
        AdaptiveController {
            compensation: CompensationLoop::new(config.compensation),
            fifo: Fifo::new(config.fifo_capacity),
            tech,
            eval: None,
            design_env,
            actual_env,
            die_mismatch,
            load,
            policy,
            config,
            rate,
            sensor,
            supply,
            account: EnergyAccount::new(),
            history: Vec::new(),
            cycle: 0,
            next_item: 0,
            work_carry: 0.0,
            duty_trim: 0,
            frac_shift: 0.0,
            sigma_delta_acc: 0.0,
            watchdog: None,
            golden: None,
        }
    }

    /// Routes the controller's device physics — sensor calibration,
    /// runtime sensing, the load's processing rate and the energy
    /// account — through `eval`. With an
    /// [`AnalyticEval`](subvt_device::tabulate::AnalyticEval) the run
    /// is bit-identical to the default; with a
    /// [`TabulatedEval`](subvt_device::tabulate::TabulatedEval) the
    /// per-cycle loop stays off the analytic model.
    pub fn with_eval(mut self, eval: SharedEval) -> AdaptiveController<L> {
        self.sensor =
            VariationSensor::with_eval(eval.as_ref(), self.design_env, self.config.sensor);
        self.eval = Some(eval);
        self
    }

    /// Arms the rail watchdog: once the loop has settled (a zero
    /// deviation), a deviation that stays large for several cycles
    /// falls back to the last-known-good word by shifting the LUT, and
    /// retries with exponential backoff. Quiet on a healthy die — the
    /// run is bit-identical to an unarmed controller.
    pub fn with_watchdog(mut self, policy: WatchdogPolicy) -> AdaptiveController<L> {
        self.watchdog = Some(RailWatchdog::new(policy));
        self
    }

    /// Enables the end-of-cycle LUT scrub: the current designed words
    /// become the golden shadow copy, and every cycle ends by
    /// repairing any register that drifted from it (an SEU), booking
    /// the rewrite energy as recovery. The live compensation shift is
    /// not part of the checkpoint and survives scrubbing.
    pub fn enable_lut_scrub(&mut self) {
        self.golden = Some(self.rate.checkpoint());
    }

    /// Fault hook: flips one bit of the LUT word register for `band`,
    /// as a particle strike would.
    pub fn inject_lut_upset(&mut self, band: usize, bit: u8) {
        self.rate.upset_word(band, bit);
    }

    /// The rail watchdog, when armed.
    pub fn watchdog(&self) -> Option<&RailWatchdog> {
        self.watchdog.as_ref()
    }

    /// The load.
    pub fn load(&self) -> &L {
        &self.load
    }

    /// The environment the controller was designed/calibrated for.
    pub fn design_env(&self) -> Environment {
        self.design_env
    }

    /// The actual silicon's environment.
    pub fn actual_env(&self) -> Environment {
        self.actual_env
    }

    /// Changes the silicon's environment mid-run (temperature drift, a
    /// hot spot arriving): the controller is not told — it has to
    /// re-discover the change through the sensor.
    pub fn set_actual_env(&mut self, env: Environment) {
        self.actual_env = env;
    }

    /// The accumulated duty trim on the switched converter (LSBs).
    pub fn duty_trim(&self) -> i16 {
        self.duty_trim
    }

    /// The per-cycle history.
    pub fn history(&self) -> &[CycleRecord] {
        &self.history
    }

    /// The energy account so far.
    pub fn account(&self) -> &EnergyAccount {
        &self.account
    }

    /// The rate controller (to inspect the LUT/compensation).
    pub fn rate_controller(&self) -> &RateController {
        &self.rate
    }

    /// Current supply voltage.
    pub fn vout(&self) -> Volts {
        match &self.supply {
            Supply::Ideal(c) => c.vout(),
            Supply::Switched(c) => c.vout(),
        }
    }

    fn set_word(&mut self, word: VoltageWord) {
        match &mut self.supply {
            Supply::Ideal(c) => c.set_word(word),
            Supply::Switched(c) => c.set_word(word),
        }
    }

    fn advance_supply(&mut self) -> Joules {
        match &mut self.supply {
            Supply::Ideal(_) => Joules::ZERO,
            Supply::Switched(c) => {
                let before = c.conduction_energy();
                c.run_system_cycles(1);
                c.conduction_energy() - before
            }
        }
    }

    /// Advances one system cycle with `arrivals` new items. Returns the
    /// cycle record.
    pub fn step(&mut self, arrivals: u32) -> CycleRecord {
        // 1. Arrivals enter the FIFO; overflow is lost data.
        for _ in 0..arrivals {
            let id = self.next_item;
            self.next_item += 1;
            self.fifo.push(id);
        }
        let queue = self.fifo.queue_length();

        // 2. Rate control: queue length → voltage word.
        let word = match self.policy {
            SupplyPolicy::FixedWord(w) => w,
            SupplyPolicy::AdaptiveDithered => {
                // Continuous target = LUT word + fractional shift;
                // first-order sigma-delta picks the per-cycle word so
                // the running average hits the target exactly.
                let base = f64::from(self.rate.desired_word(queue));
                let target = (base + self.frac_shift).clamp(1.0, 63.0);
                let floor = target.floor();
                self.sigma_delta_acc += target - floor;
                let up = self.sigma_delta_acc >= 1.0;
                if up {
                    self.sigma_delta_acc -= 1.0;
                }
                (floor as i16 + i16::from(up)).clamp(1, 63) as VoltageWord
            }
            _ => self.rate.desired_word(queue),
        };
        match &self.supply {
            Supply::Ideal(_) => self.set_word(word),
            Supply::Switched(_) => {
                // The comparator's up/down/hold duty trim (paper
                // Sec. III) rides on top of the feed-forward word.
                let duty = (i16::from(word) + self.duty_trim).clamp(1, 63) as u64;
                if let Supply::Switched(c) = &mut self.supply {
                    c.set_duty(duty);
                }
            }
        }

        // 3. The converter produces the supply for this cycle.
        let converter_loss = self.advance_supply();
        self.account.add_converter(converter_loss);
        let vout = self.vout();

        // 4. Variation sensing: LUT compensation on the ideal supply;
        //    on the switched supply the same signature drives the duty
        //    trim (regulating the replica delay onto the design target
        //    corrects converter error and process shift together).
        let mut deviation = None;
        let mut shift = 0;
        if self.policy == SupplyPolicy::AdaptiveDithered {
            let base = self.rate.desired_word(queue);
            if let Ok(frac) = self.sense_fractional(base, vout) {
                deviation = Some(frac.round() as i16);
                // Slow integrator: the EMA of −deviation is the shift
                // that holds the *average* replica delay on target.
                self.frac_shift = (self.frac_shift - 0.2 * frac).clamp(-3.0, 3.0);
            }
        }
        if self.policy == SupplyPolicy::AdaptiveCompensated {
            // The sensing band is the *uncompensated* word: the target
            // stays "design-corner delay at the designed voltage".
            let base = self.base_word(queue);
            if let Ok(dev) = self.sense(base, vout) {
                deviation = Some(dev);
                match &self.supply {
                    Supply::Ideal(_) => {
                        let trip = self
                            .watchdog
                            .as_mut()
                            .and_then(|dog| dog.observe(word, dev));
                        if let Some(good) = trip {
                            // Fall back to last-known-good: shift the
                            // LUT so this queue maps onto the word the
                            // rail last settled at.
                            let delta = i16::from(good) - i16::from(word);
                            self.rate.apply_compensation(delta);
                            self.compensation.reset_streak();
                            self.account.add_recovery(trip_cost());
                            shift = delta;
                        } else if let Some(step) = self.compensation.observe(dev) {
                            self.rate.apply_compensation(step);
                            shift = step;
                        }
                    }
                    Supply::Switched(_) => {
                        // Up/down/hold, applied once per trim interval
                        // so the LC filter settles between corrections.
                        if (self.cycle + 1).is_multiple_of(self.config.trim_interval) {
                            self.duty_trim = (self.duty_trim - dev.signum()).clamp(-6, 6);
                        }
                    }
                }
            }
        }

        // 5. The load drains the queue as fast as this supply allows.
        let ops = self.process(vout);

        // 6. Energy accounting.
        self.account_energy(vout, ops);

        // 7. End-of-cycle LUT scrub against the golden shadow copy.
        if let Some(golden) = &self.golden {
            if self.rate.scrub(golden) {
                self.account.add_recovery(scrub_cost());
            }
        }

        let record = CycleRecord {
            cycle: self.cycle,
            arrivals,
            queue,
            word,
            vout,
            deviation,
            shift,
            ops,
        };
        self.history.push(record);
        self.cycle += 1;
        record
    }

    fn base_word(&self, queue: usize) -> VoltageWord {
        let shifted = i16::from(self.rate.desired_word(queue));
        (shifted - self.rate.compensation()).clamp(0, 63) as VoltageWord
    }

    fn sense(&self, word: VoltageWord, vout: Volts) -> Result<i16, SenseError> {
        match &self.eval {
            Some(eval) => self.sensor.sense_with(
                eval.as_ref(),
                word,
                vout,
                self.actual_env,
                self.die_mismatch,
            ),
            None => self
                .sensor
                .sense(&self.tech, word, vout, self.actual_env, self.die_mismatch),
        }
    }

    fn sense_fractional(&self, word: VoltageWord, vout: Volts) -> Result<f64, SenseError> {
        match &self.eval {
            Some(eval) => self.sensor.sense_fractional_with(
                eval.as_ref(),
                word,
                vout,
                self.actual_env,
                self.die_mismatch,
            ),
            None => self.sensor.sense_fractional(
                &self.tech,
                word,
                vout,
                self.actual_env,
                self.die_mismatch,
            ),
        }
    }

    fn process(&mut self, vout: Volts) -> u32 {
        let rate = match &self.eval {
            Some(eval) => {
                self.load
                    .max_rate_with(eval.as_ref(), vout, self.actual_env, self.die_mismatch)
            }
            None => self
                .load
                .max_rate(&self.tech, vout, self.actual_env, self.die_mismatch),
        };
        let Ok(rate) = rate else {
            return 0; // supply below functional floor: the load stalls
        };
        let capacity = rate.value() * self.config.system_cycle.value() * self.config.utilization
            + self.work_carry;
        let possible = capacity.floor();
        let done = (possible as u64).min(self.fifo.queue_length() as u64) as u32;
        self.work_carry = (capacity - possible).clamp(0.0, 1.0);
        for _ in 0..done {
            self.fifo.pop();
        }
        done
    }

    fn account_energy(&mut self, vout: Volts, ops: u32) {
        let e = match &self.eval {
            Some(eval) => self
                .load
                .energy_per_op_with(eval.as_ref(), vout, self.actual_env),
            None => self.load.energy_per_op(&self.tech, vout, self.actual_env),
        };
        let Ok(e) = e else {
            // Below the functional floor the load cannot compute, but
            // its (gated) leakage still flows.
            let profile = self.load.profile();
            let i_off_n = self
                .tech
                .nmos
                .off_current(vout, self.actual_env, Volts::ZERO);
            let i_off_p = self
                .tech
                .pmos
                .off_current(vout, self.actual_env, Volts::ZERO);
            let scales = profile.corner_cal.scales(self.actual_env.corner);
            let leak = 0.5
                * (i_off_n.value() + i_off_p.value())
                * profile.gates
                * profile.gate.leak_factor()
                * profile.leak_scale
                * scales.leak;
            let idle_power = leak * vout.volts() * self.config.idle_retention;
            self.account.add_leakage(
                Joules(idle_power * self.config.system_cycle.value()),
                self.config.system_cycle,
            );
            return;
        };
        // Per-op energy: switching plus leakage over the op's own
        // critical path (the classic MEP decomposition).
        let per_op = e.dynamic + e.leakage;
        self.account
            .add_dynamic(per_op * f64::from(ops), u64::from(ops));
        // Idle leakage: the remainder of the cycle at the retention
        // fraction (the load is power-gated between operations).
        let busy = e.cycle_time.value() * f64::from(ops);
        let idle = (self.config.system_cycle.value() - busy).max(0.0);
        let idle_power = e.leak_current.value() * vout.volts() * self.config.idle_retention;
        self.account
            .add_leakage(Joules(idle_power * idle), self.config.system_cycle);
    }

    /// Runs `cycles` system cycles fed by `workload`, then summarizes.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        workload: &mut WorkloadSource,
        cycles: u64,
        rng: &mut R,
    ) -> RunSummary {
        for _ in 0..cycles {
            let arrivals = workload.next_arrivals(rng);
            self.step(arrivals);
        }
        self.summary()
    }

    /// Exports the per-cycle history as named waveforms (supply
    /// voltage, issued word, sensed deviation, queue length) for CSV
    /// or VCD dumping through `subvt_sim::trace`/`subvt_sim::vcd`.
    pub fn history_traces(&self) -> subvt_sim::trace::TraceSet {
        use subvt_sim::time::{SimDuration, SimTime};
        use subvt_sim::trace::{AnalogTrace, TraceSet};
        let cycle_span = SimDuration::from_seconds(self.config.system_cycle.value());
        let mut vout = AnalogTrace::new("v_out");
        let mut word = AnalogTrace::new("word");
        let mut deviation = AnalogTrace::new("deviation_lsb");
        let mut queue = AnalogTrace::new("queue_length");
        for r in &self.history {
            let t = SimTime::ZERO + cycle_span * r.cycle;
            vout.push(t, r.vout.volts());
            word.push(t, f64::from(r.word));
            deviation.push(t, r.deviation.map_or(f64::NAN, f64::from));
            queue.push(t, r.queue as f64);
        }
        let mut set = TraceSet::new();
        set.add(vout);
        set.add(word);
        set.add(deviation);
        set.add(queue);
        set
    }

    /// Summary of everything simulated so far.
    pub fn summary(&self) -> RunSummary {
        let mean_vout = if self.history.is_empty() {
            Volts::ZERO
        } else {
            Volts(
                self.history.iter().map(|r| r.vout.volts()).sum::<f64>()
                    / self.history.len() as f64,
            )
        };
        RunSummary {
            account: self.account,
            cycles: self.cycle,
            operations: self.account.operations(),
            dropped: self.fifo.dropped(),
            compensation: self.rate.compensation(),
            mean_vout,
            backlog: self.fifo.queue_length(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_device::corner::ProcessCorner;
    use subvt_device::units::Hertz;
    use subvt_loads::ring_oscillator::RingOscillator;
    use subvt_loads::workload::WorkloadPattern;
    use subvt_rng::StdRng;

    fn rate_controller(tech: &Technology, env: Environment) -> RateController {
        RateController::design(
            tech,
            &RingOscillator::paper_circuit(),
            env,
            &[(8, Hertz(100e3)), (16, Hertz(1e6)), (32, Hertz(10e6))],
        )
        .expect("designable")
    }

    fn controller(
        actual: Environment,
        policy: SupplyPolicy,
        kind: SupplyKind,
    ) -> AdaptiveController<RingOscillator> {
        let tech = Technology::st_130nm();
        let design = Environment::nominal();
        let rate = rate_controller(&tech, design);
        AdaptiveController::new(
            tech,
            RingOscillator::paper_circuit(),
            rate,
            design,
            actual,
            GateMismatch::NOMINAL,
            policy,
            kind,
            ControllerConfig::default(),
        )
    }

    #[test]
    fn idle_controller_sits_at_the_mep_word() {
        let mut c = controller(
            Environment::nominal(),
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
        );
        for _ in 0..10 {
            c.step(0);
        }
        let last = *c.history().last().unwrap();
        assert_eq!(last.word, 11, "MEP word ≈ 200 mV");
        assert!((last.vout.millivolts() - 206.25).abs() < 1.0);
        assert_eq!(c.summary().compensation, 0, "nominal die needs no shift");
    }

    #[test]
    fn queue_pressure_raises_the_voltage() {
        let mut c = controller(
            Environment::nominal(),
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
        );
        c.step(40); // flood the queue
        let busy = *c.history().last().unwrap();
        for _ in 0..200 {
            c.step(0);
        }
        let idle = *c.history().last().unwrap();
        assert!(
            busy.word > idle.word,
            "busy {} vs idle {}",
            busy.word,
            idle.word
        );
        assert!(busy.vout.volts() > idle.vout.volts());
    }

    #[test]
    fn slow_die_gets_compensated_up_one_lsb() {
        // The paper's worked example: TT-designed controller on a slow
        // die corrects the LUT by ~1 LSB within a few system cycles.
        let mut c = controller(
            Environment::at_corner(ProcessCorner::Ss),
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
        );
        for _ in 0..20 {
            c.step(0);
        }
        let s = c.summary();
        assert!(
            (1..=2).contains(&s.compensation),
            "expected ≈ +1 LSB, got {}",
            s.compensation
        );
        // Corrected idle voltage ≈ 200 + 18.75 ≈ 219 mV: the SS MEP.
        let last = *c.history().last().unwrap();
        assert!(
            (215.0..245.0).contains(&last.vout.millivolts()),
            "vout {}",
            last.vout.millivolts()
        );
    }

    #[test]
    fn fast_die_gets_compensated_down() {
        let mut c = controller(
            Environment::at_corner(ProcessCorner::Ff),
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
        );
        for _ in 0..20 {
            c.step(0);
        }
        assert!(c.summary().compensation < 0);
    }

    #[test]
    fn uncompensated_policy_never_shifts() {
        let mut c = controller(
            Environment::at_corner(ProcessCorner::Ss),
            SupplyPolicy::AdaptiveUncompensated,
            SupplyKind::Ideal,
        );
        for _ in 0..20 {
            c.step(0);
        }
        assert_eq!(c.summary().compensation, 0);
        assert!(c.history().iter().all(|r| r.deviation.is_none()));
    }

    #[test]
    fn fixed_word_policy_holds_the_supply() {
        let mut c = controller(
            Environment::nominal(),
            SupplyPolicy::FixedWord(32),
            SupplyKind::Ideal,
        );
        c.step(10);
        c.step(0);
        assert!(c.history().iter().all(|r| r.word == 32));
        assert!((c.vout().millivolts() - 600.0).abs() < 1.0);
    }

    #[test]
    fn workload_is_processed_without_loss_when_sized_right() {
        let mut c = controller(
            Environment::nominal(),
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
        );
        let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 2 });
        let mut rng = StdRng::seed_from_u64(1);
        let s = c.run(&mut wl, 500, &mut rng);
        assert_eq!(s.dropped, 0, "no data loss");
        // Everything offered is either done or still queued (the queue
        // hovers near a band boundary, so a bounded backlog remains).
        assert!(s.operations >= 950, "ops {}", s.operations);
        assert!(s.backlog <= 40, "backlog {}", s.backlog);
        assert!(s.loss_rate() < 1e-9);
    }

    #[test]
    fn overload_drops_data_like_the_paper_warns() {
        // "If the data approaches faster than it can process, it
        // results in loss of data."
        let tech = Technology::st_130nm();
        let design = Environment::nominal();
        let rate = rate_controller(&tech, design);
        let config = ControllerConfig {
            fifo_capacity: 8,
            ..ControllerConfig::default()
        };
        let mut c = AdaptiveController::new(
            tech,
            RingOscillator::paper_circuit(),
            rate,
            design,
            design,
            GateMismatch::NOMINAL,
            SupplyPolicy::FixedWord(8), // far too slow for the offered rate
            SupplyKind::Ideal,
            config,
        );
        let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 10 });
        let mut rng = StdRng::seed_from_u64(2);
        let s = c.run(&mut wl, 50, &mut rng);
        assert!(s.dropped > 0);
        assert!(s.loss_rate() > 0.1);
    }

    #[test]
    fn switched_supply_reaches_the_same_word_voltage() {
        let mut c = controller(
            Environment::nominal(),
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Switched,
        );
        for _ in 0..80 {
            c.step(0);
        }
        // The duty-trim loop holds the output within ~1 LSB of the MEP
        // word's voltage despite converter imperfection.
        let v = c.vout().millivolts();
        assert!((v - 206.25).abs() < 22.0, "switched vout {v} mV");
        // The switched path also books converter loss.
        assert!(c.account().converter().value() > 0.0);
    }

    #[test]
    fn history_traces_export_every_cycle() {
        let mut c = controller(
            Environment::at_corner(ProcessCorner::Ss),
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
        );
        for arrivals in [0, 3, 0, 0, 1, 0] {
            c.step(arrivals);
        }
        let set = c.history_traces();
        let vout = set.trace(0).expect("v_out trace");
        assert_eq!(vout.len(), 6);
        assert_eq!(vout.name(), "v_out");
        // CSV dump contains all four waveforms.
        let mut buf = Vec::new();
        set.write_csv(&mut buf).expect("vec write");
        let csv = String::from_utf8(buf).unwrap();
        for name in ["v_out", "word", "deviation_lsb", "queue_length"] {
            assert!(csv.contains(name), "{name} missing");
        }
    }

    #[test]
    fn dithered_policy_lands_between_words_on_a_half_lsb_die() {
        // A die half an LSB slow: integer compensation must choose
        // word 11 or 12; the dithered policy synthesizes the point in
        // between and its sensed error averages to zero.
        let tech = Technology::st_130nm();
        let design = Environment::nominal();
        let rate = rate_controller(&tech, design);
        let half_lsb = GateMismatch {
            nmos_dvth: subvt_device::units::Volts(0.009_4),
            pmos_dvth: subvt_device::units::Volts(0.009_4),
        };
        let mut c = AdaptiveController::new(
            tech,
            RingOscillator::paper_circuit(),
            rate,
            design,
            design,
            half_lsb,
            SupplyPolicy::AdaptiveDithered,
            SupplyKind::Ideal,
            ControllerConfig::default(),
        );
        for _ in 0..400 {
            c.step(0);
        }
        // Average supply over the settled tail.
        let tail = &c.history()[300..];
        let mean_mv = tail.iter().map(|r| r.vout.millivolts()).sum::<f64>() / tail.len() as f64;
        // Iso-delay target ≈ 206.25 + ~9.4 mV; strictly between words.
        assert!(
            (208.0..225.0).contains(&mean_mv),
            "dithered mean {mean_mv} mV"
        );
        let off_grid = (mean_mv / 18.75).fract();
        assert!(
            (0.08..0.92).contains(&off_grid),
            "mean sits on a word: {mean_mv} mV"
        );
        // Both adjacent words are actually used.
        let words: std::collections::HashSet<u8> = tail.iter().map(|r| r.word).collect();
        assert!(words.len() >= 2, "no dithering happened: {words:?}");
    }

    #[test]
    fn dithered_policy_stays_on_grid_for_a_nominal_die() {
        let mut c = controller(
            Environment::nominal(),
            SupplyPolicy::AdaptiveDithered,
            SupplyKind::Ideal,
        );
        for _ in 0..200 {
            c.step(0);
        }
        let tail = &c.history()[150..];
        let mean_mv = tail.iter().map(|r| r.vout.millivolts()).sum::<f64>() / tail.len() as f64;
        assert!(
            (mean_mv - 206.25).abs() < 6.0,
            "nominal dithered mean {mean_mv} mV"
        );
    }

    #[test]
    fn eval_runs_match_the_direct_controller() {
        use std::sync::Arc;
        use subvt_device::tabulate::{AnalyticEval, TabulatedEval};
        let tech = Technology::st_130nm();
        let run = |c: &mut AdaptiveController<RingOscillator>| {
            let mut wl = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 1 });
            let mut rng = StdRng::seed_from_u64(9);
            c.run(&mut wl, 200, &mut rng)
        };
        let mut direct = controller(
            Environment::at_corner(ProcessCorner::Ss),
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
        );
        let baseline = run(&mut direct);

        // Analytic eval: bit-identical run.
        let mut via_analytic = controller(
            Environment::at_corner(ProcessCorner::Ss),
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
        )
        .with_eval(Arc::new(AnalyticEval::new(&tech)));
        assert_eq!(run(&mut via_analytic), baseline);
        assert_eq!(via_analytic.history(), direct.history());

        // Tabulated eval: same control decisions (the 18.75 mV word
        // grid dwarfs the ≤1% interpolation budget), energy within it.
        let mut via_table = controller(
            Environment::at_corner(ProcessCorner::Ss),
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
        )
        .with_eval(Arc::new(TabulatedEval::new(&tech)));
        let tabulated = run(&mut via_table);
        assert_eq!(tabulated.compensation, baseline.compensation);
        // The ≤1% rate interpolation error can move one floor() in the
        // work accumulator over a long run, never more than that.
        let op_gap = tabulated.operations.abs_diff(baseline.operations);
        assert!(
            (op_gap as f64) <= 1.0 + 0.01 * baseline.operations as f64,
            "ops diverged: {} vs {}",
            tabulated.operations,
            baseline.operations
        );
        assert_eq!(tabulated.dropped, baseline.dropped);
        let (t, b) = (
            tabulated.account.total().value(),
            baseline.account.total().value(),
        );
        assert!((t - b).abs() / b < 0.02, "energy diverged: {t:e} vs {b:e}");
    }

    #[test]
    fn adaptive_beats_fixed_high_voltage_on_light_work() {
        let mut adaptive = controller(
            Environment::nominal(),
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
        );
        let mut fixed = controller(
            Environment::nominal(),
            SupplyPolicy::FixedWord(32),
            SupplyKind::Ideal,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let mut wl1 = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 1 });
        let mut wl2 = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 1 });
        let a = adaptive.run(&mut wl1, 300, &mut rng);
        let b = fixed.run(&mut wl2, 300, &mut rng);
        assert_eq!(a.dropped, 0);
        assert_eq!(b.dropped, 0);
        let savings = a.account.savings_vs(&b.account);
        assert!(savings > 0.3, "savings {savings}");
    }

    #[test]
    fn hardening_is_silent_on_a_healthy_die() {
        // The degradation machinery must not perturb a fault-free run:
        // same history, same energy, zero watchdog trips, no recovery.
        let mut plain = controller(
            Environment::at_corner(ProcessCorner::Ss),
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
        );
        let mut hard = controller(
            Environment::at_corner(ProcessCorner::Ss),
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
        )
        .with_watchdog(WatchdogPolicy::default());
        hard.enable_lut_scrub();
        for _ in 0..30 {
            plain.step(0);
            hard.step(0);
        }
        assert_eq!(plain.history(), hard.history());
        assert_eq!(plain.summary(), hard.summary());
        assert_eq!(hard.watchdog().unwrap().trips(), 0);
        assert_eq!(hard.account().recovery(), Joules::ZERO);
    }

    #[test]
    fn lut_scrub_repairs_an_upset_within_one_cycle() {
        let mut c = controller(
            Environment::nominal(),
            SupplyPolicy::AdaptiveCompensated,
            SupplyKind::Ideal,
        );
        c.enable_lut_scrub();
        for _ in 0..5 {
            c.step(0);
        }
        let settled = c.history().last().unwrap().word;
        c.inject_lut_upset(0, 5);
        let hit = c.step(0);
        assert_ne!(hit.word, settled, "the upset register drives one cycle");
        let next = c.step(0);
        assert_eq!(next.word, settled, "the scrub restored the golden word");
        assert!(c.account().recovery().value() > 0.0, "rewrite was booked");
    }
}
