//! Ultra-dynamic voltage scaling by local voltage dithering — the
//! paper's reference \[12\] (Calhoun & Chandrakasan, JSSC'06).
//!
//! The 6-bit converter quantizes the supply to 18.75 mV steps; a target
//! between two steps can be *synthesized on average* by time-dithering
//! between the adjacent words. This module computes the optimal dither
//! and the energy it recovers relative to rounding to the nearest word
//! — the dynamic companion to the static code-width ablation.

use subvt_device::delay::SupplyRangeError;
use subvt_device::energy::{energy_per_cycle, CircuitProfile};
use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_device::units::{Joules, Volts};
use subvt_digital::lut::VoltageWord;
use subvt_tdc::sensor::word_voltage;

/// A dither schedule between two adjacent voltage words.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DitherPlan {
    /// The lower word.
    pub low: VoltageWord,
    /// The upper word (`low + 1`).
    pub high: VoltageWord,
    /// Fraction of operations run at the upper word (0..=1).
    pub high_fraction: f64,
}

impl DitherPlan {
    /// Plans a dither for a target voltage: operations are split so
    /// the *throughput-weighted* average rate matches running exactly
    /// at `target` (Calhoun's rate-matching construction).
    ///
    /// Targets at or beyond the code range collapse to a single word.
    pub fn for_target(target: Volts) -> DitherPlan {
        let lsb = 0.01875;
        let idx = target.volts() / lsb;
        let low = idx.floor().clamp(0.0, 63.0) as VoltageWord;
        if f64::from(low) >= 63.0 || idx <= 0.0 {
            return DitherPlan {
                low: low.min(63),
                high: low.min(63),
                high_fraction: 0.0,
            };
        }
        DitherPlan {
            low,
            high: low + 1,
            high_fraction: (idx - f64::from(low)).clamp(0.0, 1.0),
        }
    }

    /// The time-averaged supply voltage of the plan.
    pub fn average_voltage(&self) -> Volts {
        let lo = word_voltage(self.low).volts();
        let hi = word_voltage(self.high).volts();
        Volts(lo + (hi - lo) * self.high_fraction)
    }

    /// Energy per operation under the dither: the per-op average of the
    /// two operating points weighted by where the operations run.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] when either word is below the
    /// technology floor.
    pub fn energy_per_op(
        &self,
        tech: &Technology,
        profile: &CircuitProfile,
        env: Environment,
    ) -> Result<Joules, SupplyRangeError> {
        let e_low = energy_per_cycle(tech, profile, word_voltage(self.low), env)?.total();
        if self.high_fraction <= 0.0 || self.low == self.high {
            return Ok(e_low);
        }
        let e_high = energy_per_cycle(tech, profile, word_voltage(self.high), env)?.total();
        Ok(Joules(
            e_low.value() * (1.0 - self.high_fraction) + e_high.value() * self.high_fraction,
        ))
    }
}

/// Compares dithering to round-up quantization for a target voltage.
///
/// The reference is the *throughput-safe* choice: a controller that
/// must sustain the rate implied by `target` has to round **up** to
/// the next word; rounding down would miss deadlines. Dithering
/// synthesizes the exact average, recovering most of that round-up
/// penalty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DitherComparison {
    /// The requested target.
    pub target: Volts,
    /// Energy per op when rounding up to the next word.
    pub rounded: Joules,
    /// Energy per op under the optimal dither.
    pub dithered: Joules,
    /// Energy per op if the converter had infinite resolution.
    pub exact: Joules,
}

impl DitherComparison {
    /// Fraction of the quantization penalty the dither recovers
    /// (1 = all of it; 0 = none; negative = dither made it worse).
    pub fn recovery(&self) -> f64 {
        let penalty = self.rounded.value() - self.exact.value();
        if penalty <= 0.0 {
            return 1.0;
        }
        (self.rounded.value() - self.dithered.value()) / penalty
    }
}

/// Evaluates dithering at a target voltage.
///
/// # Errors
///
/// Returns [`SupplyRangeError`] when the involved voltages are below
/// the technology floor.
pub fn compare_dither(
    tech: &Technology,
    profile: &CircuitProfile,
    env: Environment,
    target: Volts,
) -> Result<DitherComparison, SupplyRangeError> {
    let plan = DitherPlan::for_target(target);
    let ceil = ((target.volts() / 0.01875).ceil().clamp(0.0, 63.0)) as VoltageWord;
    let rounded = energy_per_cycle(tech, profile, word_voltage(ceil), env)?.total();
    let dithered = plan.energy_per_op(tech, profile, env)?;
    let exact = energy_per_cycle(tech, profile, target, env)?.total();
    Ok(DitherComparison {
        target,
        rounded,
        dithered,
        exact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Technology, CircuitProfile, Environment) {
        (
            Technology::st_130nm(),
            CircuitProfile::ring_oscillator(),
            Environment::nominal(),
        )
    }

    #[test]
    fn plan_brackets_the_target() {
        let plan = DitherPlan::for_target(Volts(0.210));
        assert_eq!(plan.low, 11);
        assert_eq!(plan.high, 12);
        assert!((plan.average_voltage().volts() - 0.210).abs() < 1e-9);
    }

    #[test]
    fn on_grid_target_needs_no_dither() {
        let plan = DitherPlan::for_target(Volts(0.225));
        assert!((plan.average_voltage().millivolts() - 225.0).abs() < 1e-6);
        assert!(plan.high_fraction.abs() < 1e-9 || plan.high_fraction > 1.0 - 1e-9);
    }

    #[test]
    fn range_edges_collapse() {
        let top = DitherPlan::for_target(Volts(2.0));
        assert_eq!(top.low, top.high);
        let bottom = DitherPlan::for_target(Volts(-0.1));
        assert_eq!(bottom.low, 0);
        assert_eq!(bottom.high_fraction, 0.0);
    }

    #[test]
    fn dither_energy_interpolates_between_words() {
        let (tech, profile, env) = fixture();
        let plan = DitherPlan::for_target(Volts(0.215));
        let e = plan.energy_per_op(&tech, &profile, env).unwrap();
        let e_lo = energy_per_cycle(&tech, &profile, word_voltage(11), env)
            .unwrap()
            .total();
        let e_hi = energy_per_cycle(&tech, &profile, word_voltage(12), env)
            .unwrap()
            .total();
        assert!(e.value() >= e_lo.value().min(e_hi.value()));
        assert!(e.value() <= e_lo.value().max(e_hi.value()));
    }

    #[test]
    fn dither_recovers_quantization_penalty_off_grid() {
        // Worst case: the MEP sits exactly between two words.
        let (tech, profile, env) = fixture();
        let cmp = compare_dither(&tech, &profile, env, Volts(0.215_625)).unwrap();
        // The linear interpolation tracks the (locally convex) energy
        // curve closely; recovery should be large when rounding hurts.
        if cmp.rounded.value() > cmp.exact.value() * 1.001 {
            assert!(cmp.recovery() > 0.3, "recovery {}", cmp.recovery());
        }
        assert!(cmp.dithered.value() <= cmp.rounded.value() * 1.001);
    }

    #[test]
    fn dither_never_beats_round_up_penalty_above_the_mep() {
        // Above the MEP the energy curve rises, so the throughput-safe
        // round-up always costs at least as much as the interpolated
        // dither (convex-combination bound).
        // Start where both bracket words sit at/above the 200 mV MEP
        // (the first such target floors to word 11 = 206.25 mV).
        let (tech, profile, env) = fixture();
        for mv in (208..=400).step_by(7) {
            let cmp = compare_dither(&tech, &profile, env, Volts::from_millivolts(f64::from(mv)))
                .unwrap();
            assert!(
                cmp.dithered.value() <= cmp.rounded.value() * (1.0 + 1e-9),
                "{mv} mV: dither {} vs round-up {}",
                cmp.dithered.femtos(),
                cmp.rounded.femtos()
            );
        }
    }

    #[test]
    fn recovery_is_substantial_for_mid_step_targets_above_mep() {
        let (tech, profile, env) = fixture();
        let mut recoveries = Vec::new();
        for mv in [215.6, 234.4, 253.1, 271.9] {
            let cmp = compare_dither(&tech, &profile, env, Volts::from_millivolts(mv)).unwrap();
            recoveries.push(cmp.recovery());
        }
        let mean = recoveries.iter().sum::<f64>() / recoveries.len() as f64;
        assert!(mean > 0.4, "mean recovery {mean}: {recoveries:?}");
    }
}
