//! Adaptive body biasing (ABB) — the alternative actuator the paper
//! cites as reference \[8\] (Jayakumar & Khatri, DAC'05).
//!
//! The paper's controller corrects variation by *moving the supply*
//! (adaptive voltage scaling, AVS). The same TDC signature can instead
//! drive the *well biases*: a slow die gets forward body bias (lower
//! Vth) until its replica delay matches the design target, with the
//! supply parked at the design MEP word. This module closes that loop
//! with the existing sensor so the two actuators can be compared.

use std::fmt;

use subvt_device::body_bias::{BodyBias, BodyEffect};
use subvt_device::constants::DCDC_LSB;
use subvt_device::delay::GateMismatch;
use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_device::units::Volts;
use subvt_digital::lut::VoltageWord;
use subvt_tdc::sensor::{word_voltage, SenseError, VariationSensor};

/// The ABB compensation loop: sensor deviations → well-bias updates.
#[derive(Debug, Clone, PartialEq)]
pub struct AbbCompensator {
    effect: BodyEffect,
    /// Current commanded bias.
    bias: BodyBias,
    /// Accumulated target threshold-shift cancellation.
    target_shift: Volts,
    iterations: u32,
}

/// Outcome of one ABB adjustment step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbbStep {
    /// The bias was updated; the loop should re-measure.
    Adjusted {
        /// New bias in force.
        bias: BodyBias,
    },
    /// The sensor read on-target; nothing to do.
    OnTarget,
    /// The required shift exceeds the body-bias actuation window.
    RangeExhausted,
}

impl AbbCompensator {
    /// Creates a compensator around a body-effect model.
    pub fn new(effect: BodyEffect) -> AbbCompensator {
        AbbCompensator {
            effect,
            bias: BodyBias::ZERO,
            target_shift: Volts::ZERO,
            iterations: 0,
        }
    }

    /// Currently commanded bias.
    pub fn bias(&self) -> BodyBias {
        self.bias
    }

    /// Adjustment iterations performed.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Feeds one sensed deviation (LSBs; negative = slow). One LSB of
    /// deviation corresponds to ≈ one LSB (18.75 mV) of effective
    /// threshold shift, which the bias is asked to cancel.
    pub fn observe(&mut self, deviation: i16) -> AbbStep {
        if deviation == 0 {
            return AbbStep::OnTarget;
        }
        self.iterations += 1;
        // A slow reading (negative) means Vth is effectively high:
        // cancel with a negative Vth shift (forward bias).
        self.target_shift += DCDC_LSB * f64::from(deviation);
        match self.effect.bias_for_shift(self.target_shift) {
            Some(vbs) => {
                self.bias = BodyBias::symmetric(vbs);
                AbbStep::Adjusted { bias: self.bias }
            }
            None => {
                // Back the target off to the achievable edge.
                self.target_shift -= DCDC_LSB * f64::from(deviation);
                AbbStep::RangeExhausted
            }
        }
    }

    /// Runs the measure-adjust loop to convergence against a die.
    /// Returns the final bias and the residual deviation.
    ///
    /// # Errors
    ///
    /// Propagates sensor errors.
    pub fn converge(
        &mut self,
        tech: &Technology,
        sensor: &VariationSensor,
        word: VoltageWord,
        actual_env: Environment,
        process: GateMismatch,
        max_iterations: u32,
    ) -> Result<(BodyBias, i16), SenseError> {
        let mut deviation = 0;
        for _ in 0..max_iterations {
            let effective = self.bias.compose(&self.effect, process);
            deviation = sensor.sense(tech, word, word_voltage(word), actual_env, effective)?;
            match self.observe(deviation) {
                AbbStep::Adjusted { .. } => continue,
                AbbStep::OnTarget | AbbStep::RangeExhausted => break,
            }
        }
        Ok((self.bias, deviation))
    }
}

impl fmt::Display for AbbCompensator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "abb: vbs n={:.3} V p={:.3} V after {} iterations",
            self.bias.nmos_vbs.volts(),
            self.bias.pmos_vbs.volts(),
            self.iterations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_tdc::sensor::SensorConfig;

    fn setup() -> (Technology, VariationSensor, AbbCompensator) {
        let tech = Technology::st_130nm();
        let sensor = VariationSensor::new(&tech, Environment::nominal(), SensorConfig::default());
        let abb = AbbCompensator::new(BodyEffect::bulk_130nm());
        (tech, sensor, abb)
    }

    #[test]
    fn forward_bias_cancels_a_slow_die() {
        let (tech, sensor, mut abb) = setup();
        // A die 18.75 mV slow (one full LSB of effective Vth).
        let process = GateMismatch {
            nmos_dvth: Volts(0.018_75),
            pmos_dvth: Volts(0.018_75),
        };
        let (bias, residual) = abb
            .converge(&tech, &sensor, 12, Environment::nominal(), process, 8)
            .expect("sensor usable");
        assert!(
            bias.nmos_vbs.volts() > 0.05,
            "expected forward bias, got {bias:?}"
        );
        assert_eq!(residual, 0, "loop must converge to on-target");
        // The bias really cancels the threshold shift.
        let net = bias.compose(&BodyEffect::bulk_130nm(), process);
        assert!(net.nmos_dvth.volts().abs() < 0.005, "net {net:?}");
    }

    #[test]
    fn reverse_bias_slows_a_fast_die() {
        let (tech, sensor, mut abb) = setup();
        let process = GateMismatch {
            nmos_dvth: Volts(-0.018_75),
            pmos_dvth: Volts(-0.018_75),
        };
        let (bias, residual) = abb
            .converge(&tech, &sensor, 12, Environment::nominal(), process, 8)
            .expect("sensor usable");
        assert!(bias.nmos_vbs.volts() < -0.05, "expected reverse bias");
        assert_eq!(residual, 0);
    }

    #[test]
    fn nominal_die_needs_no_bias() {
        let (tech, sensor, mut abb) = setup();
        let (bias, residual) = abb
            .converge(
                &tech,
                &sensor,
                12,
                Environment::nominal(),
                GateMismatch::NOMINAL,
                8,
            )
            .expect("sensor usable");
        assert_eq!(bias, BodyBias::ZERO);
        assert_eq!(residual, 0);
        assert_eq!(abb.iterations(), 0);
    }

    #[test]
    fn actuation_window_is_respected() {
        let mut abb = AbbCompensator::new(BodyEffect::bulk_130nm());
        // Demand far more forward shift than the junction allows.
        let mut exhausted = false;
        for _ in 0..20 {
            if abb.observe(-3) == AbbStep::RangeExhausted {
                exhausted = true;
                break;
            }
        }
        assert!(exhausted, "window should run out");
        // The bias stays inside the window.
        let e = BodyEffect::bulk_130nm();
        assert!(abb.bias().nmos_vbs <= e.max_forward);
    }

    #[test]
    fn zero_deviation_is_on_target() {
        let mut abb = AbbCompensator::new(BodyEffect::bulk_130nm());
        assert_eq!(abb.observe(0), AbbStep::OnTarget);
        assert_eq!(abb.iterations(), 0);
    }

    #[test]
    fn display_reports_bias() {
        let mut abb = AbbCompensator::new(BodyEffect::bulk_130nm());
        abb.observe(-1);
        assert!(format!("{abb}").contains("iterations"));
    }

    #[test]
    fn abb_and_avs_reach_the_same_iso_delay_point() {
        // The two actuators are interchangeable for corner shifts: AVS
        // raises Vdd by ~1 LSB, ABB lowers Vth by ~1 LSB; both restore
        // the design delay. Check via the sensor reading zero.
        let (tech, sensor, mut abb) = setup();
        let process = GateMismatch {
            nmos_dvth: Volts(0.018_75),
            pmos_dvth: Volts(0.018_75),
        };
        // AVS route: supply one LSB up, no bias.
        let avs_dev = sensor
            .sense(&tech, 12, word_voltage(13), Environment::nominal(), process)
            .unwrap();
        // ABB route: converge the bias at the design word.
        let (_, abb_dev) = abb
            .converge(&tech, &sensor, 12, Environment::nominal(), process, 8)
            .unwrap();
        assert_eq!(avs_dev, 0, "AVS route lands on target");
        assert_eq!(abb_dev, 0, "ABB route lands on target");
    }
}
