//! Scenario definitions and the paper's headline savings experiment.
//!
//! Paper Sec. IV: the chip is signed off at one corner, fabricated at
//! another, and the controller's TDC signature corrects the LUT so the
//! load lands back on its true minimum-energy point — "energy gains up
//! to 55 % can be achieved" relative to running without the controller.

use subvt_rng::StdRng;

use subvt_device::delay::GateMismatch;
use subvt_device::mosfet::Environment;
use subvt_device::tabulate::SharedEval;
use subvt_device::technology::Technology;
use subvt_device::units::Hertz;
use subvt_digital::lut::VoltageWord;
use subvt_loads::ring_oscillator::RingOscillator;
use subvt_loads::workload::{WorkloadPattern, WorkloadSource};

use crate::controller::{
    AdaptiveController, ControllerConfig, RunSummary, SupplyKind, SupplyPolicy,
};
use crate::rate_controller::{DesignError, RateController};

/// A complete experimental scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name for reports.
    pub name: String,
    /// Environment the controller was designed/calibrated for.
    pub design_env: Environment,
    /// Environment of the actual silicon.
    pub actual_env: Environment,
    /// Die-level threshold mismatch of the actual silicon.
    pub die: GateMismatch,
    /// Data arrival pattern.
    pub workload: WorkloadPattern,
    /// System cycles to simulate.
    pub cycles: u64,
    /// RNG seed (workload and metastability).
    pub seed: u64,
    /// Controller configuration.
    pub config: ControllerConfig,
    /// Converter model supplying every policy of the scenario: ideal
    /// (instantaneous, lossless) or the switched PWM + LC converter
    /// (droop, ripple and conduction loss in the energy account).
    pub supply: SupplyKind,
}

impl Scenario {
    /// The paper's worked example: designed at the typical corner,
    /// fabricated slow, light streaming workload.
    pub fn paper_worked_example() -> Scenario {
        Scenario {
            name: "tt-design-on-ss-die".to_owned(),
            design_env: Environment::nominal(),
            actual_env: Environment::at_corner(subvt_device::corner::ProcessCorner::Ss),
            die: GateMismatch::NOMINAL,
            // A 10%-duty streaming workload: the mean rate (~100 kHz)
            // sits at the ring's MEP capacity, so the controller dwells
            // at the minimum-energy point most of the time — the
            // regime the paper's Sec. III motivates.
            workload: WorkloadPattern::Burst {
                busy_rate: 1,
                busy_cycles: 10,
                idle_cycles: 90,
            },
            cycles: 2_000,
            seed: 42,
            config: ControllerConfig::default(),
            supply: SupplyKind::Ideal,
        }
    }

    /// Returns the scenario with a different actual environment.
    pub fn with_actual_env(mut self, env: Environment) -> Scenario {
        self.actual_env = env;
        self
    }

    /// Returns the scenario with a different workload.
    pub fn with_workload(mut self, workload: WorkloadPattern) -> Scenario {
        self.workload = workload;
        self
    }

    /// Returns the scenario running every policy on a supply kind.
    pub fn with_supply(mut self, supply: SupplyKind) -> Scenario {
        self.supply = supply;
        self
    }
}

/// The standard band → required-rate table used by the experiments
/// (items arrive per 1 µs system cycle, so 1 item/cycle = 1 MHz...
/// here the load is the ring oscillator whose "operation" is one
/// oscillation period; light bands only need tens of kHz).
fn standard_band_rates() -> Vec<(usize, Hertz)> {
    vec![(8, Hertz(100e3)), (16, Hertz(1e6)), (32, Hertz(10e6))]
}

/// Designs the scenario's rate controller at an environment.
///
/// # Errors
///
/// Propagates [`DesignError`] from the LUT design.
pub fn design_rate_controller(
    tech: &Technology,
    env: Environment,
) -> Result<RateController, DesignError> {
    RateController::design(
        tech,
        &RingOscillator::paper_circuit(),
        env,
        &standard_band_rates(),
    )
}

/// The design-time "no controller" supply word: fast enough for the
/// peak workload at the slowest corner, plus a guard band of
/// `guard_lsb` LSBs.
///
/// # Errors
///
/// Propagates [`DesignError`] when no word sustains the worst case.
pub fn fixed_baseline_word(
    tech: &Technology,
    workload: &WorkloadPattern,
    guard_lsb: u8,
) -> Result<VoltageWord, DesignError> {
    let ring = RingOscillator::paper_circuit();
    let worst = Environment::at_corner(subvt_device::corner::ProcessCorner::Ss);
    let word = RateController::word_for_rate(tech, &ring, worst, peak_rate(workload))?;
    Ok((word + guard_lsb).min(63))
}

/// [`fixed_baseline_word`] through a
/// [`DeviceEval`](subvt_device::tabulate::DeviceEval).
///
/// # Errors
///
/// Propagates [`DesignError`] when no word sustains the worst case.
pub fn fixed_baseline_word_eval(
    eval: &SharedEval,
    workload: &WorkloadPattern,
    guard_lsb: u8,
) -> Result<VoltageWord, DesignError> {
    let ring = RingOscillator::paper_circuit();
    let worst = Environment::at_corner(subvt_device::corner::ProcessCorner::Ss);
    let word =
        RateController::word_for_rate_eval(eval.as_ref(), &ring, worst, peak_rate(workload))?;
    Ok((word + guard_lsb).min(63))
}

/// Supply rate that absorbs the pattern's peak arrivals per 1 µs cycle.
fn peak_rate(workload: &WorkloadPattern) -> Hertz {
    let peak_per_cycle = match workload {
        WorkloadPattern::Constant { per_cycle } => f64::from(*per_cycle),
        WorkloadPattern::Burst { busy_rate, .. } => f64::from(*busy_rate),
        WorkloadPattern::Poisson { mean } => mean * 3.0,
        WorkloadPattern::Schedule(s) => f64::from(s.iter().copied().max().unwrap_or(0)),
    };
    Hertz(peak_per_cycle.max(1.0) / 1e-6)
}

/// Results of all policies over one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SavingsReport {
    /// Scenario name.
    pub scenario: String,
    /// Full controller (sensing + compensation).
    pub compensated: RunSummary,
    /// Rate control only (sensor off).
    pub uncompensated: RunSummary,
    /// Design-time fixed supply ("no controller").
    pub fixed: RunSummary,
    /// The fixed word the baseline used.
    pub fixed_word: VoltageWord,
    /// Oracle: controller designed with knowledge of the actual die.
    pub oracle: RunSummary,
}

impl SavingsReport {
    /// Headline saving: full controller vs. no controller.
    pub fn savings_vs_fixed(&self) -> f64 {
        self.compensated.account.savings_vs(&self.fixed.account)
    }

    /// Saving attributable to the variation compensation alone.
    pub fn savings_vs_uncompensated(&self) -> f64 {
        self.compensated
            .account
            .savings_vs(&self.uncompensated.account)
    }

    /// How close the controller gets to the oracle (1 = matches).
    pub fn oracle_efficiency(&self) -> f64 {
        let c = self.compensated.account.total().value();
        if c == 0.0 {
            0.0
        } else {
            self.oracle.account.total().value() / c
        }
    }
}

fn run_policy(scenario: &Scenario, rate: RateController, policy: SupplyPolicy) -> RunSummary {
    run_policy_impl(scenario, rate, policy, None)
}

fn run_policy_impl(
    scenario: &Scenario,
    rate: RateController,
    policy: SupplyPolicy,
    eval: Option<SharedEval>,
) -> RunSummary {
    let tech = Technology::st_130nm();
    let mut controller = AdaptiveController::new(
        tech,
        RingOscillator::paper_circuit(),
        rate,
        scenario.design_env,
        scenario.actual_env,
        scenario.die,
        policy,
        scenario.supply,
        scenario.config,
    );
    if let Some(eval) = eval {
        controller = controller.with_eval(eval);
    }
    let mut workload = WorkloadSource::new(scenario.workload.clone());
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    controller.run(&mut workload, scenario.cycles, &mut rng)
}

/// Runs one policy over a scenario (rate controller designed at the
/// scenario's design environment).
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn run_scenario(scenario: &Scenario, policy: SupplyPolicy) -> Result<RunSummary, DesignError> {
    let tech = Technology::st_130nm();
    let rate = design_rate_controller(&tech, scenario.design_env)?;
    Ok(run_policy(scenario, rate, policy))
}

/// Runs the full four-way comparison over a scenario.
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn savings_experiment(scenario: &Scenario) -> Result<SavingsReport, DesignError> {
    let tech = Technology::st_130nm();
    let designed = design_rate_controller(&tech, scenario.design_env)?;
    let oracle_rate = design_rate_controller(&tech, scenario.actual_env)?;
    let fixed_word = fixed_baseline_word(&tech, &scenario.workload, 2)?;

    Ok(SavingsReport {
        scenario: scenario.name.clone(),
        compensated: run_policy(
            scenario,
            designed.clone(),
            SupplyPolicy::AdaptiveCompensated,
        ),
        uncompensated: run_policy(scenario, designed, SupplyPolicy::AdaptiveUncompensated),
        fixed: run_policy(
            scenario,
            oracle_rate.clone(), // LUT unused under FixedWord
            SupplyPolicy::FixedWord(fixed_word),
        ),
        fixed_word,
        oracle: run_policy(scenario, oracle_rate, SupplyPolicy::AdaptiveUncompensated),
    })
}

/// [`savings_experiment`] with every controller (design, sensing,
/// per-cycle physics) running on `eval` — the Monte-Carlo hot path of
/// `savings_monte_carlo` uses this with a tabulated evaluator.
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn savings_experiment_eval(
    scenario: &Scenario,
    eval: &SharedEval,
) -> Result<SavingsReport, DesignError> {
    let ring = RingOscillator::paper_circuit();
    let designed = RateController::design_eval(
        eval.as_ref(),
        &ring,
        scenario.design_env,
        &standard_band_rates(),
    )?;
    let oracle_rate = RateController::design_eval(
        eval.as_ref(),
        &ring,
        scenario.actual_env,
        &standard_band_rates(),
    )?;
    let fixed_word = fixed_baseline_word_eval(eval, &scenario.workload, 2)?;

    Ok(SavingsReport {
        scenario: scenario.name.clone(),
        compensated: run_policy_impl(
            scenario,
            designed.clone(),
            SupplyPolicy::AdaptiveCompensated,
            Some(eval.clone()),
        ),
        uncompensated: run_policy_impl(
            scenario,
            designed,
            SupplyPolicy::AdaptiveUncompensated,
            Some(eval.clone()),
        ),
        fixed: run_policy_impl(
            scenario,
            oracle_rate.clone(), // LUT unused under FixedWord
            SupplyPolicy::FixedWord(fixed_word),
            Some(eval.clone()),
        ),
        fixed_word,
        oracle: run_policy_impl(
            scenario,
            oracle_rate,
            SupplyPolicy::AdaptiveUncompensated,
            Some(eval.clone()),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_device::corner::ProcessCorner;

    #[test]
    fn paper_scenario_headline_savings() {
        // "The benefits of the proposed controller is reflected with
        // energy improvement of up to 55% compared to when no
        // controller is employed."
        let report = savings_experiment(&Scenario::paper_worked_example()).unwrap();
        let s = report.savings_vs_fixed();
        assert!(
            (0.35..0.9).contains(&s),
            "savings vs fixed supply: {s} (fixed word {})",
            report.fixed_word
        );
        // All policies must actually do the work.
        assert_eq!(report.compensated.dropped, 0);
        assert_eq!(report.fixed.dropped, 0);
    }

    #[test]
    fn compensation_beats_no_compensation_on_a_slow_die() {
        let report = savings_experiment(&Scenario::paper_worked_example()).unwrap();
        // On a slow die, the uncompensated LUT undershoots the MEP;
        // compensation must not lose energy, and the corrected run
        // lands +1 LSB above the design word.
        assert!((1..=2).contains(&report.compensated.compensation));
        assert_eq!(report.uncompensated.compensation, 0);
        let s = report.savings_vs_uncompensated();
        assert!(s > -0.05, "compensation should not cost energy: {s}");
    }

    #[test]
    fn controller_tracks_the_oracle() {
        let report = savings_experiment(&Scenario::paper_worked_example()).unwrap();
        let eff = report.oracle_efficiency();
        assert!((0.8..=1.02).contains(&eff), "oracle efficiency {eff}");
    }

    #[test]
    fn hot_die_scenario_compensates_down_to_the_budget() {
        // Hot subthreshold silicon is *faster* (Vth drop + steeper
        // exponential), so the delay-targeted signature pulls the LUT
        // down — while the true MEP moves *up* with temperature. The
        // compensation budget is what keeps this divergence bounded;
        // EXPERIMENTS.md discusses the finding.
        let scenario =
            Scenario::paper_worked_example().with_actual_env(Environment::at_celsius(85.0));
        let report = savings_experiment(&scenario).unwrap();
        assert_eq!(report.compensated.compensation, -3, "saturates the budget");
        assert!(report.savings_vs_fixed() > 0.1);
        // The controller still does all the work.
        assert_eq!(report.compensated.dropped, 0);
        // ...but pure-temperature compensation costs energy relative to
        // leaving the LUT alone (the documented limitation).
        assert!(report.savings_vs_uncompensated() < 0.0);
    }

    #[test]
    fn fast_corner_scenario() {
        let scenario = Scenario::paper_worked_example()
            .with_actual_env(Environment::at_corner(ProcessCorner::Ff));
        let report = savings_experiment(&scenario).unwrap();
        assert!(report.compensated.compensation < 0);
    }

    #[test]
    fn fixed_word_covers_worst_case() {
        let tech = Technology::st_130nm();
        let word =
            fixed_baseline_word(&tech, &WorkloadPattern::Constant { per_cycle: 1 }, 2).unwrap();
        assert!(word > 11, "guard-banded word must exceed the MEP word");
        assert!(word < 64);
    }

    #[test]
    fn eval_experiment_reproduces_the_headline_numbers() {
        use std::sync::Arc;
        use subvt_device::tabulate::{AnalyticEval, TabulatedEval};
        let scenario = Scenario::paper_worked_example();
        let reference = savings_experiment(&scenario).unwrap();
        let tech = Technology::st_130nm();

        // Analytic evaluator: bit-identical report.
        let analytic: SharedEval = Arc::new(AnalyticEval::new(&tech));
        let via_analytic = savings_experiment_eval(&scenario, &analytic).unwrap();
        assert_eq!(via_analytic, reference);

        // Tabulated evaluator: same decisions, headline within a few %.
        let tabulated: SharedEval = Arc::new(TabulatedEval::new(&tech));
        let via_table = savings_experiment_eval(&scenario, &tabulated).unwrap();
        assert_eq!(via_table.fixed_word, reference.fixed_word);
        assert_eq!(
            via_table.compensated.compensation,
            reference.compensated.compensation
        );
        assert_eq!(via_table.compensated.dropped, 0);
        let (s_t, s_a) = (via_table.savings_vs_fixed(), reference.savings_vs_fixed());
        assert!(
            (s_t - s_a).abs() < 0.03,
            "headline savings diverged: {s_t} vs {s_a}"
        );
    }

    #[test]
    fn switched_supply_scenario_saves_energy_and_books_converter_loss() {
        // The closed-form solver makes the switched supply cheap
        // enough to run the whole four-way comparison on it: the
        // savings survive droop, ripple and conduction loss.
        let scenario = Scenario::paper_worked_example().with_supply(SupplyKind::Switched);
        let report = savings_experiment(&scenario).unwrap();
        assert_eq!(report.compensated.dropped, 0);
        assert!(
            report.compensated.account.converter().value() > 0.0,
            "switched runs must book conversion loss"
        );
        let s = report.savings_vs_fixed();
        assert!((0.2..0.9).contains(&s), "switched-supply savings {s}");
        // The ideal-supply headline is close by: the converter's
        // imperfections shave, not erase, the benefit.
        let ideal = savings_experiment(&Scenario::paper_worked_example()).unwrap();
        assert!(
            (s - ideal.savings_vs_fixed()).abs() < 0.15,
            "switched {s} vs ideal {}",
            ideal.savings_vs_fixed()
        );
    }

    #[test]
    fn bursty_workload_scenario_runs_clean() {
        let scenario = Scenario::paper_worked_example().with_workload(WorkloadPattern::Burst {
            busy_rate: 4,
            busy_cycles: 10,
            idle_cycles: 30,
        });
        let report = savings_experiment(&scenario).unwrap();
        assert!(report.compensated.loss_rate() < 0.01);
        assert!(report.savings_vs_fixed() > 0.2);
    }
}
