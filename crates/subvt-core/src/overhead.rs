//! Energy consumption of the adaptive controller itself — the paper's
//! stated future work ("As future work, we will investigate the energy
//! consumption of the proposed adaptive controller through
//! simulations").
//!
//! The controller's own blocks burn energy every system cycle:
//!
//! * the TDC delay line toggles all its cells once per measurement (at
//!   the *load's* low supply — cheap);
//! * the quantizer flip-flops, encoder and comparator run at the
//!   measurement rate;
//! * the 6-bit PWM counter and toggle flip-flop run at the full 64 MHz
//!   from the 1.2 V rail ("rest of the circuit is implemented with
//!   standard CMOS cells that operates above the transistor threshold
//!   voltage");
//! * the FIFO, rate controller and LUT tick once per system cycle.
//!
//! This module prices those contributions with the same device model
//! used for the load, then nets them against the controller's savings.

use subvt_device::constants::NOMINAL_VDD;
use subvt_device::technology::{GateKind, Technology};
use subvt_device::units::{Hertz, Joules, Seconds, Volts};

/// Gate counts of the controller's building blocks (NAND-equivalents).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerInventory {
    /// TDC delay-line cells (run at the measured supply).
    pub tdc_cells: u32,
    /// Quantizer flip-flops (≈ 6 gates each) plus encoder.
    pub quantizer_gates: u32,
    /// PWM counter + toggle FF + duty register (64 MHz, 1.2 V).
    pub pwm_gates: u32,
    /// Comparator + rate controller adder + LUT access.
    pub control_gates: u32,
    /// FIFO pointer/flag logic exercised per cycle (storage not
    /// counted: it belongs to the system, not the controller).
    pub fifo_gates: u32,
}

impl Default for ControllerInventory {
    fn default() -> ControllerInventory {
        ControllerInventory {
            tdc_cells: 64,
            quantizer_gates: 64 * 6 + 60,
            pwm_gates: 6 * 8 + 10,
            control_gates: 80,
            fifo_gates: 60,
        }
    }
}

/// Per-system-cycle energy of the controller's own blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadBreakdown {
    /// TDC measurement energy (delay line + quantizer sampling).
    pub tdc: Joules,
    /// PWM counter and output stage drive logic at 64 MHz.
    pub pwm: Joules,
    /// Comparator, rate controller, LUT and FIFO control.
    pub control: Joules,
}

impl OverheadBreakdown {
    /// Total controller energy per system cycle.
    pub fn total(&self) -> Joules {
        self.tdc + self.pwm + self.control
    }
}

/// Prices one system cycle of controller activity.
///
/// * `measured_vdd` — the supply the TDC line runs at this cycle;
/// * `clock` — the fast clock (64 MHz);
/// * `system_cycle` — 1 µs.
///
/// Blocks above threshold (PWM, control) are charged CV² at 1.2 V per
/// toggle with a 0.15 activity factor; the TDC line is charged one
/// full-line transition per measurement at the measured supply.
pub fn overhead_per_cycle(
    tech: &Technology,
    inventory: ControllerInventory,
    measured_vdd: Volts,
    clock: Hertz,
    system_cycle: Seconds,
) -> OverheadBreakdown {
    let cap = tech.gate_cap.value() * GateKind::Nand2.cap_factor();
    let cv2 = |v: Volts| cap * v.volts() * v.volts();

    // TDC: every cell toggles twice per measurement (edge in, edge
    // out), quantizer gates sample once at the full rail.
    let v_line = measured_vdd.max(Volts(0.0));
    let tdc = Joules(
        2.0 * f64::from(inventory.tdc_cells) * cv2(v_line)
            + 0.25 * f64::from(inventory.quantizer_gates) * cv2(NOMINAL_VDD),
    );

    // PWM: counter bits toggle at 64 MHz with binary weighting
    // (~2 effective toggles per tick across a 6-bit counter).
    let ticks = clock.value() * system_cycle.value();
    let pwm = Joules(
        2.0 * ticks * cv2(NOMINAL_VDD) + 0.15 * f64::from(inventory.pwm_gates) * cv2(NOMINAL_VDD),
    );

    // Control: one evaluation per system cycle.
    let control =
        Joules(0.15 * f64::from(inventory.control_gates + inventory.fifo_gates) * cv2(NOMINAL_VDD));

    OverheadBreakdown { tdc, pwm, control }
}

/// Nets the controller's overhead against its measured savings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetSavings {
    /// Load energy with the controller (excl. overhead).
    pub controlled: Joules,
    /// Load energy without the controller.
    pub baseline: Joules,
    /// Controller overhead over the run.
    pub overhead: Joules,
}

impl NetSavings {
    /// Gross saving fraction, ignoring overhead.
    pub fn gross(&self) -> f64 {
        1.0 - self.controlled.value() / self.baseline.value()
    }

    /// Net saving fraction with the controller's own energy charged.
    pub fn net(&self) -> f64 {
        1.0 - (self.controlled.value() + self.overhead.value()) / self.baseline.value()
    }

    /// True when the controller pays for itself.
    pub fn worthwhile(&self) -> bool {
        self.net() > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_device::units::Hertz;

    fn breakdown(vdd_mv: f64) -> OverheadBreakdown {
        overhead_per_cycle(
            &Technology::st_130nm(),
            ControllerInventory::default(),
            Volts::from_millivolts(vdd_mv),
            Hertz::from_megahertz(64.0),
            Seconds::from_micros(1.0),
        )
    }

    #[test]
    fn pwm_dominates_the_overhead() {
        // 64 ticks/cycle at 1.2 V dwarf one subthreshold line toggle —
        // the architectural reason the paper reuses "an embedded DC-DC
        // converter which will be reused … reducing its area overhead".
        let b = breakdown(206.0);
        assert!(b.pwm.value() > b.tdc.value());
        assert!(b.pwm.value() > b.control.value());
    }

    #[test]
    fn tdc_energy_scales_with_measured_supply() {
        let low = breakdown(206.0);
        let high = breakdown(900.0);
        assert!(high.tdc.value() > low.tdc.value());
        // PWM/control are supply-independent (they sit on the 1.2 V rail).
        assert!((high.pwm.value() - low.pwm.value()).abs() < 1e-24);
    }

    #[test]
    fn overhead_magnitude_is_hundreds_of_femtojoules() {
        // Sanity: ~134 gate-toggles at 1.2 V ≈ 0.5 pJ per µs cycle —
        // small against the ring oscillator's ~2.65 fJ × hundreds of
        // ops, but not negligible at very light workloads.
        let total = breakdown(206.0).total();
        assert!(
            (50.0..5_000.0).contains(&total.femtos()),
            "{} fJ",
            total.femtos()
        );
    }

    #[test]
    fn net_savings_account() {
        let n = NetSavings {
            controlled: Joules::from_femtos(450.0),
            baseline: Joules::from_femtos(1000.0),
            overhead: Joules::from_femtos(100.0),
        };
        assert!((n.gross() - 0.55).abs() < 1e-12);
        assert!((n.net() - 0.45).abs() < 1e-12);
        assert!(n.worthwhile());
        let marginal = NetSavings {
            controlled: Joules::from_femtos(950.0),
            baseline: Joules::from_femtos(1000.0),
            overhead: Joules::from_femtos(100.0),
        };
        assert!(!marginal.worthwhile());
    }

    #[test]
    fn totals_add_up() {
        let b = breakdown(300.0);
        let sum = b.tdc.value() + b.pwm.value() + b.control.value();
        assert!((b.total().value() - sum).abs() < 1e-24);
    }
}
