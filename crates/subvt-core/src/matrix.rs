//! The fused study-matrix engine: N study cells over one die stream.
//!
//! A supply shoot-out, corner sweep or fault-rate ladder runs the
//! *same* die population through many (supply backend × environment ×
//! fault plan) configurations. Run cell-by-cell, every cell pays the
//! full pipeline again: the Monte-Carlo die draw, the adaptive settle
//! walk, the dither walk — work that does not depend on the axis the
//! cell varies. [`StudyMatrix`] evaluates all cells in one pass per
//! chunk instead, sharing each phase at the widest scope its inputs
//! allow:
//!
//! * **once per chunk** — the SoA die draw and the per-die fault-stream
//!   seeds (depend only on the root seed and the variation model);
//! * **once per environment group** — the adaptive word settle and the
//!   sub-LSB dither walk (sense the exact candidate voltage, so the
//!   supply never enters);
//! * **once per (environment × supply) group** — the fixed lane, the
//!   adaptive cohort lanes and the dithered spec check;
//! * **once per fault cell** — only the cycle-by-cycle faulted walk
//!   and the final scoring, over the shared clean pieces.
//!
//! **Byte-identity contract:** every cell's accumulator — the exact
//! [`CellSummary::encode_state`] bytes — equals running that cell alone
//! through [`StudyConfig::run_summary`] / [`StudyConfig::run_faults`].
//! The shared phases are the pure-function hoists the batch-equivalence
//! suite already pins lane-vs-scalar; the fault-stream seeds are
//! replayed per die exactly as the standalone path forks them; and no
//! cell's RNG, sense sequence or fault schedule can observe that other
//! cells exist. `tests/matrix_equivalence.rs` pins all of it across
//! worker counts, batch sizes, backends and fault rates.
//!
//! With [`StudyConfig::checkpoint`] armed, the matrix commits one
//! version-2 record per chunk — the per-cell states side by side — so a
//! killed 18-cell run resumes all cells bit-identically from one file,
//! at any `--jobs`/`--batch` (see `subvt_exec::checkpoint`).

use std::time::Instant;

use subvt_device::mosfet::Environment;
use subvt_device::tabulate::CachedEval;
use subvt_device::units::Volts;
use subvt_digital::lut::VoltageWord;
use subvt_exec::checkpoint::{
    fingerprint_of, open_matrix_for_resume, CheckpointError, MatrixCheckpointWriter,
};
use subvt_exec::{chunk_count, try_par_fold_commit_multi};
use subvt_faults::FaultPlan;
use subvt_rng::{Rng, StdRng};

use crate::batch::{ChunkSeeds, DieBatch};
use crate::fault_study::{fault_droops, faulted_walk, CleanDie, FaultStudySummary};
use crate::profile::{record_phase, record_sub_batch, Phase};
use crate::study::{StudyConfig, StudyError, SupplyBackendKind};
use crate::yield_study::{StudyContext, SupplySim, YieldSummary};

/// One cell of a study matrix: the axes a cell may vary against the
/// base configuration. Everything else — dies, seed, spec, words,
/// load, evaluator, solver, variation model — comes from the base
/// [`StudyConfig`] and is common to every cell (which is what makes
/// the die stream shareable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixCell {
    /// The supply backend scoring this cell (built once per run with
    /// the base configuration's solver).
    pub supply: SupplyBackendKind,
    /// The operating environment (process corner, temperature) of this
    /// cell.
    pub env: Environment,
    /// `Some(plan)` makes this a fault-study cell
    /// ([`FaultStudySummary`]); `None` a summary cell
    /// ([`YieldSummary`]). The base configuration's own fault plan is
    /// ignored by the matrix.
    pub faults: Option<FaultPlan>,
}

impl MatrixCell {
    fn kind(&self) -> &'static str {
        match self.faults {
            None => "summary",
            Some(_) => "faults",
        }
    }
}

/// One cell's result: the same aggregate the standalone terminal of
/// that cell kind returns, bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub enum CellSummary {
    /// A summary cell's aggregate ([`StudyConfig::run_summary`]).
    Yield(YieldSummary),
    /// A fault cell's aggregate ([`StudyConfig::run_faults`]).
    Faults(FaultStudySummary),
}

impl CellSummary {
    fn empty_for(cell: &MatrixCell) -> CellSummary {
        match cell.faults {
            None => CellSummary::Yield(YieldSummary::empty()),
            Some(_) => CellSummary::Faults(FaultStudySummary::empty()),
        }
    }

    fn decode_for(cell: &MatrixCell, state: &[u8]) -> Result<CellSummary, CheckpointError> {
        match cell.faults {
            None => YieldSummary::decode_state(state).map(CellSummary::Yield),
            Some(_) => FaultStudySummary::decode_state(state).map(CellSummary::Faults),
        }
    }

    fn merge(&mut self, other: CellSummary) {
        match (self, other) {
            (CellSummary::Yield(a), CellSummary::Yield(b)) => a.merge(b),
            (CellSummary::Faults(a), CellSummary::Faults(b)) => a.merge(b),
            _ => unreachable!("a cell's partial accumulators share its kind"),
        }
    }

    fn set_fixed_word(&mut self, word: VoltageWord) {
        match self {
            CellSummary::Yield(s) => s.fixed_word = word,
            CellSummary::Faults(s) => s.base.fixed_word = word,
        }
    }

    /// The cell's accumulator state — untagged, so the bytes are
    /// exactly [`YieldSummary::encode_state`] /
    /// [`FaultStudySummary::encode_state`] of the standalone run. This
    /// is the canonical equality witness of the matrix contract (and
    /// the per-cell payload of a version-2 checkpoint record).
    pub fn encode_state(&self) -> Vec<u8> {
        match self {
            CellSummary::Yield(s) => s.encode_state(),
            CellSummary::Faults(s) => s.encode_state(),
        }
    }

    /// The summary aggregate, when this is a summary cell.
    pub fn as_yield(&self) -> Option<&YieldSummary> {
        match self {
            CellSummary::Yield(s) => Some(s),
            CellSummary::Faults(_) => None,
        }
    }

    /// The fault-study aggregate, when this is a fault cell.
    pub fn as_faults(&self) -> Option<&FaultStudySummary> {
        match self {
            CellSummary::Yield(_) => None,
            CellSummary::Faults(s) => Some(s),
        }
    }
}

/// The cells of one (environment × supply) group: they share the fixed
/// lane, the adaptive cohort lanes and the dithered check.
struct SupplyGroup {
    /// Index of the group's representative cell (context provider).
    lead: usize,
    /// Every member cell, in matrix order.
    members: Vec<usize>,
}

/// The supply groups of one environment group: they share the settle
/// and dither walks.
struct CornerGroup {
    lead: usize,
    supplies: Vec<SupplyGroup>,
}

/// The sharing structure of a matrix: cells grouped by *model
/// equality*, not by label — two cells share work exactly when the
/// values their phases read are equal.
struct MatrixGroups {
    corners: Vec<CornerGroup>,
}

impl MatrixGroups {
    fn build(cells: &[MatrixCell], sims: &[SupplySim]) -> MatrixGroups {
        let mut corners: Vec<CornerGroup> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            let corner = match corners.iter_mut().find(|g| cells[g.lead].env == cell.env) {
                Some(g) => g,
                None => {
                    corners.push(CornerGroup {
                        lead: i,
                        supplies: Vec::new(),
                    });
                    corners.last_mut().expect("just pushed")
                }
            };
            match corner
                .supplies
                .iter_mut()
                .find(|sg| sims[sg.lead] == sims[i])
            {
                Some(sg) => sg.members.push(i),
                None => corner.supplies.push(SupplyGroup {
                    lead: i,
                    members: vec![i],
                }),
            }
        }
        MatrixGroups { corners }
    }
}

/// The fused per-chunk fold: one shared draw, then every cell scored
/// against the same lanes, sub-batch by sub-batch. Each cell's
/// accumulator absorbs its dies in die order, so the per-cell
/// fold/merge sequence is exactly the standalone terminal's.
#[allow(clippy::too_many_arguments)] // crate-internal fold kernel
fn fold_matrix_chunk(
    cells: &[MatrixCell],
    ctxs: &[StudyContext<'_>],
    droops: &[(Volts, Volts)],
    groups: &MatrixGroups,
    batch: usize,
    seeds: &[u64],
    accs: &mut [CellSummary],
) {
    let batch = batch.max(1);
    let mut scratch = DieBatch::with_capacity(batch.min(seeds.len().max(1)));
    let any_faults = cells.iter().any(|c| c.faults.is_some());
    let mut fault_seeds: Vec<u64> = Vec::with_capacity(if any_faults { batch } else { 0 });
    let mut lo = 0;
    while lo < seeds.len() {
        let hi = (lo + batch).min(seeds.len());
        let sub = &seeds[lo..hi];
        record_sub_batch();

        // Shared draw: the SoA die lanes once for every cell, plus the
        // per-die fault-stream seeds. The scalar replay advances each
        // die stream exactly as the standalone path does (sample, then
        // fork), so `seed_from_u64(fault_seeds[k])` *is* the stream
        // `die_rng.fork("faults")` hands the standalone walk.
        let t0 = Instant::now();
        scratch.draw(&ctxs[0], sub);
        if any_faults {
            fault_seeds.clear();
            for &seed in sub {
                let mut die_rng = StdRng::seed_from_u64(seed);
                ctxs[0].variation.sample_die(&mut die_rng);
                fault_seeds.push(die_rng.fork_seed("faults"));
            }
        }
        record_phase(Phase::SharedDraw, t0.elapsed().as_nanos() as u64);

        for corner in &groups.corners {
            let cctx = &ctxs[corner.lead];
            let t0 = Instant::now();
            scratch.settle_words(cctx);
            record_phase(Phase::SettleWord, t0.elapsed().as_nanos() as u64);
            let t0 = Instant::now();
            scratch.dither_walk(cctx);
            record_phase(Phase::Dither, t0.elapsed().as_nanos() as u64);

            for group in &corner.supplies {
                let sctx = &ctxs[group.lead];
                // One operating-point memo per group per sub-batch:
                // pure memoization shared by the group's lanes and
                // fault walks, exactly as each standalone sub-batch
                // owns one.
                let cached = CachedEval::new(sctx.eval.as_ref());
                let t0 = Instant::now();
                scratch.fixed_lane(sctx, &cached);
                record_phase(Phase::Fixed, t0.elapsed().as_nanos() as u64);
                let t0 = Instant::now();
                scratch.adaptive_lanes(sctx, &cached);
                record_phase(Phase::AdaptiveLanes, t0.elapsed().as_nanos() as u64);
                let t0 = Instant::now();
                scratch.dither_check(sctx, &cached);
                record_phase(Phase::Dither, t0.elapsed().as_nanos() as u64);

                for &ci in &group.members {
                    match (cells[ci].faults, &mut accs[ci]) {
                        (None, CellSummary::Yield(acc)) => {
                            for k in 0..scratch.len() {
                                acc.absorb(&scratch.outcome(k));
                            }
                        }
                        (Some(plan), CellSummary::Faults(acc)) => {
                            let t0 = Instant::now();
                            let seeds = fault_seeds.iter().enumerate().take(scratch.len());
                            for (k, &fault_seed) in seeds {
                                let out = scratch.outcome(k);
                                let clean = CleanDie {
                                    corner_units: out.corner_units,
                                    mismatch: scratch.mismatch(k),
                                    fixed_passes: out.fixed_passes,
                                    clean_word: out.adaptive_word,
                                    dithered_passes: out.dithered_passes,
                                };
                                let die = faulted_walk(
                                    sctx,
                                    plan,
                                    StdRng::seed_from_u64(fault_seed),
                                    &cached,
                                    droops[ci],
                                    &clean,
                                );
                                acc.absorb(&die);
                            }
                            record_phase(Phase::FaultWalk, t0.elapsed().as_nanos() as u64);
                        }
                        _ => unreachable!("accumulator kind follows the cell kind"),
                    }
                }
            }
        }
        lo = hi;
    }
}

/// N study cells evaluated over one shared die stream.
///
/// Build from a base [`StudyConfig`] (whose dies, seed, spec, words,
/// load, evaluator, solver, execution, batch, checkpoint and hooks
/// apply to the whole matrix; its own supply/env/faults axes are
/// superseded by the cells), add cells with [`StudyMatrix::cell`],
/// then call [`StudyMatrix::run`] / [`StudyMatrix::try_run`].
///
/// ```
/// use subvt_core::matrix::StudyMatrix;
/// use subvt_core::study::{StudyConfig, SupplyBackendKind};
/// use subvt_device::mosfet::Environment;
///
/// let results = StudyMatrix::new(StudyConfig::new(80, 7))
///     .cell(SupplyBackendKind::Ideal, Environment::nominal(), None)
///     .cell(SupplyBackendKind::Buck, Environment::nominal(), None)
///     .run();
/// let ideal = results[0].as_yield().unwrap();
/// let buck = results[1].as_yield().unwrap();
/// assert!(buck.adaptive_yield() <= ideal.adaptive_yield() + 1e-12);
/// ```
pub struct StudyMatrix<'a> {
    base: StudyConfig<'a>,
    cells: Vec<MatrixCell>,
}

impl std::fmt::Debug for StudyMatrix<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StudyMatrix")
            .field("base", &self.base)
            .field("cells", &self.cells)
            .finish()
    }
}

impl<'a> StudyMatrix<'a> {
    /// An empty matrix over `base`'s die population.
    pub fn new(base: StudyConfig<'a>) -> StudyMatrix<'a> {
        StudyMatrix {
            base,
            cells: Vec::new(),
        }
    }

    /// Appends one cell; results come back in insertion order.
    pub fn cell(
        mut self,
        supply: SupplyBackendKind,
        env: Environment,
        faults: Option<FaultPlan>,
    ) -> StudyMatrix<'a> {
        self.cells.push(MatrixCell {
            supply,
            env,
            faults,
        });
        self
    }

    /// The cells, in result order.
    pub fn cells(&self) -> &[MatrixCell] {
        &self.cells
    }

    /// The base configuration the cells share.
    pub fn base(&self) -> &StudyConfig<'a> {
        &self.base
    }

    /// The matrix identity hashed into a version-2 checkpoint
    /// fingerprint: the cell count plus each cell's *standalone*
    /// identity string (the exact text that cell's own checkpoint
    /// would hash), so the per-cell identity cannot drift from the
    /// single-cell path.
    pub fn fingerprint_text(&self) -> String {
        let mut text = format!("subvt-matrix-v1 cells={}", self.cells.len());
        for cell in &self.cells {
            text.push('\n');
            text.push_str(&self.base.fingerprint_text_with(
                cell.kind(),
                cell.supply.label(),
                cell.env,
                cell.faults,
            ));
        }
        text
    }

    /// Opens (or creates) the configured checkpoint file in the matrix
    /// (version 2) format, returning the resume point.
    fn open_checkpoint(
        &self,
    ) -> Result<(usize, Vec<CellSummary>, Option<MatrixCheckpointWriter>), StudyError> {
        let empty = || self.cells.iter().map(CellSummary::empty_for).collect();
        let Some(path) = &self.base.checkpoint else {
            return Ok((0, empty(), None));
        };
        let fingerprint = fingerprint_of(&self.fingerprint_text());
        let total = self.base.dies as u64;
        let cells = u32::try_from(self.cells.len())
            .map_err(|_| StudyError::Checkpoint(CheckpointError::Decode("too many cells")))?;
        if !path.exists() {
            let writer = MatrixCheckpointWriter::create(path, fingerprint, total, cells)?;
            return Ok((0, empty(), Some(writer)));
        }
        let (checkpoint, writer) = open_matrix_for_resume(path)?;
        checkpoint.verify(fingerprint, total, cells)?;
        match checkpoint.last {
            None => Ok((0, empty(), Some(writer))),
            Some(record) => {
                let start = usize::try_from(record.chunks_done)
                    .ok()
                    .filter(|&c| c <= chunk_count(self.base.dies))
                    .ok_or(StudyError::Checkpoint(CheckpointError::Decode(
                        "checkpoint is ahead of the population",
                    )))?;
                let accs = self
                    .cells
                    .iter()
                    .zip(&record.states)
                    .map(|(cell, state)| CellSummary::decode_for(cell, state))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((start, accs, Some(writer)))
            }
        }
    }

    /// Runs every cell over the shared die stream.
    ///
    /// # Panics
    ///
    /// Panics if an armed [`StudyConfig::checkpoint`] fails or an
    /// armed [`StudyConfig::cancel`] token fires — use
    /// [`StudyMatrix::try_run`] to handle those as values.
    pub fn run(&self) -> Vec<CellSummary> {
        match self.try_run() {
            Ok(cells) => cells,
            Err(e) => panic!("matrix study failed: {e}"),
        }
    }

    /// [`StudyMatrix::run`] with cancellation, progress and
    /// checkpointing surfaced as values. One version-2 checkpoint
    /// record — every cell's state, side by side — commits per chunk;
    /// an interrupted run resumes all cells bit-identically from the
    /// same file at any worker count or batch size.
    ///
    /// # Errors
    ///
    /// As [`StudyConfig::try_run_summary`].
    pub fn try_run(&self) -> Result<Vec<CellSummary>, StudyError> {
        if self.cells.is_empty() {
            return Ok(Vec::new());
        }
        let (start_chunk, start, mut writer) = self.open_checkpoint()?;
        let eval = self.base.resolved_eval();
        // Per-cell supply models, hoisted to one *build* per distinct
        // backend per run — a buck settle table costs milliseconds to
        // integrate, and six buck cells share one snapshot. Clones
        // compare equal, so the group builder still sees the sharing.
        let mut sims: Vec<SupplySim> = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let sim = match self.cells[..sims.len()]
                .iter()
                .position(|prior| prior.supply == cell.supply)
            {
                Some(i) => sims[i].clone(),
                None => cell.supply.build_sim(self.base.solver),
            };
            sims.push(sim);
        }
        let ctxs: Vec<StudyContext<'_>> = self
            .cells
            .iter()
            .zip(&sims)
            .map(|(cell, sim)| {
                StudyContext::new(
                    eval.clone(),
                    self.base.load.as_dyn(),
                    cell.env,
                    &self.base.variation,
                    self.base.spec,
                    self.base.fixed_word,
                    self.base.design_word,
                    sim,
                )
            })
            .collect();
        // Converter-fault droop figures, hoisted to once per cell.
        let droops: Vec<(Volts, Volts)> = ctxs.iter().map(fault_droops).collect();
        let groups = MatrixGroups::build(&self.cells, &sims);
        let seeds = ChunkSeeds::from_seed(self.base.seed, self.base.dies);
        let batch = self.base.batch.max(1);
        let hooks = self.base.hooks();
        let mut result = try_par_fold_commit_multi(
            &self.base.exec,
            self.base.dies,
            start_chunk,
            &hooks,
            self.cells.len(),
            |cell| CellSummary::empty_for(&self.cells[cell]),
            start,
            |accs, range| {
                let chunk_seeds = seeds.for_range(range);
                fold_matrix_chunk(
                    &self.cells,
                    &ctxs,
                    &droops,
                    &groups,
                    batch,
                    &chunk_seeds,
                    accs,
                );
            },
            |_cell, acc, part| acc.merge(part),
            |chunks_done, accs: &[CellSummary]| match &mut writer {
                Some(w) => {
                    let states: Vec<Vec<u8>> = accs.iter().map(CellSummary::encode_state).collect();
                    w.append(chunks_done as u64, &states)
                }
                None => Ok(()),
            },
        )
        .map_err(StudyError::from_fold)?;
        for acc in &mut result {
            acc.set_fixed_word(self.base.fixed_word);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_exec::ExecConfig;

    #[test]
    fn empty_matrix_is_empty() {
        assert!(StudyMatrix::new(StudyConfig::new(10, 1)).run().is_empty());
    }

    #[test]
    fn single_summary_cell_matches_the_standalone_terminal() {
        let standalone = StudyConfig::new(90, 13)
            .supply_backend(SupplyBackendKind::Buck)
            .run_summary();
        let fused = StudyMatrix::new(StudyConfig::new(90, 13))
            .cell(SupplyBackendKind::Buck, Environment::nominal(), None)
            .run();
        assert_eq!(
            fused[0].encode_state(),
            standalone.encode_state(),
            "byte-identity of a lone cell"
        );
        assert_eq!(
            fused[0].as_yield().unwrap().fixed_word,
            standalone.fixed_word
        );
    }

    #[test]
    fn single_fault_cell_matches_the_standalone_terminal() {
        let plan = FaultPlan::uniform(0.02);
        let standalone = StudyConfig::new(90, 13).faults(plan).run_faults();
        let fused = StudyMatrix::new(StudyConfig::new(90, 13))
            .cell(SupplyBackendKind::Ideal, Environment::nominal(), Some(plan))
            .run();
        assert_eq!(fused[0].encode_state(), standalone.encode_state());
    }

    #[test]
    fn duplicate_cells_produce_identical_results() {
        // Two cells with equal axes land in one group and must come
        // back byte-identical — sharing is by model equality.
        let fused = StudyMatrix::new(StudyConfig::new(60, 5))
            .cell(SupplyBackendKind::Dldo, Environment::nominal(), None)
            .cell(SupplyBackendKind::Dldo, Environment::nominal(), None)
            .run();
        assert_eq!(fused[0], fused[1]);
    }

    #[test]
    fn grouping_shares_by_model_equality() {
        let hot = Environment::nominal().with_celsius(65.0);
        let cells = [
            (SupplyBackendKind::Buck, Environment::nominal()),
            (SupplyBackendKind::Dldo, Environment::nominal()),
            (SupplyBackendKind::Buck, hot),
            (SupplyBackendKind::Buck, Environment::nominal()),
        ];
        let matrix = cells.iter().fold(
            StudyMatrix::new(StudyConfig::new(10, 1)),
            |m, &(supply, env)| m.cell(supply, env, None),
        );
        let sims: Vec<SupplySim> = matrix
            .cells()
            .iter()
            .map(|c| c.supply.build_sim(Default::default()))
            .collect();
        let groups = MatrixGroups::build(matrix.cells(), &sims);
        assert_eq!(groups.corners.len(), 2, "two distinct environments");
        let nominal = &groups.corners[0];
        assert_eq!(nominal.supplies.len(), 2, "buck and dldo at nominal");
        assert_eq!(
            nominal.supplies[0].members,
            vec![0, 3],
            "duplicate buck cells share"
        );
        assert_eq!(groups.corners[1].supplies.len(), 1);
    }

    #[test]
    fn matrix_is_bit_identical_at_any_job_count() {
        let plan = FaultPlan::uniform(0.05);
        let build = |jobs: usize| {
            StudyMatrix::new(StudyConfig::new(70, 11).exec(ExecConfig::with_jobs(jobs)))
                .cell(SupplyBackendKind::Ideal, Environment::nominal(), None)
                .cell(SupplyBackendKind::Buck, Environment::nominal(), Some(plan))
                .run()
        };
        let reference = build(1);
        for jobs in [2usize, 7] {
            assert_eq!(build(jobs), reference, "jobs={jobs}");
        }
    }

    #[test]
    fn fingerprint_distinguishes_cell_order_and_axes() {
        let text = |cells: &[(SupplyBackendKind, Option<FaultPlan>)]| {
            cells
                .iter()
                .fold(
                    StudyMatrix::new(StudyConfig::new(10, 1)),
                    |m, &(supply, faults)| m.cell(supply, Environment::nominal(), faults),
                )
                .fingerprint_text()
        };
        let plan = FaultPlan::uniform(0.02);
        let a = text(&[
            (SupplyBackendKind::Buck, None),
            (SupplyBackendKind::Dldo, None),
        ]);
        let b = text(&[
            (SupplyBackendKind::Dldo, None),
            (SupplyBackendKind::Buck, None),
        ]);
        let c = text(&[
            (SupplyBackendKind::Buck, Some(plan)),
            (SupplyBackendKind::Dldo, None),
        ]);
        assert_ne!(a, b, "cell order is identity");
        assert_ne!(a, c, "fault plan is identity");
        assert!(a.starts_with("subvt-matrix-v1 cells=2\n"), "{a}");
    }
}
