//! Parametric yield: the fraction of fabricated dies that meet a
//! (throughput, energy) specification — the economic argument for the
//! paper's controller.
//!
//! A fixed-supply design must guard-band for the slowest die it intends
//! to ship, wasting energy on every faster one; an adaptive design
//! meets timing per-die at each die's own minimum energy. This module
//! Monte-Carlo-samples a die population and scores both designs against
//! the same spec.

use subvt_rng::Rng;

use subvt_device::delay::GateMismatch;
use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_device::units::{Hertz, Joules, Volts};
use subvt_device::variation::VariationModel;
use subvt_digital::lut::VoltageWord;
use subvt_loads::load::CircuitLoad;
use subvt_tdc::sensor::{word_voltage, SensorConfig, VariationSensor};

/// The shipped-product specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldSpec {
    /// Minimum sustained operation rate.
    pub min_rate: Hertz,
    /// Maximum energy per operation.
    pub max_energy_per_op: Joules,
}

/// One die's scoring under both designs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieOutcome {
    /// Die severity in corner units.
    pub corner_units: f64,
    /// Fixed design: meets the spec?
    pub fixed_passes: bool,
    /// Adaptive design: meets the spec?
    pub adaptive_passes: bool,
    /// Sub-LSB dithered design: meets the spec?
    pub dithered_passes: bool,
    /// The word the adaptive design settled on.
    pub adaptive_word: VoltageWord,
    /// Energy per op of the adaptive design on this die.
    pub adaptive_energy: Joules,
}

/// Aggregate yield numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldReport {
    /// Per-die outcomes.
    pub dies: Vec<DieOutcome>,
    /// The fixed design's supply word.
    pub fixed_word: VoltageWord,
}

impl YieldReport {
    /// Fixed-design yield (0..=1).
    pub fn fixed_yield(&self) -> f64 {
        self.fraction(|d| d.fixed_passes)
    }

    /// Adaptive-design yield (0..=1).
    pub fn adaptive_yield(&self) -> f64 {
        self.fraction(|d| d.adaptive_passes)
    }

    /// Dithered-design yield (0..=1).
    pub fn dithered_yield(&self) -> f64 {
        self.fraction(|d| d.dithered_passes)
    }

    fn fraction<F: Fn(&DieOutcome) -> bool>(&self, f: F) -> f64 {
        if self.dies.is_empty() {
            return 0.0;
        }
        self.dies.iter().filter(|d| f(d)).count() as f64 / self.dies.len() as f64
    }

    /// Mean adaptive energy per op across passing dies.
    pub fn mean_adaptive_energy(&self) -> Option<Joules> {
        let passing: Vec<f64> = self
            .dies
            .iter()
            .filter(|d| d.adaptive_passes)
            .map(|d| d.adaptive_energy.value())
            .collect();
        if passing.is_empty() {
            None
        } else {
            Some(Joules(passing.iter().sum::<f64>() / passing.len() as f64))
        }
    }
}

/// Emulates the dithered controller's settled *continuous* supply on a
/// die: the fractional-sensing integrator walked to convergence.
fn settled_voltage_dithered(
    tech: &Technology,
    sensor: &VariationSensor,
    design_word: VoltageWord,
    env: Environment,
    die: GateMismatch,
) -> Volts {
    let mut v = word_voltage(design_word);
    for _ in 0..40 {
        let Ok(frac) = sensor.sense_fractional(tech, design_word, v, env, die) else {
            break;
        };
        if frac.abs() < 0.02 {
            break;
        }
        v = Volts((v.volts() - 0.2 * frac * 0.018_75).clamp(0.018_75, 1.18));
    }
    v
}

/// Emulates the adaptive controller's settled word on a die: start from
/// the design word and walk by the sensed deviation until on-target
/// (bounded iterations — mirrors the LUT compensation loop without the
/// cycle-by-cycle machinery).
fn settled_word(
    tech: &Technology,
    sensor: &VariationSensor,
    design_word: VoltageWord,
    env: Environment,
    die: GateMismatch,
) -> VoltageWord {
    let mut word = design_word;
    for _ in 0..8 {
        let Ok(dev) = sensor.sense(tech, design_word, word_voltage(word), env, die) else {
            break;
        };
        if dev == 0 {
            break;
        }
        let next = (i16::from(word) - dev.signum()).clamp(1, 63) as VoltageWord;
        if next == word {
            break;
        }
        word = next;
    }
    word
}

/// Runs the yield study over `dies` sampled dies.
///
/// * the **fixed design** ships at `fixed_word` for every die;
/// * the **adaptive design** ships at the word its sensor settles on.
///
/// Both are scored against `spec` with the true per-die physics.
#[allow(clippy::too_many_arguments)] // an experiment configuration, not an API surface
pub fn yield_study<R: Rng + ?Sized>(
    tech: &Technology,
    load: &dyn CircuitLoad,
    env: Environment,
    variation: &VariationModel,
    spec: YieldSpec,
    fixed_word: VoltageWord,
    design_word: VoltageWord,
    dies: usize,
    rng: &mut R,
) -> YieldReport {
    let sensor = VariationSensor::new(tech, env, SensorConfig::default());
    let passes_v = |v: Volts, die: GateMismatch| -> (bool, Joules) {
        let rate_ok = load
            .max_rate(tech, v, env, die)
            .map(|r| r.value() >= spec.min_rate.value())
            .unwrap_or(false);
        let energy = load
            .energy_per_op(tech, v, env)
            .map(|e| e.total())
            .unwrap_or(Joules(f64::INFINITY));
        (
            rate_ok && energy.value() <= spec.max_energy_per_op.value(),
            energy,
        )
    };
    let passes = |word: VoltageWord, die: GateMismatch| passes_v(word_voltage(word), die);

    let outcomes = (0..dies)
        .map(|i| {
            // One forked stream per die: outcomes stay reproducible
            // per-label even if the per-die sampling ever starts
            // consuming a variable number of draws.
            let mut die_rng = rng.fork(&format!("die-{i}"));
            let die = variation.sample_die(&mut die_rng);
            let mismatch = die.mean_gate();
            let (fixed_passes, _) = passes(fixed_word, mismatch);
            let adaptive_word = settled_word(tech, &sensor, design_word, env, mismatch);
            let (adaptive_passes, adaptive_energy) = passes(adaptive_word, mismatch);
            let dithered_v = settled_voltage_dithered(tech, &sensor, design_word, env, mismatch);
            let (dithered_passes, _) = passes_v(dithered_v, mismatch);
            DieOutcome {
                corner_units: die.corner_units(),
                fixed_passes,
                adaptive_passes,
                dithered_passes,
                adaptive_word,
                adaptive_energy,
            }
        })
        .collect();

    YieldReport {
        dies: outcomes,
        fixed_word,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_loads::ring_oscillator::RingOscillator;
    use subvt_rng::StdRng;

    fn study(spec: YieldSpec, fixed_word: VoltageWord) -> YieldReport {
        let tech = Technology::st_130nm();
        let ring = RingOscillator::paper_circuit();
        let mut rng = StdRng::seed_from_u64(77);
        yield_study(
            &tech,
            &ring,
            Environment::nominal(),
            &VariationModel::st_130nm(),
            spec,
            fixed_word,
            11, // design at the TT MEP word
            200,
            &mut rng,
        )
    }

    /// A spec a TT die at its MEP just meets: ~120 kHz at ≤ 2.9 fJ.
    fn tight_spec() -> YieldSpec {
        YieldSpec {
            min_rate: Hertz(110e3),
            max_energy_per_op: Joules::from_femtos(2.9),
        }
    }

    #[test]
    fn adaptive_design_yields_more_under_a_tight_spec() {
        // The fixed design at the TT MEP word fails slow dies (too
        // slow); pushed one word up it fails the energy bound — the
        // classic squeeze the controller escapes.
        let report = study(tight_spec(), 11);
        let fixed = report.fixed_yield();
        let adaptive = report.adaptive_yield();
        assert!(
            adaptive > fixed + 0.1,
            "adaptive {adaptive:.2} vs fixed {fixed:.2}"
        );
        // Not 100%: the 18.75 mV quantization strands some mid-step
        // dies just outside the tight spec — the residual the dithering
        // extension exists to recover.
        assert!(adaptive > 0.8, "adaptive yield {adaptive}");
    }

    #[test]
    fn guard_banded_fixed_design_pays_in_energy() {
        // Raising the fixed word to cover slow dies breaks the energy
        // side of the same spec.
        let report = study(tight_spec(), 14);
        assert!(
            report.fixed_yield() < 0.5,
            "guard-banded fixed yield {}",
            report.fixed_yield()
        );
    }

    #[test]
    fn loose_spec_yields_fully_for_both() {
        let loose = YieldSpec {
            min_rate: Hertz(10e3),
            max_energy_per_op: Joules::from_femtos(50.0),
        };
        let report = study(loose, 14);
        assert!(report.fixed_yield() > 0.99);
        assert!(report.adaptive_yield() > 0.99);
    }

    #[test]
    fn adaptive_words_track_die_severity() {
        let report = study(tight_spec(), 11);
        // Slow dies settle above the design word, fast dies at/below.
        for die in &report.dies {
            if die.corner_units > 1.5 {
                assert!(
                    die.adaptive_word > 11,
                    "very slow die at word {}",
                    die.adaptive_word
                );
            }
            if die.corner_units < -1.5 {
                assert!(
                    die.adaptive_word < 11,
                    "very fast die at word {}",
                    die.adaptive_word
                );
            }
        }
    }

    #[test]
    fn mean_adaptive_energy_is_near_the_mep() {
        let report = study(tight_spec(), 11);
        let mean = report.mean_adaptive_energy().expect("passing dies exist");
        assert!(
            (2.2..3.2).contains(&mean.femtos()),
            "mean adaptive energy {} fJ",
            mean.femtos()
        );
    }

    #[test]
    fn dithering_recovers_stranded_half_lsb_dies() {
        // The claim EXPERIMENTS.md makes: the adaptive design's misses
        // under the tight spec are quantization strays, so the sub-LSB
        // dithered design must recover (most of) them.
        let report = study(tight_spec(), 11);
        let adaptive = report.adaptive_yield();
        let dithered = report.dithered_yield();
        assert!(
            dithered >= adaptive,
            "dithered {dithered:.3} < adaptive {adaptive:.3}"
        );
        assert!(dithered > 0.95, "dithered yield {dithered}");
    }

    #[test]
    fn empty_study_is_well_behaved() {
        let report = YieldReport {
            dies: Vec::new(),
            fixed_word: 11,
        };
        assert_eq!(report.fixed_yield(), 0.0);
        assert_eq!(report.dithered_yield(), 0.0);
        assert_eq!(report.mean_adaptive_energy(), None);
    }
}
