//! Parametric yield: the fraction of fabricated dies that meet a
//! (throughput, energy) specification — the economic argument for the
//! paper's controller.
//!
//! A fixed-supply design must guard-band for the slowest die it intends
//! to ship, wasting energy on every faster one; an adaptive design
//! meets timing per-die at each die's own minimum energy. This module
//! Monte-Carlo-samples a die population and scores both designs against
//! the same spec.

use std::sync::Arc;

use subvt_exec::checkpoint::{CheckpointError, StateReader, StateWriter};
use subvt_exec::{par_fold_chunked, ExecConfig, Welford};
use subvt_rng::{Rng, StdRng};

use subvt_dcdc::converter::ConverterParams;
use subvt_device::constants::DCDC_LSB;
use subvt_device::delay::GateMismatch;
use subvt_device::mosfet::Environment;
use subvt_device::tabulate::{AnalyticEval, CachedEval, DeviceEval, SharedEval};
use subvt_device::technology::Technology;
use subvt_device::units::{Hertz, Joules, Volts};
use subvt_device::variation::VariationModel;
use subvt_digital::lut::VoltageWord;
use subvt_loads::load::CircuitLoad;
use subvt_regulators::{BuckBackend, RegulatorModel, SupplyBackend};
use subvt_tdc::sensor::{word_voltage, SensorConfig, VariationSensor};

pub use subvt_regulators::{SwitchedSupplyModel, WordOperatingPoint};

/// The shipped-product specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldSpec {
    /// Minimum sustained operation rate.
    pub min_rate: Hertz,
    /// Maximum energy per operation.
    pub max_energy_per_op: Joules,
}

/// One die's scoring under both designs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieOutcome {
    /// Die severity in corner units.
    pub corner_units: f64,
    /// Fixed design: meets the spec?
    pub fixed_passes: bool,
    /// Adaptive design: meets the spec?
    pub adaptive_passes: bool,
    /// Sub-LSB dithered design: meets the spec?
    pub dithered_passes: bool,
    /// The word the adaptive design settled on.
    pub adaptive_word: VoltageWord,
    /// Energy per op of the adaptive design on this die.
    pub adaptive_energy: Joules,
}

/// Aggregate yield numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldReport {
    /// Per-die outcomes.
    pub dies: Vec<DieOutcome>,
    /// The fixed design's supply word.
    pub fixed_word: VoltageWord,
}

impl YieldReport {
    /// Fixed-design yield (0..=1).
    pub fn fixed_yield(&self) -> f64 {
        self.fraction(|d| d.fixed_passes)
    }

    /// Adaptive-design yield (0..=1).
    pub fn adaptive_yield(&self) -> f64 {
        self.fraction(|d| d.adaptive_passes)
    }

    /// Dithered-design yield (0..=1).
    pub fn dithered_yield(&self) -> f64 {
        self.fraction(|d| d.dithered_passes)
    }

    fn fraction<F: Fn(&DieOutcome) -> bool>(&self, f: F) -> f64 {
        if self.dies.is_empty() {
            return 0.0;
        }
        self.dies.iter().filter(|d| f(d)).count() as f64 / self.dies.len() as f64
    }

    /// Mean adaptive energy per op across passing dies.
    pub fn mean_adaptive_energy(&self) -> Option<Joules> {
        let passing: Vec<f64> = self
            .dies
            .iter()
            .filter(|d| d.adaptive_passes)
            .map(|d| d.adaptive_energy.value())
            .collect();
        if passing.is_empty() {
            None
        } else {
            Some(Joules(passing.iter().sum::<f64>() / passing.len() as f64))
        }
    }

    /// Collapses the per-die vector into a [`YieldSummary`].
    ///
    /// Uses the same chunk-ordered fold as
    /// [`crate::study::StudyConfig::run_summary`], so the result is bit-identical to
    /// a summary-only run of the same population at any job count.
    pub fn summarize(&self) -> YieldSummary {
        let mut summary = par_fold_chunked(
            &ExecConfig::serial(),
            self.dies.len(),
            YieldSummary::empty,
            |acc, i| acc.absorb(&self.dies[i]),
            YieldSummary::merge,
        );
        summary.fixed_word = self.fixed_word;
        summary
    }
}

/// Constant-size aggregate of a yield study: counts and streaming
/// moments, no per-die `Vec`.
///
/// This is what the summary-only execution path
/// ([`crate::study::StudyConfig::run_summary`]) returns, so million-die populations cost
/// `O(chunks)` memory instead of `O(dies)`. All statistics are
/// bit-identical for any worker count (see `subvt-exec`'s determinism
/// contract).
#[derive(Debug, Clone, PartialEq)]
pub struct YieldSummary {
    /// Dies scored.
    pub dies: u64,
    /// Dies the fixed design shipped successfully.
    pub fixed_pass: u64,
    /// Dies the adaptive design shipped successfully.
    pub adaptive_pass: u64,
    /// Dies the sub-LSB dithered design shipped successfully.
    pub dithered_pass: u64,
    /// Adaptive energy per op over *passing* dies (joules).
    pub adaptive_energy: Welford,
    /// Die severity distribution (corner units).
    pub corner_units: Welford,
    /// How many dies settled at each of the 64 voltage words.
    pub adaptive_words: [u64; 64],
    /// The fixed design's supply word.
    pub fixed_word: VoltageWord,
}

impl YieldSummary {
    pub(crate) fn empty() -> YieldSummary {
        YieldSummary {
            dies: 0,
            fixed_pass: 0,
            adaptive_pass: 0,
            dithered_pass: 0,
            adaptive_energy: Welford::new(),
            corner_units: Welford::new(),
            adaptive_words: [0; 64],
            fixed_word: 0,
        }
    }

    /// Streams one die outcome into the aggregate.
    pub(crate) fn absorb(&mut self, die: &DieOutcome) {
        self.dies += 1;
        self.fixed_pass += u64::from(die.fixed_passes);
        self.adaptive_pass += u64::from(die.adaptive_passes);
        self.dithered_pass += u64::from(die.dithered_passes);
        if die.adaptive_passes {
            self.adaptive_energy.push(die.adaptive_energy.value());
        }
        self.corner_units.push(die.corner_units);
        self.adaptive_words[usize::from(die.adaptive_word) % 64] += 1;
    }

    /// Combines two chunk aggregates (called in chunk-index order by
    /// the engine).
    pub(crate) fn merge(&mut self, other: YieldSummary) {
        self.dies += other.dies;
        self.fixed_pass += other.fixed_pass;
        self.adaptive_pass += other.adaptive_pass;
        self.dithered_pass += other.dithered_pass;
        self.adaptive_energy.merge(other.adaptive_energy);
        self.corner_units.merge(other.corner_units);
        for (a, b) in self.adaptive_words.iter_mut().zip(other.adaptive_words) {
            *a += b;
        }
    }

    /// Serialises the running aggregate into `w` for a checkpoint
    /// record (exact bit patterns; the round trip is lossless).
    pub(crate) fn encode_into(&self, w: &mut StateWriter) {
        w.put_u64(self.dies);
        w.put_u64(self.fixed_pass);
        w.put_u64(self.adaptive_pass);
        w.put_u64(self.dithered_pass);
        self.adaptive_energy.encode_state(w);
        self.corner_units.encode_state(w);
        for &count in &self.adaptive_words {
            w.put_u64(count);
        }
        w.put_u64(u64::from(self.fixed_word));
    }

    /// Restores an aggregate written by [`YieldSummary::encode_into`].
    pub(crate) fn decode_from(r: &mut StateReader<'_>) -> Result<YieldSummary, CheckpointError> {
        let dies = r.get_u64()?;
        let fixed_pass = r.get_u64()?;
        let adaptive_pass = r.get_u64()?;
        let dithered_pass = r.get_u64()?;
        let adaptive_energy = Welford::decode_state(r)?;
        let corner_units = Welford::decode_state(r)?;
        let mut adaptive_words = [0u64; 64];
        for slot in &mut adaptive_words {
            *slot = r.get_u64()?;
        }
        let fixed_word = u8::try_from(r.get_u64()?)
            .map_err(|_| CheckpointError::Decode("fixed word out of range"))?;
        Ok(YieldSummary {
            dies,
            fixed_pass,
            adaptive_pass,
            dithered_pass,
            adaptive_energy,
            corner_units,
            adaptive_words,
            fixed_word,
        })
    }

    /// One self-contained checkpoint state blob — the exact bytes a
    /// `--checkpoint` record carries. Equal blobs ⇔ bit-identical
    /// summaries, which makes this the canonical equality witness for
    /// reproducibility tests.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Parses a blob written by [`YieldSummary::encode_state`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Decode`] when the blob is truncated, has
    /// trailing bytes, or carries an out-of-range field.
    pub fn decode_state(buf: &[u8]) -> Result<YieldSummary, CheckpointError> {
        let mut r = StateReader::new(buf);
        let summary = YieldSummary::decode_from(&mut r)?;
        r.finish()?;
        Ok(summary)
    }

    /// Fixed-design yield (0..=1).
    pub fn fixed_yield(&self) -> f64 {
        self.fraction(self.fixed_pass)
    }

    /// Adaptive-design yield (0..=1).
    pub fn adaptive_yield(&self) -> f64 {
        self.fraction(self.adaptive_pass)
    }

    /// Dithered-design yield (0..=1).
    pub fn dithered_yield(&self) -> f64 {
        self.fraction(self.dithered_pass)
    }

    fn fraction(&self, passes: u64) -> f64 {
        if self.dies == 0 {
            0.0
        } else {
            passes as f64 / self.dies as f64
        }
    }

    /// Mean adaptive energy per op across passing dies.
    pub fn mean_adaptive_energy(&self) -> Option<Joules> {
        self.adaptive_energy.mean().map(Joules)
    }
}

/// Emulates the dithered controller's settled *continuous* supply on a
/// die: the fractional-sensing integrator walked to convergence.
pub(crate) fn settled_voltage_dithered(
    eval: &dyn DeviceEval,
    sensor: &VariationSensor,
    design_word: VoltageWord,
    env: Environment,
    die: GateMismatch,
) -> Volts {
    let mut v = word_voltage(design_word);
    for _ in 0..40 {
        let Ok(frac) = sensor.sense_fractional_with(eval, design_word, v, env, die) else {
            break;
        };
        if frac.abs() < 0.02 {
            break;
        }
        v = Volts((v.volts() - 0.2 * frac * 0.018_75).clamp(0.018_75, 1.18));
    }
    v
}

/// Emulates the adaptive controller's settled word on a die: start from
/// the design word and walk by the sensed deviation until on-target
/// (bounded iterations — mirrors the LUT compensation loop without the
/// cycle-by-cycle machinery).
pub(crate) fn settled_word(
    eval: &dyn DeviceEval,
    sensor: &VariationSensor,
    design_word: VoltageWord,
    env: Environment,
    die: GateMismatch,
) -> VoltageWord {
    let mut word = design_word;
    for _ in 0..8 {
        let Ok(dev) = sensor.sense_with(eval, design_word, word_voltage(word), env, die) else {
            break;
        };
        if dev == 0 {
            break;
        }
        let next = (i16::from(word) - dev.signum()).clamp(1, 63) as VoltageWord;
        if next == word {
            break;
        }
        word = next;
    }
    word
}

/// Which supply the study's designs run from.
#[derive(Debug, Clone, PartialEq)]
pub enum SupplySim {
    /// Ideal rail: each word is exactly `word × 18.75 mV`, ripple-free.
    Ideal,
    /// A regulator backend's snapshot: per-word droop and ripple from
    /// its settle table. Rate is checked at the ripple trough (the MEP
    /// margin must survive the worst instantaneous supply) and energy
    /// at the cycle mean — the same split for every backend.
    Regulated(RegulatorModel),
}

impl SupplySim {
    /// Snapshots any [`SupplyBackend`] into a supply model. The
    /// snapshot happens here — once, serially, before any Monte-Carlo
    /// fan-out — so workers only ever read plain data.
    pub fn regulated(backend: &dyn SupplyBackend) -> SupplySim {
        SupplySim::Regulated(RegulatorModel::build(backend))
    }

    /// Builds the buck (historically "switched") supply from converter
    /// parameters — bit-identical to PR 4's switched-supply model.
    pub fn switched(params: ConverterParams) -> SupplySim {
        SupplySim::regulated(&BuckBackend::new(params))
    }
}

/// The immutable per-study context shared (read-only) by every worker
/// scoring dies.
pub(crate) struct StudyContext<'a> {
    pub(crate) eval: SharedEval,
    pub(crate) load: &'a dyn CircuitLoad,
    pub(crate) env: Environment,
    pub(crate) variation: &'a VariationModel,
    pub(crate) spec: YieldSpec,
    pub(crate) fixed_word: VoltageWord,
    pub(crate) design_word: VoltageWord,
    pub(crate) sensor: VariationSensor,
    pub(crate) supply: &'a SupplySim,
}

impl<'a> StudyContext<'a> {
    /// Builds the context, deriving the calibrated sensor from the
    /// evaluator and environment.
    #[allow(clippy::too_many_arguments)] // crate-internal plumbing
    pub(crate) fn new(
        eval: SharedEval,
        load: &'a dyn CircuitLoad,
        env: Environment,
        variation: &'a VariationModel,
        spec: YieldSpec,
        fixed_word: VoltageWord,
        design_word: VoltageWord,
        supply: &'a SupplySim,
    ) -> StudyContext<'a> {
        StudyContext {
            sensor: VariationSensor::with_eval(eval.as_ref(), env, SensorConfig::default()),
            eval,
            load,
            env,
            variation,
            spec,
            fixed_word,
            design_word,
            supply,
        }
    }
    /// Spec check with the rate and energy legs evaluated at separate
    /// voltages: on a rippling supply the rate must hold at the trough
    /// while energy is set by the mean. On an ideal rail both are the
    /// same voltage.
    pub(crate) fn passes_at(
        &self,
        eval: &dyn DeviceEval,
        v_rate: Volts,
        v_energy: Volts,
        die: GateMismatch,
    ) -> (bool, Joules) {
        let rate_ok = self
            .load
            .max_rate_with(eval, v_rate, self.env, die)
            .map(|r| r.value() >= self.spec.min_rate.value())
            .unwrap_or(false);
        let energy = self
            .load
            .energy_per_op_with(eval, v_energy, self.env)
            .map(|e| e.total())
            .unwrap_or(Joules(f64::INFINITY));
        (
            rate_ok && energy.value() <= self.spec.max_energy_per_op.value(),
            energy,
        )
    }

    pub(crate) fn passes_v(
        &self,
        eval: &dyn DeviceEval,
        v: Volts,
        die: GateMismatch,
    ) -> (bool, Joules) {
        self.passes_at(eval, v, v, die)
    }

    pub(crate) fn passes(
        &self,
        eval: &dyn DeviceEval,
        word: VoltageWord,
        die: GateMismatch,
    ) -> (bool, Joules) {
        match self.supply {
            SupplySim::Ideal => self.passes_v(eval, word_voltage(word), die),
            SupplySim::Regulated(model) => {
                let op = model.point(word);
                self.passes_at(eval, op.v_min, op.v_mean, die)
            }
        }
    }

    /// Scores the dithered design's continuous settled voltage. On a
    /// regulated supply the dither rides on the nearest word's settled
    /// waveform, so it inherits that word's droop and ripple trough.
    pub(crate) fn passes_dithered(
        &self,
        eval: &dyn DeviceEval,
        v: Volts,
        die: GateMismatch,
    ) -> (bool, Joules) {
        match self.supply {
            SupplySim::Ideal => self.passes_v(eval, v, die),
            SupplySim::Regulated(model) => {
                let lsb = DCDC_LSB.volts();
                let nearest = ((v.volts() / lsb).round() as i64).clamp(1, 63) as VoltageWord;
                let op = model.point(nearest);
                let droop = op.v_mean.volts() - word_voltage(nearest).volts();
                let trough = op.v_mean.volts() - op.v_min.volts();
                let v_mean = Volts(v.volts() + droop);
                self.passes_at(eval, Volts(v_mean.volts() - trough), v_mean, die)
            }
        }
    }

    /// Scores one die from its pre-forked stream — a pure function of
    /// the stream and the context, so it runs on any thread. A per-die
    /// memo ([`CachedEval`]) deduplicates the settling loops' repeated
    /// operating points; memoization cannot change results.
    pub(crate) fn score_die(&self, mut die_rng: StdRng) -> DieOutcome {
        let die = self.variation.sample_die(&mut die_rng);
        let mismatch = die.mean_gate();
        let cached = CachedEval::new(self.eval.as_ref());
        let (fixed_passes, _) = self.passes(&cached, self.fixed_word, mismatch);
        let adaptive_word =
            settled_word(&cached, &self.sensor, self.design_word, self.env, mismatch);
        let (adaptive_passes, adaptive_energy) = self.passes(&cached, adaptive_word, mismatch);
        let dithered_v =
            settled_voltage_dithered(&cached, &self.sensor, self.design_word, self.env, mismatch);
        let (dithered_passes, _) = self.passes_dithered(&cached, dithered_v, mismatch);
        DieOutcome {
            corner_units: die.corner_units(),
            fixed_passes,
            adaptive_passes,
            dithered_passes,
            adaptive_word,
            adaptive_energy,
        }
    }
}

/// Draws the per-die fork seeds serially from the caller's stream.
///
/// One 8-byte seed per die, in die order — exactly the draws
/// `rng.fork("die-{i}")` would make inline, so expanding `seeds[i]`
/// on a worker thread reproduces the serial loop bit-for-bit.
pub(crate) fn die_seeds<R: Rng + ?Sized>(rng: &mut R, dies: usize) -> Vec<u64> {
    use std::fmt::Write as _;
    let mut label = String::with_capacity(24);
    (0..dies)
        .map(|i| {
            label.clear();
            write!(label, "die-{i}").expect("in-memory write");
            rng.fork_seed(&label)
        })
        .collect()
}

/// Wraps a technology in the analytic evaluator (the default study
/// path, bit-identical to the pre-evaluator implementation).
pub(crate) fn analytic(tech: &Technology) -> SharedEval {
    Arc::new(AnalyticEval::new(tech))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    fn study(spec: YieldSpec, fixed_word: VoltageWord) -> YieldReport {
        // Defaults cover the paper configuration (ST 130 nm, nominal
        // environment, design at the TT MEP word 11).
        StudyConfig::new(200, 77)
            .spec(spec)
            .words(fixed_word, 11)
            .run()
    }

    /// A spec a TT die at its MEP just meets: ~120 kHz at ≤ 2.9 fJ.
    fn tight_spec() -> YieldSpec {
        YieldSpec {
            min_rate: Hertz(110e3),
            max_energy_per_op: Joules::from_femtos(2.9),
        }
    }

    #[test]
    fn adaptive_design_yields_more_under_a_tight_spec() {
        // The fixed design at the TT MEP word fails slow dies (too
        // slow); pushed one word up it fails the energy bound — the
        // classic squeeze the controller escapes.
        let report = study(tight_spec(), 11);
        let fixed = report.fixed_yield();
        let adaptive = report.adaptive_yield();
        assert!(
            adaptive > fixed + 0.1,
            "adaptive {adaptive:.2} vs fixed {fixed:.2}"
        );
        // Not 100%: the 18.75 mV quantization strands some mid-step
        // dies just outside the tight spec — the residual the dithering
        // extension exists to recover.
        assert!(adaptive > 0.8, "adaptive yield {adaptive}");
    }

    #[test]
    fn guard_banded_fixed_design_pays_in_energy() {
        // Raising the fixed word to cover slow dies breaks the energy
        // side of the same spec.
        let report = study(tight_spec(), 14);
        assert!(
            report.fixed_yield() < 0.5,
            "guard-banded fixed yield {}",
            report.fixed_yield()
        );
    }

    #[test]
    fn loose_spec_yields_fully_for_both() {
        let loose = YieldSpec {
            min_rate: Hertz(10e3),
            max_energy_per_op: Joules::from_femtos(50.0),
        };
        let report = study(loose, 14);
        assert!(report.fixed_yield() > 0.99);
        assert!(report.adaptive_yield() > 0.99);
    }

    #[test]
    fn adaptive_words_track_die_severity() {
        let report = study(tight_spec(), 11);
        // Slow dies settle above the design word, fast dies at/below.
        for die in &report.dies {
            if die.corner_units > 1.5 {
                assert!(
                    die.adaptive_word > 11,
                    "very slow die at word {}",
                    die.adaptive_word
                );
            }
            if die.corner_units < -1.5 {
                assert!(
                    die.adaptive_word < 11,
                    "very fast die at word {}",
                    die.adaptive_word
                );
            }
        }
    }

    #[test]
    fn mean_adaptive_energy_is_near_the_mep() {
        let report = study(tight_spec(), 11);
        let mean = report.mean_adaptive_energy().expect("passing dies exist");
        assert!(
            (2.2..3.2).contains(&mean.femtos()),
            "mean adaptive energy {} fJ",
            mean.femtos()
        );
    }

    #[test]
    fn dithering_recovers_stranded_half_lsb_dies() {
        // The claim EXPERIMENTS.md makes: the adaptive design's misses
        // under the tight spec are quantization strays, so the sub-LSB
        // dithered design must recover (most of) them.
        let report = study(tight_spec(), 11);
        let adaptive = report.adaptive_yield();
        let dithered = report.dithered_yield();
        assert!(
            dithered >= adaptive,
            "dithered {dithered:.3} < adaptive {adaptive:.3}"
        );
        assert!(dithered > 0.95, "dithered yield {dithered}");
    }

    #[test]
    fn summary_only_path_matches_full_report_summary() {
        // The summary-only fold and the full per-die path must agree
        // bit-for-bit (same seed, same chunk-ordered reduction), at
        // several worker counts.
        let report = study(tight_spec(), 11);
        let reference = report.summarize();
        for jobs in [1usize, 2, 7] {
            let summary = StudyConfig::new(200, 77)
                .spec(tight_spec())
                .exec(ExecConfig::with_jobs(jobs))
                .run_summary();
            assert_eq!(summary, reference, "jobs={jobs}");
        }
        assert_eq!(reference.dies, 200);
        assert!((reference.adaptive_yield() - report.adaptive_yield()).abs() < 1e-15);
        assert!((reference.fixed_yield() - report.fixed_yield()).abs() < 1e-15);
        assert_eq!(reference.adaptive_words.iter().sum::<u64>(), reference.dies);
        // The Welford mean and the Vec-based mean agree to tolerance
        // (different summation orders, same statistic).
        let mean_full = report.mean_adaptive_energy().unwrap().value();
        let mean_summary = reference.mean_adaptive_energy().unwrap().value();
        assert!((mean_full - mean_summary).abs() < 1e-24, "joules-scale gap");
    }

    #[test]
    fn tabulated_study_tracks_the_analytic_yield() {
        use subvt_device::tabulate::TabulatedEval;
        let tech = Technology::st_130nm();
        let cfg = ExecConfig::with_jobs(2);
        let reference = StudyConfig::new(200, 77)
            .spec(tight_spec())
            .exec(cfg)
            .run_summary();
        let tab: SharedEval = Arc::new(TabulatedEval::new(&tech));
        let tabulated = StudyConfig::new(200, 77)
            .spec(tight_spec())
            .eval(tab)
            .exec(cfg)
            .run_summary();
        assert_eq!(tabulated.dies, reference.dies);
        // Interpolation error is ≤1%; pass/fail decisions near the spec
        // boundary may flip on a handful of dies, never more.
        for (t, a, what) in [
            (tabulated.fixed_yield(), reference.fixed_yield(), "fixed"),
            (
                tabulated.adaptive_yield(),
                reference.adaptive_yield(),
                "adaptive",
            ),
            (
                tabulated.dithered_yield(),
                reference.dithered_yield(),
                "dithered",
            ),
        ] {
            assert!(
                (t - a).abs() <= 0.05,
                "{what}: tabulated {t} vs analytic {a}"
            );
        }
        let mean_t = tabulated.mean_adaptive_energy().unwrap().value();
        let mean_a = reference.mean_adaptive_energy().unwrap().value();
        assert!(
            (mean_t - mean_a).abs() / mean_a < 0.02,
            "mean energy diverged: {mean_t:e} vs {mean_a:e}"
        );
    }

    #[test]
    fn explicit_analytic_eval_is_bit_identical_to_default() {
        // Spelling out the default evaluator must not perturb a single
        // bit of the study — the builder's implicit `analytic(&tech)`
        // and an explicit one share the whole scoring path.
        let tech = Technology::st_130nm();
        let default = StudyConfig::new(50, 5).spec(tight_spec()).run();
        let explicit = StudyConfig::new(50, 5)
            .spec(tight_spec())
            .eval(analytic(&tech))
            .run();
        assert_eq!(default, explicit);
    }

    #[test]
    fn switched_supply_yield_is_ripple_aware() {
        let supply = SupplySim::switched(ConverterParams::default());
        let switched = StudyConfig::new(200, 77)
            .spec(tight_spec())
            .supply(supply)
            .run();
        let ideal = study(tight_spec(), 11);
        // The ripple trough only subtracts MEP margin: the switched
        // supply can never ship a die the ideal rail rejects, and under
        // the tight spec it must strand at least a few near the rate
        // boundary.
        assert!(
            switched.adaptive_yield() <= ideal.adaptive_yield() + 1e-12,
            "switched {} vs ideal {}",
            switched.adaptive_yield(),
            ideal.adaptive_yield()
        );
        // The controller story survives the real converter: adaptive
        // still clearly beats fixed on the same rippling supply.
        assert!(
            switched.adaptive_yield() > switched.fixed_yield() + 0.1,
            "adaptive {} vs fixed {}",
            switched.adaptive_yield(),
            switched.fixed_yield()
        );
        assert!(switched.adaptive_yield() > 0.5);
    }

    #[test]
    fn explicit_ideal_supply_is_bit_identical_to_default() {
        // The ideal rail is the builder default; passing it explicitly
        // must be a no-op for every die outcome.
        let default = StudyConfig::new(50, 9).spec(tight_spec()).run();
        let explicit = StudyConfig::new(50, 9)
            .spec(tight_spec())
            .supply(SupplySim::Ideal)
            .run();
        assert_eq!(default, explicit);
    }

    #[test]
    fn empty_summary_is_well_behaved() {
        let report = YieldReport {
            dies: Vec::new(),
            fixed_word: 11,
        };
        let summary = report.summarize();
        assert_eq!(summary.dies, 0);
        assert_eq!(summary.fixed_yield(), 0.0);
        assert_eq!(summary.mean_adaptive_energy(), None);
        assert_eq!(summary.corner_units.count(), 0);
    }

    #[test]
    fn empty_study_is_well_behaved() {
        let report = YieldReport {
            dies: Vec::new(),
            fixed_word: 11,
        };
        assert_eq!(report.fixed_yield(), 0.0);
        assert_eq!(report.dithered_yield(), 0.0);
        assert_eq!(report.mean_adaptive_energy(), None);
    }
}
