//! The variation-compensation loop.
//!
//! Paper Sec. IV: the TDC signature is compared against the desired
//! value each system cycle; a persistent deviation is folded into the
//! LUT ("this takes place in the first 2 system cycles"). Requiring
//! the deviation to persist filters metastability glitches and
//! converter transients out of the correction path.

use std::fmt;

/// Policy for turning raw per-cycle deviations into LUT shifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompensationPolicy {
    /// Consecutive cycles a deviation must persist before acting (the
    /// paper's correction lands after 2 cycles).
    pub confirm_cycles: u32,
    /// Largest single correction step in LSBs.
    pub max_step: i16,
    /// Total correction budget in LSBs (safety bound).
    pub max_total: i16,
}

impl Default for CompensationPolicy {
    fn default() -> CompensationPolicy {
        CompensationPolicy {
            confirm_cycles: 2,
            max_step: 1,
            // Bounded by the sensor's neighbour visibility: deviations
            // beyond ±3 LSB saturate, so trusting them further invites
            // runaway correction under large temperature shifts.
            max_total: 3,
        }
    }
}

/// The compensation state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompensationLoop {
    policy: CompensationPolicy,
    streak_sign: i16,
    streak_len: u32,
    applied_total: i16,
    corrections: u32,
}

impl CompensationLoop {
    /// Creates a loop with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if `confirm_cycles` is zero or the step/total bounds are
    /// not positive.
    pub fn new(policy: CompensationPolicy) -> CompensationLoop {
        assert!(policy.confirm_cycles > 0, "need at least one confirm cycle");
        assert!(
            policy.max_step > 0 && policy.max_total > 0,
            "correction bounds must be positive"
        );
        CompensationLoop {
            policy,
            streak_sign: 0,
            streak_len: 0,
            applied_total: 0,
            corrections: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> CompensationPolicy {
        self.policy
    }

    /// Net correction applied so far (LSBs).
    pub fn applied_total(&self) -> i16 {
        self.applied_total
    }

    /// Number of discrete corrections issued.
    pub fn corrections(&self) -> u32 {
        self.corrections
    }

    /// Feeds one cycle's sensed deviation (in LSBs; the sensor's sign
    /// convention: negative = die reads slow). Returns the LUT shift to
    /// apply this cycle, if any — the shift opposes the deviation.
    pub fn observe(&mut self, deviation: i16) -> Option<i16> {
        let sign = deviation.signum();
        if sign == 0 {
            self.streak_sign = 0;
            self.streak_len = 0;
            return None;
        }
        if sign == self.streak_sign {
            self.streak_len += 1;
        } else {
            self.streak_sign = sign;
            self.streak_len = 1;
        }
        if self.streak_len < self.policy.confirm_cycles {
            return None;
        }
        // Confirmed: correct against the deviation, bounded per step
        // and in total.
        self.streak_len = 0;
        self.streak_sign = 0;
        let wanted = (-deviation).clamp(-self.policy.max_step, self.policy.max_step);
        let room_up = self.policy.max_total - self.applied_total;
        let room_down = -self.policy.max_total - self.applied_total;
        let step = wanted.clamp(room_down, room_up);
        if step == 0 {
            return None;
        }
        self.applied_total += step;
        self.corrections += 1;
        Some(step)
    }

    /// Forgets any in-progress streak (e.g. after a commanded voltage
    /// step, when transients would alias as deviations).
    pub fn reset_streak(&mut self) {
        self.streak_sign = 0;
        self.streak_len = 0;
    }
}

/// N-of-M confirmation gate in front of the compensation loop.
///
/// A faulted TDC can mint a one-cycle phantom signature shift; feeding
/// it straight into [`CompensationLoop::observe`] starts a streak the
/// next (equally faulted) cycle can confirm. The debounce quarantines
/// *suspect* readings — the caller flags suspicion from redundant-sample
/// disagreement or a sudden jump — and only releases a deviation to the
/// loop once the same value has been seen `confirm` times in a row.
/// Trusted readings pass through untouched, so a fault-free loop
/// behaves identically with or without the gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureDebounce {
    confirm: u32,
    pending: Option<i16>,
    seen: u32,
}

impl SignatureDebounce {
    /// Creates a gate requiring `confirm` consecutive matching suspect
    /// readings.
    ///
    /// # Panics
    ///
    /// Panics if `confirm` is zero.
    pub fn new(confirm: u32) -> SignatureDebounce {
        assert!(confirm > 0, "need at least one confirmation");
        SignatureDebounce {
            confirm,
            pending: None,
            seen: 0,
        }
    }

    /// Feeds one reading. Non-suspect readings pass immediately (and
    /// clear any quarantine); suspect readings are held until the same
    /// deviation repeats `confirm` times consecutively.
    pub fn feed(&mut self, deviation: i16, suspect: bool) -> Option<i16> {
        if !suspect {
            self.pending = None;
            self.seen = 0;
            return Some(deviation);
        }
        if self.pending == Some(deviation) {
            self.seen += 1;
        } else {
            self.pending = Some(deviation);
            self.seen = 1;
        }
        if self.seen >= self.confirm {
            self.pending = None;
            self.seen = 0;
            Some(deviation)
        } else {
            None
        }
    }

    /// Drops any quarantined reading (e.g. after a watchdog fallback).
    pub fn reset(&mut self) {
        self.pending = None;
        self.seen = 0;
    }
}

impl fmt::Display for CompensationLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compensation: {} LSB applied in {} corrections",
            self.applied_total, self.corrections
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn looper() -> CompensationLoop {
        CompensationLoop::new(CompensationPolicy::default())
    }

    #[test]
    fn correction_lands_after_two_cycles() {
        // The paper's worked example: a slow die reads −1 for two
        // consecutive system cycles, then the LUT gains +1.
        let mut c = looper();
        assert_eq!(c.observe(-1), None, "first cycle only starts the streak");
        assert_eq!(c.observe(-1), Some(1), "second cycle confirms");
        assert_eq!(c.applied_total(), 1);
        assert_eq!(c.corrections(), 1);
    }

    #[test]
    fn zero_deviation_resets_the_streak() {
        let mut c = looper();
        assert_eq!(c.observe(-1), None);
        assert_eq!(c.observe(0), None);
        assert_eq!(c.observe(-1), None, "streak restarted");
        assert_eq!(c.observe(-1), Some(1));
    }

    #[test]
    fn sign_flip_restarts_the_streak() {
        let mut c = looper();
        assert_eq!(c.observe(-1), None);
        assert_eq!(c.observe(1), None);
        assert_eq!(c.observe(1), Some(-1), "fast die pulls the LUT down");
        assert_eq!(c.applied_total(), -1);
    }

    #[test]
    fn step_is_clamped() {
        let mut c = looper();
        c.observe(-3);
        let step = c.observe(-3);
        assert_eq!(step, Some(1), "max_step bounds a large deviation");
    }

    #[test]
    fn total_budget_is_respected() {
        let mut c = CompensationLoop::new(CompensationPolicy {
            confirm_cycles: 1,
            max_step: 2,
            max_total: 3,
        });
        assert_eq!(c.observe(-2), Some(2));
        assert_eq!(c.observe(-2), Some(1), "clipped at the budget");
        assert_eq!(c.observe(-2), None, "budget exhausted");
        assert_eq!(c.applied_total(), 3);
        // Opposite-direction room remains.
        assert_eq!(c.observe(2), Some(-2));
        assert_eq!(c.applied_total(), 1);
    }

    #[test]
    fn reset_streak_discards_progress() {
        let mut c = looper();
        c.observe(-1);
        c.reset_streak();
        assert_eq!(c.observe(-1), None);
        assert_eq!(c.observe(-1), Some(1));
    }

    #[test]
    fn display_reports_totals() {
        let mut c = looper();
        c.observe(-1);
        c.observe(-1);
        assert_eq!(
            format!("{c}"),
            "compensation: 1 LSB applied in 1 corrections"
        );
    }

    #[test]
    #[should_panic(expected = "confirm cycle")]
    fn zero_confirm_rejected() {
        let _ = CompensationLoop::new(CompensationPolicy {
            confirm_cycles: 0,
            ..CompensationPolicy::default()
        });
    }

    #[test]
    fn trusted_readings_pass_the_debounce_untouched() {
        let mut d = SignatureDebounce::new(2);
        for dev in [-1, 0, 2, -3] {
            assert_eq!(d.feed(dev, false), Some(dev));
        }
    }

    #[test]
    fn suspect_reading_is_held_until_confirmed() {
        let mut d = SignatureDebounce::new(2);
        assert_eq!(d.feed(3, true), None, "first suspect sighting held");
        assert_eq!(
            d.feed(3, true),
            Some(3),
            "second matching sighting released"
        );
        // Quarantine is cleared after release.
        assert_eq!(d.feed(3, true), None);
    }

    #[test]
    fn changing_suspect_value_restarts_the_count() {
        let mut d = SignatureDebounce::new(2);
        assert_eq!(d.feed(3, true), None);
        assert_eq!(d.feed(-2, true), None, "different value restarts");
        assert_eq!(d.feed(-2, true), Some(-2));
    }

    #[test]
    fn trusted_reading_clears_the_quarantine() {
        let mut d = SignatureDebounce::new(2);
        assert_eq!(d.feed(3, true), None);
        assert_eq!(d.feed(0, false), Some(0));
        assert_eq!(d.feed(3, true), None, "must re-confirm from scratch");
    }

    #[test]
    fn reset_drops_the_pending_reading() {
        let mut d = SignatureDebounce::new(2);
        d.feed(3, true);
        d.reset();
        assert_eq!(d.feed(3, true), None);
        assert_eq!(d.feed(3, true), Some(3));
    }

    #[test]
    #[should_panic(expected = "confirmation")]
    fn zero_debounce_confirm_rejected() {
        let _ = SignatureDebounce::new(0);
    }
}
