//! The unified Monte-Carlo study configuration.
//!
//! Historically every (execution × evaluator × supply) combination of
//! the yield study grew its own entry point, and the savings
//! Monte-Carlo repeated the pattern — fifteen public functions whose
//! names encoded their argument lists. [`StudyConfig`] replaces all of
//! them: one builder carrying the die count, seed and every model
//! choice, with `run`/`run_summary` terminals (plus [`StudyConfig::run_faults`]
//! for the fault-injection study). The legacy functions shipped one
//! release as `#[deprecated]` delegates and have since been removed;
//! the builder path is bit-identical to what they computed.
//!
//! ```
//! use subvt_core::study::StudyConfig;
//!
//! let summary = StudyConfig::new(200, 77).run_summary();
//! assert!(summary.adaptive_yield() > summary.fixed_yield());
//! ```
//!
//! Determinism contract: `seed` fully determines the result at any
//! worker count ([`StudyConfig::exec`]); a zero-rate
//! [`FaultPlan`] is byte-identical to no plan at all.

use std::fmt;
use std::path::PathBuf;

use subvt_dcdc::converter::ConverterParams;
use subvt_dcdc::SolverMode;
use subvt_device::mosfet::Environment;
use subvt_device::tabulate::{EvalMode, SharedEval};
use subvt_device::technology::Technology;
use subvt_device::units::{Hertz, Joules};
use subvt_device::variation::VariationModel;
use subvt_digital::lut::VoltageWord;
use subvt_exec::checkpoint::{fingerprint_of, open_for_resume, CheckpointError, CheckpointWriter};
use subvt_exec::{
    chunk_count, par_fold_chunked, par_map_indexed, try_par_fold_commit, CancelToken, ExecConfig,
    ExecHooks, FoldError, Progress,
};
use subvt_loads::load::CircuitLoad;
use subvt_loads::ring_oscillator::RingOscillator;
use subvt_regulators::{DigitalLdoBackend, DiscreteTimeLinearBackend};
use subvt_rng::{Rng, StdRng};

pub use subvt_faults::FaultPlan;

use crate::batch::{fold_dies, fold_faulted_dies, ChunkSeeds};
use crate::controller::SupplyKind;
use crate::fault_study::{score_faulted_die, FaultStudySummary};
use crate::yield_study::{
    analytic, die_seeds, StudyContext, SupplySim, YieldReport, YieldSpec, YieldSummary,
};

/// The circuit a study exercises: the paper's ring oscillator unless
/// the caller borrows its own load.
pub(crate) enum StudyLoad<'a> {
    Paper(RingOscillator),
    Borrowed(&'a dyn CircuitLoad),
}

impl StudyLoad<'_> {
    pub(crate) fn as_dyn(&self) -> &dyn CircuitLoad {
        match self {
            StudyLoad::Paper(ring) => ring,
            StudyLoad::Borrowed(load) => *load,
        }
    }
}

/// Which supply model scores the dies.
pub(crate) enum StudySupply {
    /// A named backend, built at run time (with the configured solver
    /// for the buck).
    Backend(SupplyBackendKind),
    /// An explicit, caller-built model.
    Model(SupplySim),
}

/// A named supply backend the CLI and builder select without building
/// a model up front: the per-word table (and, for the buck, the
/// converter solver) is resolved at run time from the paper-default
/// parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SupplyBackendKind {
    /// Exact-word rail: no droop, no ripple, no regulation overhead.
    #[default]
    Ideal,
    /// Switched buck converter (the historical `switched` supply).
    Buck,
    /// Digital LDO with a time-interleaved comparator bank.
    Dldo,
    /// Discrete-time linear regulator with a z-domain PI law.
    Dlr,
}

impl SupplyBackendKind {
    /// The CLI spelling, which is also the checkpoint-fingerprint tag.
    pub fn label(self) -> &'static str {
        match self {
            SupplyBackendKind::Ideal => "ideal",
            SupplyBackendKind::Buck => "buck",
            SupplyBackendKind::Dldo => "dldo",
            SupplyBackendKind::Dlr => "dlr",
        }
    }

    /// Builds the supply model this kind names. `solver` only affects
    /// the buck; the other backends are closed-form by construction.
    pub fn build_sim(self, solver: SolverMode) -> SupplySim {
        match self {
            SupplyBackendKind::Ideal => SupplySim::Ideal,
            SupplyBackendKind::Buck => {
                SupplySim::switched(ConverterParams::default().with_solver(solver))
            }
            SupplyBackendKind::Dldo => SupplySim::regulated(&DigitalLdoBackend::paper_default()),
            SupplyBackendKind::Dlr => {
                SupplySim::regulated(&DiscreteTimeLinearBackend::paper_default())
            }
        }
    }
}

impl std::str::FromStr for SupplyBackendKind {
    type Err = String;

    /// Parses a `--supply` value. `switched` is still accepted as a
    /// silent alias for `buck` (same model, same fingerprint tag) so
    /// old scripts and checkpoints keep working, but the help and
    /// error text no longer advertise it.
    fn from_str(s: &str) -> Result<SupplyBackendKind, String> {
        match s {
            "ideal" => Ok(SupplyBackendKind::Ideal),
            "buck" | "switched" => Ok(SupplyBackendKind::Buck),
            "dldo" => Ok(SupplyBackendKind::Dldo),
            "dlr" => Ok(SupplyBackendKind::Dlr),
            other => Err(format!(
                "unknown supply `{other}` (expected one of: ideal, buck, dldo, dlr)"
            )),
        }
    }
}

/// Default sub-batch size for the SoA scoring path: large enough to
/// amortize the lane setup (grid resolution, shared memo), small
/// enough that per-worker scratch stays a few kilobytes.
pub const DEFAULT_BATCH: usize = 32;

/// Why a `try_*` study terminal stopped short of a result.
#[derive(Debug)]
pub enum StudyError {
    /// The armed [`StudyConfig::cancel`] token fired; the checkpoint
    /// (if any) holds every chunk committed before the stop.
    Cancelled,
    /// The checkpoint file could not be created, written, read, or
    /// trusted. A damaged or mismatched file is an error, never a
    /// silent restart.
    Checkpoint(CheckpointError),
}

impl StudyError {
    pub(crate) fn from_fold(e: FoldError<CheckpointError>) -> StudyError {
        match e {
            FoldError::Cancelled => StudyError::Cancelled,
            FoldError::Commit(e) => StudyError::Checkpoint(e),
        }
    }
}

impl std::fmt::Display for StudyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StudyError::Cancelled => write!(f, "study cancelled"),
            StudyError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for StudyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StudyError::Cancelled => None,
            StudyError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<CheckpointError> for StudyError {
    fn from(e: CheckpointError) -> StudyError {
        StudyError::Checkpoint(e)
    }
}

/// One configuration for a Monte-Carlo study over a die population.
///
/// Construct with [`StudyConfig::new`], override what the defaults
/// don't cover, then call a terminal:
///
/// * [`StudyConfig::run`] — per-die [`YieldReport`];
/// * [`StudyConfig::run_summary`] — constant-memory [`YieldSummary`];
/// * [`StudyConfig::run_faults`] — fault-injection study
///   ([`FaultStudySummary`]).
///
/// Defaults reproduce the paper configuration: ST 130 nm, nominal
/// environment, the paper's ring-oscillator load, the 110 kHz / 2.9 fJ
/// spec with fixed and design words at the TT MEP (word 11), an ideal
/// rail, no faults, and workers from the environment.
pub struct StudyConfig<'a> {
    pub(crate) dies: usize,
    pub(crate) seed: u64,
    pub(crate) tech: Technology,
    pub(crate) eval: Option<SharedEval>,
    pub(crate) env: Environment,
    pub(crate) variation: VariationModel,
    pub(crate) spec: YieldSpec,
    pub(crate) fixed_word: VoltageWord,
    pub(crate) design_word: VoltageWord,
    pub(crate) load: StudyLoad<'a>,
    pub(crate) supply: StudySupply,
    pub(crate) solver: SolverMode,
    pub(crate) faults: Option<FaultPlan>,
    pub(crate) exec: ExecConfig,
    pub(crate) batch: usize,
    pub(crate) checkpoint: Option<PathBuf>,
    pub(crate) cancel: Option<&'a CancelToken>,
    pub(crate) progress: Option<&'a (dyn Fn(Progress) + Sync)>,
}

impl std::fmt::Debug for StudyConfig<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StudyConfig")
            .field("dies", &self.dies)
            .field("seed", &self.seed)
            .field("faults", &self.faults)
            .finish_non_exhaustive()
    }
}

impl<'a> StudyConfig<'a> {
    /// A study over `dies` sampled dies, fully determined by `seed`.
    pub fn new(dies: usize, seed: u64) -> StudyConfig<'a> {
        StudyConfig {
            dies,
            seed,
            tech: Technology::st_130nm(),
            eval: None,
            env: Environment::nominal(),
            variation: VariationModel::st_130nm(),
            spec: YieldSpec {
                min_rate: Hertz(110e3),
                max_energy_per_op: Joules::from_femtos(2.9),
            },
            fixed_word: 11,
            design_word: 11,
            load: StudyLoad::Paper(RingOscillator::paper_circuit()),
            supply: StudySupply::Backend(SupplyBackendKind::Ideal),
            solver: SolverMode::default(),
            faults: None,
            exec: ExecConfig::from_env(),
            batch: DEFAULT_BATCH,
            checkpoint: None,
            cancel: None,
            progress: None,
        }
    }

    /// Technology for the default (analytic) evaluator. Ignored when an
    /// explicit [`StudyConfig::eval`] is set.
    pub fn tech(mut self, tech: Technology) -> StudyConfig<'a> {
        self.tech = tech;
        self
    }

    /// Explicit shared evaluator (e.g. tabulated surfaces).
    pub fn eval(mut self, eval: SharedEval) -> StudyConfig<'a> {
        self.eval = Some(eval);
        self
    }

    /// Evaluator by mode, built from the configured technology — set
    /// [`StudyConfig::tech`] first if it isn't the default.
    pub fn eval_mode(self, mode: EvalMode) -> StudyConfig<'a> {
        let eval = mode.build(&self.tech);
        self.eval(eval)
    }

    /// Operating environment (default nominal).
    pub fn env(mut self, env: Environment) -> StudyConfig<'a> {
        self.env = env;
        self
    }

    /// Process-variation model (default ST 130 nm).
    pub fn variation(mut self, variation: VariationModel) -> StudyConfig<'a> {
        self.variation = variation;
        self
    }

    /// The shipped-product spec both designs are scored against.
    pub fn spec(mut self, spec: YieldSpec) -> StudyConfig<'a> {
        self.spec = spec;
        self
    }

    /// Fixed design's supply word and the adaptive design's design
    /// word.
    pub fn words(mut self, fixed: VoltageWord, design: VoltageWord) -> StudyConfig<'a> {
        self.fixed_word = fixed;
        self.design_word = design;
        self
    }

    /// Borrow a circuit load instead of the paper's ring oscillator.
    pub fn load(mut self, load: &'a dyn CircuitLoad) -> StudyConfig<'a> {
        self.load = StudyLoad::Borrowed(load);
        self
    }

    /// Explicit supply model (e.g. [`SupplySim::switched`]).
    pub fn supply(mut self, supply: SupplySim) -> StudyConfig<'a> {
        self.supply = StudySupply::Model(supply);
        self
    }

    /// Supply by kind: `Ideal` is the exact-word rail; `Switched`
    /// builds the buck converter model with the configured
    /// [`StudyConfig::solver`] at run time. (Legacy two-way spelling
    /// of [`StudyConfig::supply_backend`].)
    pub fn supply_kind(self, kind: SupplyKind) -> StudyConfig<'a> {
        self.supply_backend(match kind {
            SupplyKind::Ideal => SupplyBackendKind::Ideal,
            SupplyKind::Switched => SupplyBackendKind::Buck,
        })
    }

    /// Supply by named backend (what `--supply` selects): the model is
    /// built at run time, with the configured [`StudyConfig::solver`]
    /// for the buck.
    pub fn supply_backend(mut self, kind: SupplyBackendKind) -> StudyConfig<'a> {
        self.supply = StudySupply::Backend(kind);
        self
    }

    /// Integration strategy for a buck supply built by kind.
    pub fn solver(mut self, solver: SolverMode) -> StudyConfig<'a> {
        self.solver = solver;
        self
    }

    /// Arm fault injection with the given plan. A zero-rate plan is
    /// byte-identical to not calling this at all.
    pub fn faults(mut self, plan: FaultPlan) -> StudyConfig<'a> {
        self.faults = Some(plan);
        self
    }

    /// Worker configuration (default from the environment). Results
    /// are bit-identical at any worker count.
    pub fn exec(mut self, exec: ExecConfig) -> StudyConfig<'a> {
        self.exec = exec;
        self
    }

    /// Sub-batch size for the structure-of-arrays scoring path
    /// (default [`DEFAULT_BATCH`]). Results are bit-identical at any
    /// batch size; `0` is treated as `1`.
    pub fn batch(mut self, batch: usize) -> StudyConfig<'a> {
        self.batch = batch;
        self
    }

    /// Checkpoint file for the `try_run_summary` / `try_run_faults`
    /// terminals: one record per committed chunk, so a killed run
    /// resumes bit-identically from the same path — at any worker
    /// count or batch size (neither enters the file's fingerprint). An
    /// existing file must match this configuration; a damaged file is
    /// a typed error, never a silent restart.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> StudyConfig<'a> {
        self.checkpoint = Some(path.into());
        self
    }

    /// Cancellation token checked between chunks by the `try_*`
    /// terminals; a fired token stops the run with
    /// [`StudyError::Cancelled`] after the in-flight chunk commits.
    pub fn cancel(mut self, token: &'a CancelToken) -> StudyConfig<'a> {
        self.cancel = Some(token);
        self
    }

    /// Progress callback for the `try_*` terminals, invoked after each
    /// finished chunk (possibly from worker threads).
    pub fn progress(mut self, progress: &'a (dyn Fn(Progress) + Sync)) -> StudyConfig<'a> {
        self.progress = Some(progress);
        self
    }

    /// Die count.
    pub fn dies(&self) -> usize {
        self.dies
    }

    /// Root seed of the study's deterministic stream tree.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults
    }

    pub(crate) fn resolved_eval(&self) -> SharedEval {
        self.eval.clone().unwrap_or_else(|| analytic(&self.tech))
    }

    fn resolved_supply(&self) -> SupplySim {
        match &self.supply {
            StudySupply::Backend(kind) => kind.build_sim(self.solver),
            StudySupply::Model(sim) => sim.clone(),
        }
    }

    fn context<'c>(&'c self, eval: &SharedEval, supply: &'c SupplySim) -> StudyContext<'c> {
        StudyContext::new(
            eval.clone(),
            self.load.as_dyn(),
            self.env,
            &self.variation,
            self.spec,
            self.fixed_word,
            self.design_word,
            supply,
        )
    }

    /// Runs the study, materializing every die outcome.
    pub fn run(&self) -> YieldReport {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.run_with_rng(&mut rng)
    }

    /// [`StudyConfig::run`] drawing die streams from a caller-owned
    /// generator (the builder's `seed` is ignored).
    pub fn run_with_rng<R: Rng + ?Sized>(&self, rng: &mut R) -> YieldReport {
        let eval = self.resolved_eval();
        let supply = self.resolved_supply();
        let ctx = self.context(&eval, &supply);
        let seeds = die_seeds(rng, self.dies);
        let dies = match self.faults {
            None => par_map_indexed(&self.exec, self.dies, |i| {
                ctx.score_die(StdRng::seed_from_u64(seeds[i]))
            }),
            Some(plan) => par_map_indexed(&self.exec, self.dies, |i| {
                score_faulted_die(&ctx, plan, StdRng::seed_from_u64(seeds[i])).base
            }),
        };
        YieldReport {
            dies,
            fixed_word: self.fixed_word,
        }
    }

    /// Runs the study in constant memory (no per-die `Vec`);
    /// bit-identical to `run().summarize()`.
    ///
    /// # Panics
    ///
    /// Panics if an armed [`StudyConfig::checkpoint`] fails or an
    /// armed [`StudyConfig::cancel`] token fires — use
    /// [`StudyConfig::try_run_summary`] to handle those as values.
    pub fn run_summary(&self) -> YieldSummary {
        match self.try_run_summary() {
            Ok(summary) => summary,
            Err(e) => panic!("summary study failed: {e}"),
        }
    }

    /// [`StudyConfig::run_summary`] drawing die streams from a
    /// caller-owned generator (the builder's `seed`, checkpoint and
    /// hooks are ignored — the external stream has no stable identity
    /// to resume under).
    pub fn run_summary_with_rng<R: Rng + ?Sized>(&self, rng: &mut R) -> YieldSummary {
        let seeds = ChunkSeeds::Flat(die_seeds(rng, self.dies));
        match self.summary_fold(
            &seeds,
            0,
            YieldSummary::empty(),
            &ExecHooks::default(),
            &mut None,
        ) {
            Ok(summary) => summary,
            Err(_) => unreachable!("no cancel token or checkpoint attached"),
        }
    }

    /// [`StudyConfig::run_summary`] with cancellation, progress and
    /// checkpointing surfaced as values: scores chunk-by-chunk through
    /// the batched SoA path, committing one checkpoint record per
    /// chunk when [`StudyConfig::checkpoint`] is armed. If the file
    /// already exists, the run *resumes* from its last committed
    /// record and the final summary is bit-identical to a run that was
    /// never interrupted — even at a different worker count or batch
    /// size.
    ///
    /// # Errors
    ///
    /// [`StudyError::Cancelled`] when the armed token fires;
    /// [`StudyError::Checkpoint`] when the checkpoint file cannot be
    /// created/appended, or an existing one is damaged or belongs to a
    /// different configuration.
    pub fn try_run_summary(&self) -> Result<YieldSummary, StudyError> {
        let seeds = ChunkSeeds::from_seed(self.seed, self.dies);
        let (start_chunk, acc, mut writer) =
            self.open_checkpoint("summary", YieldSummary::empty(), YieldSummary::decode_state)?;
        self.summary_fold(&seeds, start_chunk, acc, &self.hooks(), &mut writer)
            .map_err(StudyError::from_fold)
    }

    /// Runs the fault-injection study: the armed plan (or a zero-rate
    /// one if none was armed), with per-die degradation metrics folded
    /// in constant memory.
    ///
    /// # Panics
    ///
    /// As [`StudyConfig::run_summary`]; use
    /// [`StudyConfig::try_run_faults`] to handle checkpoint failures
    /// and cancellation as values.
    pub fn run_faults(&self) -> FaultStudySummary {
        match self.try_run_faults() {
            Ok(summary) => summary,
            Err(e) => panic!("fault study failed: {e}"),
        }
    }

    /// [`StudyConfig::run_faults`] drawing die streams from a
    /// caller-owned generator (the builder's `seed`, checkpoint and
    /// hooks are ignored).
    pub fn run_faults_with_rng<R: Rng + ?Sized>(&self, rng: &mut R) -> FaultStudySummary {
        let seeds = ChunkSeeds::Flat(die_seeds(rng, self.dies));
        match self.faults_fold(
            &seeds,
            0,
            FaultStudySummary::empty(),
            &ExecHooks::default(),
            &mut None,
        ) {
            Ok(summary) => summary,
            Err(_) => unreachable!("no cancel token or checkpoint attached"),
        }
    }

    /// [`StudyConfig::run_faults`] with cancellation, progress and
    /// checkpointing surfaced as values — the fault-study counterpart
    /// of [`StudyConfig::try_run_summary`], with the same resume
    /// contract.
    ///
    /// # Errors
    ///
    /// As [`StudyConfig::try_run_summary`].
    pub fn try_run_faults(&self) -> Result<FaultStudySummary, StudyError> {
        let seeds = ChunkSeeds::from_seed(self.seed, self.dies);
        let (start_chunk, acc, mut writer) = self.open_checkpoint(
            "faults",
            FaultStudySummary::empty(),
            FaultStudySummary::decode_state,
        )?;
        self.faults_fold(&seeds, start_chunk, acc, &self.hooks(), &mut writer)
            .map_err(StudyError::from_fold)
    }

    pub(crate) fn hooks(&self) -> ExecHooks<'_> {
        ExecHooks {
            cancel: self.cancel,
            progress: self.progress,
        }
    }

    /// The chunk-committed summary fold all summary terminals share:
    /// the batched SoA scorer inside `try_par_fold_commit`, appending
    /// one checkpoint record per committed chunk when a writer is
    /// attached.
    fn summary_fold(
        &self,
        seeds: &ChunkSeeds,
        start_chunk: usize,
        acc: YieldSummary,
        hooks: &ExecHooks<'_>,
        writer: &mut Option<CheckpointWriter>,
    ) -> Result<YieldSummary, FoldError<CheckpointError>> {
        let eval = self.resolved_eval();
        let supply = self.resolved_supply();
        let ctx = self.context(&eval, &supply);
        let batch = self.batch.max(1);
        let mut summary = try_par_fold_commit(
            &self.exec,
            self.dies,
            start_chunk,
            hooks,
            YieldSummary::empty,
            acc,
            |part, range| {
                let first_die = range.start;
                let chunk_seeds = seeds.for_range(range);
                match self.faults {
                    None => fold_dies(&ctx, &chunk_seeds, first_die, batch, |_, die| {
                        part.absorb(die)
                    }),
                    Some(plan) => {
                        fold_faulted_dies(&ctx, plan, &chunk_seeds, first_die, batch, |_, die| {
                            part.absorb(&die.base)
                        })
                    }
                }
            },
            YieldSummary::merge,
            |chunks_done, acc| match writer {
                Some(w) => w.append(chunks_done as u64, &acc.encode_state()),
                None => Ok(()),
            },
        )?;
        summary.fixed_word = self.fixed_word;
        Ok(summary)
    }

    /// The fault-study counterpart of [`StudyConfig::summary_fold`].
    fn faults_fold(
        &self,
        seeds: &ChunkSeeds,
        start_chunk: usize,
        acc: FaultStudySummary,
        hooks: &ExecHooks<'_>,
        writer: &mut Option<CheckpointWriter>,
    ) -> Result<FaultStudySummary, FoldError<CheckpointError>> {
        let plan = self.faults.unwrap_or_else(|| FaultPlan::uniform(0.0));
        let eval = self.resolved_eval();
        let supply = self.resolved_supply();
        let ctx = self.context(&eval, &supply);
        let batch = self.batch.max(1);
        let mut summary = try_par_fold_commit(
            &self.exec,
            self.dies,
            start_chunk,
            hooks,
            FaultStudySummary::empty,
            acc,
            |part, range| {
                let first_die = range.start;
                let chunk_seeds = seeds.for_range(range);
                fold_faulted_dies(&ctx, plan, &chunk_seeds, first_die, batch, |_, die| {
                    part.absorb(die)
                })
            },
            FaultStudySummary::merge,
            |chunks_done, acc| match writer {
                Some(w) => w.append(chunks_done as u64, &acc.encode_state()),
                None => Ok(()),
            },
        )?;
        summary.base.fixed_word = self.fixed_word;
        Ok(summary)
    }

    /// Opens (or creates) the configured checkpoint file, returning
    /// the resume point: `(start_chunk, accumulator, writer)`.
    fn open_checkpoint<A>(
        &self,
        kind: &str,
        empty: A,
        decode: impl Fn(&[u8]) -> Result<A, CheckpointError>,
    ) -> Result<(usize, A, Option<CheckpointWriter>), StudyError> {
        let Some(path) = &self.checkpoint else {
            return Ok((0, empty, None));
        };
        let fingerprint = fingerprint_of(&self.fingerprint_text(kind));
        let total = self.dies as u64;
        if !path.exists() {
            let writer = CheckpointWriter::create(path, fingerprint, total)?;
            return Ok((0, empty, Some(writer)));
        }
        let (checkpoint, writer) = open_for_resume(path)?;
        checkpoint.verify(fingerprint, total)?;
        match checkpoint.last {
            None => Ok((0, empty, Some(writer))),
            Some(record) => {
                let start = usize::try_from(record.chunks_done)
                    .ok()
                    .filter(|&c| c <= chunk_count(self.dies))
                    .ok_or(StudyError::Checkpoint(CheckpointError::Decode(
                        "checkpoint is ahead of the population",
                    )))?;
                let acc = decode(&record.state)?;
                Ok((start, acc, Some(writer)))
            }
        }
    }

    /// The run-identity string hashed into the checkpoint fingerprint:
    /// everything that shapes the *result* — seed, population, spec,
    /// models — and nothing that only shapes the *execution* (worker
    /// count and batch size are deliberately excluded, so a run may
    /// resume under a different `--jobs`/`--batch` bit-identically).
    pub fn fingerprint_text(&self, kind: &str) -> String {
        let supply_tag = match &self.supply {
            StudySupply::Backend(kind) => kind.label().to_owned(),
            StudySupply::Model(SupplySim::Ideal) => "ideal".to_owned(),
            StudySupply::Model(SupplySim::Regulated(model)) => {
                format!("{}-model", model.tag())
            }
        };
        self.fingerprint_text_with(kind, &supply_tag, self.env, self.faults)
    }

    /// [`StudyConfig::fingerprint_text`] with the cell-varying axes —
    /// supply tag, environment, fault plan — passed explicitly, so the
    /// matrix path ([`crate::matrix`]) derives each cell's identity
    /// string from the same template a standalone run of that cell
    /// would hash. One format string serves both; they cannot drift.
    pub(crate) fn fingerprint_text_with(
        &self,
        kind: &str,
        supply_tag: &str,
        env: Environment,
        faults: Option<FaultPlan>,
    ) -> String {
        let eval_tag = match &self.eval {
            None => "analytic".to_owned(),
            Some(eval) => {
                let dbg = format!("{eval:?}");
                dbg.split([' ', '(', '{'])
                    .next()
                    .unwrap_or("custom")
                    .to_owned()
            }
        };
        format!(
            "subvt-study-v1 kind={kind} dies={} seed={} words={}/{} \
             rate={:016x} energy={:016x} eval={eval_tag} supply={supply_tag} \
             solver={:?} faults={:?} env={:?} load={} variation={:?}",
            self.dies,
            self.seed,
            self.fixed_word,
            self.design_word,
            self.spec.min_rate.value().to_bits(),
            self.spec.max_energy_per_op.value().to_bits(),
            self.solver,
            faults,
            env,
            self.load.as_dyn().name(),
            self.variation,
        )
    }

    /// Generic per-die fan-out: forks one deterministic stream per die
    /// (labels `"{label}-{i}"`, matching a serial fork-per-die loop
    /// bit-for-bit) and maps them through `f` on the configured
    /// execution engine. This is the terminal the savings Monte-Carlo
    /// rides; `f` must be a pure function of its arguments.
    pub fn run_dies<T, F>(&self, label: &str, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, StdRng) -> T + Sync,
    {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let seeds: Vec<u64> = (0..self.dies)
            .map(|i| rng.fork_seed(&format!("{label}-{i}")))
            .collect();
        par_map_indexed(&self.exec, self.dies, |i| {
            f(i, StdRng::seed_from_u64(seeds[i]))
        })
    }

    /// Streaming counterpart of [`StudyConfig::run_dies`]: folds every
    /// die into per-chunk accumulators merged in ascending chunk order,
    /// so memory stays `O(jobs × accumulator)` instead of `O(dies)`.
    /// The fold/merge sequence is a pure function of the die count
    /// (see [`subvt_exec::chunk_len`]), so the result is bit-identical
    /// for any worker count.
    pub fn fold_dies<A, I, F, M>(&self, label: &str, init: I, fold: F, merge: M) -> A
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, usize, StdRng) + Sync,
        M: Fn(&mut A, A),
    {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let seeds: Vec<u64> = (0..self.dies)
            .map(|i| rng.fork_seed(&format!("{label}-{i}")))
            .collect();
        par_fold_chunked(
            &self.exec,
            self.dies,
            init,
            |acc, i| fold(acc, i, StdRng::seed_from_u64(seeds[i])),
            merge,
        )
    }
}

/// The shared command-line surface of every study runner: one parser
/// for `--dies/--jobs/--seed/--eval/--supply/--solver/--faults/
/// --mitigation`, used by both the main CLI and the `exp-*` harness
/// binaries so the flags cannot drift apart.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyArgs {
    /// Die population (`--dies`, default 500).
    pub dies: usize,
    /// Explicit worker count (`--jobs`); `None` defers to the
    /// environment.
    pub jobs: Option<usize>,
    /// Monte-Carlo seed (`--seed`, default 1).
    pub seed: u64,
    /// Device evaluation mode (`--eval`, default analytic).
    pub eval: EvalMode,
    /// Supply backend (`--supply`, default ideal).
    pub supply: SupplyBackendKind,
    /// Converter solver for a buck supply (`--solver`).
    pub solver: SolverMode,
    /// Per-cycle fault rate (`--faults`); `None` disables injection.
    pub faults: Option<f64>,
    /// Whether mitigation is armed (`--mitigation on|off`, default on).
    pub mitigation: bool,
    /// SoA sub-batch size (`--batch`); `None` keeps the default.
    pub batch: Option<usize>,
    /// Checkpoint file for summary runs (`--checkpoint`).
    pub checkpoint: Option<String>,
    /// Fire a cancel token once this many dies finished
    /// (`--cancel-after-dies`, for exercising checkpoint/resume).
    pub cancel_after_dies: Option<u64>,
    /// Print the per-phase wall-time profile of the batched hot path
    /// after the run (`--profile-phases`).
    pub profile_phases: bool,
    /// Write the per-phase profile as a JSON object to this path after
    /// the run (`--profile-phases-json`); see
    /// [`crate::PhaseProfile::to_json`] for the payload.
    pub profile_phases_json: Option<String>,
}

/// Help text for the shared study flags.
pub const STUDY_HELP: &str = "\
    --dies N          die population (default 500)
    --jobs N          worker threads (default: SUBVT_JOBS, else all cores)
    --seed N          Monte-Carlo seed (default 1)
    --eval M          device evaluation: `analytic` (default) or `tabulated`
    --supply S        supply backend: `ideal` (default), `buck`, `dldo` or `dlr`
    --solver S        converter solver for buck: `closed-form` (default) or `rk4`
    --faults R        per-cycle fault rate in [0,1] (default: no injection)
    --mitigation M    fault mitigation `on` (default) or `off`
    --batch N         SoA sub-batch size (default 32; results identical at any N)
    --checkpoint F    checkpoint file: resume from F if present, else create it
    --cancel-after-dies N
                      stop (checkpointed) once N dies have been scored
    --profile-phases  print per-phase wall time of the batched hot path
                      (draw / fixed lane / word settle / adaptive lanes /
                      dither settle) after the run
    --profile-phases-json F
                      write the per-phase profile as JSON to F after the run";

impl Default for StudyArgs {
    fn default() -> StudyArgs {
        StudyArgs {
            dies: 500,
            jobs: None,
            seed: 1,
            eval: EvalMode::default(),
            supply: SupplyBackendKind::default(),
            solver: SolverMode::default(),
            faults: None,
            mitigation: true,
            batch: None,
            checkpoint: None,
            cancel_after_dies: None,
            profile_phases: false,
            profile_phases_json: None,
        }
    }
}

/// A rejected study flag: which flag, what went wrong, and what the
/// flag accepts.
///
/// Every rejection names the flag and lists its valid forms, in the
/// style the enum flags (`--supply`, `--solver`) established — a bare
/// `--dies must be positive` with no hint of the valid domain is the
/// failure mode this type retires. Converts into `String` so callers
/// that accumulate plain-text CLI errors keep working with `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// The flag appeared without its value.
    MissingValue {
        /// The flag, e.g. `--dies`.
        flag: &'static str,
        /// The valid forms, e.g. `a positive integer`.
        expected: &'static str,
    },
    /// The value did not parse, or parsed outside the valid domain.
    InvalidValue {
        /// The flag, e.g. `--dies`.
        flag: &'static str,
        /// The offending value as given.
        value: String,
        /// The valid forms, e.g. `a probability in [0, 1]`.
        expected: &'static str,
    },
    /// A rejection that already carries its full message (the enum
    /// flags' `unknown supply ...` strings).
    Other(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue { flag, expected } => {
                write!(f, "{flag} needs a value (expected {expected})")
            }
            ArgError::InvalidValue {
                flag,
                value,
                expected,
            } => {
                write!(
                    f,
                    "invalid value `{value}` for {flag} (expected {expected})"
                )
            }
            ArgError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl From<ArgError> for String {
    fn from(e: ArgError) -> String {
        e.to_string()
    }
}

impl From<String> for ArgError {
    fn from(msg: String) -> ArgError {
        ArgError::Other(msg)
    }
}

impl StudyArgs {
    /// Defaults: 500 dies, seed 1, analytic eval, ideal supply, no
    /// faults, mitigation on, workers from the environment.
    pub fn new() -> StudyArgs {
        StudyArgs::default()
    }

    /// Tries to consume a study flag at `args[i]`.
    ///
    /// Returns `Ok(Some(n))` when `n` arguments were consumed,
    /// `Ok(None)` when `args[i]` is not a study flag (the caller's
    /// parser proceeds), and a typed [`ArgError`] — naming the flag
    /// and its valid forms — on a malformed value.
    pub fn accept(&mut self, args: &[String], i: usize) -> Result<Option<usize>, ArgError> {
        let value = |flag: &'static str, expected: &'static str| -> Result<&str, ArgError> {
            args.get(i + 1)
                .map(|s| s.as_str())
                .ok_or(ArgError::MissingValue { flag, expected })
        };
        let invalid = |flag: &'static str, raw: &str, expected: &'static str| -> ArgError {
            ArgError::InvalidValue {
                flag,
                value: raw.to_owned(),
                expected,
            }
        };
        match args[i].as_str() {
            "--dies" => {
                const EXPECTED: &str = "a positive integer";
                let raw = value("--dies", EXPECTED)?;
                self.dies = raw
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| invalid("--dies", raw, EXPECTED))?;
            }
            "--jobs" => {
                const EXPECTED: &str = "a positive integer";
                let raw = value("--jobs", EXPECTED)?;
                let jobs = raw
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| invalid("--jobs", raw, EXPECTED))?;
                self.jobs = Some(jobs);
            }
            "--seed" => {
                const EXPECTED: &str = "an unsigned integer";
                let raw = value("--seed", EXPECTED)?;
                self.seed = raw.parse().map_err(|_| invalid("--seed", raw, EXPECTED))?;
            }
            "--eval" => {
                self.eval = value("--eval", "one of: analytic, tabulated")?
                    .parse()
                    .map_err(|e| ArgError::Other(format!("{e}")))?;
            }
            "--supply" => {
                self.supply = value("--supply", "one of: ideal, buck, dldo, dlr")?
                    .parse()
                    .map_err(ArgError::Other)?;
            }
            "--solver" => {
                self.solver = match value("--solver", "one of: closed-form, rk4")? {
                    "closed-form" | "closed_form" => SolverMode::ClosedForm,
                    "rk4" => SolverMode::Rk4,
                    other => {
                        return Err(ArgError::Other(format!(
                            "unknown solver `{other}` (expected one of: closed-form, rk4)"
                        )))
                    }
                };
            }
            "--faults" => {
                const EXPECTED: &str = "a probability in [0, 1]";
                let raw = value("--faults", EXPECTED)?;
                let rate = raw
                    .parse()
                    .ok()
                    .filter(|rate| (0.0..=1.0).contains(rate))
                    .ok_or_else(|| invalid("--faults", raw, EXPECTED))?;
                self.faults = Some(rate);
            }
            "--mitigation" => {
                self.mitigation = match value("--mitigation", "`on` or `off`")? {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(ArgError::Other(format!(
                            "unknown mitigation `{other}` (on|off)"
                        )))
                    }
                };
            }
            "--batch" => {
                const EXPECTED: &str = "a positive integer";
                let raw = value("--batch", EXPECTED)?;
                let batch = raw
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| invalid("--batch", raw, EXPECTED))?;
                self.batch = Some(batch);
            }
            "--checkpoint" => {
                self.checkpoint = Some(value("--checkpoint", "a file path")?.to_owned());
            }
            "--cancel-after-dies" => {
                const EXPECTED: &str = "a positive integer";
                let raw = value("--cancel-after-dies", EXPECTED)?;
                let dies = raw
                    .parse()
                    .ok()
                    .filter(|&n: &u64| n > 0)
                    .ok_or_else(|| invalid("--cancel-after-dies", raw, EXPECTED))?;
                self.cancel_after_dies = Some(dies);
            }
            "--profile-phases" => {
                self.profile_phases = true;
                return Ok(Some(1));
            }
            "--profile-phases-json" => {
                self.profile_phases_json =
                    Some(value("--profile-phases-json", "a file path")?.to_owned());
            }
            _ => return Ok(None),
        }
        Ok(Some(2))
    }

    /// The execution configuration these flags select.
    pub fn exec(&self) -> ExecConfig {
        ExecConfig::from_option(self.jobs)
    }

    /// The fault plan these flags select, if `--faults` was given.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults
            .map(|rate| FaultPlan::uniform(rate).with_mitigation(self.mitigation))
    }

    /// Builds the study these flags describe (paper defaults for
    /// everything the flags don't cover).
    pub fn study(&self) -> StudyConfig<'static> {
        let mut cfg = StudyConfig::new(self.dies, self.seed)
            .supply_backend(self.supply)
            .solver(self.solver)
            .exec(self.exec());
        if self.eval != EvalMode::default() {
            cfg = cfg.eval_mode(self.eval);
        }
        if let Some(plan) = self.fault_plan() {
            cfg = cfg.faults(plan);
        }
        if let Some(batch) = self.batch {
            cfg = cfg.batch(batch);
        }
        if let Some(path) = &self.checkpoint {
            cfg = cfg.checkpoint(path);
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn parse_all(parts: &[&str]) -> Result<StudyArgs, String> {
        let args = argv(parts);
        let mut study = StudyArgs::new();
        let mut i = 0;
        while i < args.len() {
            match study.accept(&args, i)? {
                Some(n) => i += n,
                None => return Err(format!("unknown flag `{}`", args[i])),
            }
        }
        Ok(study)
    }

    #[test]
    fn defaults_are_the_paper_configuration() {
        let study = StudyArgs::new();
        assert_eq!(study.dies, 500);
        assert_eq!(study.seed, 1);
        assert_eq!(study.jobs, None);
        assert_eq!(study.eval, EvalMode::Analytic);
        assert_eq!(study.supply, SupplyBackendKind::Ideal);
        assert_eq!(study.solver, SolverMode::ClosedForm);
        assert_eq!(study.faults, None);
        assert!(study.mitigation);
        assert_eq!(study.fault_plan(), None);
    }

    #[test]
    fn all_flags_parse_in_one_pass() {
        let study = parse_all(&[
            "--dies",
            "40",
            "--jobs",
            "3",
            "--seed",
            "9",
            "--eval",
            "tabulated",
            "--supply",
            "switched",
            "--solver",
            "rk4",
            "--faults",
            "0.02",
            "--mitigation",
            "off",
        ])
        .unwrap();
        assert_eq!(study.dies, 40);
        assert_eq!(study.jobs, Some(3));
        assert_eq!(study.seed, 9);
        assert_eq!(study.eval, EvalMode::Tabulated);
        assert_eq!(study.supply, SupplyBackendKind::Buck);
        assert_eq!(study.solver, SolverMode::Rk4);
        assert_eq!(study.exec().jobs(), 3);
        let plan = study.fault_plan().unwrap();
        assert_eq!(plan.tdc_rate, 0.02);
        assert!(!plan.mitigation);
    }

    #[test]
    fn profile_phases_flag_is_a_bare_toggle() {
        let study = parse_all(&["--profile-phases", "--dies", "40"]).unwrap();
        assert!(study.profile_phases);
        assert_eq!(study.dies, 40);
        assert!(!StudyArgs::new().profile_phases);
        assert!(STUDY_HELP.contains("--profile-phases"));
    }

    #[test]
    fn profile_phases_json_takes_a_path() {
        let study = parse_all(&["--profile-phases-json", "out.json"]).unwrap();
        assert_eq!(study.profile_phases_json.as_deref(), Some("out.json"));
        assert!(!study.profile_phases);
        assert!(parse_all(&["--profile-phases-json"]).is_err());
        assert!(STUDY_HELP.contains("--profile-phases-json"));
    }

    #[test]
    fn switched_alias_parses_but_is_not_advertised() {
        // The alias stays accepted (scripts, checkpoint fingerprints)
        // but is retired from every user-facing listing.
        assert_eq!(
            "switched".parse::<SupplyBackendKind>().unwrap(),
            SupplyBackendKind::Buck
        );
        assert!(!STUDY_HELP.contains("switched"), "{STUDY_HELP}");
        let err = "battery".parse::<SupplyBackendKind>().unwrap_err();
        assert!(!err.contains("switched"), "{err}");
    }

    #[test]
    fn malformed_values_are_rejected() {
        for bad in [
            &["--dies", "0"][..],
            &["--dies", "x"],
            &["--dies"],
            &["--jobs", "0"],
            &["--seed", "pi"],
            &["--eval", "magic"],
            &["--supply", "battery"],
            &["--solver", "euler"],
            &["--faults", "1.5"],
            &["--faults", "-0.1"],
            &["--mitigation", "maybe"],
        ] {
            assert!(parse_all(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn numeric_rejections_name_the_flag_and_the_valid_forms() {
        // Typed errors: every numeric rejection carries the flag, the
        // offending value, and the valid domain.
        for (bad, expected) in [
            (
                &["--dies", "0"][..],
                "invalid value `0` for --dies (expected a positive integer)",
            ),
            (
                &["--dies", "x"],
                "invalid value `x` for --dies (expected a positive integer)",
            ),
            (
                &["--jobs", "0"],
                "invalid value `0` for --jobs (expected a positive integer)",
            ),
            (
                &["--seed", "pi"],
                "invalid value `pi` for --seed (expected an unsigned integer)",
            ),
            (
                &["--batch", "0"],
                "invalid value `0` for --batch (expected a positive integer)",
            ),
            (
                &["--faults", "1.5"],
                "invalid value `1.5` for --faults (expected a probability in [0, 1])",
            ),
            (
                &["--faults", "lots"],
                "invalid value `lots` for --faults (expected a probability in [0, 1])",
            ),
            (
                &["--cancel-after-dies", "0"],
                "invalid value `0` for --cancel-after-dies (expected a positive integer)",
            ),
            (
                &["--dies"],
                "--dies needs a value (expected a positive integer)",
            ),
            (
                &["--faults"],
                "--faults needs a value (expected a probability in [0, 1])",
            ),
        ] {
            assert_eq!(parse_all(bad).unwrap_err(), expected, "{bad:?}");
        }
    }

    #[test]
    fn arg_errors_are_typed_and_convert_to_strings() {
        let mut study = StudyArgs::new();
        let e = study.accept(&argv(&["--dies", "0"]), 0).unwrap_err();
        assert_eq!(
            e,
            ArgError::InvalidValue {
                flag: "--dies",
                value: "0".to_owned(),
                expected: "a positive integer",
            }
        );
        let e = study.accept(&argv(&["--batch"]), 0).unwrap_err();
        assert_eq!(
            e,
            ArgError::MissingValue {
                flag: "--batch",
                expected: "a positive integer",
            }
        );
        // Enum flags keep their established full-message form.
        let e = study
            .accept(&argv(&["--supply", "battery"]), 0)
            .unwrap_err();
        assert!(matches!(e, ArgError::Other(_)), "{e}");
        let s: String = e.into();
        assert!(s.contains("unknown supply `battery`"), "{s}");
    }

    #[test]
    fn supply_backends_parse_by_name_with_switched_as_alias() {
        for (raw, kind) in [
            ("ideal", SupplyBackendKind::Ideal),
            ("buck", SupplyBackendKind::Buck),
            ("dldo", SupplyBackendKind::Dldo),
            ("dlr", SupplyBackendKind::Dlr),
            ("switched", SupplyBackendKind::Buck),
        ] {
            let study = parse_all(&["--supply", raw]).unwrap();
            assert_eq!(study.supply, kind, "--supply {raw}");
        }
    }

    #[test]
    fn rejection_errors_list_the_valid_options() {
        let err = parse_all(&["--supply", "battery"]).unwrap_err();
        for option in ["ideal", "buck", "dldo", "dlr"] {
            assert!(
                err.contains(option),
                "supply error `{err}` omits `{option}`"
            );
        }
        let err = parse_all(&["--solver", "euler"]).unwrap_err();
        for option in ["closed-form", "rk4"] {
            assert!(
                err.contains(option),
                "solver error `{err}` omits `{option}`"
            );
        }
    }

    #[test]
    fn backend_kinds_and_the_switched_alias_share_fingerprints() {
        // `--supply switched` must resume a checkpoint written by
        // `--supply buck` (one model, one tag), while each real backend
        // fingerprints distinctly.
        let tag = |kind: SupplyBackendKind| {
            StudyConfig::new(10, 1)
                .supply_backend(kind)
                .fingerprint_text("summary")
        };
        assert_eq!(
            tag("switched".parse().unwrap()),
            tag(SupplyBackendKind::Buck)
        );
        let tags: Vec<String> = [
            SupplyBackendKind::Ideal,
            SupplyBackendKind::Buck,
            SupplyBackendKind::Dldo,
            SupplyBackendKind::Dlr,
        ]
        .into_iter()
        .map(tag)
        .collect();
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // An explicit caller-built model fingerprints as `{tag}-model`,
        // distinct from the kind-built path.
        let model = StudyConfig::new(10, 1)
            .supply(SupplyBackendKind::Dldo.build_sim(SolverMode::default()))
            .fingerprint_text("summary");
        assert!(model.contains("supply=dldo-model"), "{model}");
    }

    #[test]
    fn non_study_flags_are_left_to_the_caller() {
        let mut study = StudyArgs::new();
        assert_eq!(study.accept(&argv(&["--word", "11"]), 0), Ok(None));
        assert_eq!(study, StudyArgs::new());
    }

    #[test]
    fn builder_defaults_shape_the_study() {
        let cfg = StudyConfig::new(12, 3);
        assert_eq!(cfg.dies(), 12);
        assert_eq!(cfg.fault_plan(), None);
        let armed = StudyConfig::new(12, 3).faults(FaultPlan::uniform(0.1));
        assert_eq!(armed.fault_plan().unwrap().tdc_rate, 0.1);
    }

    #[test]
    fn run_dies_matches_a_serial_fork_loop() {
        // The generic fan-out must reproduce a plain fork-per-die loop
        // bit-for-bit at any worker count.
        let expected: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..10)
                .map(|i| rng.fork(&format!("mc-{i}")).next_u64())
                .collect()
        };
        for jobs in [1usize, 2, 7] {
            let got = StudyConfig::new(10, 5)
                .exec(ExecConfig::with_jobs(jobs))
                .run_dies("mc", |_, mut die_rng| die_rng.next_u64());
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }
}
