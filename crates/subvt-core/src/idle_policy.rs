//! Run-slow (DVS) vs race-to-idle: the trade the paper's reference
//! \[10\] (Gutnik & Chandrakasan) settles in favour of variable supplies.
//!
//! For a workload that needs `rate` operations per second, a system
//! with buffering can either
//!
//! * **match the rate** with a low supply (the paper's controller), or
//! * **race to idle**: run at a fast fixed supply and power-gate the
//!   rest of the time.
//!
//! With the subthreshold energy model both policies can be priced
//! exactly; this module computes the comparison and the break-even
//! retention (how leaky the sleep state may be before racing wins).

use subvt_device::delay::{GateMismatch, SupplyRangeError};
use subvt_device::mep::find_mep;
use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_device::units::{Hertz, Joules, Volts};
use subvt_loads::load::CircuitLoad;

/// Energy of one second of operation under a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyEnergy {
    /// Supply used while processing.
    pub vdd: Volts,
    /// Fraction of time spent processing (1 = fully busy).
    pub busy_fraction: f64,
    /// Energy spent per second.
    pub energy_per_second: Joules,
}

/// Comparison of the two policies at one workload rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdlePolicyComparison {
    /// Required operation rate.
    pub rate: Hertz,
    /// Rate-matched DVS (never below the MEP voltage).
    pub dvs: PolicyEnergy,
    /// Race-to-idle at the given fast supply.
    pub race: PolicyEnergy,
}

impl IdlePolicyComparison {
    /// Energy ratio `race / dvs` (> 1 means DVS wins).
    pub fn race_to_dvs_ratio(&self) -> f64 {
        self.race.energy_per_second.value() / self.dvs.energy_per_second.value()
    }
}

fn policy_energy(
    tech: &Technology,
    load: &dyn CircuitLoad,
    env: Environment,
    vdd: Volts,
    rate: Hertz,
    idle_retention: f64,
) -> Result<Option<PolicyEnergy>, SupplyRangeError> {
    let max = load.max_rate(tech, vdd, env, GateMismatch::NOMINAL)?;
    if max.value() < rate.value() {
        return Ok(None); // cannot sustain the rate at this supply
    }
    let e = load.energy_per_op(tech, vdd, env)?;
    let ops_per_s = rate.value();
    let busy = ops_per_s * e.cycle_time.value();
    let idle = 1.0 - busy;
    let idle_power = e.leak_current.value() * vdd.volts() * idle_retention;
    let energy = ops_per_s * e.total().value() + idle_power * idle;
    Ok(Some(PolicyEnergy {
        vdd,
        busy_fraction: busy,
        energy_per_second: Joules(energy),
    }))
}

/// Compares rate-matched DVS against race-to-idle at `race_vdd` for a
/// required `rate`, with the given sleep-state retention fraction.
///
/// The DVS supply is the lowest voltage that sustains the rate, floored
/// at the load's MEP voltage (running below the MEP wastes energy).
///
/// # Errors
///
/// Returns [`SupplyRangeError`] on model-range violations, or when no
/// supply sustains the rate.
pub fn compare_idle_policies(
    tech: &Technology,
    load: &dyn CircuitLoad,
    env: Environment,
    rate: Hertz,
    race_vdd: Volts,
    idle_retention: f64,
) -> Result<IdlePolicyComparison, SupplyRangeError> {
    let mep = find_mep(
        tech,
        load.profile(),
        env,
        tech.min_vdd + Volts(0.02),
        Volts(0.9),
    )?;

    // Lowest sustaining voltage by scan at LSB granularity.
    let mut dvs_vdd = None;
    for word in 1u16..=63 {
        let v = Volts(f64::from(word) * 0.01875);
        if v < tech.min_vdd {
            continue;
        }
        if let Ok(max) = load.max_rate(tech, v, env, GateMismatch::NOMINAL) {
            if max.value() >= rate.value() {
                dvs_vdd = Some(v.max(mep.vopt));
                break;
            }
        }
    }
    let dvs_vdd = dvs_vdd.ok_or_else(|| {
        // Reuse the range error type for "unreachable rate".
        load.critical_path(tech, Volts(0.0), env, GateMismatch::NOMINAL)
            .unwrap_err()
    })?;

    let dvs = policy_energy(tech, load, env, dvs_vdd, rate, idle_retention)?
        .expect("dvs voltage sustains the rate by construction");
    let race =
        policy_energy(tech, load, env, race_vdd, rate, idle_retention)?.ok_or_else(|| {
            load.critical_path(tech, Volts(0.0), env, GateMismatch::NOMINAL)
                .unwrap_err()
        })?;

    Ok(IdlePolicyComparison { rate, dvs, race })
}

/// Sleep-state retention at which race-to-idle breaks even with DVS at
/// a given rate (bisection over retention in [0, 1]); `None` when DVS
/// wins even with a perfectly leak-free sleep state.
///
/// # Errors
///
/// As [`compare_idle_policies`].
pub fn breakeven_retention(
    tech: &Technology,
    load: &dyn CircuitLoad,
    env: Environment,
    rate: Hertz,
    race_vdd: Volts,
) -> Result<Option<f64>, SupplyRangeError> {
    let at = |r: f64| -> Result<f64, SupplyRangeError> {
        Ok(compare_idle_policies(tech, load, env, rate, race_vdd, r)?.race_to_dvs_ratio())
    };
    if at(0.0)? >= 1.0 {
        return Ok(None); // even a free sleep state cannot save racing
    }
    // ratio grows with retention only through the DVS idle term...
    // actually both idle terms grow; find crossing by scan+bisect.
    let (mut lo, mut hi) = (0.0, 1.0);
    if at(1.0)? < 1.0 {
        return Ok(Some(1.0)); // race wins everywhere
    }
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        if at(mid)? < 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(0.5 * (lo + hi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_loads::ring_oscillator::RingOscillator;

    fn fixture() -> (Technology, RingOscillator, Environment) {
        (
            Technology::st_130nm(),
            RingOscillator::paper_circuit(),
            Environment::nominal(),
        )
    }

    #[test]
    fn dvs_beats_racing_at_light_rates() {
        // The Gutnik result the paper builds on: with buffering, the
        // matched low supply beats run-fast-then-sleep.
        let (tech, ring, env) = fixture();
        let cmp = compare_idle_policies(&tech, &ring, env, Hertz(50e3), Volts(0.6), 0.05).unwrap();
        assert!(
            cmp.race_to_dvs_ratio() > 2.0,
            "ratio {}",
            cmp.race_to_dvs_ratio()
        );
        assert!(cmp.dvs.vdd.volts() < 0.3);
        assert!(cmp.dvs.busy_fraction <= 1.0);
    }

    #[test]
    fn dvs_supply_never_sinks_below_the_mep() {
        let (tech, ring, env) = fixture();
        let cmp = compare_idle_policies(&tech, &ring, env, Hertz(1e3), Volts(0.6), 0.05).unwrap();
        // 1 kHz needs almost nothing, but the supply floors at the MEP.
        assert!(
            (cmp.dvs.vdd.millivolts() - 200.0).abs() < 20.0,
            "dvs vdd {}",
            cmp.dvs.vdd
        );
    }

    #[test]
    fn policies_converge_at_full_utilization() {
        // When the rate needs the race voltage anyway there is no idle
        // to exploit: the two policies coincide.
        let (tech, ring, env) = fixture();
        let race_vdd = Volts(0.6);
        let max_at_race = ring
            .max_rate(&tech, race_vdd, env, GateMismatch::NOMINAL)
            .unwrap();
        let cmp = compare_idle_policies(
            &tech,
            &ring,
            env,
            Hertz(max_at_race.value() * 0.98),
            race_vdd,
            0.05,
        )
        .unwrap();
        assert!(
            (cmp.race_to_dvs_ratio() - 1.0).abs() < 0.2,
            "ratio {}",
            cmp.race_to_dvs_ratio()
        );
    }

    #[test]
    fn busy_fraction_scales_with_rate() {
        let (tech, ring, env) = fixture();
        let slow = compare_idle_policies(&tech, &ring, env, Hertz(10e3), Volts(0.6), 0.05).unwrap();
        let fast =
            compare_idle_policies(&tech, &ring, env, Hertz(100e3), Volts(0.6), 0.05).unwrap();
        assert!(fast.race.busy_fraction > 5.0 * slow.race.busy_fraction);
    }

    #[test]
    fn breakeven_retention_is_none_for_subthreshold_dvs() {
        // Even a leak-free sleep state cannot rescue racing at 0.6 V
        // against an MEP-matched supply: the V² gap is too large.
        let (tech, ring, env) = fixture();
        let be = breakeven_retention(&tech, &ring, env, Hertz(50e3), Volts(0.6)).unwrap();
        assert_eq!(be, None, "breakeven {be:?}");
    }

    #[test]
    fn unreachable_rate_errors() {
        let (tech, ring, env) = fixture();
        let result = compare_idle_policies(&tech, &ring, env, Hertz(1e12), Volts(0.6), 0.05);
        assert!(result.is_err());
    }
}
