//! Per-phase wall-time accounting for the batched fleet hot path.
//!
//! The SoA die-scoring pipeline ([`crate::batch`]) runs five phases
//! per sub-batch — die draw, fixed-design lane, adaptive word settle,
//! adaptive cohort lanes, dither settle — and the SIMD work lands
//! unevenly across them. These counters attribute the wall time so a
//! speed-up claim can name the phase it came from, the same way
//! `subvt-device`'s [`subvt_device::tabulate`] metrics attribute the
//! evaluation counts.
//!
//! Like those metrics, the counters are process-global relaxed
//! atomics: pure observation, never part of the determinism contract.
//! Under `--jobs N` the workers' phase times add, so the totals are
//! CPU time, not elapsed time. One `Instant` pair per phase per
//! sub-batch keeps the overhead far below timer resolution.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

static DRAW_NANOS: AtomicU64 = AtomicU64::new(0);
static FIXED_NANOS: AtomicU64 = AtomicU64::new(0);
static SETTLE_WORD_NANOS: AtomicU64 = AtomicU64::new(0);
static ADAPTIVE_LANE_NANOS: AtomicU64 = AtomicU64::new(0);
static DITHER_NANOS: AtomicU64 = AtomicU64::new(0);
static SHARED_DRAW_NANOS: AtomicU64 = AtomicU64::new(0);
static FAULT_WALK_NANOS: AtomicU64 = AtomicU64::new(0);
static SUB_BATCHES: AtomicU64 = AtomicU64::new(0);

/// The phases of the batched scoring pipeline, in execution order.
/// The first five come from both the single-cell and matrix paths;
/// the last two exist only on the matrix path
/// ([`crate::matrix::StudyMatrix`]), which draws the die population
/// once for *all* cells (`SharedDraw`) and then runs each fault
/// cell's cycle-by-cycle walk as a per-cell tail (`FaultWalk`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Monte-Carlo die draw into the SoA lanes.
    Draw,
    /// Fixed-design spec lane at the common commanded word.
    Fixed,
    /// Adaptive compensation walk (lockstep word settle).
    SettleWord,
    /// Per-settled-word adaptive cohort spec lanes.
    AdaptiveLanes,
    /// Sub-LSB dither settle and dithered spec check.
    Dither,
    /// Matrix path: the once-per-chunk die draw (and fault-stream
    /// seed replay) every cell shares.
    SharedDraw,
    /// Matrix path: the per-fault-cell cycle-by-cycle walks.
    FaultWalk,
}

#[inline]
pub(crate) fn record_phase(phase: Phase, nanos: u64) {
    let slot = match phase {
        Phase::Draw => &DRAW_NANOS,
        Phase::Fixed => &FIXED_NANOS,
        Phase::SettleWord => &SETTLE_WORD_NANOS,
        Phase::AdaptiveLanes => &ADAPTIVE_LANE_NANOS,
        Phase::Dither => &DITHER_NANOS,
        Phase::SharedDraw => &SHARED_DRAW_NANOS,
        Phase::FaultWalk => &FAULT_WALK_NANOS,
    };
    slot.fetch_add(nanos, Ordering::Relaxed);
}

#[inline]
pub(crate) fn record_sub_batch() {
    SUB_BATCHES.fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time copy of the phase timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseProfile {
    /// Nanoseconds in the die-draw phase.
    pub draw_nanos: u64,
    /// Nanoseconds in the fixed-design lane.
    pub fixed_nanos: u64,
    /// Nanoseconds in the adaptive word-settle walk.
    pub settle_word_nanos: u64,
    /// Nanoseconds in the adaptive cohort lanes.
    pub adaptive_lane_nanos: u64,
    /// Nanoseconds in the dither settle + dithered spec check.
    pub dither_nanos: u64,
    /// Nanoseconds in the matrix path's shared die draw (all cells).
    pub shared_draw_nanos: u64,
    /// Nanoseconds in the matrix path's per-fault-cell walks.
    pub fault_walk_nanos: u64,
    /// Sub-batches scored.
    pub sub_batches: u64,
}

impl PhaseProfile {
    /// Reads the current timer values.
    pub fn snapshot() -> PhaseProfile {
        PhaseProfile {
            draw_nanos: DRAW_NANOS.load(Ordering::Relaxed),
            fixed_nanos: FIXED_NANOS.load(Ordering::Relaxed),
            settle_word_nanos: SETTLE_WORD_NANOS.load(Ordering::Relaxed),
            adaptive_lane_nanos: ADAPTIVE_LANE_NANOS.load(Ordering::Relaxed),
            dither_nanos: DITHER_NANOS.load(Ordering::Relaxed),
            shared_draw_nanos: SHARED_DRAW_NANOS.load(Ordering::Relaxed),
            fault_walk_nanos: FAULT_WALK_NANOS.load(Ordering::Relaxed),
            sub_batches: SUB_BATCHES.load(Ordering::Relaxed),
        }
    }

    /// Resets every timer to zero.
    pub fn reset() {
        DRAW_NANOS.store(0, Ordering::Relaxed);
        FIXED_NANOS.store(0, Ordering::Relaxed);
        SETTLE_WORD_NANOS.store(0, Ordering::Relaxed);
        ADAPTIVE_LANE_NANOS.store(0, Ordering::Relaxed);
        DITHER_NANOS.store(0, Ordering::Relaxed);
        SHARED_DRAW_NANOS.store(0, Ordering::Relaxed);
        FAULT_WALK_NANOS.store(0, Ordering::Relaxed);
        SUB_BATCHES.store(0, Ordering::Relaxed);
    }

    /// Timer-wise difference against an earlier snapshot. Saturates at
    /// zero so a concurrent `reset` cannot produce a bogus delta.
    pub fn since(&self, earlier: &PhaseProfile) -> PhaseProfile {
        PhaseProfile {
            draw_nanos: self.draw_nanos.saturating_sub(earlier.draw_nanos),
            fixed_nanos: self.fixed_nanos.saturating_sub(earlier.fixed_nanos),
            settle_word_nanos: self
                .settle_word_nanos
                .saturating_sub(earlier.settle_word_nanos),
            adaptive_lane_nanos: self
                .adaptive_lane_nanos
                .saturating_sub(earlier.adaptive_lane_nanos),
            dither_nanos: self.dither_nanos.saturating_sub(earlier.dither_nanos),
            shared_draw_nanos: self
                .shared_draw_nanos
                .saturating_sub(earlier.shared_draw_nanos),
            fault_walk_nanos: self
                .fault_walk_nanos
                .saturating_sub(earlier.fault_walk_nanos),
            sub_batches: self.sub_batches.saturating_sub(earlier.sub_batches),
        }
    }

    /// Total accounted time across all phases, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.draw_nanos
            + self.fixed_nanos
            + self.settle_word_nanos
            + self.adaptive_lane_nanos
            + self.dither_nanos
            + self.shared_draw_nanos
            + self.fault_walk_nanos
    }

    /// `(label, nanos)` per phase in execution order — the iteration
    /// shape report printers want. The matrix-only phases come last.
    pub fn phases(&self) -> [(&'static str, u64); 7] {
        [
            ("draw", self.draw_nanos),
            ("fixed lane", self.fixed_nanos),
            ("word settle", self.settle_word_nanos),
            ("adaptive lanes", self.adaptive_lane_nanos),
            ("dither settle", self.dither_nanos),
            ("shared draw", self.shared_draw_nanos),
            ("fault walk", self.fault_walk_nanos),
        ]
    }

    /// The profile as one machine-readable JSON object — the payload
    /// `--profile-phases-json` writes. Keys are the [`phases`] labels
    /// in snake_case plus `sub_batches` and `total_nanos`; values are
    /// nanosecond counters.
    ///
    /// [`phases`]: PhaseProfile::phases
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"subvt-phase-profile-v1\"");
        for (label, nanos) in self.phases() {
            let key: String = label
                .chars()
                .map(|c| if c == ' ' { '_' } else { c })
                .collect();
            s.push_str(&format!(",\n  \"{key}_nanos\": {nanos}"));
        }
        s.push_str(&format!(",\n  \"sub_batches\": {}", self.sub_batches));
        s.push_str(&format!(
            ",\n  \"total_nanos\": {}\n}}\n",
            self.total_nanos()
        ));
        s
    }
}

impl fmt::Display for PhaseProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_nanos();
        write!(f, "phase profile ({} sub-batches):", self.sub_batches)?;
        for (label, nanos) in self.phases() {
            let pct = if total > 0 {
                100.0 * nanos as f64 / total as f64
            } else {
                0.0
            };
            write!(
                f,
                "\n  {label:<15} {:>9.1} ms  {pct:>5.1}%",
                nanos as f64 / 1e6
            )?;
        }
        write!(f, "\n  {:<15} {:>9.1} ms", "total", total as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_timers_accumulate_and_diff() {
        let before = PhaseProfile::snapshot();
        record_phase(Phase::Draw, 100);
        record_phase(Phase::Fixed, 200);
        record_phase(Phase::SettleWord, 300);
        record_phase(Phase::AdaptiveLanes, 400);
        record_phase(Phase::Dither, 500);
        record_sub_batch();
        let delta = PhaseProfile::snapshot().since(&before);
        // Other tests in the process may run studies concurrently, so
        // assert at-least deltas.
        assert!(delta.draw_nanos >= 100);
        assert!(delta.fixed_nanos >= 200);
        assert!(delta.settle_word_nanos >= 300);
        assert!(delta.adaptive_lane_nanos >= 400);
        assert!(delta.dither_nanos >= 500);
        assert!(delta.sub_batches >= 1);
        assert!(delta.total_nanos() >= 1500);
    }

    #[test]
    fn display_names_every_phase() {
        let s = format!("{}", PhaseProfile::snapshot());
        for (label, _) in PhaseProfile::snapshot().phases() {
            assert!(s.contains(label), "{s}");
        }
        assert!(s.contains("total"), "{s}");
    }

    #[test]
    fn json_names_every_phase_in_snake_case() {
        let json = PhaseProfile::snapshot().to_json();
        for key in [
            "\"schema\": \"subvt-phase-profile-v1\"",
            "\"draw_nanos\":",
            "\"fixed_lane_nanos\":",
            "\"word_settle_nanos\":",
            "\"adaptive_lanes_nanos\":",
            "\"dither_settle_nanos\":",
            "\"shared_draw_nanos\":",
            "\"fault_walk_nanos\":",
            "\"sub_batches\":",
            "\"total_nanos\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn running_a_study_populates_the_profile() {
        use crate::study::StudyConfig;
        let before = PhaseProfile::snapshot();
        let _ = StudyConfig::new(64, 7).run_summary();
        let delta = PhaseProfile::snapshot().since(&before);
        assert!(delta.sub_batches >= 1, "no sub-batches recorded");
        assert!(delta.total_nanos() > 0, "no phase time recorded");
    }
}
