//! Fault-injection Monte-Carlo: yield, MEP-tracking error and recovery
//! cost under loop-hardware faults, with and without mitigation.
//!
//! [`score_faulted_die`] replays the compensation walk of
//! `StudyContext::score_die` cycle-by-cycle so per-cycle faults from a
//! [`FaultSchedule`] can land on it:
//!
//! * **TDC faults** corrupt the sampled quantizer word before decode;
//! * **DC-DC faults** droop the rail (comparator glitch, missed PWM
//!   edge) or flip a reference-register bit (persistent until
//!   rewritten);
//! * **controller faults** corrupt the LUT word register (persistent
//!   until scrubbed) or misread the FIFO occupancy for one cycle.
//!
//! With `plan.mitigation` on, the graceful-degradation machinery is
//! armed: triple-sample majority vote over the TDC capture (one-shot
//! faults lose the vote; stuck stages don't), the
//! [`SignatureDebounce`] N-of-M gate in front of the walk, an
//! end-of-cycle LUT scrub against the shadow copy, and the
//! [`RailWatchdog`] last-known-good fallback which also rewrites the
//! converter reference register. Every recovery action books energy in
//! the die's recovery line item.
//!
//! Determinism: the fault stream is forked from the die stream *after*
//! die sampling, so a clean die consumes exactly the draws the plain
//! path does — a zero-rate plan is byte-identical to no plan at all,
//! in both mitigation arms, at any worker count.

use subvt_dcdc::converter::ConverterParams;
use subvt_dcdc::disturbance::{comparator_glitch_droop, missed_edge_droop};
use subvt_device::delay::GateMismatch;
use subvt_device::tabulate::{CachedEval, DeviceEval};
use subvt_device::units::{Amps, Joules, Volts};
use subvt_digital::encoder::QuantizerWord;
use subvt_digital::lut::VoltageWord;
use subvt_exec::checkpoint::{CheckpointError, StateReader, StateWriter};
use subvt_exec::Welford;
use subvt_faults::{CtrlFault, DcdcFault, FaultPlan, FaultSchedule};
use subvt_rng::{Rng, StdRng};
use subvt_tdc::sensor::{word_voltage, SenseError};

use crate::compensation::SignatureDebounce;
use crate::watchdog::{RailWatchdog, WatchdogPolicy};
use crate::yield_study::{
    settled_voltage_dithered, settled_word, DieOutcome, StudyContext, SupplySim, YieldSummary,
};

/// System cycles the faulted compensation loop is run for. The clean
/// walk needs at most 8 steps; 24 cycles leave room for debounce holds
/// and watchdog backoff while keeping every fault episode inside the
/// scored window.
const FAULT_CYCLES: u32 = 24;

/// Walk steps the loop may take — the same bound as the plain settling
/// loop, so a clean die ends on the identical word.
const WALK_BUDGET: u32 = 8;

/// Load the controller presents to the converter (see `controller.rs`).
const LOAD_IMAGE: Amps = Amps(2e-6);

/// Energy booked per LUT scrub repair (a 6-bit register rewrite).
pub(crate) fn scrub_cost() -> Joules {
    Joules::from_femtos(0.02)
}

/// Energy booked per watchdog fallback (reference + LUT rewrite plus
/// the re-settle transient).
pub(crate) fn trip_cost() -> Joules {
    Joules::from_femtos(0.5)
}

/// One die's scoring under fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultDieOutcome {
    /// The ordinary yield-study outcome, scored at the word the
    /// faulted loop ended on.
    pub base: DieOutcome,
    /// Distance (LSBs) between the faulted loop's final effective word
    /// and the word the clean loop settles on.
    pub tracking_error_lsb: f64,
    /// Energy spent on recovery actions (scrubs, watchdog fallbacks).
    pub recovery: Joules,
    /// Watchdog fallbacks taken.
    pub watchdog_trips: u32,
    /// Faults the schedule injected over the run.
    pub faults_injected: u64,
}

/// Constant-size aggregate of a fault study.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStudySummary {
    /// The ordinary yield aggregate of the faulted population.
    pub base: YieldSummary,
    /// MEP-tracking error distribution (LSBs).
    pub tracking_error: Welford,
    /// Per-die recovery energy distribution (joules).
    pub recovery_energy: Welford,
    /// Watchdog fallbacks across the population.
    pub watchdog_trips: u64,
    /// Faults injected across the population.
    pub faults_injected: u64,
}

impl FaultStudySummary {
    pub(crate) fn empty() -> FaultStudySummary {
        FaultStudySummary {
            base: YieldSummary::empty(),
            tracking_error: Welford::new(),
            recovery_energy: Welford::new(),
            watchdog_trips: 0,
            faults_injected: 0,
        }
    }

    pub(crate) fn absorb(&mut self, die: &FaultDieOutcome) {
        self.base.absorb(&die.base);
        self.tracking_error.push(die.tracking_error_lsb);
        self.recovery_energy.push(die.recovery.value());
        self.watchdog_trips += u64::from(die.watchdog_trips);
        self.faults_injected += die.faults_injected;
    }

    pub(crate) fn merge(&mut self, other: FaultStudySummary) {
        self.base.merge(other.base);
        self.tracking_error.merge(other.tracking_error);
        self.recovery_energy.merge(other.recovery_energy);
        self.watchdog_trips += other.watchdog_trips;
        self.faults_injected += other.faults_injected;
    }

    /// One self-contained checkpoint state blob — the exact bytes a
    /// `--checkpoint` record carries. Equal blobs ⇔ bit-identical
    /// summaries.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        self.base.encode_into(&mut w);
        self.tracking_error.encode_state(&mut w);
        self.recovery_energy.encode_state(&mut w);
        w.put_u64(self.watchdog_trips);
        w.put_u64(self.faults_injected);
        w.into_bytes()
    }

    /// Parses a blob written by [`FaultStudySummary::encode_state`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Decode`] when the blob is truncated, has
    /// trailing bytes, or carries an out-of-range field.
    pub fn decode_state(buf: &[u8]) -> Result<FaultStudySummary, CheckpointError> {
        let mut r = StateReader::new(buf);
        let base = YieldSummary::decode_from(&mut r)?;
        let tracking_error = Welford::decode_state(&mut r)?;
        let recovery_energy = Welford::decode_state(&mut r)?;
        let watchdog_trips = r.get_u64()?;
        let faults_injected = r.get_u64()?;
        r.finish()?;
        Ok(FaultStudySummary {
            base,
            tracking_error,
            recovery_energy,
            watchdog_trips,
            faults_injected,
        })
    }

    /// Dies scored.
    pub fn dies(&self) -> u64 {
        self.base.dies
    }

    /// Adaptive-design yield under injection (0..=1).
    pub fn adaptive_yield(&self) -> f64 {
        self.base.adaptive_yield()
    }

    /// Fixed-design yield under injection (0..=1).
    pub fn fixed_yield(&self) -> f64 {
        self.base.fixed_yield()
    }

    /// Mean MEP-tracking error (LSBs).
    pub fn mean_tracking_error(&self) -> f64 {
        self.tracking_error.mean().unwrap_or(0.0)
    }

    /// Mean per-die recovery energy.
    pub fn mean_recovery_energy(&self) -> Joules {
        Joules(self.recovery_energy.mean().unwrap_or(0.0))
    }
}

/// Decodes a (possibly corrupted) capture against the design band; the
/// band was already validated by the sample, so decode cannot fail —
/// undecodable captures classify as far-slow, like the plain path.
fn decode_dev(ctx: &StudyContext<'_>, sample: QuantizerWord, neighbor: i16) -> i16 {
    ctx.sensor
        .decode(ctx.design_word, sample)
        .unwrap_or(-neighbor)
}

/// Majority vote over the three redundant captures; ties keep the
/// first (the hardware's primary sample).
fn majority(votes: [i16; 3]) -> i16 {
    if votes[1] == votes[2] {
        votes[1]
    } else {
        votes[0]
    }
}

/// One bounded compensation-walk step, mirroring the plain settling
/// loop (`word -= sign(dev)`, clamped to the usable word range).
fn walk_step(word: &mut VoltageWord, dev: i16, budget: &mut u32) {
    if dev == 0 || *budget == 0 {
        return;
    }
    let next = (i16::from(*word) - dev.signum()).clamp(1, 63) as VoltageWord;
    if next != *word {
        *word = next;
        *budget -= 1;
    }
}

/// The clean (fault-free) reference pieces of one die's fault scoring:
/// everything the faulted walk needs that does not depend on the fault
/// stream. The scalar path derives them per die; the matrix path hands
/// in the SoA lane results, which are bit-identical by the batch
/// equivalence contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CleanDie {
    /// The die's global-corner position (σ units).
    pub corner_units: f64,
    /// The die's mean gate mismatch.
    pub mismatch: GateMismatch,
    /// Fixed-design spec check at the common commanded word.
    pub fixed_passes: bool,
    /// The word the clean compensation walk settles on.
    pub clean_word: VoltageWord,
    /// Dithered spec check at the clean sub-LSB settled voltage.
    pub dithered_passes: bool,
}

/// Converter-domain droop figures for a run's supply: a regulated
/// supply answers from its own backend snapshot; the ideal rail keeps
/// the historical paper-default buck disturbances (the injected faults
/// are converter faults even when the scored rail is exact). Pure
/// function of the supply, so the matrix path hoists it to once per
/// cell instead of once per die.
pub(crate) fn fault_droops(ctx: &StudyContext<'_>) -> (Volts, Volts) {
    match ctx.supply {
        SupplySim::Ideal => {
            let params = ConverterParams::default();
            (
                comparator_glitch_droop(&params),
                missed_edge_droop(&params, LOAD_IMAGE),
            )
        }
        SupplySim::Regulated(model) => {
            (model.comparator_glitch_droop(), model.missed_update_droop())
        }
    }
}

/// Scores one die with fault injection: the clean reference pieces
/// (fixed, dithered, clean settled word) plus a cycle-by-cycle faulted
/// compensation walk. Pure function of the context, plan and stream.
pub(crate) fn score_faulted_die(
    ctx: &StudyContext<'_>,
    plan: FaultPlan,
    die_rng: StdRng,
) -> FaultDieOutcome {
    let cached = CachedEval::new(ctx.eval.as_ref());
    score_faulted_die_with(ctx, plan, die_rng, &cached)
}

/// [`score_faulted_die`] through a caller-owned evaluator, so the
/// batched path can share one operating-point memo across a sub-batch
/// of dies. Memoization is pure: sharing cannot change a single bit.
pub(crate) fn score_faulted_die_with(
    ctx: &StudyContext<'_>,
    plan: FaultPlan,
    mut die_rng: StdRng,
    cached: &dyn DeviceEval,
) -> FaultDieOutcome {
    let die = ctx.variation.sample_die(&mut die_rng);
    let mismatch = die.mean_gate();
    // Fork the fault stream only after the die sample: a clean die
    // consumes exactly the draws the plain path does.
    let fault_rng = die_rng.fork("faults");

    // Clean reference pieces, identical to the plain score_die.
    let (fixed_passes, _) = ctx.passes(cached, ctx.fixed_word, mismatch);
    let clean_word = settled_word(cached, &ctx.sensor, ctx.design_word, ctx.env, mismatch);
    let dithered_v =
        settled_voltage_dithered(cached, &ctx.sensor, ctx.design_word, ctx.env, mismatch);
    let (dithered_passes, _) = ctx.passes_dithered(cached, dithered_v, mismatch);

    let clean = CleanDie {
        corner_units: die.corner_units(),
        mismatch,
        fixed_passes,
        clean_word,
        dithered_passes,
    };
    faulted_walk(ctx, plan, fault_rng, cached, fault_droops(ctx), &clean)
}

/// A memoized raw TDC capture (see the capture memo in
/// [`faulted_walk`]): the sensed word, or which sense error the sensor
/// returned — enough to replay the walk's handling of it exactly.
#[derive(Clone, Copy)]
enum Capture {
    Raw(QuantizerWord),
    Unreliable,
    BandUnusable,
}

/// The cycle-by-cycle faulted compensation walk over precomputed clean
/// reference pieces — the fault-stream-dependent tail of
/// [`score_faulted_die_with`], with identical arithmetic. `droops` must
/// be [`fault_droops`] of the same context (hoisted by the matrix
/// path).
pub(crate) fn faulted_walk(
    ctx: &StudyContext<'_>,
    plan: FaultPlan,
    fault_rng: StdRng,
    cached: &dyn DeviceEval,
    droops: (Volts, Volts),
    clean: &CleanDie,
) -> FaultDieOutcome {
    let mismatch = clean.mismatch;
    let mut schedule = FaultSchedule::new(plan, fault_rng);
    let neighbor = ctx.sensor.config().neighbor_range;
    let (glitch_droop, missed_droop) = droops;

    let mut word = ctx.design_word; // the LUT word register
    let mut ref_seu: VoltageWord = 0; // persistent reference-register upset
    let mut budget = WALK_BUDGET;
    let mut blind = false; // design band unusable: loop holds (plain-path break)
    let mut recovery = Joules(0.0);
    let mut trips = 0u32;
    let mut injected = 0u64;
    let mut debounce = SignatureDebounce::new(2);
    let mut dog = RailWatchdog::new(WatchdogPolicy::default());
    let mut last_dev: i16 = 0;

    // Raw-capture memo: within one die the capture is a pure function
    // of (effective word, droop) — band, environment and mismatch are
    // fixed — and the walk revisits the same few operating points
    // across its 24 cycles. The sensor clones its delay line and
    // re-evaluates every gate per sample, so replaying a cached
    // capture removes the walk's dominant cost without touching a bit
    // (per-cycle TDC faults are applied downstream of the raw word).
    let mut captures: Vec<((VoltageWord, u64), Capture)> = Vec::with_capacity(4);

    for _ in 0..FAULT_CYCLES {
        let faults = schedule.draw();
        injected += u64::from(faults.count());

        // Controller-domain fault shapes this cycle's commanded word.
        let mut cycle_word = word;
        match faults.ctrl {
            Some(CtrlFault::LutSeu { bit }) => {
                if plan.mitigation {
                    // End-of-cycle scrub repairs the register from the
                    // shadow copy: the corruption lasts one cycle.
                    cycle_word = word ^ (1 << (bit % 6));
                    recovery += scrub_cost();
                } else {
                    word ^= 1 << (bit % 6);
                    cycle_word = word;
                }
            }
            Some(CtrlFault::FifoMisread) => {
                // A misread occupancy commands the word of a much
                // fuller queue for one cycle.
                cycle_word = (i16::from(word) + 4).clamp(1, 63) as VoltageWord;
            }
            None => {}
        }

        // A reference-word SEU persists until the register is
        // rewritten (only the watchdog fallback does).
        if let Some(DcdcFault::ReferenceSeu { bit }) = faults.dcdc {
            ref_seu ^= 1 << (bit % 6);
        }
        let w_eff = cycle_word ^ ref_seu;

        // The rail this cycle: the effective word's voltage minus any
        // transient converter droop.
        let droop = match faults.dcdc {
            Some(DcdcFault::ComparatorGlitch) => glitch_droop,
            Some(DcdcFault::MissedPwmEdge) => missed_droop,
            _ => Volts(0.0),
        };
        let v_rail = Volts((word_voltage(w_eff).volts() - droop.volts()).max(0.0));

        if blind {
            continue;
        }

        // Sense the rail against the design band.
        let sensed: Option<(i16, bool)> = if w_eff == 0 {
            // Rail collapsed to shutdown: the capture is empty and
            // reads as far-slow.
            Some((-neighbor, false))
        } else {
            let key = (w_eff, droop.volts().to_bits());
            let capture = match captures.iter().find(|(k, _)| *k == key) {
                Some(&(_, hit)) => hit,
                None => {
                    let miss = match ctx.sensor.sample_with(
                        cached,
                        ctx.design_word,
                        v_rail,
                        ctx.env,
                        mismatch,
                    ) {
                        Ok(raw) => Capture::Raw(raw),
                        Err(SenseError::BandUnusable { .. }) => Capture::BandUnusable,
                        Err(SenseError::Unreliable(_)) => Capture::Unreliable,
                    };
                    captures.push((key, miss));
                    miss
                }
            };
            match capture {
                Capture::BandUnusable => {
                    blind = true;
                    None
                }
                // An empty capture classifies as far-slow (the plain
                // path's behaviour); there is no word for a TDC fault
                // to corrupt.
                Capture::Unreliable => Some((-neighbor, false)),
                Capture::Raw(raw) => {
                    if plan.mitigation {
                        // Triple-sample majority vote: a one-shot TDC
                        // fault corrupts only the first capture, a
                        // stuck stage corrupts all three.
                        let mut votes = [0i16; 3];
                        for (k, v) in votes.iter_mut().enumerate() {
                            let sample = match faults.tdc {
                                Some(f) if k == 0 || f.is_persistent() => f.apply(raw),
                                _ => raw,
                            };
                            *v = decode_dev(ctx, sample, neighbor);
                        }
                        let dev = majority(votes);
                        let disagree = !(votes[0] == votes[1] && votes[1] == votes[2]);
                        // A sudden jump from a quiet signature is
                        // suspect until it repeats.
                        let jump = (dev - last_dev).abs() >= 2 && last_dev.abs() <= 1;
                        Some((dev, disagree || jump))
                    } else {
                        let sample = faults.tdc.map_or(raw, |f| f.apply(raw));
                        Some((decode_dev(ctx, sample, neighbor), false))
                    }
                }
            }
        };

        if let Some((dev, suspect)) = sensed {
            if plan.mitigation {
                // Watchdog sees every raw deviation with the true
                // register word; a trip falls back to last-known-good
                // and rewrites the upset-prone registers.
                if let Some(good) = dog.observe(word, dev) {
                    word = good;
                    ref_seu = 0;
                    debounce.reset();
                    recovery += trip_cost();
                    trips += 1;
                    last_dev = dev;
                    continue;
                }
                if let Some(confirmed) = debounce.feed(dev, suspect) {
                    walk_step(&mut word, confirmed, &mut budget);
                }
            } else {
                walk_step(&mut word, dev, &mut budget);
            }
            last_dev = dev;
        }
    }

    // Score at the final effective operating point (a collapsed rail
    // scores as the floor word, which cannot meet any rate spec).
    let final_eff = word ^ ref_seu;
    let score_word = final_eff.max(1);
    let (adaptive_passes, adaptive_energy) = ctx.passes(cached, score_word, mismatch);
    let tracking_error_lsb = f64::from((i16::from(final_eff) - i16::from(clean.clean_word)).abs());

    FaultDieOutcome {
        base: DieOutcome {
            corner_units: clean.corner_units,
            fixed_passes: clean.fixed_passes,
            adaptive_passes,
            dithered_passes: clean.dithered_passes,
            adaptive_word: final_eff,
            adaptive_energy,
        },
        tracking_error_lsb,
        recovery,
        watchdog_trips: trips,
        faults_injected: injected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use subvt_exec::ExecConfig;

    #[test]
    fn zero_rate_plan_is_byte_identical_to_no_plan() {
        // The satellite property: arming a zero-rate plan must not
        // perturb a single bit of the study, in either mitigation arm.
        let plain = StudyConfig::new(60, 7).run();
        for mitigation in [true, false] {
            let faulted = StudyConfig::new(60, 7)
                .faults(FaultPlan::uniform(0.0).with_mitigation(mitigation))
                .run();
            assert_eq!(faulted, plain, "mitigation={mitigation}");
        }
    }

    #[test]
    fn fault_study_is_bit_identical_at_any_job_count() {
        let reference = StudyConfig::new(80, 11)
            .faults(FaultPlan::uniform(0.05))
            .exec(ExecConfig::with_jobs(1))
            .run_faults();
        assert_eq!(reference.dies(), 80);
        for jobs in [2usize, 7] {
            let parallel = StudyConfig::new(80, 11)
                .faults(FaultPlan::uniform(0.05))
                .exec(ExecConfig::with_jobs(jobs))
                .run_faults();
            assert_eq!(parallel, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn mitigation_recovers_yield_and_tracking() {
        let run = |mitigation: bool| {
            StudyConfig::new(150, 23)
                .faults(FaultPlan::uniform(0.02).with_mitigation(mitigation))
                .run_faults()
        };
        let clean = StudyConfig::new(150, 23).run_summary();
        let on = run(true);
        let off = run(false);
        let loss_off = clean.adaptive_yield() - off.adaptive_yield();
        let loss_on = clean.adaptive_yield() - on.adaptive_yield();
        assert!(
            loss_off > 0.0,
            "unmitigated injection must cost yield (loss {loss_off:.3})"
        );
        assert!(
            loss_on <= loss_off / 2.0,
            "mitigation must recover at least half the loss: \
             {loss_on:.3} vs {loss_off:.3}"
        );
        assert!(
            on.mean_tracking_error() <= off.mean_tracking_error(),
            "tracking error: {} vs {}",
            on.mean_tracking_error(),
            off.mean_tracking_error()
        );
    }

    #[test]
    fn recovery_energy_is_booked_only_by_mitigation() {
        let on = StudyConfig::new(60, 3)
            .faults(FaultPlan::uniform(0.08))
            .run_faults();
        let off = StudyConfig::new(60, 3)
            .faults(FaultPlan::uniform(0.08).with_mitigation(false))
            .run_faults();
        assert!(on.mean_recovery_energy().value() > 0.0);
        assert_eq!(off.mean_recovery_energy(), Joules(0.0));
        assert!(on.faults_injected > 0);
        assert_eq!(on.faults_injected, off.faults_injected, "same schedule");
    }

    #[test]
    fn injection_scales_with_the_rate() {
        let at = |rate: f64| {
            StudyConfig::new(40, 9)
                .faults(FaultPlan::uniform(rate))
                .run_faults()
                .faults_injected
        };
        let low = at(0.005);
        let high = at(0.2);
        assert!(low < high, "{low} !< {high}");
        assert_eq!(at(0.0), 0);
    }

    #[test]
    fn majority_vote_prefers_the_agreeing_pair() {
        assert_eq!(majority([3, 0, 0]), 0);
        assert_eq!(majority([0, 0, 0]), 0);
        assert_eq!(majority([1, 2, 3]), 1, "three-way tie keeps the primary");
        assert_eq!(majority([2, -1, -1]), -1);
    }

    #[test]
    fn walk_step_respects_clamp_and_budget() {
        let mut word: VoltageWord = 2;
        let mut budget = 2;
        walk_step(&mut word, 3, &mut budget);
        assert_eq!((word, budget), (1, 1));
        walk_step(&mut word, 3, &mut budget); // clamped: no budget spent
        assert_eq!((word, budget), (1, 1));
        walk_step(&mut word, -1, &mut budget);
        assert_eq!((word, budget), (2, 0));
        walk_step(&mut word, -1, &mut budget); // budget exhausted
        assert_eq!((word, budget), (2, 0));
    }
}
