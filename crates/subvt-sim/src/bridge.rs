//! Analog ↔ digital bridge elements.
//!
//! These are the Rust equivalents of the "several A-D and D-A VHDL-AMS
//! models … inserted for communication between the digital and analog
//! blocks of the controller" (paper Sec. IV).

use crate::logic::Logic;

/// A-D bridge: converts an analog node voltage to a logic level with
/// hysteresis (a Schmitt-trigger comparator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdDetector {
    threshold: f64,
    hysteresis: f64,
    state: Logic,
}

impl ThresholdDetector {
    /// Creates a detector switching around `threshold` volts with a
    /// total hysteresis band of `hysteresis` volts.
    ///
    /// # Panics
    ///
    /// Panics if `hysteresis` is negative.
    pub fn new(threshold: f64, hysteresis: f64) -> ThresholdDetector {
        assert!(hysteresis >= 0.0, "hysteresis must be non-negative");
        ThresholdDetector {
            threshold,
            hysteresis,
            state: Logic::Unknown,
        }
    }

    /// Current output level.
    pub fn output(&self) -> Logic {
        self.state
    }

    /// Feeds a new sample; returns the new output level.
    ///
    /// The first known decision resolves `Unknown` using the plain
    /// threshold; afterwards the hysteresis band applies.
    pub fn update(&mut self, voltage: f64) -> Logic {
        let half = 0.5 * self.hysteresis;
        self.state = match self.state {
            Logic::Unknown => Logic::from_bool(voltage > self.threshold),
            Logic::Low => {
                if voltage > self.threshold + half {
                    Logic::High
                } else {
                    Logic::Low
                }
            }
            Logic::High => {
                if voltage < self.threshold - half {
                    Logic::Low
                } else {
                    Logic::High
                }
            }
        };
        self.state
    }

    /// Feeds a sample and reports a rising/falling edge if one occurred.
    pub fn update_edge(&mut self, voltage: f64) -> Option<Edge> {
        let before = self.state;
        let after = self.update(voltage);
        match (before, after) {
            (Logic::Low, Logic::High) => Some(Edge::Rising),
            (Logic::High, Logic::Low) => Some(Edge::Falling),
            _ => None,
        }
    }
}

/// A signal transition direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Low → high transition.
    Rising,
    /// High → low transition.
    Falling,
}

/// D-A bridge: converts a logic level into the conductance state of a
/// power switch (used to drive the DC-DC power-transistor array).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchDriver {
    on_resistance: f64,
    off_resistance: f64,
    active_high: bool,
}

impl SwitchDriver {
    /// Creates a driver with the given on/off resistances.
    ///
    /// `active_high = false` models a pMOS switch (conducts when the
    /// gate signal is low).
    ///
    /// # Panics
    ///
    /// Panics if either resistance is not positive.
    pub fn new(on_resistance: f64, off_resistance: f64, active_high: bool) -> SwitchDriver {
        assert!(
            on_resistance > 0.0 && off_resistance > 0.0,
            "resistances must be positive"
        );
        SwitchDriver {
            on_resistance,
            off_resistance,
            active_high,
        }
    }

    /// Resistance presented for a gate level. `Unknown` drives the
    /// switch off (safe state).
    pub fn resistance(&self, gate: Logic) -> f64 {
        let on = match gate {
            Logic::High => self.active_high,
            Logic::Low => !self.active_high,
            Logic::Unknown => false,
        };
        if on {
            self.on_resistance
        } else {
            self.off_resistance
        }
    }

    /// Conductance (1/R) presented for a gate level.
    pub fn conductance(&self, gate: Logic) -> f64 {
        1.0 / self.resistance(gate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_basic_threshold() {
        let mut d = ThresholdDetector::new(0.6, 0.0);
        assert_eq!(d.output(), Logic::Unknown);
        assert_eq!(d.update(0.7), Logic::High);
        assert_eq!(d.update(0.5), Logic::Low);
    }

    #[test]
    fn hysteresis_suppresses_chatter() {
        let mut d = ThresholdDetector::new(0.6, 0.2);
        d.update(0.0);
        assert_eq!(d.output(), Logic::Low);
        // Within the band: no switching either way.
        assert_eq!(d.update(0.65), Logic::Low);
        assert_eq!(d.update(0.69), Logic::Low);
        // Above the upper bound: switches high.
        assert_eq!(d.update(0.71), Logic::High);
        // Back inside the band: stays high.
        assert_eq!(d.update(0.55), Logic::High);
        // Below the lower bound: switches low.
        assert_eq!(d.update(0.49), Logic::Low);
    }

    #[test]
    fn edges_are_reported_once() {
        let mut d = ThresholdDetector::new(0.5, 0.0);
        assert_eq!(d.update_edge(0.0), None); // unknown -> low: no edge
        assert_eq!(d.update_edge(1.0), Some(Edge::Rising));
        assert_eq!(d.update_edge(1.0), None);
        assert_eq!(d.update_edge(0.0), Some(Edge::Falling));
        assert_eq!(d.update_edge(0.0), None);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn negative_hysteresis_rejected() {
        let _ = ThresholdDetector::new(0.5, -0.1);
    }

    #[test]
    fn nmos_switch_conducts_when_high() {
        let s = SwitchDriver::new(10.0, 1e9, true);
        assert_eq!(s.resistance(Logic::High), 10.0);
        assert_eq!(s.resistance(Logic::Low), 1e9);
        assert_eq!(s.resistance(Logic::Unknown), 1e9);
        assert!((s.conductance(Logic::High) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn pmos_switch_conducts_when_low() {
        let s = SwitchDriver::new(12.0, 1e9, false);
        assert_eq!(s.resistance(Logic::Low), 12.0);
        assert_eq!(s.resistance(Logic::High), 1e9);
        assert_eq!(s.resistance(Logic::Unknown), 1e9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resistance_rejected() {
        let _ = SwitchDriver::new(0.0, 1e9, true);
    }
}
