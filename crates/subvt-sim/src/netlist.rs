//! Gate-level structural netlist with event-driven simulation.
//!
//! This plays the role SPICE played for the paper's structural pieces:
//! ring oscillators, delay-replica chains and sampling flip-flops are
//! built as netlists of delayed gates and simulated event-driven. Gate
//! delays come from the `subvt-device` timing model, so the netlist
//! oscillates/propagates at the speed the technology dictates at the
//! simulated supply voltage.

use std::fmt;

use crate::event::EventQueue;
use crate::logic::Logic;
use crate::time::{SimDuration, SimTime};

/// Handle to a signal (net) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

/// Handle to a gate instance in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GateId(usize);

/// Gate flavours the structural simulator understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateFn {
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Inv,
    /// Two-input NAND.
    Nand2,
    /// Two-input NOR.
    Nor2,
    /// Two-input AND.
    And2,
    /// Two-input OR.
    Or2,
    /// Two-input XOR.
    Xor2,
    /// Positive-edge D flip-flop; inputs are `[d, clk]`.
    Dff,
}

impl GateFn {
    /// Number of input pins.
    pub fn arity(self) -> usize {
        match self {
            GateFn::Buf | GateFn::Inv => 1,
            _ => 2,
        }
    }
}

#[derive(Debug)]
struct Gate {
    func: GateFn,
    inputs: Vec<SignalId>,
    output: SignalId,
    delay: SimDuration,
    /// Previous clock level, for edge-triggered gates.
    last_clk: Logic,
    /// Generation counter implementing inertial delay: only the most
    /// recently scheduled output transition of a gate is applied, so a
    /// pulse narrower than the gate delay is swallowed (as a real gate
    /// would).
    gen: u64,
    /// Value of the most recently scheduled output transition.
    last_scheduled: Logic,
}

#[derive(Debug, Clone, Copy)]
struct Update {
    signal: SignalId,
    value: Logic,
    /// `Some((gate, generation))` for gate-driven updates; `None` for
    /// external drives, which are never cancelled.
    source: Option<(GateId, u64)>,
}

/// A structural netlist plus its event-driven simulation state.
#[derive(Debug)]
pub struct Netlist {
    signals: Vec<Logic>,
    names: Vec<String>,
    gates: Vec<Gate>,
    fanout: Vec<Vec<GateId>>,
    queue: EventQueue<Update>,
    now: SimTime,
    events_processed: u64,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Netlist {
        Netlist {
            signals: Vec::new(),
            names: Vec::new(),
            gates: Vec::new(),
            fanout: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            events_processed: 0,
        }
    }

    /// Adds a named signal initialized to `Unknown`.
    pub fn add_signal(&mut self, name: impl Into<String>) -> SignalId {
        self.signals.push(Logic::Unknown);
        self.names.push(name.into());
        self.fanout.push(Vec::new());
        SignalId(self.signals.len() - 1)
    }

    /// Adds a gate driving `output` from `inputs` after `delay`.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not match the gate arity.
    pub fn add_gate(
        &mut self,
        func: GateFn,
        inputs: &[SignalId],
        output: SignalId,
        delay: SimDuration,
    ) -> GateId {
        assert_eq!(
            inputs.len(),
            func.arity(),
            "{func:?} needs {} inputs, got {}",
            func.arity(),
            inputs.len()
        );
        let id = GateId(self.gates.len());
        for &input in inputs {
            self.fanout[input.0].push(id);
        }
        self.gates.push(Gate {
            func,
            inputs: inputs.to_vec(),
            output,
            delay,
            last_clk: Logic::Unknown,
            gen: 0,
            last_scheduled: Logic::Unknown,
        });
        id
    }

    /// Current value of a signal.
    pub fn signal(&self, id: SignalId) -> Logic {
        self.signals[id.0]
    }

    /// Name of a signal.
    pub fn signal_name(&self, id: SignalId) -> &str {
        &self.names[id.0]
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of signal-update events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedules an external drive of `signal` to `value` at absolute
    /// time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current simulation time.
    pub fn drive(&mut self, signal: SignalId, value: Logic, at: SimTime) {
        assert!(
            at >= self.now,
            "cannot drive in the past ({at} < {})",
            self.now
        );
        self.queue.schedule(
            at,
            Update {
                signal,
                value,
                source: None,
            },
        );
    }

    /// Drives a periodic square wave on `signal`: rising edges every
    /// `period` starting at `start`, high for `high_time`, for `cycles`
    /// periods.
    ///
    /// # Panics
    ///
    /// Panics if `high_time >= period` or `high_time` is zero.
    pub fn drive_clock(
        &mut self,
        signal: SignalId,
        start: SimTime,
        period: SimDuration,
        high_time: SimDuration,
        cycles: u64,
    ) {
        assert!(
            !high_time.is_zero() && high_time < period,
            "high time must be within the period"
        );
        for k in 0..cycles {
            let rise = start + period * k;
            self.drive(signal, Logic::High, rise);
            self.drive(signal, Logic::Low, rise + high_time);
        }
        // Park low after the last cycle.
        self.drive(signal, Logic::Low, start + period * cycles);
    }

    fn evaluate(gate: &mut Gate, signals: &[Logic]) -> Option<Logic> {
        let get = |id: SignalId| signals[id.0];
        match gate.func {
            GateFn::Buf => Some(get(gate.inputs[0])),
            GateFn::Inv => Some(!get(gate.inputs[0])),
            GateFn::Nand2 => Some(get(gate.inputs[0]).nand(get(gate.inputs[1]))),
            GateFn::Nor2 => Some(get(gate.inputs[0]).nor(get(gate.inputs[1]))),
            GateFn::And2 => Some(get(gate.inputs[0]).and(get(gate.inputs[1]))),
            GateFn::Or2 => Some(get(gate.inputs[0]).or(get(gate.inputs[1]))),
            GateFn::Xor2 => {
                let (a, b) = (get(gate.inputs[0]), get(gate.inputs[1]));
                if a.is_known() && b.is_known() {
                    Some(Logic::from_bool(a.is_high() != b.is_high()))
                } else {
                    Some(Logic::Unknown)
                }
            }
            GateFn::Dff => {
                let clk = get(gate.inputs[1]);
                let rising = gate.last_clk.is_low() && clk.is_high();
                gate.last_clk = clk;
                if rising {
                    Some(get(gate.inputs[0]))
                } else {
                    None
                }
            }
        }
    }

    /// Runs the simulation until the event queue drains or `until` is
    /// reached, whichever comes first. Returns the number of events
    /// processed by this call.
    ///
    /// Zero-delay combinational loops are broken by the event budget:
    /// an assertion fires if a single call processes more than
    /// `max_events`.
    pub fn run_until(&mut self, until: SimTime, max_events: u64) -> u64 {
        let mut processed = 0u64;
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (t, update) = self.queue.pop().expect("peeked event vanished");
            self.now = t;
            processed += 1;
            assert!(
                processed <= max_events,
                "event budget {max_events} exhausted at {t} — oscillation too fast or zero-delay loop?"
            );
            // Inertial delay: a gate-driven update is only applied if it
            // is still the gate's most recently scheduled transition.
            if let Some((GateId(g), gen)) = update.source {
                if self.gates[g].gen != gen {
                    continue;
                }
            }
            let changed = self.signals[update.signal.0] != update.value;
            self.signals[update.signal.0] = update.value;
            // Edge-triggered gates must see every clock event, value
            // change or not; combinational gates only care on change.
            for &gate_id in &self.fanout[update.signal.0].clone() {
                let gate = &mut self.gates[gate_id.0];
                let is_seq = gate.func == GateFn::Dff;
                if !changed && !is_seq {
                    continue;
                }
                if let Some(v) = Self::evaluate(gate, &self.signals) {
                    let gate = &mut self.gates[gate_id.0];
                    if v == gate.last_scheduled && !is_seq {
                        continue;
                    }
                    gate.gen += 1;
                    gate.last_scheduled = v;
                    let at = t + gate.delay;
                    let out = gate.output;
                    let gen = gate.gen;
                    self.queue.schedule(
                        at,
                        Update {
                            signal: out,
                            value: v,
                            source: Some((gate_id, gen)),
                        },
                    );
                }
            }
        }
        if self.now < until && self.queue.is_empty() {
            self.now = until;
        }
        self.events_processed += processed;
        processed
    }
}

impl Default for Netlist {
    fn default() -> Self {
        Netlist::new()
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist: {} signals, {} gates, t = {}",
            self.signals.len(),
            self.gates.len(),
            self.now
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }

    fn at(n: u64) -> SimTime {
        SimTime::ZERO + ns(n)
    }

    #[test]
    fn inverter_chain_propagates_with_delay() {
        let mut nl = Netlist::new();
        let a = nl.add_signal("a");
        let b = nl.add_signal("b");
        let c = nl.add_signal("c");
        nl.add_gate(GateFn::Inv, &[a], b, ns(1));
        nl.add_gate(GateFn::Inv, &[b], c, ns(1));
        nl.drive(a, Logic::Low, at(0));
        nl.run_until(at(10), 1000);
        assert_eq!(nl.signal(b), Logic::High);
        assert_eq!(nl.signal(c), Logic::Low);
        nl.drive(a, Logic::High, at(10));
        nl.run_until(at(11), 1000);
        assert_eq!(nl.signal(b), Logic::Low);
        // c updates one more gate delay later.
        assert_eq!(nl.signal(c), Logic::Low);
        nl.run_until(at(12), 1000);
        assert_eq!(nl.signal(c), Logic::High);
    }

    #[test]
    fn nand_ring_oscillator_period_is_two_n_delays() {
        // 3-stage NAND ring with enable tied high: period = 2·3·t_d.
        let mut nl = Netlist::new();
        let enable = nl.add_signal("enable");
        let nodes: Vec<SignalId> = (0..3).map(|i| nl.add_signal(format!("n{i}"))).collect();
        for i in 0..3 {
            nl.add_gate(
                GateFn::Nand2,
                &[nodes[i], enable],
                nodes[(i + 1) % 3],
                ns(2),
            );
        }
        // Initialize to a single circulating edge: with the enable
        // high, (L, H, H) is the unique inconsistent-at-one-gate state.
        nl.drive(nodes[0], Logic::Low, at(0));
        nl.drive(nodes[1], Logic::High, at(0));
        nl.drive(nodes[2], Logic::High, at(0));
        nl.drive(enable, Logic::High, at(0));
        // Observe node 0 transitions over a long window.
        let mut transitions = Vec::new();
        let mut last = Logic::Unknown;
        for step in 1..=200 {
            nl.run_until(at(step), 100_000);
            let v = nl.signal(nodes[0]);
            if v != last {
                transitions.push(step);
                last = v;
            }
        }
        // Steady oscillation: same-value period = 12 ns (2·3·2 ns).
        assert!(transitions.len() > 10, "ring did not oscillate");
        let periods: Vec<u64> = transitions
            .windows(2)
            .map(|w| w[1] - w[0])
            .skip(2)
            .collect();
        for p in &periods {
            assert_eq!(*p, 6, "half-period should be 3 gate delays: {periods:?}");
        }
    }

    #[test]
    fn dff_samples_on_rising_edge_only() {
        let mut nl = Netlist::new();
        let d = nl.add_signal("d");
        let clk = nl.add_signal("clk");
        let q = nl.add_signal("q");
        nl.add_gate(GateFn::Dff, &[d, clk], q, ns(1));
        nl.drive(d, Logic::High, at(0));
        nl.drive(clk, Logic::Low, at(0));
        nl.run_until(at(1), 1000);
        assert_eq!(nl.signal(q), Logic::Unknown, "no edge yet");
        nl.drive(clk, Logic::High, at(2));
        nl.run_until(at(4), 1000);
        assert_eq!(nl.signal(q), Logic::High);
        // Data change without an edge must not propagate.
        nl.drive(d, Logic::Low, at(5));
        nl.run_until(at(7), 1000);
        assert_eq!(nl.signal(q), Logic::High);
        // Falling edge: still no change.
        nl.drive(clk, Logic::Low, at(8));
        nl.run_until(at(9), 1000);
        assert_eq!(nl.signal(q), Logic::High);
        // Next rising edge captures the new data.
        nl.drive(clk, Logic::High, at(10));
        nl.run_until(at(12), 1000);
        assert_eq!(nl.signal(q), Logic::Low);
    }

    #[test]
    fn clock_driver_generates_square_wave() {
        let mut nl = Netlist::new();
        let clk = nl.add_signal("clk");
        nl.drive_clock(clk, at(0), ns(14), ns(7), 3);
        nl.run_until(at(3), 1000);
        assert_eq!(nl.signal(clk), Logic::High);
        nl.run_until(at(8), 1000);
        assert_eq!(nl.signal(clk), Logic::Low);
        nl.run_until(at(15), 1000);
        assert_eq!(nl.signal(clk), Logic::High);
    }

    #[test]
    fn xor_detects_difference() {
        let mut nl = Netlist::new();
        let a = nl.add_signal("a");
        let b = nl.add_signal("b");
        let y = nl.add_signal("y");
        nl.add_gate(GateFn::Xor2, &[a, b], y, ns(1));
        nl.drive(a, Logic::High, at(0));
        nl.drive(b, Logic::Low, at(0));
        nl.run_until(at(2), 100);
        assert_eq!(nl.signal(y), Logic::High);
        nl.drive(b, Logic::High, at(3));
        nl.run_until(at(5), 100);
        assert_eq!(nl.signal(y), Logic::Low);
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn zero_delay_loop_trips_budget() {
        // A self-inverting node has no stable point: without a delay it
        // re-schedules forever within one timestamp.
        let mut nl = Netlist::new();
        let a = nl.add_signal("a");
        nl.add_gate(GateFn::Inv, &[a], a, SimDuration::ZERO);
        nl.drive(a, Logic::Low, at(0));
        nl.run_until(at(1), 1000);
    }

    #[test]
    fn inertial_delay_swallows_narrow_pulse() {
        // A 1 ns pulse into a 3 ns gate must not reach the output.
        let mut nl = Netlist::new();
        let a = nl.add_signal("a");
        let y = nl.add_signal("y");
        nl.add_gate(GateFn::Buf, &[a], y, ns(3));
        nl.drive(a, Logic::Low, at(0));
        nl.run_until(at(5), 100);
        assert_eq!(nl.signal(y), Logic::Low);
        nl.drive(a, Logic::High, at(10));
        nl.drive(a, Logic::Low, at(11));
        nl.run_until(at(20), 100);
        assert_eq!(nl.signal(y), Logic::Low, "narrow pulse leaked through");
        // A wide pulse does pass.
        nl.drive(a, Logic::High, at(30));
        nl.drive(a, Logic::Low, at(40));
        nl.run_until(at(35), 100);
        assert_eq!(nl.signal(y), Logic::High);
        nl.run_until(at(50), 100);
        assert_eq!(nl.signal(y), Logic::Low);
    }

    #[test]
    #[should_panic(expected = "cannot drive in the past")]
    fn driving_in_the_past_panics() {
        let mut nl = Netlist::new();
        let a = nl.add_signal("a");
        nl.drive(a, Logic::High, at(5));
        nl.run_until(at(5), 100);
        nl.drive(a, Logic::Low, at(1));
    }

    #[test]
    #[should_panic(expected = "needs 2 inputs")]
    fn arity_mismatch_panics() {
        let mut nl = Netlist::new();
        let a = nl.add_signal("a");
        let y = nl.add_signal("y");
        nl.add_gate(GateFn::Nand2, &[a], y, ns(1));
    }

    #[test]
    fn display_and_counters() {
        let mut nl = Netlist::new();
        let a = nl.add_signal("a");
        let y = nl.add_signal("y");
        nl.add_gate(GateFn::Buf, &[a], y, ns(1));
        nl.drive(a, Logic::High, at(0));
        nl.run_until(at(5), 100);
        assert!(nl.events_processed() >= 2);
        assert_eq!(nl.signal_name(a), "a");
        let s = format!("{nl}");
        assert!(s.contains("2 signals") && s.contains("1 gates"), "{s}");
    }
}
