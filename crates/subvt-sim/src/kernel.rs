//! Mixed-mode co-simulation driver.
//!
//! Mirrors the paper's validation setup: the digital side advances in
//! clock ticks while the analog side (an [`OdeSystem`]) is integrated
//! in fixed sub-steps between ticks. At every tick a user callback
//! plays the role of the VHDL digital blocks — it reads the analog
//! state and mutates the system (e.g. flips the PWM switches).

use crate::analog::{integrate_span, IntegrationMethod, OdeSystem};
use crate::time::{SimDuration, SimTime};

/// What the per-tick digital callback wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TickOutcome {
    /// Keep simulating.
    #[default]
    Continue,
    /// Stop after this tick.
    Stop,
}

/// Statistics of one co-simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoSimStats {
    /// Number of digital ticks executed.
    pub ticks: u64,
    /// Number of analog integration sub-steps executed.
    pub analog_steps: u64,
    /// Final simulation time.
    pub end_time: SimTime,
}

/// Configuration of a co-simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoSimConfig {
    /// Digital clock period (one callback per period).
    pub clock_period: SimDuration,
    /// Analog integration sub-steps per clock period.
    pub substeps: u32,
    /// Integration scheme for the analog side.
    pub method: IntegrationMethod,
    /// Hard stop time.
    pub stop_at: SimTime,
}

impl CoSimConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the clock period is zero or `substeps` is zero.
    fn validate(&self) {
        assert!(
            !self.clock_period.is_zero(),
            "clock period must be positive"
        );
        assert!(self.substeps > 0, "need at least one analog sub-step");
    }
}

/// Runs a mixed-mode co-simulation.
///
/// Starting at time zero, the callback `on_tick(tick_index, time, y,
/// system)` fires once per clock period *before* the analog span of
/// that period is integrated, so switch settings chosen in tick `k`
/// shape the analog evolution during period `k`.
///
/// Returns the final state and run statistics.
///
/// # Panics
///
/// Panics on invalid configuration or if `y0.len() != system.dim()`.
///
/// ```
/// use subvt_sim::analog::{IntegrationMethod, OdeSystem};
/// use subvt_sim::kernel::{run_cosim, CoSimConfig, TickOutcome};
/// use subvt_sim::time::{SimDuration, SimTime};
///
/// /// RC discharge toward a digitally-selected target.
/// struct Rc { target: f64 }
/// impl OdeSystem for Rc {
///     fn dim(&self) -> usize { 1 }
///     fn derivatives(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
///         dydt[0] = (self.target - y[0]) / 1e-6; // τ = 1 µs
///     }
/// }
///
/// let mut rc = Rc { target: 1.0 };
/// let config = CoSimConfig {
///     clock_period: SimDuration::from_nanos(100),
///     substeps: 10,
///     method: IntegrationMethod::Rk4,
///     stop_at: SimTime::ZERO + SimDuration::from_micros(10),
/// };
/// let (y, stats) = run_cosim(&mut rc, &[0.0], config, |_k, _t, _y, _sys| TickOutcome::Continue);
/// assert!((y[0] - 1.0).abs() < 1e-3);
/// assert_eq!(stats.ticks, 100);
/// ```
pub fn run_cosim<S, F>(
    system: &mut S,
    y0: &[f64],
    config: CoSimConfig,
    mut on_tick: F,
) -> (Vec<f64>, CoSimStats)
where
    S: OdeSystem,
    F: FnMut(u64, SimTime, &mut [f64], &mut S) -> TickOutcome,
{
    config.validate();
    assert_eq!(y0.len(), system.dim(), "initial state dimension mismatch");
    let mut y = y0.to_vec();
    let mut now = SimTime::ZERO;
    let mut stats = CoSimStats::default();
    let dt = config.clock_period.as_seconds();

    let mut tick = 0u64;
    while now < config.stop_at {
        let outcome = on_tick(tick, now, &mut y, system);
        stats.ticks += 1;
        if outcome == TickOutcome::Stop {
            break;
        }
        integrate_span(
            system,
            config.method,
            now.as_seconds(),
            &mut y,
            dt,
            config.substeps as usize,
        );
        stats.analog_steps += u64::from(config.substeps);
        now += config.clock_period;
        tick += 1;
    }
    stats.end_time = now;
    (y, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Integrator {
        rate: f64,
    }
    impl OdeSystem for Integrator {
        fn dim(&self) -> usize {
            1
        }
        fn derivatives(&self, _t: f64, _y: &[f64], dydt: &mut [f64]) {
            dydt[0] = self.rate;
        }
    }

    fn config(stop_us: u64) -> CoSimConfig {
        CoSimConfig {
            clock_period: SimDuration::from_nanos(100),
            substeps: 4,
            method: IntegrationMethod::Rk4,
            stop_at: SimTime::ZERO + SimDuration::from_micros(stop_us),
        }
    }

    #[test]
    fn ticks_and_time_advance_together() {
        let mut sys = Integrator { rate: 1.0 };
        let (y, stats) = run_cosim(&mut sys, &[0.0], config(1), |_, _, _, _| {
            TickOutcome::Continue
        });
        assert_eq!(stats.ticks, 10);
        assert_eq!(stats.analog_steps, 40);
        assert!((y[0] - 1e-6).abs() < 1e-12, "integrated {}", y[0]);
        assert_eq!(stats.end_time, SimTime::ZERO + SimDuration::from_micros(1));
    }

    #[test]
    fn callback_can_reconfigure_the_system() {
        // Digital control flips the slope sign halfway.
        let mut sys = Integrator { rate: 1.0 };
        let (y, _) = run_cosim(&mut sys, &[0.0], config(1), |k, _, _, sys| {
            if k == 5 {
                sys.rate = -1.0;
            }
            TickOutcome::Continue
        });
        assert!(y[0].abs() < 1e-12, "net integral {}", y[0]);
    }

    #[test]
    fn early_stop() {
        let mut sys = Integrator { rate: 1.0 };
        let (_, stats) = run_cosim(&mut sys, &[0.0], config(1), |k, _, _, _| {
            if k >= 3 {
                TickOutcome::Stop
            } else {
                TickOutcome::Continue
            }
        });
        assert_eq!(stats.ticks, 4); // ticks 0,1,2 continue; tick 3 stops
    }

    #[test]
    fn callback_sees_monotone_time() {
        let mut sys = Integrator { rate: 0.0 };
        let mut last = None;
        run_cosim(&mut sys, &[0.0], config(1), |_, t, _, _| {
            if let Some(prev) = last {
                assert!(t > prev);
            }
            last = Some(t);
            TickOutcome::Continue
        });
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn initial_state_must_match_dim() {
        let mut sys = Integrator { rate: 0.0 };
        let _ = run_cosim(&mut sys, &[0.0, 1.0], config(1), |_, _, _, _| {
            TickOutcome::Continue
        });
    }
}
