//! Waveform recording and analysis.
//!
//! Captures analog waveforms (like Fig. 6's `V_OUT` trace) and digital
//! waveforms during simulation, computes settling metrics, and dumps
//! CSV for external plotting.

use std::fmt;
use std::io::{self, Write};

use crate::logic::Logic;
use crate::time::{SimDuration, SimTime};

/// A sampled analog waveform.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalogTrace {
    name: String,
    samples: Vec<(SimTime, f64)>,
}

impl AnalogTrace {
    /// Creates an empty named trace.
    pub fn new(name: impl Into<String>) -> AnalogTrace {
        AnalogTrace {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// Trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last recorded sample.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(time >= last, "trace samples must be time-ordered");
        }
        self.samples.push((time, value));
    }

    /// All samples, time-ordered.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Last sampled value.
    pub fn last_value(&self) -> Option<f64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// Minimum and maximum values over a time window (inclusive).
    pub fn extent(&self, from: SimTime, to: SimTime) -> Option<(f64, f64)> {
        let mut it = self
            .samples
            .iter()
            .filter(|&&(t, _)| t >= from && t <= to)
            .map(|&(_, v)| v);
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Mean value over a time window (sample mean; assumes roughly
    /// uniform sampling).
    pub fn mean(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|&&(t, _)| t >= from && t <= to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// First time after `from` at which the trace enters and stays
    /// within `±tolerance` of `target` until the end of the trace.
    pub fn settling_time(&self, from: SimTime, target: f64, tolerance: f64) -> Option<SimTime> {
        self.settling_time_in(from, SimTime::MAX, target, tolerance)
    }

    /// First time in `[from, to]` at which the trace enters and stays
    /// within `±tolerance` of `target` until `to`.
    pub fn settling_time_in(
        &self,
        from: SimTime,
        to: SimTime,
        target: f64,
        tolerance: f64,
    ) -> Option<SimTime> {
        let mut candidate: Option<SimTime> = None;
        for &(t, v) in &self.samples {
            if t < from {
                continue;
            }
            if t > to {
                break;
            }
            if (v - target).abs() <= tolerance {
                candidate.get_or_insert(t);
            } else {
                candidate = None;
            }
        }
        candidate
    }

    /// Peak-to-peak ripple over a window.
    pub fn ripple(&self, from: SimTime, to: SimTime) -> Option<f64> {
        self.extent(from, to).map(|(lo, hi)| hi - lo)
    }
}

/// A recorded digital waveform.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DigitalTrace {
    name: String,
    transitions: Vec<(SimTime, Logic)>,
}

impl DigitalTrace {
    /// Creates an empty named trace.
    pub fn new(name: impl Into<String>) -> DigitalTrace {
        DigitalTrace {
            name: name.into(),
            transitions: Vec::new(),
        }
    }

    /// Trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records a value; consecutive identical values are coalesced.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last recorded transition.
    pub fn push(&mut self, time: SimTime, value: Logic) {
        if let Some(&(last_t, last_v)) = self.transitions.last() {
            assert!(time >= last_t, "trace samples must be time-ordered");
            if last_v == value {
                return;
            }
        }
        self.transitions.push((time, value));
    }

    /// Value at a given time (value of the latest transition ≤ `time`).
    pub fn value_at(&self, time: SimTime) -> Logic {
        match self
            .transitions
            .partition_point(|&(t, _)| t <= time)
            .checked_sub(1)
        {
            Some(i) => self.transitions[i].1,
            None => Logic::Unknown,
        }
    }

    /// All transitions.
    pub fn transitions(&self) -> &[(SimTime, Logic)] {
        &self.transitions
    }

    /// Number of rising edges in a window.
    pub fn rising_edges(&self, from: SimTime, to: SimTime) -> usize {
        self.transitions
            .windows(2)
            .filter(|w| {
                let (t, v) = w[1];
                t >= from && t <= to && v.is_high() && w[0].1.is_low()
            })
            .count()
    }

    /// Fraction of the window spent high (duty cycle estimate).
    pub fn duty_cycle(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let mut high = SimDuration::ZERO;
        let mut cursor = from;
        let mut level = self.value_at(from);
        for &(t, v) in &self.transitions {
            if t <= from {
                continue;
            }
            let t_clamped = t.min(to);
            if level.is_high() {
                high += t_clamped.since(cursor);
            }
            cursor = t_clamped;
            level = v;
            if t >= to {
                break;
            }
        }
        if cursor < to && level.is_high() {
            high += to.since(cursor);
        }
        high.as_seconds() / to.since(from).as_seconds()
    }
}

/// A set of traces that can be dumped as one CSV table.
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    analog: Vec<AnalogTrace>,
}

impl TraceSet {
    /// Creates an empty trace set.
    pub fn new() -> TraceSet {
        TraceSet::default()
    }

    /// Adds a trace and returns its index.
    pub fn add(&mut self, trace: AnalogTrace) -> usize {
        self.analog.push(trace);
        self.analog.len() - 1
    }

    /// Access a trace by index.
    pub fn trace(&self, index: usize) -> Option<&AnalogTrace> {
        self.analog.get(index)
    }

    /// Mutable access to a trace by index.
    pub fn trace_mut(&mut self, index: usize) -> Option<&mut AnalogTrace> {
        self.analog.get_mut(index)
    }

    /// Writes all traces as long-format CSV (`trace,time_s,value`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "trace,time_s,value")?;
        for trace in &self.analog {
            for &(t, v) in trace.samples() {
                writeln!(w, "{},{:.12e},{:.9e}", trace.name(), t.as_seconds(), v)?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for TraceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} traces", self.analog.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    #[test]
    fn analog_trace_stats() {
        let mut tr = AnalogTrace::new("vout");
        for i in 0..10 {
            tr.push(t(i), i as f64 * 0.1);
        }
        assert_eq!(tr.len(), 10);
        assert_eq!(tr.last_value(), Some(0.9));
        assert_eq!(tr.extent(t(2), t(5)), Some((0.2, 0.5)));
        assert!((tr.mean(t(0), t(9)).unwrap() - 0.45).abs() < 1e-12);
        assert!((tr.ripple(t(0), t(9)).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn settling_detection_requires_staying_in_band() {
        let mut tr = AnalogTrace::new("v");
        // Overshoots, re-enters, then stays.
        let vals = [0.0, 0.3, 0.45, 0.6, 0.52, 0.46, 0.5, 0.5, 0.5];
        for (i, v) in vals.iter().enumerate() {
            tr.push(t(i as u64), *v);
        }
        // Band 0.5±0.05: enters at i=2 (0.45) but leaves at i=3 (0.6),
        // re-enters for good at i=4? 0.52 in band, 0.46 in band, ...
        let st = tr.settling_time(t(0), 0.5, 0.05).unwrap();
        assert_eq!(st, t(4));
        assert_eq!(tr.settling_time(t(0), 2.0, 0.05), None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_sample_panics() {
        let mut tr = AnalogTrace::new("v");
        tr.push(t(5), 1.0);
        tr.push(t(4), 1.0);
    }

    #[test]
    fn digital_trace_coalesces_and_queries() {
        let mut tr = DigitalTrace::new("clk");
        tr.push(t(0), Logic::Low);
        tr.push(t(1), Logic::Low); // coalesced
        tr.push(t(2), Logic::High);
        tr.push(t(4), Logic::Low);
        assert_eq!(tr.transitions().len(), 3);
        assert_eq!(tr.value_at(t(0)), Logic::Low);
        assert_eq!(tr.value_at(t(3)), Logic::High);
        assert_eq!(tr.value_at(t(5)), Logic::Low);
        assert_eq!(tr.value_at(SimTime::ZERO), Logic::Low);
    }

    #[test]
    fn rising_edge_count() {
        let mut tr = DigitalTrace::new("clk");
        for k in 0..5u64 {
            tr.push(t(10 * k), Logic::High);
            tr.push(t(10 * k + 5), Logic::Low);
        }
        assert_eq!(tr.rising_edges(t(1), t(50)), 4);
    }

    #[test]
    fn duty_cycle_of_square_wave() {
        let mut tr = DigitalTrace::new("pwm");
        for k in 0..10u64 {
            tr.push(t(10 * k), Logic::High);
            tr.push(t(10 * k + 3), Logic::Low);
        }
        let d = tr.duty_cycle(t(0), t(100));
        assert!((d - 0.3).abs() < 0.01, "duty {d}");
    }

    #[test]
    fn csv_dump_contains_all_rows() {
        let mut set = TraceSet::new();
        let mut a = AnalogTrace::new("a");
        a.push(t(0), 1.0);
        a.push(t(1), 2.0);
        let mut b = AnalogTrace::new("b");
        b.push(t(0), 3.0);
        set.add(a);
        set.add(b);
        let mut buf = Vec::new();
        set.write_csv(&mut buf).expect("write to vec");
        let s = String::from_utf8(buf).expect("utf8");
        assert_eq!(s.lines().count(), 4);
        assert!(s.starts_with("trace,time_s,value"));
        assert!(s.contains("\nb,"));
        assert_eq!(format!("{set}"), "2 traces");
    }
}
