//! Time-ordered event queue.
//!
//! A thin wrapper around `BinaryHeap` that delivers events in
//! `(time, sequence)` order, so same-time events are processed in the
//! order they were scheduled — the determinism guarantee every digital
//! simulator needs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue delivering payloads in time order, FIFO within a
/// timestamp.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        let t = |ns| SimTime::ZERO + SimDuration::from_nanos(ns);
        q.schedule(t(5), "c");
        q.schedule(t(1), "a");
        q.schedule(t(3), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(3), "b")));
        assert_eq!(q.pop(), Some((t(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        let t = SimTime::from_femtos(42);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_femtos(7), ());
        q.schedule(SimTime::from_femtos(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_femtos(3)));
        q.clear();
        assert!(q.is_empty());
    }
}
