//! Logic values and small buses.

use std::fmt;
use std::ops::Not;

/// A three-state digital logic level.
///
/// `Unknown` models uninitialized nodes and metastability outcomes (the
/// paper explicitly considers flip-flop metastability in the TDC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Driven low.
    Low,
    /// Driven high.
    High,
    /// Unknown / metastable.
    #[default]
    Unknown,
}

impl Logic {
    /// Converts a boolean to a logic level.
    #[inline]
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::High
        } else {
            Logic::Low
        }
    }

    /// True when the level is `High`.
    #[inline]
    pub fn is_high(self) -> bool {
        self == Logic::High
    }

    /// True when the level is `Low`.
    #[inline]
    pub fn is_low(self) -> bool {
        self == Logic::Low
    }

    /// True when the level is known (driven high or low).
    #[inline]
    pub fn is_known(self) -> bool {
        self != Logic::Unknown
    }

    /// Interprets the level as a bit, treating `Unknown` pessimistically
    /// through the supplied default.
    #[inline]
    pub fn to_bool_or(self, unknown_as: bool) -> bool {
        match self {
            Logic::High => true,
            Logic::Low => false,
            Logic::Unknown => unknown_as,
        }
    }

    /// Logical AND with unknown propagation (`0 AND X = 0`).
    #[inline]
    pub fn and(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Low, _) | (_, Logic::Low) => Logic::Low,
            (Logic::High, Logic::High) => Logic::High,
            _ => Logic::Unknown,
        }
    }

    /// Logical OR with unknown propagation (`1 OR X = 1`).
    #[inline]
    pub fn or(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::High, _) | (_, Logic::High) => Logic::High,
            (Logic::Low, Logic::Low) => Logic::Low,
            _ => Logic::Unknown,
        }
    }

    /// Two-input NAND.
    #[inline]
    pub fn nand(self, other: Logic) -> Logic {
        !(self.and(other))
    }

    /// Two-input NOR.
    #[inline]
    pub fn nor(self, other: Logic) -> Logic {
        !(self.or(other))
    }
}

impl Not for Logic {
    type Output = Logic;
    #[inline]
    fn not(self) -> Logic {
        match self {
            Logic::Low => Logic::High,
            Logic::High => Logic::Low,
            Logic::Unknown => Logic::Unknown,
        }
    }
}

impl From<bool> for Logic {
    #[inline]
    fn from(b: bool) -> Logic {
        Logic::from_bool(b)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::Low => '0',
            Logic::High => '1',
            Logic::Unknown => 'X',
        };
        write!(f, "{c}")
    }
}

/// A fixed-width bus of up to 64 bits, stored LSB-first in a `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bus {
    bits: u64,
    width: u8,
}

impl Bus {
    /// Creates a bus of `width` bits holding `value` (masked to width).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u8, value: u64) -> Bus {
        assert!((1..=64).contains(&width), "bus width {width} out of range");
        Bus {
            bits: value & Bus::mask(width),
            width,
        }
    }

    /// All-zero bus of `width` bits.
    pub fn zero(width: u8) -> Bus {
        Bus::new(width, 0)
    }

    fn mask(width: u8) -> u64 {
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// The bus value as an integer.
    #[inline]
    pub fn value(self) -> u64 {
        self.bits
    }

    /// Bus width in bits.
    #[inline]
    pub fn width(self) -> u8 {
        self.width
    }

    /// Reads bit `index` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    #[inline]
    pub fn bit(self, index: u8) -> Logic {
        assert!(
            index < self.width,
            "bit {index} out of {}-bit bus",
            self.width
        );
        Logic::from_bool((self.bits >> index) & 1 == 1)
    }

    /// Returns a copy with bit `index` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    #[inline]
    pub fn with_bit(self, index: u8, value: bool) -> Bus {
        assert!(
            index < self.width,
            "bit {index} out of {}-bit bus",
            self.width
        );
        let bits = if value {
            self.bits | (1 << index)
        } else {
            self.bits & !(1 << index)
        };
        Bus {
            bits,
            width: self.width,
        }
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(self) -> u32 {
        self.bits.count_ones()
    }

    /// Wrapping increment within the bus width (a hardware counter).
    #[inline]
    pub fn wrapping_inc(self) -> Bus {
        Bus::new(self.width, self.bits.wrapping_add(1))
    }

    /// Wrapping decrement within the bus width.
    #[inline]
    pub fn wrapping_dec(self) -> Bus {
        Bus::new(self.width, self.bits.wrapping_sub(1))
    }

    /// True when every bit is set (terminal count of an up-counter).
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.bits == Bus::mask(self.width)
    }
}

impl fmt::Display for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width)?;
        for i in (0..self.width).rev() {
            write!(f, "{}", self.bit(i))?;
        }
        Ok(())
    }
}

impl fmt::UpperHex for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.bits, f)
    }
}

impl fmt::LowerHex for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

impl fmt::Binary for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_gates_follow_truth_tables() {
        use Logic::*;
        assert_eq!(High.and(High), High);
        assert_eq!(High.and(Low), Low);
        assert_eq!(Low.and(Unknown), Low);
        assert_eq!(High.and(Unknown), Unknown);
        assert_eq!(High.or(Unknown), High);
        assert_eq!(Low.or(Unknown), Unknown);
        assert_eq!(High.nand(High), Low);
        assert_eq!(Low.nor(Low), High);
        assert_eq!(!High, Low);
        assert_eq!(!Unknown, Unknown);
    }

    #[test]
    fn logic_conversions() {
        assert_eq!(Logic::from(true), Logic::High);
        assert!(Logic::High.to_bool_or(false));
        assert!(Logic::Unknown.to_bool_or(true));
        assert!(!Logic::Unknown.to_bool_or(false));
        assert!(Logic::Unknown == Logic::default());
        assert_eq!(
            format!("{}{}{}", Logic::Low, Logic::High, Logic::Unknown),
            "01X"
        );
    }

    #[test]
    fn bus_bit_access() {
        let b = Bus::new(6, 0b010011);
        assert_eq!(b.bit(0), Logic::High);
        assert_eq!(b.bit(2), Logic::Low);
        assert_eq!(b.bit(4), Logic::High);
        assert_eq!(b.count_ones(), 3);
        let b2 = b.with_bit(2, true);
        assert_eq!(b2.value(), 0b010111);
    }

    #[test]
    fn bus_masks_value_to_width() {
        let b = Bus::new(6, 0xFFFF);
        assert_eq!(b.value(), 63);
        assert!(b.is_terminal());
    }

    #[test]
    fn bus_wrapping_counter() {
        let b = Bus::new(6, 63);
        assert_eq!(b.wrapping_inc().value(), 0);
        assert_eq!(Bus::new(6, 0).wrapping_dec().value(), 63);
    }

    #[test]
    fn bus_width_64_works() {
        let b = Bus::new(64, u64::MAX);
        assert!(b.is_terminal());
        assert_eq!(b.count_ones(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_bus_rejected() {
        let _ = Bus::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of 6-bit bus")]
    fn out_of_range_bit_rejected() {
        let _ = Bus::new(6, 0).bit(6);
    }

    #[test]
    fn bus_formatting() {
        let b = Bus::new(6, 0b010011);
        assert_eq!(format!("{b}"), "6'b010011");
        assert_eq!(format!("{b:X}"), "13");
        assert_eq!(format!("{b:b}"), "10011");
    }
}
