//! Fixed-step ODE integration for the analog side of the mixed-mode
//! simulation (the DC-DC converter's LC output filter).
//!
//! The paper co-simulates SPICE netlists with VHDL through VHDL-AMS
//! bridges; here the analog blocks are ordinary differential equations
//! advanced by explicit fixed-step integrators between digital clock
//! ticks.

/// A continuous-time system `dy/dt = f(t, y)`.
pub trait OdeSystem {
    /// Number of state variables.
    fn dim(&self) -> usize;

    /// Writes `f(t, y)` into `dydt`.
    ///
    /// Implementations may assume `y.len() == dydt.len() == self.dim()`.
    fn derivatives(&self, t: f64, y: &[f64], dydt: &mut [f64]);
}

/// Explicit integration schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IntegrationMethod {
    /// First-order forward Euler (reference/diagnostic only).
    Euler,
    /// Second-order explicit midpoint.
    Midpoint,
    /// Classical fourth-order Runge-Kutta.
    #[default]
    Rk4,
}

/// Advances `y` by one step `h` of `system` at time `t` using `method`.
///
/// # Panics
///
/// Panics if `y.len() != system.dim()` or `h` is not positive/finite.
pub fn integrate_step<S: OdeSystem + ?Sized>(
    system: &S,
    method: IntegrationMethod,
    t: f64,
    y: &mut [f64],
    h: f64,
) {
    assert_eq!(y.len(), system.dim(), "state dimension mismatch");
    assert!(h > 0.0 && h.is_finite(), "invalid step size {h}");
    let n = y.len();
    match method {
        IntegrationMethod::Euler => {
            let mut k1 = vec![0.0; n];
            system.derivatives(t, y, &mut k1);
            for i in 0..n {
                y[i] += h * k1[i];
            }
        }
        IntegrationMethod::Midpoint => {
            let mut k1 = vec![0.0; n];
            let mut k2 = vec![0.0; n];
            let mut ym = vec![0.0; n];
            system.derivatives(t, y, &mut k1);
            for i in 0..n {
                ym[i] = y[i] + 0.5 * h * k1[i];
            }
            system.derivatives(t + 0.5 * h, &ym, &mut k2);
            for i in 0..n {
                y[i] += h * k2[i];
            }
        }
        IntegrationMethod::Rk4 => {
            let mut k1 = vec![0.0; n];
            let mut k2 = vec![0.0; n];
            let mut k3 = vec![0.0; n];
            let mut k4 = vec![0.0; n];
            let mut tmp = vec![0.0; n];
            system.derivatives(t, y, &mut k1);
            for i in 0..n {
                tmp[i] = y[i] + 0.5 * h * k1[i];
            }
            system.derivatives(t + 0.5 * h, &tmp, &mut k2);
            for i in 0..n {
                tmp[i] = y[i] + 0.5 * h * k2[i];
            }
            system.derivatives(t + 0.5 * h, &tmp, &mut k3);
            for i in 0..n {
                tmp[i] = y[i] + h * k3[i];
            }
            system.derivatives(t + h, &tmp, &mut k4);
            for i in 0..n {
                y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            }
        }
    }
}

/// Advances `y` across a span `dt` in `steps` equal sub-steps.
///
/// # Panics
///
/// Panics if `steps == 0` (and as in [`integrate_step`]).
pub fn integrate_span<S: OdeSystem + ?Sized>(
    system: &S,
    method: IntegrationMethod,
    t0: f64,
    y: &mut [f64],
    dt: f64,
    steps: usize,
) {
    assert!(steps > 0, "need at least one sub-step");
    let h = dt / steps as f64;
    for k in 0..steps {
        integrate_step(system, method, t0 + h * k as f64, y, h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dy/dt = -y, y(0)=1 → y(t) = e^-t.
    struct Decay;
    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn derivatives(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
            dydt[0] = -y[0];
        }
    }

    /// Harmonic oscillator: y'' = -ω² y, as a 2-state system.
    struct Oscillator {
        omega: f64,
    }
    impl OdeSystem for Oscillator {
        fn dim(&self) -> usize {
            2
        }
        fn derivatives(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
            dydt[0] = y[1];
            dydt[1] = -self.omega * self.omega * y[0];
        }
    }

    #[test]
    fn rk4_matches_exponential_decay() {
        let mut y = [1.0];
        integrate_span(&Decay, IntegrationMethod::Rk4, 0.0, &mut y, 1.0, 100);
        assert!((y[0] - (-1.0f64).exp()).abs() < 1e-9, "y = {}", y[0]);
    }

    #[test]
    fn order_of_accuracy_ranking() {
        // For the same step count, RK4 < midpoint < Euler error.
        let run = |m: IntegrationMethod| {
            let mut y = [1.0];
            integrate_span(&Decay, m, 0.0, &mut y, 1.0, 20);
            (y[0] - (-1.0f64).exp()).abs()
        };
        let e_euler = run(IntegrationMethod::Euler);
        let e_mid = run(IntegrationMethod::Midpoint);
        let e_rk4 = run(IntegrationMethod::Rk4);
        assert!(
            e_rk4 < e_mid && e_mid < e_euler,
            "{e_rk4} {e_mid} {e_euler}"
        );
    }

    #[test]
    fn rk4_conserves_oscillator_energy() {
        let osc = Oscillator { omega: 2.0 };
        let mut y = [1.0, 0.0];
        // Ten full periods.
        let period = std::f64::consts::TAU / 2.0;
        integrate_span(
            &osc,
            IntegrationMethod::Rk4,
            0.0,
            &mut y,
            10.0 * period,
            4000,
        );
        let energy = 0.5 * y[1] * y[1] + 0.5 * 4.0 * y[0] * y[0];
        assert!((energy - 2.0).abs() < 1e-6, "energy {energy}");
    }

    #[test]
    fn rk4_convergence_is_fourth_order() {
        let err = |steps: usize| {
            let mut y = [1.0];
            integrate_span(&Decay, IntegrationMethod::Rk4, 0.0, &mut y, 1.0, steps);
            (y[0] - (-1.0f64).exp()).abs()
        };
        let e1 = err(10);
        let e2 = err(20);
        let order = (e1 / e2).log2();
        assert!((3.5..4.5).contains(&order), "observed order {order}");
    }

    #[test]
    #[should_panic(expected = "state dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut y = [1.0, 2.0];
        integrate_step(&Decay, IntegrationMethod::Rk4, 0.0, &mut y, 0.1);
    }

    #[test]
    #[should_panic(expected = "invalid step size")]
    fn non_positive_step_panics() {
        let mut y = [1.0];
        integrate_step(&Decay, IntegrationMethod::Rk4, 0.0, &mut y, 0.0);
    }
}
