//! Simulation time.
//!
//! Time is an integer count of **femtoseconds** in a `u64`, which spans
//! ~5.1 hours — vastly more than any transient the paper's controller
//! needs (its system cycle is 1 µs) — while resolving the ~100 fs
//! differences that pulse-shrinking analysis cares about without
//! floating-point drift.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute simulation time (femtoseconds since time zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulation time (femtoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time (~5.1 hours).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw femtoseconds.
    #[inline]
    pub const fn from_femtos(fs: u64) -> SimTime {
        SimTime(fs)
    }

    /// Raw femtosecond count.
    #[inline]
    pub const fn femtos(self) -> u64 {
        self.0
    }

    /// Time in seconds as `f64` (for analog math and reporting).
    #[inline]
    pub fn as_seconds(self) -> f64 {
        self.0 as f64 * 1e-15
    }

    /// Duration elapsed since an earlier time.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier <= self,
            "time went backwards: {earlier} is after {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw femtoseconds.
    #[inline]
    pub const fn from_femtos(fs: u64) -> SimDuration {
        SimDuration(fs)
    }

    /// Creates a duration from picoseconds.
    #[inline]
    pub const fn from_picos(ps: u64) -> SimDuration {
        SimDuration(ps * 1_000)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns * 1_000_000)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000_000_000)
    }

    /// Converts a (non-negative, finite) span in seconds, rounding to
    /// the nearest femtosecond.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative, NaN, or too large to represent.
    #[inline]
    pub fn from_seconds(seconds: f64) -> SimDuration {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid duration {seconds} s"
        );
        let fs = seconds * 1e15;
        assert!(fs <= u64::MAX as f64, "duration {seconds} s overflows");
        SimDuration(fs.round() as u64)
    }

    /// Raw femtosecond count.
    #[inline]
    pub const fn femtos(self) -> u64 {
        self.0
    }

    /// Span in seconds as `f64`.
    #[inline]
    pub fn as_seconds(self) -> f64 {
        self.0 as f64 * 1e-15
    }

    /// True for the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked integer division into equal sub-steps.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    #[inline]
    pub fn split(self, parts: u64) -> SimDuration {
        assert!(parts > 0, "cannot split into zero parts");
        SimDuration(self.0 / parts)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulation time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    #[inline]
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_femtos(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_femtos(self.0, f)
    }
}

fn format_femtos(fs: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if fs == 0 {
        return write!(f, "0 s");
    }
    let v = fs as f64;
    if fs < 1_000 {
        write!(f, "{fs} fs")
    } else if fs < 1_000_000 {
        write!(f, "{:.3} ps", v / 1e3)
    } else if fs < 1_000_000_000 {
        write!(f, "{:.3} ns", v / 1e6)
    } else if fs < 1_000_000_000_000 {
        write!(f, "{:.3} µs", v / 1e9)
    } else {
        write!(f, "{:.6} ms", v / 1e12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimDuration::from_nanos(14).femtos(), 14_000_000);
        assert_eq!(SimDuration::from_picos(102).femtos(), 102_000);
        assert_eq!(SimDuration::from_micros(1).femtos(), 1_000_000_000);
        assert!((SimDuration::from_nanos(1).as_seconds() - 1e-9).abs() < 1e-24);
    }

    #[test]
    fn from_seconds_rounds() {
        let d = SimDuration::from_seconds(102e-12);
        assert_eq!(d.femtos(), 102_000);
        let d = SimDuration::from_seconds(1.5e-15);
        assert_eq!(d.femtos(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_seconds_rejects_negative() {
        let _ = SimDuration::from_seconds(-1.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_nanos(10);
        assert_eq!(t.femtos(), 10_000_000);
        let later = t + SimDuration::from_nanos(5);
        assert_eq!(later.since(t), SimDuration::from_nanos(5));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_on_reversed_order() {
        let t = SimTime::from_femtos(5);
        let _ = t.since(SimTime::from_femtos(10));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_nanos(10);
        let b = SimDuration::from_nanos(4);
        assert_eq!(a - b, SimDuration::from_nanos(6));
        assert_eq!(a * 3, SimDuration::from_nanos(30));
        assert_eq!(a / 2, SimDuration::from_nanos(5));
        assert_eq!(a / b, 2);
        assert_eq!(a.split(4), SimDuration::from_femtos(2_500_000));
    }

    #[test]
    fn modulo_phase_within_period() {
        let period = SimDuration::from_nanos(14);
        let t = SimTime::ZERO + period * 3 + SimDuration::from_nanos(5);
        assert_eq!(t % period, SimDuration::from_nanos(5));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_femtos(1) < SimTime::from_femtos(2));
        assert!(SimDuration::from_picos(1) < SimDuration::from_nanos(1));
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", SimDuration::from_femtos(12)), "12 fs");
        assert_eq!(format!("{}", SimDuration::from_picos(102)), "102.000 ps");
        assert_eq!(format!("{}", SimDuration::from_nanos(14)), "14.000 ns");
        assert_eq!(format!("{}", SimDuration::from_micros(3)), "3.000 µs");
        assert_eq!(format!("{}", SimDuration::ZERO), "0 s");
    }

    #[test]
    fn saturating_add_clamps() {
        let t = SimTime::MAX.saturating_add(SimDuration::from_nanos(1));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(10));
    }
}
