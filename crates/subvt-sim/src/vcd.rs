//! Value-change-dump (VCD) export: view simulation waveforms in GTKWave
//! or any standard EDA waveform viewer.
//!
//! Digital traces become 1-bit wires; analog traces become `real`
//! variables (GTKWave renders those as analog lanes).

use std::io::{self, Write};

use crate::logic::Logic;
use crate::time::SimTime;
use crate::trace::{AnalogTrace, DigitalTrace};

/// A VCD document builder.
#[derive(Debug, Default)]
pub struct VcdWriter {
    digital: Vec<DigitalTrace>,
    analog: Vec<AnalogTrace>,
    module: String,
}

impl VcdWriter {
    /// Creates a writer with the given `$scope` module name.
    pub fn new(module: impl Into<String>) -> VcdWriter {
        VcdWriter {
            digital: Vec::new(),
            analog: Vec::new(),
            module: module.into(),
        }
    }

    /// Adds a digital trace.
    pub fn add_digital(&mut self, trace: DigitalTrace) -> &mut Self {
        self.digital.push(trace);
        self
    }

    /// Adds an analog trace (exported as a VCD `real`).
    pub fn add_analog(&mut self, trace: AnalogTrace) -> &mut Self {
        self.analog.push(trace);
        self
    }

    /// Number of traces registered.
    pub fn len(&self) -> usize {
        self.digital.len() + self.analog.len()
    }

    /// True when no traces were added.
    pub fn is_empty(&self) -> bool {
        self.digital.is_empty() && self.analog.is_empty()
    }

    fn id_code(index: usize) -> String {
        // Printable VCD identifier alphabet (! .. ~).
        let mut n = index;
        let mut s = String::new();
        loop {
            s.push((b'!' + (n % 94) as u8) as char);
            n /= 94;
            if n == 0 {
                break;
            }
        }
        s
    }

    /// Writes the VCD document.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "$date subvt simulation $end")?;
        writeln!(w, "$version subvt vcd exporter $end")?;
        writeln!(w, "$timescale 1 fs $end")?;
        writeln!(w, "$scope module {} $end", self.module)?;
        for (i, t) in self.digital.iter().enumerate() {
            writeln!(
                w,
                "$var wire 1 {} {} $end",
                Self::id_code(i),
                sanitize(t.name())
            )?;
        }
        for (i, t) in self.analog.iter().enumerate() {
            writeln!(
                w,
                "$var real 64 {} {} $end",
                Self::id_code(self.digital.len() + i),
                sanitize(t.name())
            )?;
        }
        writeln!(w, "$upscope $end")?;
        writeln!(w, "$enddefinitions $end")?;

        // Merge all events into one time-ordered stream.
        #[derive(Debug)]
        enum Change {
            Bit(usize, Logic),
            Real(usize, f64),
        }
        let mut events: Vec<(SimTime, Change)> = Vec::new();
        for (i, t) in self.digital.iter().enumerate() {
            for &(time, value) in t.transitions() {
                events.push((time, Change::Bit(i, value)));
            }
        }
        for (i, t) in self.analog.iter().enumerate() {
            for &(time, value) in t.samples() {
                events.push((time, Change::Real(self.digital.len() + i, value)));
            }
        }
        events.sort_by_key(|&(t, _)| t);

        let mut current = None;
        for (time, change) in events {
            if current != Some(time) {
                writeln!(w, "#{}", time.femtos())?;
                current = Some(time);
            }
            match change {
                Change::Bit(i, v) => {
                    let c = match v {
                        Logic::Low => '0',
                        Logic::High => '1',
                        Logic::Unknown => 'x',
                    };
                    writeln!(w, "{c}{}", Self::id_code(i))?;
                }
                Change::Real(i, v) => {
                    writeln!(w, "r{v:.9e} {}", Self::id_code(i))?;
                }
            }
        }
        Ok(())
    }

    /// Renders the VCD document to a string.
    pub fn to_vcd_string(&self) -> String {
        let mut buf = Vec::new();
        self.write(&mut buf).expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("vcd output is ascii")
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    fn clock_trace() -> DigitalTrace {
        let mut tr = DigitalTrace::new("clk");
        for k in 0..3u64 {
            tr.push(t(10 * k), Logic::High);
            tr.push(t(10 * k + 5), Logic::Low);
        }
        tr
    }

    #[test]
    fn header_declares_all_vars() {
        let mut w = VcdWriter::new("tb");
        w.add_digital(clock_trace());
        let mut vout = AnalogTrace::new("v out");
        vout.push(t(0), 0.0);
        w.add_analog(vout);
        let s = w.to_vcd_string();
        assert!(s.contains("$timescale 1 fs $end"));
        assert!(s.contains("$scope module tb $end"));
        assert!(s.contains("$var wire 1 ! clk $end"));
        assert!(s.contains("$var real 64 \" v_out $end"), "{s}");
        assert!(s.contains("$enddefinitions $end"));
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    fn events_are_time_ordered_and_merged() {
        let mut w = VcdWriter::new("tb");
        w.add_digital(clock_trace());
        let mut vout = AnalogTrace::new("vout");
        vout.push(t(0), 0.1);
        vout.push(t(5), 0.2);
        w.add_analog(vout);
        let s = w.to_vcd_string();
        let body: Vec<&str> = s
            .lines()
            .skip_while(|l| !l.starts_with("$enddefinitions"))
            .skip(1)
            .collect();
        // Timestamps must be non-decreasing.
        let mut last = 0u64;
        for line in &body {
            if let Some(ts) = line.strip_prefix('#') {
                let v: u64 = ts.parse().expect("numeric timestamp");
                assert!(v >= last, "timestamps regressed: {v} < {last}");
                last = v;
            }
        }
        // Shared timestamp #0 appears once, carrying both changes.
        let zero_count = body.iter().filter(|l| **l == "#0").count();
        assert_eq!(zero_count, 1);
    }

    #[test]
    fn logic_levels_encode_correctly() {
        let mut tr = DigitalTrace::new("d");
        tr.push(t(0), Logic::Unknown);
        tr.push(t(1), Logic::High);
        tr.push(t(2), Logic::Low);
        let mut w = VcdWriter::new("tb");
        w.add_digital(tr);
        let s = w.to_vcd_string();
        assert!(s.contains("x!"));
        assert!(s.contains("1!"));
        assert!(s.contains("0!"));
    }

    #[test]
    fn id_codes_stay_printable_past_94_signals() {
        assert_eq!(VcdWriter::id_code(0), "!");
        assert_eq!(VcdWriter::id_code(93), "~");
        let code = VcdWriter::id_code(94);
        assert_eq!(code.len(), 2);
        assert!(code.bytes().all(|b| (b'!'..=b'~').contains(&b)));
    }

    #[test]
    fn real_values_use_r_prefix() {
        let mut vout = AnalogTrace::new("v");
        vout.push(t(0), 0.35625);
        let mut w = VcdWriter::new("tb");
        w.add_analog(vout);
        let s = w.to_vcd_string();
        assert!(s.contains("r3.562500000e-1 !"), "{s}");
    }
}
