//! # subvt-sim
//!
//! Mixed-mode simulation kernel for the `subvt` reproduction of
//! *"Variation Resilient Adaptive Controller for Subthreshold
//! Circuits"* (DATE 2009).
//!
//! The paper validates its controller with a Mentor Graphics mixed-mode
//! flow: SPICE for analog blocks, VHDL for digital blocks, VHDL-AMS
//! bridges in between. This crate is the from-scratch Rust equivalent:
//!
//! * [`time`] — integer femtosecond timestamps;
//! * [`logic`] — three-state logic and small buses;
//! * [`event`] / [`netlist`] — event-driven gate-level simulation of
//!   structural circuits (ring oscillators, delay lines, flip-flops);
//! * [`analog`] — fixed-step ODE integration (Euler/midpoint/RK4) for
//!   the DC-DC converter's LC output filter;
//! * [`bridge`] — A-D threshold detectors and D-A switch drivers;
//! * [`kernel`] — the co-simulation driver interleaving digital clock
//!   ticks with analog integration;
//! * [`trace`] — waveform capture, settling/ripple analysis and CSV
//!   export.
//!
//! ## Example
//!
//! Simulate a three-stage ring oscillator structurally:
//!
//! ```
//! use subvt_sim::logic::Logic;
//! use subvt_sim::netlist::{GateFn, Netlist};
//! use subvt_sim::time::{SimDuration, SimTime};
//!
//! let mut nl = Netlist::new();
//! let en = nl.add_signal("enable");
//! let n: Vec<_> = (0..3).map(|i| nl.add_signal(format!("n{i}"))).collect();
//! for i in 0..3 {
//!     nl.add_gate(GateFn::Nand2, &[n[i], en], n[(i + 1) % 3], SimDuration::from_nanos(2));
//! }
//! nl.drive(en, Logic::High, SimTime::ZERO);
//! nl.drive(n[0], Logic::Low, SimTime::ZERO);
//! nl.run_until(SimTime::ZERO + SimDuration::from_nanos(100), 10_000);
//! assert!(nl.events_processed() > 10); // it oscillates
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analog;
pub mod bridge;
pub mod event;
pub mod kernel;
pub mod logic;
pub mod netlist;
pub mod time;
pub mod trace;
pub mod vcd;

pub use analog::{integrate_span, integrate_step, IntegrationMethod, OdeSystem};
pub use bridge::{Edge, SwitchDriver, ThresholdDetector};
pub use event::EventQueue;
pub use kernel::{run_cosim, CoSimConfig, CoSimStats, TickOutcome};
pub use logic::{Bus, Logic};
pub use netlist::{GateFn, GateId, Netlist, SignalId};
pub use time::{SimDuration, SimTime};
pub use trace::{AnalogTrace, DigitalTrace, TraceSet};
pub use vcd::VcdWriter;
