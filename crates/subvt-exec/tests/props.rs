//! Properties of the execution engine's determinism contract:
//!
//! * the scheduler is a drop-in for serial iteration at any job count;
//! * `Welford` merge is associative (to numerical tolerance — it is a
//!   floating-point reduction) and **order-fixed**: a fixed merge tree
//!   gives bit-identical results run after run and job count after job
//!   count;
//! * `QuantileSketch` merge is *exactly* associative and commutative
//!   (integer bin counts), so any merge tree is bit-identical.

use subvt_exec::{par_fold_chunked, par_map_indexed, ExecConfig, QuantileSketch, Welford};
use subvt_testkit::prelude::*;

fn welford_of(xs: &[f64]) -> Welford {
    let mut w = Welford::new();
    for &x in xs {
        w.push(x);
    }
    w
}

fn sketch_of(xs: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new(-100.0, 100.0, 64);
    for &x in xs {
        s.push(x);
    }
    s
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

properties! {
    cases = 48;

    /// ((a ⊕ b) ⊕ c) ≈ (a ⊕ (b ⊕ c)): the Chan merge is associative
    /// up to floating-point rounding, which is what licenses merging
    /// per-chunk partials in any grouping the chunk geometry implies.
    fn welford_merge_is_associative(
        a in vec(-50.0f64..50.0, 1..40),
        b in vec(-50.0f64..50.0, 1..40),
        c in vec(-50.0f64..50.0, 1..40),
    ) {
        let mut left = welford_of(&a);
        left.merge(welford_of(&b));
        left.merge(welford_of(&c));

        let mut right_tail = welford_of(&b);
        right_tail.merge(welford_of(&c));
        let mut right = welford_of(&a);
        right.merge(right_tail);

        prop_assert_eq!(left.count(), right.count());
        prop_assert!(
            close(left.mean().unwrap(), right.mean().unwrap()),
            "means diverge: {:?} vs {:?}", left.mean(), right.mean()
        );
        prop_assert!(
            close(left.variance().unwrap(), right.variance().unwrap()),
            "variances diverge: {:?} vs {:?}", left.variance(), right.variance()
        );
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
    }

    /// Merging chunked partials agrees with streaming the whole
    /// sequence (to tolerance), regardless of the chunk size.
    fn welford_chunked_merge_matches_streaming(
        xs in vec(-50.0f64..50.0, 1..120),
        chunk in 1usize..17,
    ) {
        let streamed = welford_of(&xs);
        let mut merged = Welford::new();
        for part in xs.chunks(chunk) {
            merged.merge(welford_of(part));
        }
        prop_assert_eq!(merged.count(), streamed.count());
        prop_assert!(close(merged.mean().unwrap(), streamed.mean().unwrap()));
        prop_assert!(close(
            merged.variance().unwrap(),
            streamed.variance().unwrap()
        ));
        prop_assert_eq!(merged.min(), streamed.min());
        prop_assert_eq!(merged.max(), streamed.max());
    }

    /// Order-fixedness: the *same* merge order gives bit-identical
    /// accumulators, which is the property the index-ordered chunk
    /// reduction relies on for thread-count invariance.
    fn welford_fixed_merge_order_is_bit_stable(
        xs in vec(-50.0f64..50.0, 2..120),
        chunk in 1usize..17,
    ) {
        let run = || {
            let mut acc = Welford::new();
            for part in xs.chunks(chunk) {
                acc.merge(welford_of(part));
            }
            acc
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(
            a.mean().unwrap().to_bits(),
            b.mean().unwrap().to_bits()
        );
        prop_assert_eq!(
            a.variance().unwrap().to_bits(),
            b.variance().unwrap().to_bits()
        );
        prop_assert_eq!(a, b);
    }

    /// Sketch merge is exactly associative AND commutative: integer
    /// bin counts make every merge tree bit-identical.
    fn sketch_merge_is_exactly_associative_and_commutative(
        a in vec(-120.0f64..120.0, 1..40),
        b in vec(-120.0f64..120.0, 1..40),
        c in vec(-120.0f64..120.0, 1..40),
    ) {
        let mut left = sketch_of(&a);
        left.merge(&sketch_of(&b));
        left.merge(&sketch_of(&c));

        let mut right_tail = sketch_of(&b);
        right_tail.merge(&sketch_of(&c));
        let mut right = sketch_of(&a);
        right.merge(&right_tail);

        prop_assert_eq!(&left, &right);

        let mut reversed = sketch_of(&c);
        reversed.merge(&sketch_of(&b));
        reversed.merge(&sketch_of(&a));
        prop_assert_eq!(&left, &reversed);
    }

    /// A sketch assembled from chunked partials is bit-identical to
    /// one streamed whole.
    fn sketch_chunked_equals_streamed(
        xs in vec(-120.0f64..120.0, 1..120),
        chunk in 1usize..17,
    ) {
        let whole = sketch_of(&xs);
        let mut merged = sketch_of(&[]);
        for part in xs.chunks(chunk) {
            merged.merge(&sketch_of(part));
        }
        prop_assert_eq!(merged, whole);
    }

    /// The scheduler is indistinguishable from serial iteration for
    /// any job count and population size.
    fn par_map_equals_serial_map(n in 0usize..600, jobs in 1usize..9) {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
        let expect: Vec<u64> = (0..n).map(f).collect();
        let got = par_map_indexed(&ExecConfig::with_jobs(jobs), n, f);
        prop_assert_eq!(got, expect);
    }

    /// The chunked fold gives bit-identical Welford statistics for any
    /// job count — the end-to-end statement of the contract.
    fn par_fold_welford_is_thread_count_invariant(
        n in 1usize..900,
        jobs in 2usize..9,
    ) {
        let sample = |i: usize| ((i * 2654435761) % 1000) as f64 * 0.173 - 86.5;
        let fold_with = |jobs: usize| {
            par_fold_chunked(
                &ExecConfig::with_jobs(jobs),
                n,
                Welford::new,
                |w, i| w.push(sample(i)),
                |w, part| w.merge(part),
            )
        };
        let serial = fold_with(1);
        let parallel = fold_with(jobs);
        prop_assert_eq!(serial.count(), n as u64);
        prop_assert_eq!(
            serial.mean().unwrap().to_bits(),
            parallel.mean().unwrap().to_bits()
        );
        prop_assert_eq!(serial, parallel);
    }
}
