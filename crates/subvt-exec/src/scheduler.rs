//! The chunked work-stealing scheduler.
//!
//! Work is split into fixed chunks of consecutive indices; idle workers
//! steal the next unclaimed chunk from a shared atomic cursor. Two
//! invariants make every run bit-reproducible regardless of thread
//! count:
//!
//! 1. **Chunk geometry depends only on `n`** (see [`chunk_len`]), never
//!    on the number of workers — so the same population always splits
//!    at the same boundaries.
//! 2. **Results are committed by index**: [`par_map_indexed`] writes
//!    item `i`'s result to slot `i`, and [`par_fold_chunked`] merges
//!    per-chunk accumulators in ascending chunk order on the calling
//!    thread — so the scheduling race never reaches the output.
//!
//! Item closures must be pure functions of the index (feed them
//! pre-forked RNG seeds, not a shared stream) — the engine guarantees
//! *where* results land and *in what order* they merge, the closure
//! must guarantee *what* they are.

use crate::cancel::{Cancelled, Progress};
use crate::config::ExecConfig;
use crate::ExecHooks;

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Why a committing fold stopped before the last chunk.
#[derive(Debug, PartialEq, Eq)]
pub enum FoldError<E> {
    /// The hook's [`crate::CancelToken`] fired; already-committed
    /// chunks keep whatever side effects `on_commit` produced.
    Cancelled,
    /// The `on_commit` callback itself failed (e.g. a checkpoint write
    /// hit a full disk); the run aborts at that commit boundary.
    Commit(E),
}

impl<E> From<Cancelled> for FoldError<E> {
    fn from(_: Cancelled) -> Self {
        FoldError::Cancelled
    }
}

impl<E: std::fmt::Display> std::fmt::Display for FoldError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FoldError::Cancelled => write!(f, "run cancelled"),
            FoldError::Commit(e) => write!(f, "commit failed: {e}"),
        }
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for FoldError<E> {}

/// The chunk length used for a population of `n` items.
///
/// A pure function of `n` only — **never** of the worker count — so
/// chunk boundaries (and therefore merge order and accumulator
/// groupings) are identical for any `jobs`. The shape aims for ~64
/// chunks (plenty of stealing granularity for any realistic core
/// count) while capping chunk size so huge populations still report
/// progress and observe cancellation promptly.
pub fn chunk_len(n: usize) -> usize {
    n.div_ceil(64).clamp(1, 2048)
}

/// Number of chunks a population of `n` items splits into.
pub fn chunk_count(n: usize) -> usize {
    n.div_ceil(chunk_len(n))
}

/// Maps `f` over `0..n` in parallel, returning results in index order.
///
/// Equivalent to `(0..n).map(f).collect()` for any thread count,
/// including 1 — the scheduler only changes *when* each index runs,
/// never which slot its result lands in.
///
/// # Panics
///
/// Propagates a panic from `f` (the run finishes or aborts its other
/// chunks first).
pub fn par_map_indexed<T, F>(cfg: &ExecConfig, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_par_map_indexed(cfg, n, &ExecHooks::default(), f)
        .expect("uncancellable run cannot be cancelled")
}

/// [`par_map_indexed`] with cancellation and progress hooks.
///
/// # Errors
///
/// Returns [`Cancelled`] if the hook's token fires before every chunk
/// completes; already-finished chunks are discarded.
pub fn try_par_map_indexed<T, F>(
    cfg: &ExecConfig,
    n: usize,
    hooks: &ExecHooks<'_>,
    f: F,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_par_fold_commit(
        cfg,
        n,
        0,
        hooks,
        Vec::new,
        Vec::with_capacity(n),
        |part: &mut Vec<T>, range| part.extend(range.map(&f)),
        |out, part| out.extend(part),
        no_commit,
    )
    .map_err(infallible_commit)
}

/// The no-op commit used when an entry point has no checkpoint sink.
#[allow(clippy::unnecessary_wraps)]
fn no_commit<A>(_: usize, _: &A) -> Result<(), std::convert::Infallible> {
    Ok(())
}

/// Collapses the impossible `Commit` arm of a no-op-commit run.
fn infallible_commit(e: FoldError<std::convert::Infallible>) -> Cancelled {
    match e {
        FoldError::Cancelled => Cancelled,
        FoldError::Commit(never) => match never {},
    }
}

/// Folds `0..n` through per-chunk accumulators, merging them in
/// ascending chunk order.
///
/// Each chunk folds its indices (in order) into a fresh accumulator
/// from `init`; the caller's thread then reduces the per-chunk
/// accumulators with `merge`, always in chunk order. Because chunk
/// geometry is fixed by [`chunk_len`], the exact sequence of `fold` and
/// `merge` applications — and therefore every floating-point rounding —
/// is identical for any worker count. This is the summary-only path:
/// memory is `O(chunks × accumulator)`, never `O(n)`.
pub fn par_fold_chunked<A, I, F, M>(cfg: &ExecConfig, n: usize, init: I, fold: F, merge: M) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
    M: Fn(&mut A, A),
{
    try_par_fold_chunked(cfg, n, &ExecHooks::default(), init, fold, merge)
        .expect("uncancellable run cannot be cancelled")
}

/// [`par_fold_chunked`] with cancellation and progress hooks.
///
/// # Errors
///
/// Returns [`Cancelled`] if the hook's token fires before every chunk
/// completes.
pub fn try_par_fold_chunked<A, I, F, M>(
    cfg: &ExecConfig,
    n: usize,
    hooks: &ExecHooks<'_>,
    init: I,
    fold: F,
    merge: M,
) -> Result<A, Cancelled>
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
    M: Fn(&mut A, A),
{
    try_par_fold_commit(
        cfg,
        n,
        0,
        hooks,
        &init,
        init(),
        |acc, range| {
            for i in range {
                fold(acc, i);
            }
        },
        merge,
        no_commit,
    )
    .map_err(infallible_commit)
}

/// Per-chunk results waiting for the in-order merge, plus the live
/// worker count so the committing thread never waits on a dead pool.
struct CommitState<T> {
    /// `slots[c - start_chunk]` holds chunk `c`'s accumulator until
    /// the committing thread takes it.
    slots: Vec<Option<T>>,
    /// Workers still running; each decrements exactly once on exit
    /// (normal, cancelled, or panicking) via [`WorkerGuard`].
    active: usize,
}

struct CommitShared<T> {
    state: Mutex<CommitState<T>>,
    ready: Condvar,
}

impl<T> CommitShared<T> {
    /// Locks the state, surviving poisoning: a worker panic must not
    /// strand the committing thread, and the state itself stays
    /// consistent (slot writes and `active` decrements are atomic
    /// under the lock).
    fn lock(&self) -> std::sync::MutexGuard<'_, CommitState<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Decrements `active` and wakes the committing thread even if the
/// worker unwinds mid-chunk.
struct WorkerGuard<'a, T> {
    shared: &'a CommitShared<T>,
}

impl<T> Drop for WorkerGuard<'_, T> {
    fn drop(&mut self) {
        self.shared.lock().active -= 1;
        self.shared.ready.notify_all();
    }
}

/// The committing fold: [`try_par_fold_chunked`] plus an in-order
/// commit callback and a resume point, for runs that persist their
/// progress (checkpointed Monte-Carlo fleets).
///
/// Chunks `start_chunk..chunk_count(n)` each fold their index range
/// into a fresh accumulator from `init` (the whole range at once, so a
/// batched implementation may sub-batch it); the **calling thread**
/// merges the per-chunk accumulators into `seed` in ascending chunk
/// order, invoking `on_commit(chunks_done, &acc)` after each merge.
/// When `on_commit` returns `Err`, the run aborts at that boundary
/// with [`FoldError::Commit`].
///
/// Determinism contract: for a fixed `n`, the sequence of `fold` and
/// `merge` applications — and therefore every floating-point rounding
/// — is identical for any worker count, and a run resumed from
/// (`start_chunk`, the accumulator committed at `start_chunk`) is
/// bit-identical to one that never stopped. `on_commit` runs strictly
/// in chunk order on the calling thread, so a checkpoint writer needs
/// no synchronisation.
///
/// # Panics
///
/// Panics if `start_chunk > chunk_count(n)`, and propagates panics
/// from `fold`.
///
/// # Errors
///
/// [`FoldError::Cancelled`] if the hook's token fires first;
/// [`FoldError::Commit`] if `on_commit` fails.
#[allow(clippy::too_many_arguments)]
pub fn try_par_fold_commit<A, I, F, M, C, E>(
    cfg: &ExecConfig,
    n: usize,
    start_chunk: usize,
    hooks: &ExecHooks<'_>,
    init: I,
    seed: A,
    fold: F,
    merge: M,
    mut on_commit: C,
) -> Result<A, FoldError<E>>
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, std::ops::Range<usize>) + Sync,
    M: Fn(&mut A, A),
    C: FnMut(usize, &A) -> Result<(), E>,
{
    let chunk = chunk_len(n);
    let n_chunks = chunk_count(n);
    assert!(
        start_chunk <= n_chunks,
        "resume point {start_chunk} beyond the {n_chunks} chunks of n={n}"
    );
    let jobs = cfg.jobs().min(n_chunks.saturating_sub(start_chunk).max(1));
    let range_of = |c: usize| c * chunk..((c + 1) * chunk).min(n);
    let cancelled = || hooks.cancel.is_some_and(|t| t.is_cancelled());
    // Progress counts items, including the ones already committed
    // before a resume.
    let done_base = (start_chunk * chunk).min(n);

    let mut acc = seed;
    if jobs <= 1 {
        // Serial path: same chunk geometry, same merge and commit
        // sequence, no threads spawned.
        let mut done = done_base;
        for c in start_chunk..n_chunks {
            if cancelled() {
                return Err(FoldError::Cancelled);
            }
            let range = range_of(c);
            done += range.len();
            let mut part = init();
            fold(&mut part, range);
            merge(&mut acc, part);
            on_commit(c + 1, &acc).map_err(FoldError::Commit)?;
            if let Some(progress) = hooks.progress {
                progress(Progress { done, total: n });
            }
        }
        return Ok(acc);
    }

    let abort = AtomicBool::new(false);
    let cursor = AtomicUsize::new(start_chunk);
    let done = AtomicUsize::new(done_base);
    let shared: CommitShared<A> = CommitShared {
        state: Mutex::new(CommitState {
            slots: (start_chunk..n_chunks).map(|_| None).collect(),
            active: jobs,
        }),
        ready: Condvar::new(),
    };

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let _guard = WorkerGuard { shared: &shared };
                loop {
                    if abort.load(Ordering::Relaxed) || cancelled() {
                        return;
                    }
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        return;
                    }
                    let range = range_of(c);
                    let len = range.len();
                    let mut part = init();
                    fold(&mut part, range);
                    shared.lock().slots[c - start_chunk] = Some(part);
                    shared.ready.notify_all();
                    let so_far = done.fetch_add(len, Ordering::Relaxed) + len;
                    if let Some(progress) = hooks.progress {
                        progress(Progress {
                            done: so_far,
                            total: n,
                        });
                    }
                }
            });
        }

        // The calling thread is the committer: take each chunk's
        // accumulator as it appears, merge in ascending chunk order,
        // and run the commit callback — strictly serial, so the
        // floating-point reduction and any checkpoint file it feeds
        // are identical to the serial path.
        for c in start_chunk..n_chunks {
            let part = {
                let mut st = shared.lock();
                loop {
                    if let Some(part) = st.slots[c - start_chunk].take() {
                        break Some(part);
                    }
                    if st.active == 0 {
                        break None;
                    }
                    st = shared.ready.wait(st).unwrap_or_else(|p| p.into_inner());
                }
            };
            let Some(part) = part else {
                // Every worker exited without producing chunk `c`:
                // the run was cancelled (or a worker panicked, which
                // the scope re-raises on join).
                return Err(FoldError::Cancelled);
            };
            merge(&mut acc, part);
            if let Err(e) = on_commit(c + 1, &acc) {
                abort.store(true, Ordering::Relaxed);
                return Err(FoldError::Commit(e));
            }
        }
        Ok(acc)
    })
}

/// The multi-fold committing engine: [`try_par_fold_commit`] carrying
/// one accumulator **per cell** through a single pass over the index
/// range, for runs that score the same population against N
/// configurations at once (study matrices).
///
/// Each chunk folds its range into a fresh vector of per-cell states
/// (`init(cell)` for `cell` in `0..cells`); the calling thread merges
/// chunk vectors into `seed` element-wise — `merge(cell, &mut
/// acc[cell], part[cell])` in cell order — in ascending chunk order,
/// then invokes `on_commit(chunks_done, &accs)` with every cell's
/// state. One index-ordered merge sequence drives all cells, so every
/// cell inherits the [`try_par_fold_commit`] determinism contract
/// individually: for a fixed `n`, any worker count and any resume
/// point produce bit-identical per-cell states.
///
/// # Panics
///
/// Panics if `seed.len() != cells`, if `start_chunk >
/// chunk_count(n)`, and propagates panics from `fold`.
///
/// # Errors
///
/// As [`try_par_fold_commit`].
#[allow(clippy::too_many_arguments)]
pub fn try_par_fold_commit_multi<A, I, F, M, C, E>(
    cfg: &ExecConfig,
    n: usize,
    start_chunk: usize,
    hooks: &ExecHooks<'_>,
    cells: usize,
    init: I,
    seed: Vec<A>,
    fold: F,
    merge: M,
    mut on_commit: C,
) -> Result<Vec<A>, FoldError<E>>
where
    A: Send,
    I: Fn(usize) -> A + Sync,
    F: Fn(&mut [A], std::ops::Range<usize>) + Sync,
    M: Fn(usize, &mut A, A),
    C: FnMut(usize, &[A]) -> Result<(), E>,
{
    assert_eq!(seed.len(), cells, "one seed state per cell");
    try_par_fold_commit(
        cfg,
        n,
        start_chunk,
        hooks,
        || (0..cells).map(&init).collect::<Vec<A>>(),
        seed,
        |accs: &mut Vec<A>, range| fold(accs, range),
        |accs: &mut Vec<A>, parts: Vec<A>| {
            for (cell, (acc, part)) in accs.iter_mut().zip(parts).enumerate() {
                merge(cell, acc, part);
            }
        },
        |chunks_done, accs: &Vec<A>| on_commit(chunks_done, accs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::CancelToken;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn chunk_geometry_is_a_pure_function_of_n() {
        assert_eq!(chunk_len(0), 1);
        assert_eq!(chunk_len(1), 1);
        assert_eq!(chunk_len(64), 1);
        assert_eq!(chunk_len(65), 2);
        assert_eq!(chunk_len(1_000_000), 2048);
        for n in [0usize, 1, 7, 63, 64, 65, 500, 4096, 1_000_000] {
            assert!(chunk_count(n) * chunk_len(n) >= n);
            if n > 0 {
                assert!((chunk_count(n) - 1) * chunk_len(n) < n);
            }
        }
    }

    #[test]
    fn map_matches_serial_for_every_job_count() {
        let expect: Vec<u64> = (0..500).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let cfg = ExecConfig::with_jobs(jobs);
            let got = par_map_indexed(&cfg, 500, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let cfg = ExecConfig::with_jobs(8);
        assert_eq!(par_map_indexed(&cfg, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(&cfg, 1, |i| i * 3), vec![0]);
        assert_eq!(par_map_indexed(&cfg, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn fold_is_bit_identical_across_job_counts() {
        // Float summation is order-sensitive; identical results across
        // job counts prove the chunk-ordered merge contract.
        let sum_with = |jobs: usize| {
            par_fold_chunked(
                &ExecConfig::with_jobs(jobs),
                10_000,
                || 0.0f64,
                |acc, i| *acc += 1.0 / (1.0 + i as f64),
                |acc, other| *acc += other,
            )
        };
        let reference = sum_with(1);
        for jobs in [2, 3, 7, 16] {
            assert_eq!(sum_with(jobs).to_bits(), reference.to_bits(), "jobs={jobs}");
        }
    }

    #[test]
    fn fold_of_empty_population_is_init() {
        let v = par_fold_chunked(
            &ExecConfig::with_jobs(4),
            0,
            || 42u64,
            |_, _| unreachable!("no items"),
            |_, _| unreachable!("single init accumulator"),
        );
        assert_eq!(v, 42);
    }

    #[test]
    fn pre_cancelled_run_reports_cancelled() {
        let token = CancelToken::new();
        token.cancel();
        let hooks = ExecHooks {
            cancel: Some(&token),
            progress: None,
        };
        for jobs in [1, 4] {
            let r = try_par_map_indexed(&ExecConfig::with_jobs(jobs), 100, &hooks, |i| i);
            assert_eq!(r, Err(Cancelled), "jobs={jobs}");
        }
    }

    #[test]
    fn cancellation_mid_run_stops_early() {
        let token = CancelToken::new();
        let hooks = ExecHooks {
            cancel: Some(&token),
            progress: None,
        };
        let ran = AtomicUsize::new(0);
        let r = try_par_map_indexed(&ExecConfig::with_jobs(2), 100_000, &hooks, |i| {
            if ran.fetch_add(1, Ordering::Relaxed) == 50 {
                token.cancel();
            }
            i
        });
        assert_eq!(r, Err(Cancelled));
        assert!(
            ran.load(Ordering::Relaxed) < 100_000,
            "cancellation must stop the sweep before completion"
        );
    }

    /// The commit fold under test everywhere below: an order-sensitive
    /// float sum, so any deviation in fold/merge sequencing shows up
    /// in the bits.
    fn commit_sum(
        jobs: usize,
        n: usize,
        start_chunk: usize,
        seed: f64,
        commits: &mut Vec<(usize, f64)>,
    ) -> f64 {
        try_par_fold_commit(
            &ExecConfig::with_jobs(jobs),
            n,
            start_chunk,
            &ExecHooks::default(),
            || 0.0f64,
            seed,
            |acc, range| {
                for i in range {
                    *acc += 1.0 / (1.0 + i as f64);
                }
            },
            |acc, part| *acc += part,
            |done, acc: &f64| {
                commits.push((done, *acc));
                Ok::<(), std::convert::Infallible>(())
            },
        )
        .expect("infallible commit cannot fail")
    }

    #[test]
    fn commit_fold_matches_plain_fold_for_every_job_count() {
        let n = 10_000;
        let reference = par_fold_chunked(
            &ExecConfig::with_jobs(1),
            n,
            || 0.0f64,
            |acc, i| *acc += 1.0 / (1.0 + i as f64),
            |acc, part| *acc += part,
        );
        for jobs in [1, 2, 3, 7] {
            let mut commits = Vec::new();
            let got = commit_sum(jobs, n, 0, 0.0, &mut commits);
            assert_eq!(got.to_bits(), reference.to_bits(), "jobs={jobs}");
            // One commit per chunk, strictly in order, last == result.
            let n_chunks = chunk_count(n);
            assert_eq!(commits.len(), n_chunks, "jobs={jobs}");
            assert!(commits.windows(2).all(|w| w[1].0 == w[0].0 + 1));
            assert_eq!(commits.last().unwrap().1.to_bits(), got.to_bits());
        }
    }

    #[test]
    fn resumed_commit_fold_is_bit_identical() {
        let n = 10_000;
        let mut full = Vec::new();
        let reference = commit_sum(3, n, 0, 0.0, &mut full);
        // Resume from every commit boundary, at a different job count.
        for stop in [1usize, 5, chunk_count(n) / 2, chunk_count(n) - 1] {
            let (_, state) = full[stop - 1];
            let mut tail = Vec::new();
            let resumed = commit_sum(7, n, stop, state, &mut tail);
            assert_eq!(resumed.to_bits(), reference.to_bits(), "stop={stop}");
            assert_eq!(tail.first().unwrap().0, stop + 1);
        }
        // Resuming a finished run is a no-op returning the seed.
        let mut none = Vec::new();
        let done = commit_sum(4, n, chunk_count(n), reference, &mut none);
        assert_eq!(done.to_bits(), reference.to_bits());
        assert!(none.is_empty());
    }

    /// Multi-fold under test: cell `c` accumulates an order-sensitive
    /// float sum scaled by `c + 1`, so cross-cell mixups and sequencing
    /// deviations both show up in the bits.
    fn multi_commit_sum(
        jobs: usize,
        n: usize,
        start_chunk: usize,
        seed: Vec<f64>,
        commits: &mut Vec<(usize, Vec<f64>)>,
    ) -> Vec<f64> {
        let cells = seed.len();
        try_par_fold_commit_multi(
            &ExecConfig::with_jobs(jobs),
            n,
            start_chunk,
            &ExecHooks::default(),
            cells,
            |_cell| 0.0f64,
            seed,
            |accs, range| {
                for i in range {
                    for (cell, acc) in accs.iter_mut().enumerate() {
                        *acc += (cell + 1) as f64 / (1.0 + i as f64);
                    }
                }
            },
            |_cell, acc, part| *acc += part,
            |done, accs: &[f64]| {
                commits.push((done, accs.to_vec()));
                Ok::<(), std::convert::Infallible>(())
            },
        )
        .expect("infallible commit cannot fail")
    }

    #[test]
    fn multi_fold_cells_match_independent_single_folds() {
        let n = 10_000;
        let reference: Vec<f64> = (0..3)
            .map(|cell| {
                par_fold_chunked(
                    &ExecConfig::with_jobs(1),
                    n,
                    || 0.0f64,
                    |acc, i| *acc += (cell + 1) as f64 / (1.0 + i as f64),
                    |acc, part| *acc += part,
                )
            })
            .collect();
        for jobs in [1, 2, 7] {
            let mut commits = Vec::new();
            let got = multi_commit_sum(jobs, n, 0, vec![0.0; 3], &mut commits);
            for (cell, (g, r)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(g.to_bits(), r.to_bits(), "jobs={jobs} cell={cell}");
            }
            assert_eq!(commits.len(), chunk_count(n), "jobs={jobs}");
            assert!(commits.windows(2).all(|w| w[1].0 == w[0].0 + 1));
        }
    }

    #[test]
    fn resumed_multi_fold_is_bit_identical_per_cell() {
        let n = 10_000;
        let mut full = Vec::new();
        let reference = multi_commit_sum(3, n, 0, vec![0.0; 3], &mut full);
        for stop in [1usize, chunk_count(n) / 2] {
            let (_, state) = full[stop - 1].clone();
            let mut tail = Vec::new();
            let resumed = multi_commit_sum(7, n, stop, state, &mut tail);
            for (cell, (g, r)) in resumed.iter().zip(&reference).enumerate() {
                assert_eq!(g.to_bits(), r.to_bits(), "stop={stop} cell={cell}");
            }
            assert_eq!(tail.first().unwrap().0, stop + 1);
        }
    }

    #[test]
    fn commit_error_aborts_at_the_boundary() {
        for jobs in [1, 4] {
            let mut commits = 0usize;
            let r = try_par_fold_commit(
                &ExecConfig::with_jobs(jobs),
                10_000,
                0,
                &ExecHooks::default(),
                || 0u64,
                0u64,
                |acc, range| *acc += range.len() as u64,
                |acc, part| *acc += part,
                |done, _acc: &u64| {
                    commits += 1;
                    if done == 3 {
                        Err("disk full")
                    } else {
                        Ok(())
                    }
                },
            );
            assert_eq!(r, Err(FoldError::Commit("disk full")), "jobs={jobs}");
            assert_eq!(commits, 3, "jobs={jobs}");
        }
    }

    #[test]
    fn commit_fold_cancellation_reports_cancelled() {
        let token = CancelToken::new();
        let hooks = ExecHooks {
            cancel: Some(&token),
            progress: None,
        };
        for jobs in [1, 4] {
            token.cancel();
            let r = try_par_fold_commit(
                &ExecConfig::with_jobs(jobs),
                1000,
                0,
                &hooks,
                || 0u64,
                0u64,
                |acc, range| *acc += range.len() as u64,
                |acc, part| *acc += part,
                no_commit,
            );
            assert!(matches!(r, Err(FoldError::Cancelled)), "jobs={jobs}");
        }
    }

    #[test]
    fn progress_reaches_total_and_stays_in_bounds() {
        let max_seen = AtomicUsize::new(0);
        let callback = |p: Progress| {
            assert!(p.done <= p.total);
            max_seen.fetch_max(p.done, Ordering::Relaxed);
        };
        let hooks = ExecHooks {
            cancel: None,
            progress: Some(&callback),
        };
        for jobs in [1, 4] {
            max_seen.store(0, Ordering::Relaxed);
            let r = try_par_map_indexed(&ExecConfig::with_jobs(jobs), 777, &hooks, |i| i).unwrap();
            assert_eq!(r.len(), 777);
            assert_eq!(max_seen.load(Ordering::Relaxed), 777, "jobs={jobs}");
        }
    }
}
