//! The chunked work-stealing scheduler.
//!
//! Work is split into fixed chunks of consecutive indices; idle workers
//! steal the next unclaimed chunk from a shared atomic cursor. Two
//! invariants make every run bit-reproducible regardless of thread
//! count:
//!
//! 1. **Chunk geometry depends only on `n`** (see [`chunk_len`]), never
//!    on the number of workers — so the same population always splits
//!    at the same boundaries.
//! 2. **Results are committed by index**: [`par_map_indexed`] writes
//!    item `i`'s result to slot `i`, and [`par_fold_chunked`] merges
//!    per-chunk accumulators in ascending chunk order on the calling
//!    thread — so the scheduling race never reaches the output.
//!
//! Item closures must be pure functions of the index (feed them
//! pre-forked RNG seeds, not a shared stream) — the engine guarantees
//! *where* results land and *in what order* they merge, the closure
//! must guarantee *what* they are.

use crate::cancel::{Cancelled, Progress};
use crate::config::ExecConfig;
use crate::ExecHooks;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The chunk length used for a population of `n` items.
///
/// A pure function of `n` only — **never** of the worker count — so
/// chunk boundaries (and therefore merge order and accumulator
/// groupings) are identical for any `jobs`. The shape aims for ~64
/// chunks (plenty of stealing granularity for any realistic core
/// count) while capping chunk size so huge populations still report
/// progress and observe cancellation promptly.
pub fn chunk_len(n: usize) -> usize {
    n.div_ceil(64).clamp(1, 2048)
}

/// Number of chunks a population of `n` items splits into.
pub fn chunk_count(n: usize) -> usize {
    n.div_ceil(chunk_len(n))
}

/// Maps `f` over `0..n` in parallel, returning results in index order.
///
/// Equivalent to `(0..n).map(f).collect()` for any thread count,
/// including 1 — the scheduler only changes *when* each index runs,
/// never which slot its result lands in.
///
/// # Panics
///
/// Propagates a panic from `f` (the run finishes or aborts its other
/// chunks first).
pub fn par_map_indexed<T, F>(cfg: &ExecConfig, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_par_map_indexed(cfg, n, &ExecHooks::default(), f)
        .expect("uncancellable run cannot be cancelled")
}

/// [`par_map_indexed`] with cancellation and progress hooks.
///
/// # Errors
///
/// Returns [`Cancelled`] if the hook's token fires before every chunk
/// completes; already-finished chunks are discarded.
pub fn try_par_map_indexed<T, F>(
    cfg: &ExecConfig,
    n: usize,
    hooks: &ExecHooks<'_>,
    f: F,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let chunks = run_chunks(cfg, n, hooks, |range| range.map(&f).collect::<Vec<T>>())?;
    let mut out = Vec::with_capacity(n);
    for chunk in chunks {
        out.extend(chunk);
    }
    Ok(out)
}

/// Folds `0..n` through per-chunk accumulators, merging them in
/// ascending chunk order.
///
/// Each chunk folds its indices (in order) into a fresh accumulator
/// from `init`; the caller's thread then reduces the per-chunk
/// accumulators with `merge`, always in chunk order. Because chunk
/// geometry is fixed by [`chunk_len`], the exact sequence of `fold` and
/// `merge` applications — and therefore every floating-point rounding —
/// is identical for any worker count. This is the summary-only path:
/// memory is `O(chunks × accumulator)`, never `O(n)`.
pub fn par_fold_chunked<A, I, F, M>(cfg: &ExecConfig, n: usize, init: I, fold: F, merge: M) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
    M: Fn(&mut A, A),
{
    try_par_fold_chunked(cfg, n, &ExecHooks::default(), init, fold, merge)
        .expect("uncancellable run cannot be cancelled")
}

/// [`par_fold_chunked`] with cancellation and progress hooks.
///
/// # Errors
///
/// Returns [`Cancelled`] if the hook's token fires before every chunk
/// completes.
pub fn try_par_fold_chunked<A, I, F, M>(
    cfg: &ExecConfig,
    n: usize,
    hooks: &ExecHooks<'_>,
    init: I,
    fold: F,
    merge: M,
) -> Result<A, Cancelled>
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
    M: Fn(&mut A, A),
{
    let accs = run_chunks(cfg, n, hooks, |range| {
        let mut acc = init();
        for i in range {
            fold(&mut acc, i);
        }
        acc
    })?;
    let mut out = init();
    for acc in accs {
        merge(&mut out, acc);
    }
    Ok(out)
}

/// The shared chunk loop: runs `work` over every chunk range and
/// returns the per-chunk outputs in ascending chunk order.
fn run_chunks<T, W>(
    cfg: &ExecConfig,
    n: usize,
    hooks: &ExecHooks<'_>,
    work: W,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    W: Fn(std::ops::Range<usize>) -> T + Sync,
{
    let chunk = chunk_len(n);
    let n_chunks = chunk_count(n);
    let jobs = cfg.jobs().min(n_chunks.max(1));
    let range_of = |c: usize| c * chunk..((c + 1) * chunk).min(n);

    let cancelled = || hooks.cancel.is_some_and(|t| t.is_cancelled());

    if jobs <= 1 {
        // Serial path: same chunk geometry, same cancellation points,
        // no threads spawned.
        let mut out = Vec::with_capacity(n_chunks);
        let mut done = 0usize;
        for c in 0..n_chunks {
            if cancelled() {
                return Err(Cancelled);
            }
            let range = range_of(c);
            done += range.len();
            out.push(work(range));
            if let Some(progress) = hooks.progress {
                progress(Progress { done, total: n });
            }
        }
        return Ok(out);
    }

    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n_chunks).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                if cancelled() {
                    return;
                }
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    return;
                }
                let range = range_of(c);
                let len = range.len();
                let result = work(range);
                slots.lock().expect("no worker panicked holding the lock")[c] = Some(result);
                let so_far = done.fetch_add(len, Ordering::Relaxed) + len;
                if let Some(progress) = hooks.progress {
                    progress(Progress {
                        done: so_far,
                        total: n,
                    });
                }
            });
        }
    });

    if cancelled() {
        return Err(Cancelled);
    }
    let slots = slots.into_inner().expect("workers joined");
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every chunk claimed and finished"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::CancelToken;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn chunk_geometry_is_a_pure_function_of_n() {
        assert_eq!(chunk_len(0), 1);
        assert_eq!(chunk_len(1), 1);
        assert_eq!(chunk_len(64), 1);
        assert_eq!(chunk_len(65), 2);
        assert_eq!(chunk_len(1_000_000), 2048);
        for n in [0usize, 1, 7, 63, 64, 65, 500, 4096, 1_000_000] {
            assert!(chunk_count(n) * chunk_len(n) >= n);
            if n > 0 {
                assert!((chunk_count(n) - 1) * chunk_len(n) < n);
            }
        }
    }

    #[test]
    fn map_matches_serial_for_every_job_count() {
        let expect: Vec<u64> = (0..500).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let cfg = ExecConfig::with_jobs(jobs);
            let got = par_map_indexed(&cfg, 500, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let cfg = ExecConfig::with_jobs(8);
        assert_eq!(par_map_indexed(&cfg, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(&cfg, 1, |i| i * 3), vec![0]);
        assert_eq!(par_map_indexed(&cfg, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn fold_is_bit_identical_across_job_counts() {
        // Float summation is order-sensitive; identical results across
        // job counts prove the chunk-ordered merge contract.
        let sum_with = |jobs: usize| {
            par_fold_chunked(
                &ExecConfig::with_jobs(jobs),
                10_000,
                || 0.0f64,
                |acc, i| *acc += 1.0 / (1.0 + i as f64),
                |acc, other| *acc += other,
            )
        };
        let reference = sum_with(1);
        for jobs in [2, 3, 7, 16] {
            assert_eq!(sum_with(jobs).to_bits(), reference.to_bits(), "jobs={jobs}");
        }
    }

    #[test]
    fn fold_of_empty_population_is_init() {
        let v = par_fold_chunked(
            &ExecConfig::with_jobs(4),
            0,
            || 42u64,
            |_, _| unreachable!("no items"),
            |_, _| unreachable!("single init accumulator"),
        );
        assert_eq!(v, 42);
    }

    #[test]
    fn pre_cancelled_run_reports_cancelled() {
        let token = CancelToken::new();
        token.cancel();
        let hooks = ExecHooks {
            cancel: Some(&token),
            progress: None,
        };
        for jobs in [1, 4] {
            let r = try_par_map_indexed(&ExecConfig::with_jobs(jobs), 100, &hooks, |i| i);
            assert_eq!(r, Err(Cancelled), "jobs={jobs}");
        }
    }

    #[test]
    fn cancellation_mid_run_stops_early() {
        let token = CancelToken::new();
        let hooks = ExecHooks {
            cancel: Some(&token),
            progress: None,
        };
        let ran = AtomicUsize::new(0);
        let r = try_par_map_indexed(&ExecConfig::with_jobs(2), 100_000, &hooks, |i| {
            if ran.fetch_add(1, Ordering::Relaxed) == 50 {
                token.cancel();
            }
            i
        });
        assert_eq!(r, Err(Cancelled));
        assert!(
            ran.load(Ordering::Relaxed) < 100_000,
            "cancellation must stop the sweep before completion"
        );
    }

    #[test]
    fn progress_reaches_total_and_stays_in_bounds() {
        let max_seen = AtomicUsize::new(0);
        let callback = |p: Progress| {
            assert!(p.done <= p.total);
            max_seen.fetch_max(p.done, Ordering::Relaxed);
        };
        let hooks = ExecHooks {
            cancel: None,
            progress: Some(&callback),
        };
        for jobs in [1, 4] {
            max_seen.store(0, Ordering::Relaxed);
            let r = try_par_map_indexed(&ExecConfig::with_jobs(jobs), 777, &hooks, |i| i).unwrap();
            assert_eq!(r.len(), 777);
            assert_eq!(max_seen.load(Ordering::Relaxed), 777, "jobs={jobs}");
        }
    }
}
