//! Worker-count resolution: explicit `--jobs` beats `SUBVT_JOBS` beats
//! the machine's available parallelism.

/// How many worker threads a run may use.
///
/// The count never affects results (see the crate docs for the
/// determinism contract) — only wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    jobs: usize,
}

/// The environment variable consulted by [`ExecConfig::from_env`].
pub const JOBS_ENV: &str = "SUBVT_JOBS";

impl ExecConfig {
    /// Exactly `jobs` workers (clamped to at least 1).
    pub fn with_jobs(jobs: usize) -> ExecConfig {
        ExecConfig { jobs: jobs.max(1) }
    }

    /// Serial execution (one worker, no threads spawned).
    pub fn serial() -> ExecConfig {
        ExecConfig::with_jobs(1)
    }

    /// Resolves the worker count from the environment: a valid
    /// positive `SUBVT_JOBS` wins, otherwise the machine's available
    /// parallelism (1 if that cannot be determined).
    pub fn from_env() -> ExecConfig {
        resolve(std::env::var(JOBS_ENV).ok().as_deref())
    }

    /// An explicit request (e.g. a parsed `--jobs` flag) with
    /// [`from_env`](ExecConfig::from_env) as the fallback.
    pub fn from_option(jobs: Option<usize>) -> ExecConfig {
        match jobs {
            Some(j) => ExecConfig::with_jobs(j),
            None => ExecConfig::from_env(),
        }
    }

    /// The resolved worker count (≥ 1).
    pub fn jobs(&self) -> usize {
        self.jobs
    }
}

impl Default for ExecConfig {
    /// [`ExecConfig::from_env`] — the shipped default everywhere.
    fn default() -> ExecConfig {
        ExecConfig::from_env()
    }
}

/// Pure core of [`ExecConfig::from_env`], split out for testing: the
/// raw env value (if set) to a config. Invalid or non-positive values
/// fall back to available parallelism rather than erroring — an
/// experiment should not abort over a typo'd tuning knob.
fn resolve(env_value: Option<&str>) -> ExecConfig {
    if let Some(raw) = env_value {
        if let Ok(jobs) = raw.trim().parse::<usize>() {
            if jobs >= 1 {
                return ExecConfig::with_jobs(jobs);
            }
        }
    }
    ExecConfig::with_jobs(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_jobs_clamp_to_one() {
        assert_eq!(ExecConfig::with_jobs(0).jobs(), 1);
        assert_eq!(ExecConfig::with_jobs(7).jobs(), 7);
        assert_eq!(ExecConfig::serial().jobs(), 1);
    }

    #[test]
    fn env_value_parses_and_falls_back() {
        assert_eq!(resolve(Some("3")).jobs(), 3);
        assert_eq!(resolve(Some(" 12 ")).jobs(), 12);
        let fallback = resolve(None).jobs();
        assert!(fallback >= 1);
        // Garbage and zero fall back to the machine default.
        assert_eq!(resolve(Some("banana")).jobs(), fallback);
        assert_eq!(resolve(Some("0")).jobs(), fallback);
        assert_eq!(resolve(Some("-4")).jobs(), fallback);
    }

    #[test]
    fn option_beats_environment() {
        assert_eq!(ExecConfig::from_option(Some(5)).jobs(), 5);
        assert!(ExecConfig::from_option(None).jobs() >= 1);
    }
}
