//! # subvt-exec — deterministic parallel execution engine
//!
//! The workspace's Monte-Carlo and sweep workloads (yield studies,
//! savings MC, figure regeneration) are embarrassingly parallel, but a
//! reproduction lives or dies on bit-reproducibility: the same seed
//! must give the same statistics on 1 core or 64. This crate provides
//! the execution substrate that makes both true at once, with zero
//! external dependencies (pure `std::thread`, per the hermetic-build
//! policy in DESIGN.md).
//!
//! ## The determinism contract
//!
//! A run of `n` items is bit-identical for **any** worker count
//! because three decisions are taken out of the scheduler's hands:
//!
//! 1. **Per-item randomness is pre-assigned by label/index** (the
//!    `subvt-rng` `fork` discipline): item `i`'s RNG stream depends
//!    only on the root seed and `i`, never on which thread runs it or
//!    when.
//! 2. **Chunk geometry is a pure function of `n`**
//!    ([`chunk_len`]): the same population splits at the same
//!    boundaries whether 1 or 64 workers steal the chunks.
//! 3. **Results commit by index**: [`par_map_indexed`] places item
//!    `i` at slot `i`; [`par_fold_chunked`] merges per-chunk
//!    accumulators in ascending chunk order on the calling thread. The
//!    scheduling race decides only *when* work happens, never where
//!    its result lands or in which order floating-point reductions
//!    associate.
//!
//! ## Pieces
//!
//! * [`ExecConfig`] — worker-count resolution (`--jobs` >
//!   `SUBVT_JOBS` > available parallelism);
//! * [`par_map_indexed`] / [`try_par_map_indexed`] — order-preserving
//!   parallel map over `0..n`;
//! * [`par_fold_chunked`] / [`try_par_fold_chunked`] — the
//!   summary-only path: `O(chunks)` memory instead of `O(n)` results;
//! * [`try_par_fold_commit`] — the chunked fold with an in-order
//!   commit callback and a resume point, for checkpointed runs;
//! * [`checkpoint`] — append-only, CRC-guarded checkpoint files that
//!   make a cancelled fold resume bit-identically;
//! * [`Welford`] and [`QuantileSketch`] — mergeable streaming
//!   statistics designed for the chunked fold;
//! * [`CancelToken`] / [`Progress`] — cooperative, chunk-granular
//!   cancellation and progress.
//!
//! ## Example
//!
//! ```
//! use subvt_exec::{par_fold_chunked, ExecConfig, Welford};
//!
//! // Mean of a million deterministic "samples", summary-only: no
//! // million-element Vec, bit-identical for any worker count.
//! let stats = par_fold_chunked(
//!     &ExecConfig::with_jobs(4),
//!     1_000_000,
//!     Welford::new,
//!     |w, i| w.push((i % 1000) as f64),
//!     |w, part| w.merge(part),
//! );
//! assert_eq!(stats.count(), 1_000_000);
//! assert!((stats.mean().unwrap() - 499.5).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

mod cancel;
pub mod checkpoint;
mod config;
mod scheduler;
mod stats;

pub use cancel::{CancelToken, Cancelled, Progress};
pub use config::{ExecConfig, JOBS_ENV};
pub use scheduler::{
    chunk_count, chunk_len, par_fold_chunked, par_map_indexed, try_par_fold_chunked,
    try_par_fold_commit, try_par_fold_commit_multi, try_par_map_indexed, FoldError,
};
pub use stats::{QuantileSketch, Welford};

/// Optional hooks threaded through the `try_*` run entry points.
#[derive(Default, Clone, Copy)]
pub struct ExecHooks<'a> {
    /// Checked between chunks; a fired token aborts the run with
    /// [`Cancelled`].
    pub cancel: Option<&'a CancelToken>,
    /// Called after each finished chunk with the items completed so
    /// far. Invoked from worker threads — keep it cheap and
    /// thread-safe.
    pub progress: Option<&'a (dyn Fn(Progress) + Sync)>,
}

impl std::fmt::Debug for ExecHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecHooks")
            .field("cancel", &self.cancel)
            .field("progress", &self.progress.map(|_| "<callback>"))
            .finish()
    }
}
