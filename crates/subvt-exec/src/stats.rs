//! Mergeable streaming statistics for summary-only execution.
//!
//! Both accumulators are built for the
//! [`par_fold_chunked`](crate::par_fold_chunked) shape: constant-size
//! state, a `push` for streaming one value, and a `merge` for combining
//! per-chunk partials. The [`QuantileSketch`] merge is exact (integer
//! bin counts — associative and commutative to the bit). The
//! [`Welford`] merge is the Chan et al. pairwise-combination formula:
//! mathematically associative, floating-point-deterministic for a fixed
//! merge order — which the engine's chunk-index-ordered reduction
//! provides.

/// Welford/Chan streaming moments: count, mean, variance, extremes.
///
/// Numerically stable one-pass accumulation (no catastrophic
/// cancellation from naive sum-of-squares), mergeable across chunks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Welford {
        Welford::new()
    }
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Welford {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Streams one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN — a NaN observation would silently poison every
    /// downstream statistic, so it fails loudly at the source.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation pushed into Welford");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Absorbs another accumulator (Chan et al. parallel combination).
    ///
    /// For a fixed merge order the result is bit-deterministic; the
    /// engine always merges chunks in index order, making statistics
    /// invariant to worker count.
    pub fn merge(&mut self, other: Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64 / total as f64);
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, if any observation was seen.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance (`M2 / n`), if any observation was seen.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample variance (`M2 / (n − 1)`); needs ≥ 2 observations.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Serialises the accumulator for a checkpoint record (exact bit
    /// patterns — the round trip is lossless).
    pub fn encode_state(&self, w: &mut crate::checkpoint::StateWriter) {
        w.put_u64(self.count);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }

    /// Restores an accumulator written by [`Welford::encode_state`].
    ///
    /// # Errors
    ///
    /// [`crate::checkpoint::CheckpointError::Decode`] if the state is
    /// exhausted.
    pub fn decode_state(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<Welford, crate::checkpoint::CheckpointError> {
        Ok(Welford {
            count: r.get_u64()?,
            mean: r.get_f64()?,
            m2: r.get_f64()?,
            min: r.get_f64()?,
            max: r.get_f64()?,
        })
    }
}

/// A fixed-size, exactly-mergeable quantile sketch: an equal-width
/// histogram over a configured range plus exact extremes.
///
/// Quantiles are answered by linear interpolation inside the owning
/// bin, so the error is bounded by one bin width — choose the range
/// from domain knowledge (e.g. energies in `[0, 50]` fJ) and the
/// resolution follows. Out-of-range observations are counted in
/// saturating edge buckets and still contribute exactly to `min`/`max`
/// and ranks, so a mis-guessed range degrades resolution, never
/// correctness of counts.
///
/// Merging adds integer bin counts: exactly associative and
/// commutative, so any merge tree gives bit-identical sketches.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    below: u64,
    above: u64,
    count: u64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// A sketch over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty/non-finite or `bins` is zero.
    pub fn new(lo: f64, hi: f64, bins: usize) -> QuantileSketch {
        assert!(
            lo < hi && (hi - lo).is_finite(),
            "invalid sketch range {lo}..{hi}"
        );
        assert!(bins > 0, "sketch needs at least one bin");
        QuantileSketch {
            lo,
            hi,
            bins: vec![0; bins],
            below: 0,
            above: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Streams one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN (same rationale as [`Welford::push`]).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation pushed into QuantileSketch");
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Absorbs another sketch.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches were configured with different
    /// ranges or bin counts — merging those would silently misbin.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "merging incompatible sketches: [{}, {}) x{} vs [{}, {}) x{}",
            self.lo,
            self.hi,
            self.bins.len(),
            other.lo,
            other.hi,
            other.bins.len()
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.below += other.below;
        self.above += other.above;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The approximate `q`-quantile (`q` in `[0, 1]`), within one bin
    /// width of the true value for in-range data.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0, 1]");
        if self.count == 0 {
            return None;
        }
        // Nearest-rank on the cumulative histogram; the edge buckets
        // answer with the exact extremes (the only honest point value
        // an unbounded bucket has).
        let rank = ((q * (self.count - 1) as f64).round() as u64).min(self.count - 1);
        if rank < self.below {
            return Some(self.min);
        }
        let mut cum = self.below;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            if rank < cum + c {
                let within = (rank - cum) as f64 + 0.5;
                let v = self.lo + width * (i as f64 + within / c as f64);
                // Interpolation cannot honestly leave the observed
                // envelope.
                return Some(v.clamp(self.min, self.max));
            }
            cum += c;
        }
        Some(self.max)
    }

    /// Median shorthand.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Serialises the sketch for a checkpoint record.
    pub fn encode_state(&self, w: &mut crate::checkpoint::StateWriter) {
        w.put_f64(self.lo);
        w.put_f64(self.hi);
        w.put_u64(self.bins.len() as u64);
        for &b in &self.bins {
            w.put_u64(b);
        }
        w.put_u64(self.below);
        w.put_u64(self.above);
        w.put_u64(self.count);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }

    /// Restores a sketch written by [`QuantileSketch::encode_state`].
    ///
    /// # Errors
    ///
    /// [`crate::checkpoint::CheckpointError::Decode`] if the state is
    /// exhausted or the bin count is implausible.
    pub fn decode_state(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<QuantileSketch, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        let lo = r.get_f64()?;
        let hi = r.get_f64()?;
        let n_bins = usize::try_from(r.get_u64()?)
            .map_err(|_| CheckpointError::Decode("sketch bin count overflows usize"))?;
        if n_bins == 0 || n_bins > (1 << 24) {
            return Err(CheckpointError::Decode("implausible sketch bin count"));
        }
        let mut bins = Vec::with_capacity(n_bins);
        for _ in 0..n_bins {
            bins.push(r.get_u64()?);
        }
        Ok(QuantileSketch {
            lo,
            hi,
            bins,
            below: r.get_u64()?,
            above: r.get_u64()?,
            count: r.get_u64()?,
            min: r.get_f64()?,
            max: r.get_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_forms() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((w.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((w.std_dev().unwrap() - 2.0).abs() < 1e-12);
        assert!((w.sample_variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_empty_is_all_none() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), None);
        assert_eq!(w.variance(), None);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn welford_merge_agrees_with_streaming() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let mut streamed = Welford::new();
        for &x in &data {
            streamed.push(x);
        }
        let mut merged = Welford::new();
        for part in data.chunks(17) {
            let mut w = Welford::new();
            for &x in part {
                w.push(x);
            }
            merged.merge(w);
        }
        assert_eq!(merged.count(), streamed.count());
        assert!((merged.mean().unwrap() - streamed.mean().unwrap()).abs() < 1e-9);
        assert!((merged.variance().unwrap() - streamed.variance().unwrap()).abs() < 1e-9);
        assert_eq!(merged.min(), streamed.min());
        assert_eq!(merged.max(), streamed.max());
    }

    #[test]
    fn welford_merge_with_empty_is_identity_both_ways() {
        let mut w = Welford::new();
        w.push(1.5);
        w.push(-3.0);
        let snapshot = w;
        w.merge(Welford::new());
        assert_eq!(w, snapshot);
        let mut empty = Welford::new();
        empty.merge(snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn welford_rejects_nan() {
        Welford::new().push(f64::NAN);
    }

    #[test]
    fn sketch_quantiles_on_uniform_ramp() {
        let mut s = QuantileSketch::new(0.0, 100.0, 200);
        for i in 0..10_000 {
            s.push(i as f64 * 0.01); // 0.00 .. 99.99
        }
        assert_eq!(s.count(), 10_000);
        for (q, expect) in [(0.0, 0.0), (0.25, 25.0), (0.5, 50.0), (0.9, 90.0)] {
            let got = s.quantile(q).unwrap();
            assert!((got - expect).abs() < 1.0, "q={q}: {got} vs {expect}");
        }
        assert_eq!(s.quantile(1.0), s.max());
        assert_eq!(s.min(), Some(0.0));
    }

    #[test]
    fn sketch_out_of_range_saturates_but_counts() {
        let mut s = QuantileSketch::new(0.0, 1.0, 4);
        for x in [-5.0, -1.0, 0.5, 2.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), Some(-5.0));
        assert_eq!(s.max(), Some(2.0));
        assert_eq!(s.quantile(0.0), Some(-5.0));
        assert_eq!(s.quantile(1.0), Some(2.0));
    }

    #[test]
    fn sketch_merge_is_exact() {
        let fill = |xs: &[f64]| {
            let mut s = QuantileSketch::new(0.0, 10.0, 32);
            for &x in xs {
                s.push(x);
            }
            s
        };
        let all = fill(&[1.0, 2.0, 3.0, 7.5, 9.9, -1.0, 12.0]);
        let mut merged = fill(&[1.0, 2.0]);
        merged.merge(&fill(&[3.0, 7.5, 9.9]));
        merged.merge(&fill(&[-1.0, 12.0]));
        assert_eq!(merged, all, "bin-count merge must be exact");
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn sketch_rejects_mismatched_merge() {
        let mut a = QuantileSketch::new(0.0, 1.0, 8);
        let b = QuantileSketch::new(0.0, 2.0, 8);
        a.merge(&b);
    }

    #[test]
    fn sketch_empty_quantile_is_none() {
        let s = QuantileSketch::new(0.0, 1.0, 8);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.median(), None);
    }
}
