//! Cooperative cancellation and coarse progress reporting.
//!
//! Cancellation is *chunk-granular*: workers check the token between
//! chunks, never mid-item, so a cancelled run stops quickly (chunks are
//! small) without poisoning any partially computed result. Progress is
//! equally coarse — one callback per finished chunk — because a
//! million-die sweep reporting per die would spend more time in the
//! callback than in the physics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shareable flag that requests a run stop early.
///
/// Clone it (cheap — an `Arc` handle) into whatever owns the
/// cancellation decision (a signal handler, a timeout watchdog, a UI),
/// and pass a reference to the run via
/// [`ExecHooks`](crate::ExecHooks). All clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The error a cancelled run returns in place of its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution cancelled by token")
    }
}

impl std::error::Error for Cancelled {}

/// A progress snapshot handed to the progress callback after each
/// finished chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Items finished so far (monotone, but callbacks from different
    /// worker threads may arrive out of order).
    pub done: usize,
    /// Total items in the run.
    pub total: usize,
}

impl Progress {
    /// Completed fraction in `[0, 1]` (1.0 for an empty run).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.done as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_round_trip() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled(), "clones share the flag");
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn progress_fraction() {
        let p = Progress {
            done: 25,
            total: 100,
        };
        assert!((p.fraction() - 0.25).abs() < 1e-12);
        let empty = Progress { done: 0, total: 0 };
        assert_eq!(empty.fraction(), 1.0);
    }

    #[test]
    fn cancelled_displays() {
        assert_eq!(Cancelled.to_string(), "execution cancelled by token");
    }
}
