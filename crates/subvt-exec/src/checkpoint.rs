//! Chunk-granular checkpoint files for resumable committing folds.
//!
//! A checkpoint file records the *running merged accumulator* of a
//! [`try_par_fold_commit`](crate::try_par_fold_commit) run after each
//! committed chunk. Because the engine commits strictly in chunk
//! order, resuming from the last record — seed the fold with the saved
//! accumulator state and start at the saved chunk index — replays the
//! exact merge sequence of an uninterrupted run, so the resumed result
//! is bit-identical (floats are stored as raw IEEE-754 bit patterns,
//! never formatted).
//!
//! ## File format (version 1, little-endian throughout)
//!
//! ```text
//! header:  magic  b"SVCP"       4 bytes
//!          version u32          = 1
//!          fingerprint u64      caller-supplied run identity
//!          total_items u64      population size n
//!          crc32 u32            over the 24 header bytes above
//! record:  chunks_done u64      chunks merged into this state
//!          state_len u32
//!          state bytes          opaque accumulator state
//!          crc32 u32            over chunks_done ‖ state_len ‖ state
//! ```
//!
//! Records only ever append; each is written with a single `write`
//! call and flushed, so a run cancelled at a commit boundary always
//! leaves a well-formed file. The reader is strict: a bad magic,
//! unknown version, CRC mismatch, non-monotonic record order, or a
//! trailing partial record is a hard [`CheckpointError`] — a damaged
//! checkpoint is **rejected, never silently restarted**, because the
//! caller cannot tell a torn file from a wrong one.
//!
//! The `fingerprint` is the caller's hash of everything that shapes
//! the run's results (seed, population, model, spec, …) so a
//! checkpoint cannot be resumed under a different configuration.
//! Worker count and batch size must *not* be part of it: the engine
//! guarantees those don't change results, and resuming at a different
//! `--jobs` is explicitly supported.
//!
//! ## Matrix format (version 2)
//!
//! A matrix run ([`try_par_fold_commit_multi`]) folds one die stream
//! into N per-cell accumulators, so its records carry N state blobs:
//!
//! ```text
//! header:  magic  b"SVCP"       4 bytes
//!          version u32          = 2
//!          fingerprint u64      matrix identity (all cells)
//!          total_items u64      population size n
//!          cells u32            per-record state count N
//!          crc32 u32            over the 28 header bytes above
//! record:  chunks_done u64
//!          N × (state_len u32, state bytes)
//!          crc32 u32            over the whole record body
//! ```
//!
//! Everything else — append-only single-write records, the strict
//! reader, the reject-never-salvage rule — carries over unchanged.
//! The version-1 reader rejects a version-2 file (and vice versa)
//! with [`CheckpointError::BadVersion`]: the two formats are distinct
//! on purpose, so a single-cell resume can never consume a matrix
//! file.
//!
//! [`try_par_fold_commit_multi`]: crate::try_par_fold_commit_multi

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

const MAGIC: [u8; 4] = *b"SVCP";
const VERSION: u32 = 1;
const MATRIX_VERSION: u32 = 2;
/// magic + version + fingerprint + total_items + crc32.
const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 4;
/// magic + version + fingerprint + total_items + cells + crc32.
const MATRIX_HEADER_LEN: usize = 4 + 4 + 8 + 8 + 4 + 4;
/// chunks_done + state_len + crc32 (excluding the state bytes).
const RECORD_OVERHEAD: usize = 8 + 4 + 4;

/// Why a checkpoint file could not be written, read, or trusted.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with the `SVCP` magic — not a
    /// checkpoint file.
    BadMagic,
    /// The file uses a format version this build does not understand.
    BadVersion(u32),
    /// The file belongs to a different run configuration.
    FingerprintMismatch {
        /// Fingerprint of the run asking to resume.
        expected: u64,
        /// Fingerprint stored in the file.
        found: u64,
    },
    /// The file was written for a different population size.
    TotalMismatch {
        /// Population of the run asking to resume.
        expected: u64,
        /// Population stored in the file.
        found: u64,
    },
    /// A matrix file was written for a different cell count.
    CellsMismatch {
        /// Cell count of the matrix asking to resume.
        expected: u32,
        /// Cell count stored in the file.
        found: u32,
    },
    /// The file is damaged: truncated, torn, CRC mismatch, or records
    /// out of order. The message names the first violation.
    Corrupt(&'static str),
    /// A stored accumulator state did not decode back into the
    /// expected shape.
    Decode(&'static str),
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different run \
                 (fingerprint {found:#018x}, this run is {expected:#018x})"
            ),
            CheckpointError::TotalMismatch { expected, found } => write!(
                f,
                "checkpoint covers {found} items, this run has {expected}"
            ),
            CheckpointError::CellsMismatch { expected, found } => write!(
                f,
                "matrix checkpoint carries {found} cells, this matrix has {expected}"
            ),
            CheckpointError::Corrupt(what) => {
                write!(f, "corrupt checkpoint file ({what}); refusing to resume")
            }
            CheckpointError::Decode(what) => {
                write!(f, "checkpoint state failed to decode ({what})")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected) — the integrity check on the header
/// and every record. Bitwise implementation; checkpoint traffic is a
/// few kilobytes per commit, far below where a table would matter.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Serialises accumulator state for a checkpoint record: fixed-width
/// little-endian integers, floats as raw IEEE-754 bits (bit-exact
/// round-trip, which the resume contract requires).
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// An empty state buffer.
    pub fn new() -> StateWriter {
        StateWriter::default()
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// The serialised state.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Deserialises accumulator state written by [`StateWriter`].
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
}

impl<'a> StateReader<'a> {
    /// Reads from a record's state bytes.
    pub fn new(buf: &'a [u8]) -> StateReader<'a> {
        StateReader { buf }
    }

    /// Takes the next `u64`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Decode`] if the state is exhausted.
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        let (head, rest) = self
            .buf
            .split_at_checked(8)
            .ok_or(CheckpointError::Decode("state shorter than expected"))?;
        self.buf = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8-byte split")))
    }

    /// Takes the next `f64` (exact bit pattern).
    ///
    /// # Errors
    ///
    /// As [`StateReader::get_u64`].
    pub fn get_f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Asserts the state was fully consumed — a length mismatch means
    /// the state does not belong to this accumulator shape.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Decode`] if bytes remain.
    pub fn finish(self) -> Result<(), CheckpointError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CheckpointError::Decode("state longer than expected"))
        }
    }
}

/// The latest committed state recovered from a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// Chunks merged into `state` (the resume point's `start_chunk`).
    pub chunks_done: u64,
    /// Opaque accumulator state, as handed to
    /// [`CheckpointWriter::append`].
    pub state: Vec<u8>,
}

/// A fully validated checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Run identity the file was created with.
    pub fingerprint: u64,
    /// Population size the file was created with.
    pub total_items: u64,
    /// The last committed record; `None` for a header-only file
    /// (created, then cancelled before the first commit).
    pub last: Option<CheckpointRecord>,
}

impl Checkpoint {
    /// Checks the file belongs to the run asking to resume.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::FingerprintMismatch`] /
    /// [`CheckpointError::TotalMismatch`] when it does not.
    pub fn verify(&self, fingerprint: u64, total_items: u64) -> Result<(), CheckpointError> {
        if self.fingerprint != fingerprint {
            return Err(CheckpointError::FingerprintMismatch {
                expected: fingerprint,
                found: self.fingerprint,
            });
        }
        if self.total_items != total_items {
            return Err(CheckpointError::TotalMismatch {
                expected: total_items,
                found: self.total_items,
            });
        }
        Ok(())
    }
}

/// Append-only writer for a checkpoint file.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: File,
    last_chunks_done: u64,
}

impl CheckpointWriter {
    /// Creates (truncating) a checkpoint file and writes its header.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn create(
        path: &Path,
        fingerprint: u64,
        total_items: u64,
    ) -> Result<CheckpointWriter, CheckpointError> {
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&fingerprint.to_le_bytes());
        header.extend_from_slice(&total_items.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        let mut file = File::create(path)?;
        file.write_all(&header)?;
        file.flush()?;
        Ok(CheckpointWriter {
            file,
            last_chunks_done: 0,
        })
    }

    /// Appends one committed-state record (a single `write` + flush,
    /// so a cancellation between commits never tears the file).
    ///
    /// # Panics
    ///
    /// Panics if `chunks_done` does not increase monotonically — the
    /// commit engine calls in chunk order by construction.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn append(&mut self, chunks_done: u64, state: &[u8]) -> Result<(), CheckpointError> {
        assert!(
            chunks_done > self.last_chunks_done,
            "checkpoint records must advance: {} after {}",
            chunks_done,
            self.last_chunks_done
        );
        let state_len =
            u32::try_from(state.len()).map_err(|_| CheckpointError::Decode("state too large"))?;
        let mut record = Vec::with_capacity(RECORD_OVERHEAD + state.len());
        record.extend_from_slice(&chunks_done.to_le_bytes());
        record.extend_from_slice(&state_len.to_le_bytes());
        record.extend_from_slice(state);
        let crc = crc32(&record);
        record.extend_from_slice(&crc.to_le_bytes());
        self.file.write_all(&record)?;
        self.file.flush()?;
        self.last_chunks_done = chunks_done;
        Ok(())
    }
}

/// Reads and fully validates a checkpoint file.
///
/// Every record's CRC is checked and record order must strictly
/// advance; the last record wins (earlier ones are just the commit
/// history). Any structural damage is a hard error — see the module
/// docs for why a damaged file is never treated as absent.
///
/// # Errors
///
/// [`CheckpointError::Io`] if the file cannot be read,
/// [`CheckpointError::BadMagic`] / [`CheckpointError::BadVersion`] /
/// [`CheckpointError::Corrupt`] on structural damage.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let data = std::fs::read(path)?;
    parse_checkpoint(&data)
}

fn parse_checkpoint(data: &[u8]) -> Result<Checkpoint, CheckpointError> {
    if data.len() < 4 {
        return Err(
            if data.starts_with(&MAGIC[..data.len()]) && !data.is_empty() {
                CheckpointError::Corrupt("truncated header")
            } else {
                CheckpointError::BadMagic
            },
        );
    }
    if data[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if data.len() < HEADER_LEN {
        return Err(CheckpointError::Corrupt("truncated header"));
    }
    let field_u32 = |at: usize| u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"));
    let field_u64 = |at: usize| u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"));
    let version = field_u32(4);
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    if crc32(&data[..HEADER_LEN - 4]) != field_u32(HEADER_LEN - 4) {
        return Err(CheckpointError::Corrupt("header CRC mismatch"));
    }
    let fingerprint = field_u64(8);
    let total_items = field_u64(16);

    let mut last: Option<CheckpointRecord> = None;
    let mut at = HEADER_LEN;
    while at < data.len() {
        if data.len() - at < RECORD_OVERHEAD {
            return Err(CheckpointError::Corrupt("truncated record"));
        }
        let chunks_done = field_u64(at);
        let state_len = field_u32(at + 8) as usize;
        let body_end = at + 12 + state_len;
        if data.len() - (at + 12) < state_len + 4 {
            return Err(CheckpointError::Corrupt("truncated record"));
        }
        if crc32(&data[at..body_end]) != field_u32(body_end) {
            return Err(CheckpointError::Corrupt("record CRC mismatch"));
        }
        if last.as_ref().is_some_and(|l| chunks_done <= l.chunks_done) {
            return Err(CheckpointError::Corrupt("records out of order"));
        }
        last = Some(CheckpointRecord {
            chunks_done,
            state: data[at + 12..body_end].to_vec(),
        });
        at = body_end + 4;
    }
    Ok(Checkpoint {
        fingerprint,
        total_items,
        last,
    })
}

/// Opens an existing checkpoint for resuming: validates the whole
/// file, then returns it with a writer positioned to append.
///
/// # Errors
///
/// As [`read_checkpoint`].
pub fn open_for_resume(path: &Path) -> Result<(Checkpoint, CheckpointWriter), CheckpointError> {
    let checkpoint = read_checkpoint(path)?;
    let file = OpenOptions::new().append(true).open(path)?;
    let last_chunks_done = checkpoint.last.as_ref().map_or(0, |r| r.chunks_done);
    Ok((
        checkpoint,
        CheckpointWriter {
            file,
            last_chunks_done,
        },
    ))
}

/// The latest committed matrix record: one state blob per cell, all
/// merged through the same `chunks_done` chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixCheckpointRecord {
    /// Chunks merged into every cell state.
    pub chunks_done: u64,
    /// One opaque accumulator state per cell, in cell order.
    pub states: Vec<Vec<u8>>,
}

/// A fully validated version-2 (matrix) checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixCheckpoint {
    /// Matrix identity the file was created with.
    pub fingerprint: u64,
    /// Population size the file was created with.
    pub total_items: u64,
    /// Cell count every record carries.
    pub cells: u32,
    /// The last committed record; `None` for a header-only file.
    pub last: Option<MatrixCheckpointRecord>,
}

impl MatrixCheckpoint {
    /// Checks the file belongs to the matrix asking to resume.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::FingerprintMismatch`] /
    /// [`CheckpointError::TotalMismatch`] /
    /// [`CheckpointError::CellsMismatch`] when it does not.
    pub fn verify(
        &self,
        fingerprint: u64,
        total_items: u64,
        cells: u32,
    ) -> Result<(), CheckpointError> {
        if self.fingerprint != fingerprint {
            return Err(CheckpointError::FingerprintMismatch {
                expected: fingerprint,
                found: self.fingerprint,
            });
        }
        if self.total_items != total_items {
            return Err(CheckpointError::TotalMismatch {
                expected: total_items,
                found: self.total_items,
            });
        }
        if self.cells != cells {
            return Err(CheckpointError::CellsMismatch {
                expected: cells,
                found: self.cells,
            });
        }
        Ok(())
    }
}

/// Append-only writer for a version-2 (matrix) checkpoint file.
#[derive(Debug)]
pub struct MatrixCheckpointWriter {
    file: File,
    last_chunks_done: u64,
    cells: u32,
}

impl MatrixCheckpointWriter {
    /// Creates (truncating) a matrix checkpoint file and writes its
    /// header.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn create(
        path: &Path,
        fingerprint: u64,
        total_items: u64,
        cells: u32,
    ) -> Result<MatrixCheckpointWriter, CheckpointError> {
        let mut header = Vec::with_capacity(MATRIX_HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&MATRIX_VERSION.to_le_bytes());
        header.extend_from_slice(&fingerprint.to_le_bytes());
        header.extend_from_slice(&total_items.to_le_bytes());
        header.extend_from_slice(&cells.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        let mut file = File::create(path)?;
        file.write_all(&header)?;
        file.flush()?;
        Ok(MatrixCheckpointWriter {
            file,
            last_chunks_done: 0,
            cells,
        })
    }

    /// Appends one committed multi-cell record (a single `write` +
    /// flush, like the single-cell writer).
    ///
    /// # Panics
    ///
    /// Panics if `chunks_done` does not increase monotonically or
    /// `states` does not match the header's cell count — both hold by
    /// construction in the commit engine.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn append(&mut self, chunks_done: u64, states: &[Vec<u8>]) -> Result<(), CheckpointError> {
        assert!(
            chunks_done > self.last_chunks_done,
            "checkpoint records must advance: {} after {}",
            chunks_done,
            self.last_chunks_done
        );
        assert_eq!(
            states.len(),
            self.cells as usize,
            "matrix record must carry one state per cell"
        );
        let body_len = 8 + states.iter().map(|s| 4 + s.len()).sum::<usize>();
        let mut record = Vec::with_capacity(body_len + 4);
        record.extend_from_slice(&chunks_done.to_le_bytes());
        for state in states {
            let state_len = u32::try_from(state.len())
                .map_err(|_| CheckpointError::Decode("state too large"))?;
            record.extend_from_slice(&state_len.to_le_bytes());
            record.extend_from_slice(state);
        }
        let crc = crc32(&record);
        record.extend_from_slice(&crc.to_le_bytes());
        self.file.write_all(&record)?;
        self.file.flush()?;
        self.last_chunks_done = chunks_done;
        Ok(())
    }
}

/// Reads and fully validates a version-2 (matrix) checkpoint file,
/// with the same strictness as [`read_checkpoint`].
///
/// # Errors
///
/// As [`read_checkpoint`]; a version-1 file is
/// [`CheckpointError::BadVersion`]`(1)`.
pub fn read_matrix_checkpoint(path: &Path) -> Result<MatrixCheckpoint, CheckpointError> {
    let data = std::fs::read(path)?;
    parse_matrix_checkpoint(&data)
}

fn parse_matrix_checkpoint(data: &[u8]) -> Result<MatrixCheckpoint, CheckpointError> {
    if data.len() < 4 {
        return Err(
            if data.starts_with(&MAGIC[..data.len()]) && !data.is_empty() {
                CheckpointError::Corrupt("truncated header")
            } else {
                CheckpointError::BadMagic
            },
        );
    }
    if data[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let field_u32 = |at: usize| u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"));
    let field_u64 = |at: usize| u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"));
    if data.len() < 8 {
        return Err(CheckpointError::Corrupt("truncated header"));
    }
    // Version before length: a well-formed version-1 file is shorter
    // than a matrix header, and must report the version mismatch, not
    // truncation.
    let version = field_u32(4);
    if version != MATRIX_VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    if data.len() < MATRIX_HEADER_LEN {
        return Err(CheckpointError::Corrupt("truncated header"));
    }
    if crc32(&data[..MATRIX_HEADER_LEN - 4]) != field_u32(MATRIX_HEADER_LEN - 4) {
        return Err(CheckpointError::Corrupt("header CRC mismatch"));
    }
    let fingerprint = field_u64(8);
    let total_items = field_u64(16);
    let cells = field_u32(24);

    let mut last: Option<MatrixCheckpointRecord> = None;
    let mut at = MATRIX_HEADER_LEN;
    while at < data.len() {
        let start = at;
        if data.len() - at < 8 {
            return Err(CheckpointError::Corrupt("truncated record"));
        }
        let chunks_done = field_u64(at);
        at += 8;
        let mut states = Vec::with_capacity(cells as usize);
        for _ in 0..cells {
            if data.len() - at < 4 {
                return Err(CheckpointError::Corrupt("truncated record"));
            }
            let state_len = field_u32(at) as usize;
            at += 4;
            if data.len() - at < state_len {
                return Err(CheckpointError::Corrupt("truncated record"));
            }
            states.push(data[at..at + state_len].to_vec());
            at += state_len;
        }
        if data.len() - at < 4 {
            return Err(CheckpointError::Corrupt("truncated record"));
        }
        if crc32(&data[start..at]) != field_u32(at) {
            return Err(CheckpointError::Corrupt("record CRC mismatch"));
        }
        at += 4;
        if last.as_ref().is_some_and(|l| chunks_done <= l.chunks_done) {
            return Err(CheckpointError::Corrupt("records out of order"));
        }
        last = Some(MatrixCheckpointRecord {
            chunks_done,
            states,
        });
    }
    Ok(MatrixCheckpoint {
        fingerprint,
        total_items,
        cells,
        last,
    })
}

/// Opens an existing matrix checkpoint for resuming: validates the
/// whole file, then returns it with a writer positioned to append.
///
/// # Errors
///
/// As [`read_matrix_checkpoint`].
pub fn open_matrix_for_resume(
    path: &Path,
) -> Result<(MatrixCheckpoint, MatrixCheckpointWriter), CheckpointError> {
    let checkpoint = read_matrix_checkpoint(path)?;
    let file = OpenOptions::new().append(true).open(path)?;
    let last_chunks_done = checkpoint.last.as_ref().map_or(0, |r| r.chunks_done);
    let cells = checkpoint.cells;
    Ok((
        checkpoint,
        MatrixCheckpointWriter {
            file,
            last_chunks_done,
            cells,
        },
    ))
}

/// FNV-1a hash of a run-identity description — the conventional way
/// to derive a checkpoint fingerprint from a config string.
pub fn fingerprint_of(description: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in description.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("subvt-checkpoint-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_header_and_records() {
        let path = tmp("roundtrip");
        let mut w = CheckpointWriter::create(&path, 0xDEAD_BEEF, 1000).unwrap();
        w.append(3, &[1, 2, 3]).unwrap();
        w.append(7, &[4, 5]).unwrap();
        let cp = read_checkpoint(&path).unwrap();
        assert_eq!(cp.fingerprint, 0xDEAD_BEEF);
        assert_eq!(cp.total_items, 1000);
        cp.verify(0xDEAD_BEEF, 1000).unwrap();
        let last = cp.last.unwrap();
        assert_eq!(last.chunks_done, 7);
        assert_eq!(last.state, vec![4, 5]);
        assert!(matches!(
            read_checkpoint(&path).unwrap().verify(1, 1000),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
        assert!(matches!(
            read_checkpoint(&path).unwrap().verify(0xDEAD_BEEF, 999),
            Err(CheckpointError::TotalMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_only_file_has_no_record() {
        let path = tmp("header-only");
        CheckpointWriter::create(&path, 7, 10).unwrap();
        let cp = read_checkpoint(&path).unwrap();
        assert_eq!(cp.last, None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_writer_appends_after_existing_records() {
        let path = tmp("resume-append");
        let mut w = CheckpointWriter::create(&path, 9, 50).unwrap();
        w.append(2, &[10]).unwrap();
        drop(w);
        let (cp, mut w) = open_for_resume(&path).unwrap();
        assert_eq!(cp.last.as_ref().unwrap().chunks_done, 2);
        w.append(5, &[20]).unwrap();
        let cp = read_checkpoint(&path).unwrap();
        assert_eq!(cp.last.unwrap().chunks_done, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "must advance")]
    fn writer_rejects_non_monotonic_records() {
        let path = tmp("non-monotonic");
        let mut w = CheckpointWriter::create(&path, 1, 10).unwrap();
        w.append(4, &[]).unwrap();
        let _ = w.append(4, &[]);
    }

    #[test]
    fn damage_is_rejected_not_salvaged() {
        let path = tmp("damage");
        let mut w = CheckpointWriter::create(&path, 11, 64).unwrap();
        w.append(1, &[9; 40]).unwrap();
        w.append(2, &[8; 40]).unwrap();
        drop(w);
        let good = std::fs::read(&path).unwrap();

        // Flip one byte inside the last record's state.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 10] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Corrupt("record CRC mismatch"))
        ));

        // Truncate mid-record.
        std::fs::write(&path, &good[..n - 7]).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Corrupt("truncated record"))
        ));

        // Not a checkpoint at all.
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::BadMagic)
        ));

        // Wrong version.
        let mut versioned = good.clone();
        versioned[4] = 99;
        std::fs::write(&path, &versioned).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::BadVersion(99))
        ));

        // Header CRC mismatch (restore version, corrupt fingerprint).
        let mut torn = good;
        torn[9] ^= 0x01;
        std::fs::write(&path, &torn).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Corrupt("header CRC mismatch"))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_round_trips_per_cell_states() {
        let path = tmp("matrix-roundtrip");
        let mut w = MatrixCheckpointWriter::create(&path, 0xFACE, 500, 3).unwrap();
        w.append(2, &[vec![1], vec![2, 2], vec![]]).unwrap();
        w.append(5, &[vec![9], vec![8, 8], vec![7]]).unwrap();
        let cp = read_matrix_checkpoint(&path).unwrap();
        assert_eq!((cp.fingerprint, cp.total_items, cp.cells), (0xFACE, 500, 3));
        cp.verify(0xFACE, 500, 3).unwrap();
        assert!(matches!(
            cp.verify(0xFACE, 500, 4),
            Err(CheckpointError::CellsMismatch {
                expected: 4,
                found: 3
            })
        ));
        let last = cp.last.unwrap();
        assert_eq!(last.chunks_done, 5);
        assert_eq!(last.states, vec![vec![9], vec![8, 8], vec![7]]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_resume_writer_appends_after_existing_records() {
        let path = tmp("matrix-resume");
        let mut w = MatrixCheckpointWriter::create(&path, 4, 60, 2).unwrap();
        w.append(1, &[vec![5; 10], vec![6; 10]]).unwrap();
        drop(w);
        let (cp, mut w) = open_matrix_for_resume(&path).unwrap();
        assert_eq!(cp.last.as_ref().unwrap().chunks_done, 1);
        w.append(3, &[vec![1; 10], vec![2; 10]]).unwrap();
        let cp = read_matrix_checkpoint(&path).unwrap();
        assert_eq!(cp.last.unwrap().chunks_done, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_and_single_cell_formats_reject_each_other() {
        let single = tmp("v1-for-v2");
        CheckpointWriter::create(&single, 1, 10).unwrap();
        assert!(matches!(
            read_matrix_checkpoint(&single),
            Err(CheckpointError::BadVersion(1))
        ));
        let matrix = tmp("v2-for-v1");
        MatrixCheckpointWriter::create(&matrix, 1, 10, 2).unwrap();
        assert!(matches!(
            read_checkpoint(&matrix),
            Err(CheckpointError::BadVersion(2))
        ));
        std::fs::remove_file(&single).ok();
        std::fs::remove_file(&matrix).ok();
    }

    #[test]
    fn matrix_damage_is_rejected_not_salvaged() {
        let path = tmp("matrix-damage");
        let mut w = MatrixCheckpointWriter::create(&path, 3, 64, 2).unwrap();
        w.append(1, &[vec![9; 20], vec![8; 20]]).unwrap();
        drop(w);
        let good = std::fs::read(&path).unwrap();
        let n = good.len();

        let mut bad = good.clone();
        bad[n - 10] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_matrix_checkpoint(&path),
            Err(CheckpointError::Corrupt("record CRC mismatch"))
        ));

        std::fs::write(&path, &good[..n - 7]).unwrap();
        assert!(matches!(
            read_matrix_checkpoint(&path),
            Err(CheckpointError::Corrupt("truncated record"))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn state_codec_round_trips_exact_bits() {
        let mut w = StateWriter::new();
        w.put_u64(42);
        w.put_f64(-0.0);
        w.put_f64(f64::INFINITY);
        w.put_f64(1.0 / 3.0);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u64().unwrap(), 42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap(), f64::INFINITY);
        assert_eq!(r.get_f64().unwrap().to_bits(), (1.0f64 / 3.0).to_bits());
        r.finish().unwrap();

        let bytes = {
            let mut w = StateWriter::new();
            w.put_u64(1);
            w.into_bytes()
        };
        let mut r = StateReader::new(&bytes);
        r.get_u64().unwrap();
        assert!(matches!(r.get_u64(), Err(CheckpointError::Decode(_))));
        let r = StateReader::new(&bytes);
        assert!(matches!(r.finish(), Err(CheckpointError::Decode(_))));
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let a = fingerprint_of("seed=1 dies=100");
        assert_eq!(a, fingerprint_of("seed=1 dies=100"));
        assert_ne!(a, fingerprint_of("seed=2 dies=100"));
    }
}
