//! Portable 4-wide `f64` lanes for the fleet hot paths.
//!
//! This is a shim, not a SIMD library: [`F64x4`] is a plain
//! `[f64; 4]` newtype whose operations are written as fixed-width
//! elementwise loops that stable rustc reliably autovectorizes
//! (`-C opt-level=3`, no intrinsics, no nightly features). The point
//! is to make the wide shape *explicit* in the kernel source — four
//! dies per iteration, a scalar ragged tail — instead of hoping the
//! optimizer discovers it through iterator chains.
//!
//! # Bit-identity contract
//!
//! Every operation here is **elementwise in unchanged per-element
//! order**: lane `i` of the result is exactly the scalar expression
//! applied to lane `i` of the inputs, with no reassociation, no
//! horizontal shuffles, and no fused rounding the scalar path didn't
//! have. IEEE 754 `+ − × ÷`, `min`/`max` and comparisons are
//! deterministic per element, so a kernel built from these ops is
//! bit-identical to the scalar loop it replaces — the property the
//! fleet engine's checkpoint-equality suite pins. Two deliberate
//! consequences:
//!
//! * **Horizontal reductions stay scalar.** There is no `sum()` here;
//!   folding lanes in a different order than the scalar loop would
//!   reassociate floating-point addition.
//! * **[`F64x4::mul_add`] is opt-in contraction.** It rounds once
//!   where `a * b + c` rounds twice, so it may only replace scalar
//!   code that itself called `f64::mul_add`.
//!
//! Transcendentals (`exp`, `ln_1p`, `powf`) are intentionally absent:
//! the hot kernels keep those scalar per element, calling the exact
//! libm routine the scalar path calls.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// The lane width every wide kernel in the workspace is written at.
pub const LANES: usize = 4;

/// Four `f64` lanes with elementwise, order-preserving semantics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All four lanes set to `v`.
    #[inline]
    pub fn splat(v: f64) -> F64x4 {
        F64x4([v; 4])
    }

    /// Loads four consecutive values from `slice` starting at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `slice[at..at + 4]` is out of bounds.
    #[inline]
    pub fn load(slice: &[f64], at: usize) -> F64x4 {
        let s: &[f64; 4] = slice[at..at + 4].try_into().expect("4-wide load");
        F64x4(*s)
    }

    /// Stores the four lanes into `slice[at..at + 4]`.
    ///
    /// # Panics
    ///
    /// Panics if `slice[at..at + 4]` is out of bounds.
    #[inline]
    pub fn store(self, slice: &mut [f64], at: usize) {
        let d: &mut [f64; 4] = (&mut slice[at..at + 4]).try_into().expect("4-wide store");
        *d = self.0;
    }

    /// The lanes as a plain array.
    #[inline]
    pub fn to_array(self) -> [f64; 4] {
        self.0
    }

    /// Elementwise fused multiply-add: `self[i].mul_add(b[i], c[i])`.
    ///
    /// Contracted rounding — bit-identical only to scalar code that
    /// also called `f64::mul_add` (see the crate docs).
    #[inline]
    pub fn mul_add(self, b: F64x4, c: F64x4) -> F64x4 {
        F64x4([
            self.0[0].mul_add(b.0[0], c.0[0]),
            self.0[1].mul_add(b.0[1], c.0[1]),
            self.0[2].mul_add(b.0[2], c.0[2]),
            self.0[3].mul_add(b.0[3], c.0[3]),
        ])
    }

    /// Elementwise `f64::min` (NaN-propagation semantics of
    /// `f64::min`, i.e. the non-NaN operand wins).
    #[inline]
    pub fn min(self, o: F64x4) -> F64x4 {
        F64x4([
            self.0[0].min(o.0[0]),
            self.0[1].min(o.0[1]),
            self.0[2].min(o.0[2]),
            self.0[3].min(o.0[3]),
        ])
    }

    /// Elementwise `f64::max`.
    #[inline]
    pub fn max(self, o: F64x4) -> F64x4 {
        F64x4([
            self.0[0].max(o.0[0]),
            self.0[1].max(o.0[1]),
            self.0[2].max(o.0[2]),
            self.0[3].max(o.0[3]),
        ])
    }

    /// Elementwise absolute value.
    #[inline]
    pub fn abs(self) -> F64x4 {
        F64x4([
            self.0[0].abs(),
            self.0[1].abs(),
            self.0[2].abs(),
            self.0[3].abs(),
        ])
    }

    /// Elementwise reciprocal `1.0 / self[i]` (a true IEEE divide,
    /// never the approximate `rcpps`).
    #[inline]
    pub fn recip(self) -> F64x4 {
        F64x4([
            1.0 / self.0[0],
            1.0 / self.0[1],
            1.0 / self.0[2],
            1.0 / self.0[3],
        ])
    }

    /// Elementwise `self[i] < o[i]`.
    #[inline]
    pub fn lt(self, o: F64x4) -> Mask4 {
        Mask4([
            self.0[0] < o.0[0],
            self.0[1] < o.0[1],
            self.0[2] < o.0[2],
            self.0[3] < o.0[3],
        ])
    }

    /// Elementwise `self[i] <= o[i]`.
    #[inline]
    pub fn le(self, o: F64x4) -> Mask4 {
        Mask4([
            self.0[0] <= o.0[0],
            self.0[1] <= o.0[1],
            self.0[2] <= o.0[2],
            self.0[3] <= o.0[3],
        ])
    }

    /// Elementwise `self[i] >= o[i]`.
    #[inline]
    pub fn ge(self, o: F64x4) -> Mask4 {
        Mask4([
            self.0[0] >= o.0[0],
            self.0[1] >= o.0[1],
            self.0[2] >= o.0[2],
            self.0[3] >= o.0[3],
        ])
    }
}

impl Add for F64x4 {
    type Output = F64x4;
    #[inline]
    fn add(self, o: F64x4) -> F64x4 {
        F64x4([
            self.0[0] + o.0[0],
            self.0[1] + o.0[1],
            self.0[2] + o.0[2],
            self.0[3] + o.0[3],
        ])
    }
}

impl Sub for F64x4 {
    type Output = F64x4;
    #[inline]
    fn sub(self, o: F64x4) -> F64x4 {
        F64x4([
            self.0[0] - o.0[0],
            self.0[1] - o.0[1],
            self.0[2] - o.0[2],
            self.0[3] - o.0[3],
        ])
    }
}

impl Mul for F64x4 {
    type Output = F64x4;
    #[inline]
    fn mul(self, o: F64x4) -> F64x4 {
        F64x4([
            self.0[0] * o.0[0],
            self.0[1] * o.0[1],
            self.0[2] * o.0[2],
            self.0[3] * o.0[3],
        ])
    }
}

impl Div for F64x4 {
    type Output = F64x4;
    #[inline]
    fn div(self, o: F64x4) -> F64x4 {
        F64x4([
            self.0[0] / o.0[0],
            self.0[1] / o.0[1],
            self.0[2] / o.0[2],
            self.0[3] / o.0[3],
        ])
    }
}

impl Neg for F64x4 {
    type Output = F64x4;
    #[inline]
    fn neg(self) -> F64x4 {
        F64x4([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
    }
}

/// A four-lane boolean mask (the result of the comparison ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct Mask4(pub [bool; 4]);

impl Mask4 {
    /// Lane-selects: `if mask[i] { a[i] } else { b[i] }`.
    #[inline]
    pub fn select(self, a: F64x4, b: F64x4) -> F64x4 {
        F64x4([
            if self.0[0] { a.0[0] } else { b.0[0] },
            if self.0[1] { a.0[1] } else { b.0[1] },
            if self.0[2] { a.0[2] } else { b.0[2] },
            if self.0[3] { a.0[3] } else { b.0[3] },
        ])
    }

    /// True when every lane is true.
    #[inline]
    pub fn all(self) -> bool {
        self.0[0] && self.0[1] && self.0[2] && self.0[3]
    }

    /// True when any lane is true.
    #[inline]
    pub fn any(self) -> bool {
        self.0[0] || self.0[1] || self.0[2] || self.0[3]
    }

    /// Lane-wise AND.
    #[inline]
    pub fn and(self, o: Mask4) -> Mask4 {
        Mask4([
            self.0[0] && o.0[0],
            self.0[1] && o.0[1],
            self.0[2] && o.0[2],
            self.0[3] && o.0[3],
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> F64x4 {
        F64x4([1.5, -2.25, 3.0e-7, f64::MAX])
    }

    fn b() -> F64x4 {
        F64x4([0.3, 7.0, -1.125e-7, 2.0])
    }

    #[test]
    fn arithmetic_is_exactly_per_lane_scalar() {
        // Each lane must be THE scalar result: same op, same operand
        // order, compared by bits (via total equality on non-NaN).
        let (x, y) = (a().to_array(), b().to_array());
        for i in 0..LANES {
            assert_eq!((a() + b()).to_array()[i], x[i] + y[i]);
            assert_eq!((a() - b()).to_array()[i], x[i] - y[i]);
            assert_eq!((a() * b()).to_array()[i], x[i] * y[i]);
            assert_eq!((a() / b()).to_array()[i], x[i] / y[i]);
            assert_eq!((-a()).to_array()[i], -x[i]);
            assert_eq!(a().min(b()).to_array()[i], x[i].min(y[i]));
            assert_eq!(a().max(b()).to_array()[i], x[i].max(y[i]));
            assert_eq!(a().abs().to_array()[i], x[i].abs());
            assert_eq!(a().recip().to_array()[i], 1.0 / x[i]);
            assert_eq!(
                a().mul_add(b(), F64x4::splat(0.125)).to_array()[i],
                x[i].mul_add(y[i], 0.125)
            );
        }
    }

    #[test]
    fn mul_add_differs_from_mul_then_add_where_scalar_does() {
        // The contraction caveat is real: pick operands where fused
        // and two-rounding answers differ, and check we match the
        // *fused* scalar, not the unfused one.
        let x = 1.0 + 2.0_f64.powi(-30);
        let fused = x.mul_add(x, -1.0);
        let unfused = x * x - 1.0;
        assert_ne!(fused, unfused);
        let wide = F64x4::splat(x).mul_add(F64x4::splat(x), F64x4::splat(-1.0));
        assert_eq!(wide.to_array()[0], fused);
    }

    #[test]
    fn compares_and_select() {
        let m = a().lt(b());
        assert_eq!(m, Mask4([false, true, false, false]));
        assert_eq!(
            m.select(F64x4::splat(1.0), F64x4::splat(0.0)).to_array(),
            [0.0, 1.0, 0.0, 0.0]
        );
        assert!(a().le(a()).all());
        assert!(a().ge(b()).any());
        assert_eq!(
            a().lt(b()).and(b().ge(F64x4::splat(0.0))),
            Mask4([false, true, false, false])
        );
    }

    #[test]
    fn load_store_round_trip() {
        let src = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let v = F64x4::load(&src, 1);
        assert_eq!(v.to_array(), [1.0, 2.0, 3.0, 4.0]);
        let mut dst = [0.0; 6];
        v.store(&mut dst, 2);
        assert_eq!(dst, [0.0, 0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn nan_lanes_behave_like_scalar() {
        let n = F64x4([f64::NAN, 1.0, f64::NAN, 0.0]);
        // f64::min/max: the non-NaN operand wins, same as scalar.
        assert_eq!(n.min(b()).to_array()[0], b().to_array()[0]);
        assert_eq!(n.max(b()).to_array()[2], b().to_array()[2]);
        // Comparisons with NaN are false, same as scalar.
        assert!(!n.lt(b()).0[0]);
        assert!(!n.ge(b()).0[0]);
    }
}
