//! The shared plain-text rendering vocabulary: the fixed-width table
//! and the number formats every report (and experiment harness) uses.
//!
//! This is the single source of the byte format behind the committed
//! `docs/results/*.txt` references — the harnesses re-export it from
//! `subvt_bench::report`, and the [`crate::Report`] text backend
//! renders through it, so a table printed by a suite run and one
//! printed by an `exp-*` binary cannot drift apart.

use std::fmt::Write as _;

/// A fixed-width text table builder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with blanks).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a row of displayable items.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Table {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let pad = w - cell.chars().count();
                let _ = write!(line, " {}{} |", cell, " ".repeat(pad));
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with the given precision.
pub fn f(value: f64, precision: usize) -> String {
    format!("{value:.precision$}")
}

/// Formats a value in scientific notation.
pub fn sci(value: f64) -> String {
    format!("{value:.3e}")
}

/// Formats a percentage.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22222".into()]);
        let s = t.render();
        assert!(s.starts_with("## Demo\n"));
        assert!(s.contains("| name  | value |"), "{s}");
        assert!(s.contains("| alpha | 1     |"), "{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("", &["a", "b", "c"]);
        t.row(&["x".into()]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.557), "55.7%");
        assert!(sci(1234.5).contains('e'));
    }
}
