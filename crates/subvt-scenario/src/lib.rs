//! Declarative study scenarios for the subthreshold-controller suite.
//!
//! This crate turns the repo's study matrix into configuration:
//!
//! * [`toml`] — a hermetic TOML subset parser/serializer (the
//!   workspace takes no external dependencies) with line/column spans
//!   on every node;
//! * [`scenario`] — the [`Scenario`] model: one study's knobs plus a
//!   `[matrix]` expansion block, compiled onto
//!   [`subvt_core::StudyMatrix`] for execution on the fused engine;
//! * [`report`] — the [`Report`] data model every harness renders
//!   through: per-cell summaries plus provenance (fingerprint, seed,
//!   schema version), with machine-readable JSON and themed text
//!   backends;
//! * [`render`] — the shared table/number formatting the text backend
//!   and the exp harnesses use.
//!
//! Adding a study to the paper reproduction is now "add a `.toml`
//! file under `docs/scenarios/` and run `subvt suite`", not a code
//! change.

pub mod render;
pub mod report;
pub mod scenario;
pub mod toml;

pub use report::{CellReport, Provenance, Report, ReportBlock};
pub use scenario::{
    CellPlan, MatrixSpec, ReportSpec, RunOptions, Scenario, ScenarioError, StudySpec,
};
pub use toml::{Spanned, Table, TomlError, Value};
