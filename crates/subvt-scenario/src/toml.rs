//! A minimal TOML subset, parsed and serialized in-tree.
//!
//! The workspace is hermetic (no `serde`, no `toml` crate), so the
//! scenario compiler carries its own reader/writer for the slice of
//! TOML the scenario format needs:
//!
//! * tables (`[study]`, `[study.spec]`) and arrays of tables
//!   (`[[sweep]]`);
//! * basic strings with the common escapes, integers, floats and
//!   booleans;
//! * single-line homogeneous scalar arrays (`corners = ["TT", "SS"]`);
//! * `#` comments, full-line or trailing.
//!
//! Everything a decoder might complain about carries a **span**: every
//! key and value remembers the 1-based line and column it came from,
//! so "unknown key" and "expected a float" errors point at the exact
//! spot in the file. Spans are metadata — two documents with the same
//! shape compare equal even when their layouts differ, which is what
//! the parse → serialize → parse identity property leans on.
//!
//! The serializer emits one canonical layout (root scalars first, then
//! sub-tables depth-first, arrays of tables as repeated `[[...]]`
//! blocks), so a committed scenario file doubles as the canonical
//! serialization of its model.

use std::fmt;

/// A parse or decode failure, pinned to a line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// What went wrong, in user-facing words.
    pub msg: String,
}

impl TomlError {
    pub(crate) fn new(line: usize, col: usize, msg: impl Into<String>) -> TomlError {
        TomlError {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for TomlError {}

/// A value plus the line/column it was parsed from.
///
/// The span is diagnostic metadata: `PartialEq` compares only the
/// value, so round-tripping a document through the serializer (which
/// reflows the layout) still compares equal node-for-node.
#[derive(Debug, Clone)]
pub struct Spanned<T> {
    /// The parsed node.
    pub value: T,
    /// 1-based source line (0 for synthesized nodes).
    pub line: usize,
    /// 1-based source column (0 for synthesized nodes).
    pub col: usize,
}

impl<T> Spanned<T> {
    /// Wraps a synthesized (not parsed) node with a zero span.
    pub fn synthetic(value: T) -> Spanned<T> {
        Spanned {
            value,
            line: 0,
            col: 0,
        }
    }
}

impl<T: PartialEq> PartialEq for Spanned<T> {
    fn eq(&self, other: &Spanned<T>) -> bool {
        self.value == other.value
    }
}

/// One TOML value of the supported subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A single-line array of scalars — or, for `[[key]]` headers, an
    /// array of tables.
    Array(Vec<Spanned<Value>>),
    /// A (sub-)table.
    Table(Table),
}

impl Value {
    /// Human noun for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "a string",
            Value::Int(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Bool(_) => "a boolean",
            Value::Array(_) => "an array",
            Value::Table(_) => "a table",
        }
    }
}

/// An ordered table: entries keep file order, and every key remembers
/// where it was written.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    entries: Vec<(Spanned<String>, Spanned<Value>)>,
}

impl Table {
    /// An empty table.
    pub fn new() -> Table {
        Table::default()
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Spanned<Value>> {
        self.entries
            .iter()
            .find(|(k, _)| k.value == key)
            .map(|(_, v)| v)
    }

    /// The entries, in file (or insertion) order.
    pub fn entries(&self) -> impl Iterator<Item = (&Spanned<String>, &Spanned<Value>)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a synthesized entry (serializer-side construction).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        self.entries
            .push((Spanned::synthetic(key.into()), Spanned::synthetic(value)));
    }

    fn insert_spanned(
        &mut self,
        key: Spanned<String>,
        value: Spanned<Value>,
    ) -> Result<(), TomlError> {
        if self.get(&key.value).is_some() {
            return Err(TomlError::new(
                key.line,
                key.col,
                format!("duplicate key `{}`", key.value),
            ));
        }
        self.entries.push((key, value));
        Ok(())
    }

    /// Walks (or creates) the nested table at `path`, e.g. for a
    /// `[study.spec]` header.
    fn descend_mut(
        &mut self,
        path: &[Spanned<String>],
        header: bool,
    ) -> Result<&mut Table, TomlError> {
        let mut table = self;
        for seg in path {
            if table.get(&seg.value).is_none() {
                table
                    .entries
                    .push((seg.clone(), Spanned::synthetic(Value::Table(Table::new()))));
            }
            let entry = table
                .entries
                .iter_mut()
                .find(|(k, _)| k.value == seg.value)
                .map(|(_, v)| v)
                .expect("just ensured");
            let type_name = entry.value.type_name();
            table = match &mut entry.value {
                Value::Table(t) => t,
                // `[[x]]` then `[x.y]`: the sub-table belongs to the
                // last element of the array of tables.
                Value::Array(items) if header => match items.last_mut() {
                    Some(Spanned {
                        value: Value::Table(t),
                        ..
                    }) => t,
                    _ => {
                        return Err(TomlError::new(
                            seg.line,
                            seg.col,
                            format!("`{}` is not a table", seg.value),
                        ))
                    }
                },
                _ => {
                    return Err(TomlError::new(
                        seg.line,
                        seg.col,
                        format!("`{}` is {}, not a table", seg.value, type_name),
                    ))
                }
            };
        }
        Ok(table)
    }
}

/// Parses a document of the supported subset into its root table.
///
/// # Errors
///
/// Returns a [`TomlError`] naming the line and column of the first
/// problem: an unterminated string, a malformed number, a duplicate
/// key, a stray token after a value, or an unsupported construct.
pub fn parse(text: &str) -> Result<Table, TomlError> {
    let mut root = Table::new();
    // Path of the currently open `[header]` (empty = root scope).
    let mut open: Vec<Spanned<String>> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let mut cur = Cursor::new(raw, line_no);
        cur.skip_ws();
        match cur.peek() {
            None | Some('#') => continue,
            Some('[') => {
                let aot = cur.rest().starts_with("[[");
                cur.bump();
                if aot {
                    cur.bump();
                }
                let path = cur.key_path()?;
                let close = if aot { "]]" } else { "]" };
                if !cur.rest().starts_with(close) {
                    return Err(cur.error(format!("expected `{close}` to close the header")));
                }
                for _ in 0..close.len() {
                    cur.bump();
                }
                cur.end_of_line()?;
                if aot {
                    let (last, parent_path) = path.split_last().expect("key path is non-empty");
                    let parent = root.descend_mut(parent_path, true)?;
                    if parent.get(&last.value).is_none() {
                        parent
                            .entries
                            .push((last.clone(), Spanned::synthetic(Value::Array(Vec::new()))));
                    }
                    let entry = parent
                        .entries
                        .iter_mut()
                        .find(|(k, _)| k.value == last.value)
                        .map(|(_, v)| v)
                        .expect("just ensured");
                    match &mut entry.value {
                        Value::Array(items) => items.push(Spanned {
                            value: Value::Table(Table::new()),
                            line: last.line,
                            col: last.col,
                        }),
                        other => {
                            return Err(TomlError::new(
                                last.line,
                                last.col,
                                format!(
                                    "`{}` is {}, not an array of tables",
                                    last.value,
                                    other.type_name()
                                ),
                            ))
                        }
                    }
                } else {
                    // Re-opening a plain header that already exists is
                    // a duplicate-definition error only when it holds
                    // scalars already; the subset keeps it simple and
                    // allows extending tables created implicitly.
                    root.descend_mut(&path, true)?;
                }
                open = path;
            }
            _ => {
                let key = cur.bare_key()?;
                cur.skip_ws();
                if cur.peek() != Some('=') {
                    return Err(cur.error("expected `=` after the key"));
                }
                cur.bump();
                cur.skip_ws();
                let value = cur.value()?;
                cur.end_of_line()?;
                let table = root.descend_mut(&open, true)?;
                table.insert_spanned(key, value)?;
            }
        }
    }
    Ok(root)
}

/// A character cursor over one source line.
struct Cursor<'a> {
    line: &'a str,
    pos: usize,
    line_no: usize,
}

impl<'a> Cursor<'a> {
    fn new(line: &'a str, line_no: usize) -> Cursor<'a> {
        Cursor {
            line,
            pos: 0,
            line_no,
        }
    }

    fn rest(&self) -> &'a str {
        &self.line[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
        }
    }

    fn col(&self) -> usize {
        self.line[..self.pos].chars().count() + 1
    }

    fn error(&self, msg: impl Into<String>) -> TomlError {
        TomlError::new(self.line_no, self.col(), msg)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.bump();
        }
    }

    /// A bare key: letters, digits, `-`, `_`.
    fn bare_key(&mut self) -> Result<Spanned<String>, TomlError> {
        let (line, col) = (self.line_no, self.col());
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-' || c == '_') {
            self.bump();
        }
        if self.pos == start {
            return Err(self.error("expected a key"));
        }
        Ok(Spanned {
            value: self.line[start..self.pos].to_owned(),
            line,
            col,
        })
    }

    /// A dotted header path: `a.b.c`.
    fn key_path(&mut self) -> Result<Vec<Spanned<String>>, TomlError> {
        let mut path = vec![self.bare_key()?];
        while self.peek() == Some('.') {
            self.bump();
            path.push(self.bare_key()?);
        }
        Ok(path)
    }

    /// Only trailing whitespace or a comment may follow.
    fn end_of_line(&mut self) -> Result<(), TomlError> {
        self.skip_ws();
        match self.peek() {
            None | Some('#') => Ok(()),
            Some(c) => Err(self.error(format!("unexpected `{c}` after the value"))),
        }
    }

    fn value(&mut self) -> Result<Spanned<Value>, TomlError> {
        let (line, col) = (self.line_no, self.col());
        let value = match self.peek() {
            None => return Err(self.error("expected a value")),
            Some('"') => Value::Str(self.string()?),
            Some('[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(']') => {
                            self.bump();
                            break;
                        }
                        None => return Err(self.error("unterminated array")),
                        _ => {}
                    }
                    let item = self.value()?;
                    if matches!(item.value, Value::Array(_)) {
                        return Err(TomlError::new(
                            item.line,
                            item.col,
                            "nested arrays are not supported",
                        ));
                    }
                    items.push(item);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => self.bump(),
                        Some(']') => {}
                        _ => return Err(self.error("expected `,` or `]` in the array")),
                    }
                }
                Value::Array(items)
            }
            Some(_) => {
                // A bare scalar token: bool, int or float.
                let start = self.pos;
                while matches!(self.peek(), Some(c) if !c.is_whitespace() && c != ',' && c != ']' && c != '#')
                {
                    self.bump();
                }
                let token = &self.line[start..self.pos];
                match token {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    _ => {
                        if let Ok(i) = token.parse::<i64>() {
                            Value::Int(i)
                        } else if let Ok(f) = token.parse::<f64>() {
                            if f.is_finite() {
                                Value::Float(f)
                            } else {
                                return Err(TomlError::new(
                                    line,
                                    col,
                                    format!("non-finite float `{token}`"),
                                ));
                            }
                        } else {
                            return Err(TomlError::new(
                                line,
                                col,
                                format!("unrecognized value `{token}`"),
                            ));
                        }
                    }
                }
            }
        };
        Ok(Spanned { value, line, col })
    }

    /// A basic string with the `\"`, `\\`, `\n`, `\t`, `\r` escapes.
    fn string(&mut self) -> Result<String, TomlError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some('"') => {
                    self.bump();
                    return Ok(out);
                }
                Some('\\') => {
                    self.bump();
                    let escaped = match self.peek() {
                        Some('"') => '"',
                        Some('\\') => '\\',
                        Some('n') => '\n',
                        Some('t') => '\t',
                        Some('r') => '\r',
                        other => {
                            return Err(self.error(format!(
                                "unsupported escape `\\{}`",
                                other.map(String::from).unwrap_or_default()
                            )))
                        }
                    };
                    out.push(escaped);
                    self.bump();
                }
                Some(c) => {
                    out.push(c);
                    self.bump();
                }
            }
        }
    }
}

/// Serializes a table in the canonical layout: scalar/array entries
/// first, then sub-tables (and arrays of tables) depth-first under
/// their dotted headers.
pub fn serialize(root: &Table) -> String {
    let mut out = String::new();
    write_table(&mut out, root, &mut Vec::new(), true);
    out
}

fn write_table(out: &mut String, table: &Table, path: &mut Vec<String>, first: bool) {
    let scalars: Vec<_> = table
        .entries()
        .filter(|(_, v)| {
            !matches!(v.value, Value::Table(_) | Value::Array(_)) || is_scalar_array(v)
        })
        .collect();
    if !scalars.is_empty() || (table.is_empty() && !path.is_empty()) {
        if !path.is_empty() {
            if !first {
                out.push('\n');
            }
            out.push_str(&format!("[{}]\n", path.join(".")));
        }
        for (k, v) in &scalars {
            out.push_str(&format!("{} = {}\n", k.value, scalar(&v.value)));
        }
    }
    let mut emitted = first && path.is_empty() && scalars.is_empty();
    for (k, v) in table.entries() {
        match &v.value {
            Value::Table(sub) => {
                path.push(k.value.clone());
                write_table(out, sub, path, emitted && scalars.is_empty());
                path.pop();
                emitted = false;
            }
            Value::Array(items) if !is_scalar_array(v) => {
                for item in items {
                    if let Value::Table(sub) = &item.value {
                        out.push('\n');
                        path.push(k.value.clone());
                        out.push_str(&format!("[[{}]]\n", path.join(".")));
                        for (ik, iv) in sub
                            .entries()
                            .filter(|(_, iv)| !matches!(iv.value, Value::Table(_)))
                        {
                            out.push_str(&format!("{} = {}\n", ik.value, scalar(&iv.value)));
                        }
                        path.pop();
                    }
                }
            }
            _ => {}
        }
    }
}

/// True for an array whose items are all scalars (rendered inline).
fn is_scalar_array(v: &Spanned<Value>) -> bool {
    match &v.value {
        Value::Array(items) => items
            .iter()
            .all(|i| !matches!(i.value, Value::Table(_) | Value::Array(_))),
        _ => false,
    }
}

/// Renders one scalar (or inline array) value.
fn scalar(v: &Value) -> String {
    match v {
        Value::Str(s) => quote(s),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => float(*f),
        Value::Bool(b) => b.to_string(),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(|i| scalar(&i.value)).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Table(_) => unreachable!("tables are emitted under headers"),
    }
}

/// Canonical float rendering: always float-typed on re-parse.
fn float(f: f64) -> String {
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Typed accessors used by the scenario decoder.
// ---------------------------------------------------------------------------

impl Spanned<Value> {
    /// Type-mismatch error for this node.
    pub fn mismatch(&self, expected: &str) -> TomlError {
        TomlError::new(
            self.line,
            self.col,
            format!("expected {expected}, found {}", self.value.type_name()),
        )
    }

    /// The string value, or a located type error.
    pub fn as_str(&self) -> Result<&str, TomlError> {
        match &self.value {
            Value::Str(s) => Ok(s),
            _ => Err(self.mismatch("a string")),
        }
    }

    /// The integer value, or a located type error.
    pub fn as_int(&self) -> Result<i64, TomlError> {
        match self.value {
            Value::Int(i) => Ok(i),
            _ => Err(self.mismatch("an integer")),
        }
    }

    /// The float value (integers coerce), or a located type error.
    pub fn as_float(&self) -> Result<f64, TomlError> {
        match self.value {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            _ => Err(self.mismatch("a float")),
        }
    }

    /// The boolean value, or a located type error.
    pub fn as_bool(&self) -> Result<bool, TomlError> {
        match self.value {
            Value::Bool(b) => Ok(b),
            _ => Err(self.mismatch("a boolean")),
        }
    }

    /// The array items, or a located type error.
    pub fn as_array(&self) -> Result<&[Spanned<Value>], TomlError> {
        match &self.value {
            Value::Array(items) => Ok(items),
            _ => Err(self.mismatch("an array")),
        }
    }

    /// The sub-table, or a located type error.
    pub fn as_table(&self) -> Result<&Table, TomlError> {
        match &self.value {
            Value::Table(t) => Ok(t),
            _ => Err(self.mismatch("a table")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(text: &str) -> Table {
        parse(text).unwrap_or_else(|e| panic!("{e}\n{text}"))
    }

    #[test]
    fn scalars_tables_and_arrays_parse() {
        let doc = parse_ok(
            r#"
# a scenario
title = "shoot-out"   # trailing comment
dies = 500
rate = 110e3
cold = -0.5
on = true

[study]
seed = 1

[study.spec]
max_energy_fj = 2.9
corners = ["TT", "SS", "FF"]
rates = [0, 0.02]
"#,
        );
        assert_eq!(doc.get("title").unwrap().as_str().unwrap(), "shoot-out");
        assert_eq!(doc.get("dies").unwrap().as_int().unwrap(), 500);
        assert_eq!(doc.get("rate").unwrap().as_float().unwrap(), 110e3);
        assert_eq!(doc.get("cold").unwrap().as_float().unwrap(), -0.5);
        assert!(doc.get("on").unwrap().as_bool().unwrap());
        let study = doc.get("study").unwrap().as_table().unwrap();
        assert_eq!(study.get("seed").unwrap().as_int().unwrap(), 1);
        let spec = study.get("spec").unwrap().as_table().unwrap();
        assert_eq!(spec.get("max_energy_fj").unwrap().as_float().unwrap(), 2.9);
        let corners = spec.get("corners").unwrap().as_array().unwrap();
        assert_eq!(corners.len(), 3);
        assert_eq!(corners[1].as_str().unwrap(), "SS");
        let rates = spec.get("rates").unwrap().as_array().unwrap();
        assert_eq!(rates[0].as_float().unwrap(), 0.0);
        assert_eq!(rates[1].as_float().unwrap(), 0.02);
    }

    #[test]
    fn arrays_of_tables_parse() {
        let doc = parse_ok(
            r#"
[[sweep]]
name = "a"

[[sweep]]
name = "b"
"#,
        );
        let sweeps = doc.get("sweep").unwrap().as_array().unwrap();
        assert_eq!(sweeps.len(), 2);
        assert_eq!(
            sweeps[1]
                .as_table()
                .unwrap()
                .get("name")
                .unwrap()
                .as_str()
                .unwrap(),
            "b"
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = parse_ok(r#"s = "a \"b\" \\ c\nd""#);
        assert_eq!(doc.get("s").unwrap().as_str().unwrap(), "a \"b\" \\ c\nd");
        let text = serialize(&doc);
        assert_eq!(parse_ok(&text), doc);
    }

    #[test]
    fn errors_carry_the_line_and_column() {
        let e = parse("a = 1\nb = \"unterminated").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().starts_with("line 2:"), "{e}");

        let e = parse("a = 1\na = 2").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("duplicate key `a`"), "{e}");

        let e = parse("x = @").unwrap_err();
        assert_eq!((e.line, e.col), (1, 5));

        let e = parse("x = 1 y = 2").unwrap_err();
        assert!(e.to_string().contains("after the value"), "{e}");

        let e = parse("[t\nx = 1").unwrap_err();
        assert!(e.to_string().contains("expected `]`"), "{e}");
    }

    #[test]
    fn type_mismatches_point_at_the_value() {
        let doc = parse_ok("x = \"not a number\"");
        let e = doc.get("x").unwrap().as_int().unwrap_err();
        assert_eq!(e.line, 1);
        assert!(
            e.to_string()
                .contains("expected an integer, found a string"),
            "{e}"
        );
    }

    #[test]
    fn scalar_clash_with_table_header_is_an_error() {
        let e = parse("x = 1\n[x]\ny = 2").unwrap_err();
        assert!(e.to_string().contains("not a table"), "{e}");
    }

    #[test]
    fn serialization_is_canonical_and_round_trips() {
        let text = "\
title = \"demo\"\n\
dies = 500\n\
\n\
[study]\n\
seed = 1\n\
temp_c = 25.0\n\
corners = [\"TT\", \"SS\"]\n\
rates = [0.0, 0.02]\n\
\n\
[study.spec]\n\
min_rate_hz = 110000.0\n";
        let doc = parse_ok(text);
        assert_eq!(serialize(&doc), text);
        assert_eq!(parse_ok(&serialize(&doc)), doc);
    }

    #[test]
    fn floats_serialize_float_typed() {
        let mut t = Table::new();
        t.insert("x", Value::Float(25.0));
        t.insert("y", Value::Float(0.02));
        let text = serialize(&t);
        assert!(text.contains("x = 25.0"), "{text}");
        assert!(text.contains("y = 0.02"), "{text}");
        let back = parse_ok(&text);
        assert!(matches!(back.get("x").unwrap().value, Value::Float(_)));
    }
}
