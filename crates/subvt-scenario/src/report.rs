//! The one report data model every study output renders through.
//!
//! A [`Report`] carries three things:
//!
//! * **presentation blocks** — titled tables and free-text notes, in
//!   document order, rendered by the text backend
//!   ([`Report::to_text`]) in the exact byte format of the committed
//!   `docs/results/*.txt` references;
//! * **per-cell summaries** ([`CellReport`]) — the machine-readable
//!   numbers behind the tables, rendered by the JSON backend
//!   ([`Report::to_json`]);
//! * **provenance** ([`Provenance`]) — what produced the numbers:
//!   scenario name, checkpoint fingerprint, seed, die count, and the
//!   worker count *only when the scenario pins one*. A runtime
//!   `--jobs` choice never enters a report: results are bit-identical
//!   at any worker count, and CI diffs suite reports across job
//!   counts byte-for-byte.
//!
//! The text layout contract (shared by every harness): the title line,
//! then each block preceded by one blank line. A table block ends with
//! its own newline; a note block is its lines, each newline-terminated.

use crate::render::Table;

/// Schema tag stamped into every JSON report.
pub const REPORT_SCHEMA: &str = "subvt-report-v1";

/// What produced a report's numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// Scenario (or harness) name.
    pub scenario: String,
    /// FNV-1a fingerprint of the study matrix identity — the same
    /// value a checkpoint of the run would be stamped with.
    pub fingerprint: u64,
    /// Root Monte-Carlo seed.
    pub seed: u64,
    /// Die population per cell.
    pub dies: usize,
    /// Worker count, only when the scenario pins one. `None` means
    /// "decided at run time" — deliberately absent from the report so
    /// suite outputs stay byte-identical at any `--jobs`.
    pub jobs: Option<usize>,
}

/// One study cell's machine-readable summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Supply backend label (`ideal`/`buck`/`dldo`/`dlr`).
    pub supply: String,
    /// Process corner name (`TT`, `SS`, ...).
    pub corner: String,
    /// Die temperature in Celsius.
    pub temp_c: f64,
    /// Per-cycle fault rate (0 for a clean cell).
    pub fault_rate: f64,
    /// Cell kind: `summary` (clean) or `faults`.
    pub kind: String,
    /// Dies scored.
    pub dies: u64,
    /// Fraction of dies the fixed design shipped.
    pub fixed_yield: f64,
    /// Fraction of dies the adaptive design shipped.
    pub adaptive_yield: f64,
    /// Fraction of dies the dithered design shipped.
    pub dithered_yield: f64,
    /// Mean adaptive energy per op (fJ) over passing dies, if any
    /// passed.
    pub mean_adaptive_energy_fj: Option<f64>,
    /// Mean MEP-tracking error (LSB); fault cells only.
    pub tracking_error_lsb: Option<f64>,
    /// Mean recovery energy per die (fJ); fault cells only.
    pub recovery_energy_fj: Option<f64>,
    /// Watchdog trips across the population; fault cells only.
    pub watchdog_trips: Option<u64>,
    /// Faults injected across the population; fault cells only.
    pub faults_injected: Option<u64>,
}

/// One presentation block of a report.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportBlock {
    /// A rendered table.
    Table(Table),
    /// Free-text lines (each rendered newline-terminated).
    Note(Vec<String>),
}

/// A study's full output: presentation blocks for the text backend,
/// cells + provenance for the JSON backend.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The title line.
    pub title: String,
    /// Provenance, when the producer has a stable identity (suite runs
    /// always do; ad-hoc harness reports may not).
    pub provenance: Option<Provenance>,
    /// Machine-readable per-cell summaries.
    pub cells: Vec<CellReport>,
    blocks: Vec<ReportBlock>,
}

impl Report {
    /// An empty report with a title.
    pub fn new(title: impl Into<String>) -> Report {
        Report {
            title: title.into(),
            provenance: None,
            cells: Vec::new(),
            blocks: Vec::new(),
        }
    }

    /// Attaches provenance.
    pub fn provenance(mut self, provenance: Provenance) -> Report {
        self.provenance = Some(provenance);
        self
    }

    /// Appends a table block.
    pub fn table(&mut self, table: Table) -> &mut Report {
        self.blocks.push(ReportBlock::Table(table));
        self
    }

    /// Appends a note block of newline-terminated lines.
    pub fn note<S: Into<String>>(&mut self, lines: impl IntoIterator<Item = S>) -> &mut Report {
        self.blocks.push(ReportBlock::Note(
            lines.into_iter().map(Into::into).collect(),
        ));
        self
    }

    /// The presentation blocks, in document order.
    pub fn blocks(&self) -> &[ReportBlock] {
        &self.blocks
    }

    /// Renders the themed human-readable text: the title line, then
    /// each block preceded by one blank line. This is the byte format
    /// of the committed `docs/results/*.txt` references.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&self.title);
        out.push('\n');
        for block in &self.blocks {
            out.push('\n');
            match block {
                ReportBlock::Table(table) => out.push_str(&table.render()),
                ReportBlock::Note(lines) => {
                    for line in lines {
                        out.push_str(line);
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// Renders the machine-readable JSON document: schema, title,
    /// provenance and per-cell summaries (presentation blocks are
    /// text-backend-only). Byte-deterministic: fixed key order, floats
    /// in shortest round-trip form.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_str(REPORT_SCHEMA)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        match &self.provenance {
            None => out.push_str("  \"provenance\": null,\n"),
            Some(p) => {
                out.push_str("  \"provenance\": {\n");
                out.push_str(&format!("    \"scenario\": {},\n", json_str(&p.scenario)));
                out.push_str(&format!(
                    "    \"fingerprint\": \"{:016x}\",\n",
                    p.fingerprint
                ));
                out.push_str(&format!("    \"seed\": {},\n", p.seed));
                out.push_str(&format!("    \"dies\": {},\n", p.dies));
                match p.jobs {
                    None => out.push_str("    \"jobs\": null\n"),
                    Some(jobs) => out.push_str(&format!("    \"jobs\": {jobs}\n")),
                }
                out.push_str("  },\n");
            }
        }
        out.push_str("  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n");
            out.push_str(&format!("      \"supply\": {},\n", json_str(&cell.supply)));
            out.push_str(&format!("      \"corner\": {},\n", json_str(&cell.corner)));
            out.push_str(&format!("      \"temp_c\": {},\n", json_num(cell.temp_c)));
            out.push_str(&format!(
                "      \"fault_rate\": {},\n",
                json_num(cell.fault_rate)
            ));
            out.push_str(&format!("      \"kind\": {},\n", json_str(&cell.kind)));
            out.push_str(&format!("      \"dies\": {},\n", cell.dies));
            out.push_str(&format!(
                "      \"fixed_yield\": {},\n",
                json_num(cell.fixed_yield)
            ));
            out.push_str(&format!(
                "      \"adaptive_yield\": {},\n",
                json_num(cell.adaptive_yield)
            ));
            out.push_str(&format!(
                "      \"dithered_yield\": {},\n",
                json_num(cell.dithered_yield)
            ));
            out.push_str(&format!(
                "      \"mean_adaptive_energy_fj\": {},\n",
                json_opt_num(cell.mean_adaptive_energy_fj)
            ));
            out.push_str(&format!(
                "      \"tracking_error_lsb\": {},\n",
                json_opt_num(cell.tracking_error_lsb)
            ));
            out.push_str(&format!(
                "      \"recovery_energy_fj\": {},\n",
                json_opt_num(cell.recovery_energy_fj)
            ));
            out.push_str(&format!(
                "      \"watchdog_trips\": {},\n",
                cell.watchdog_trips
                    .map_or("null".to_owned(), |v| v.to_string())
            ));
            out.push_str(&format!(
                "      \"faults_injected\": {}\n",
                cell.faults_injected
                    .map_or("null".to_owned(), |v| v.to_string())
            ));
            out.push_str("    }");
        }
        out.push_str(if self.cells.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// JSON string escaping per RFC 8259.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Shortest round-trip float form; always a valid JSON number.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn json_opt_num(v: Option<f64>) -> String {
    v.map_or("null".to_owned(), json_num)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> CellReport {
        CellReport {
            supply: "dldo".into(),
            corner: "TT".into(),
            temp_c: 25.0,
            fault_rate: 0.02,
            kind: "faults".into(),
            dies: 500,
            fixed_yield: 0.684,
            adaptive_yield: 0.776,
            dithered_yield: 0.972,
            mean_adaptive_energy_fj: Some(2.684),
            tracking_error_lsb: Some(0.19),
            recovery_energy_fj: Some(0.058),
            watchdog_trips: Some(53),
            faults_injected: Some(718),
        }
    }

    #[test]
    fn text_layout_is_title_then_blank_separated_blocks() {
        let mut report = Report::new("Demo study (10 dies, seed 1)");
        let mut t = Table::new("Numbers", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        report.table(t);
        report.note(["first line", "second line"]);
        let text = report.to_text();
        assert_eq!(
            text,
            "Demo study (10 dies, seed 1)\n\
             \n\
             ## Numbers\n\
             | a | b |\n\
             |---|---|\n\
             | 1 | 2 |\n\
             \n\
             first line\n\
             second line\n"
        );
    }

    #[test]
    fn json_is_schema_tagged_and_deterministic() {
        let mut report = Report::new("Demo").provenance(Provenance {
            scenario: "demo".into(),
            fingerprint: 0xdead_beef,
            seed: 1,
            dies: 500,
            jobs: None,
        });
        report.cells.push(sample_cell());
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"subvt-report-v1\",\n"));
        assert!(
            json.contains("\"fingerprint\": \"00000000deadbeef\""),
            "{json}"
        );
        assert!(json.contains("\"jobs\": null"), "{json}");
        assert!(json.contains("\"fault_rate\": 0.02"), "{json}");
        assert!(json.contains("\"temp_c\": 25"), "{json}");
        assert!(json.contains("\"watchdog_trips\": 53"), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
        assert_eq!(json, report.to_json(), "rendering is a pure function");
    }

    #[test]
    fn pinned_jobs_enter_provenance_only_when_set() {
        let pinned = Report::new("x").provenance(Provenance {
            scenario: "x".into(),
            fingerprint: 1,
            seed: 1,
            dies: 10,
            jobs: Some(4),
        });
        assert!(pinned.to_json().contains("\"jobs\": 4"));
    }

    #[test]
    fn json_strings_are_escaped() {
        let report = Report::new("a \"quoted\" title\nwith newline");
        let json = report.to_json();
        assert!(
            json.contains("\"title\": \"a \\\"quoted\\\" title\\nwith newline\""),
            "{json}"
        );
    }
}
