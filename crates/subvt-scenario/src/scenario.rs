//! The scenario model: one declarative study, compiled onto the fused
//! matrix engine.
//!
//! A scenario file is the TOML-subset document:
//!
//! ```toml
//! name = "supply-shootout"
//!
//! [study]
//! dies = 500
//! seed = 1
//! supply = "ideal"        # base axes; a [matrix] block supersedes them
//! corner = "TT"
//! temp_c = 25.0
//!
//! [matrix]                 # optional: expands to supplies × corners × rates
//! supplies = ["buck", "dldo", "dlr"]
//! corners = ["TT", "SS", "FF"]
//! fault_rates = [0.0, 0.02]
//!
//! [report]
//! title = "Supply-backend shoot-out ({dies} dies per cell, seed {seed})"
//! backend_figures = true
//!
//! [[report.notes]]
//! text = "Reading the table: ..."
//! ```
//!
//! [`Scenario::from_toml`] decodes it with **strict keys** — an
//! unknown key or a type mismatch is a [`TomlError`] carrying the
//! line/column of the offending token. [`Scenario::to_toml`] emits the
//! canonical full form (every `[study]` knob spelled out), and the two
//! compose to identity on the model.
//!
//! Compilation: the `[matrix]` axes expand outer-to-inner as supplies
//! × corners × fault rates (the `exp-shootout` nesting); each missing
//! axis defaults to the base `[study]` value, so a scenario with no
//! `[matrix]` block is a single-cell matrix. A fault rate of `0.0`
//! compiles to *no* fault plan (byte-identical to a clean cell, per
//! the study contract). Everything runs through
//! [`subvt_core::StudyMatrix`], so an N-cell scenario pays one die
//! draw, not N.

use std::path::PathBuf;

use subvt_core::matrix::{CellSummary, StudyMatrix};
use subvt_core::study::{FaultPlan, StudyArgs, StudyConfig, StudyError, SupplyBackendKind};
use subvt_core::yield_study::{SupplySim, YieldSpec};
use subvt_dcdc::SolverMode;
use subvt_device::corner::ProcessCorner;
use subvt_device::mosfet::Environment;
use subvt_device::tabulate::EvalMode;
use subvt_device::technology::Technology;
use subvt_device::units::{Hertz, Joules};
use subvt_device::variation::VariationModel;
use subvt_exec::checkpoint::fingerprint_of;
use subvt_exec::ExecConfig;

use crate::render::{f, pct, Table};
use crate::report::{CellReport, Provenance, Report};
use crate::toml::{parse, serialize, Spanned, Table as TomlTable, TomlError, Value};

/// Scenario decode/validation failures share the TOML error type:
/// every one points at a line and column of the source document.
pub type ScenarioError = TomlError;

/// The `[study]` block: every [`StudyConfig`] knob, in declarative
/// form. Defaults reproduce the paper configuration (the same
/// defaults as [`StudyConfig::new`] + [`StudyArgs::new`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StudySpec {
    /// Die population per cell (default 500).
    pub dies: usize,
    /// Root Monte-Carlo seed (default 1).
    pub seed: u64,
    /// Technology name: `st-130nm` (default) or `generic-65nm`.
    pub tech: String,
    /// Device evaluation mode (default analytic).
    pub eval: EvalMode,
    /// Base process corner (default TT; a `[matrix]` corners axis
    /// supersedes it).
    pub corner: ProcessCorner,
    /// Die temperature in Celsius (default 25.0).
    pub temp_c: f64,
    /// Variation model name: `st-130nm` (the only model).
    pub variation: String,
    /// Circuit load name: `paper-ring` (the only load).
    pub load: String,
    /// Spec: minimum sustained rate in Hz (default 110e3).
    pub min_rate_hz: f64,
    /// Spec: energy bound per op in fJ (default 2.9).
    pub max_energy_fj: f64,
    /// The fixed design's supply word (default 11).
    pub fixed_word: u8,
    /// The adaptive design's design word (default 11).
    pub design_word: u8,
    /// Base supply backend (default ideal; a `[matrix]` supplies axis
    /// supersedes it).
    pub supply: SupplyBackendKind,
    /// Converter solver for buck supplies (default closed-form).
    pub solver: SolverMode,
    /// Base per-cycle fault rate (default none; a `[matrix]`
    /// fault_rates axis supersedes it).
    pub fault_rate: Option<f64>,
    /// Fault mitigation armed (default true).
    pub mitigation: bool,
    /// Pinned worker count. `None` (default) defers to run time — and
    /// keeps `jobs` out of the report provenance.
    pub jobs: Option<usize>,
    /// SoA sub-batch size override.
    pub batch: Option<usize>,
    /// Checkpoint file for the run.
    pub checkpoint: Option<String>,
}

impl Default for StudySpec {
    fn default() -> StudySpec {
        StudySpec {
            dies: 500,
            seed: 1,
            tech: "st-130nm".to_owned(),
            eval: EvalMode::default(),
            corner: ProcessCorner::Tt,
            temp_c: 25.0,
            variation: "st-130nm".to_owned(),
            load: "paper-ring".to_owned(),
            min_rate_hz: 110e3,
            max_energy_fj: 2.9,
            fixed_word: 11,
            design_word: 11,
            supply: SupplyBackendKind::default(),
            solver: SolverMode::default(),
            fault_rate: None,
            mitigation: true,
            jobs: None,
            batch: None,
            checkpoint: None,
        }
    }
}

/// The `[matrix]` expansion block: each axis, when present, supersedes
/// the base `[study]` value; cells expand supplies × corners × rates,
/// outer to inner.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatrixSpec {
    /// Supply backends to sweep.
    pub supplies: Option<Vec<SupplyBackendKind>>,
    /// Process corners to sweep.
    pub corners: Option<Vec<ProcessCorner>>,
    /// Per-cycle fault rates to sweep (`0.0` = clean cell).
    pub fault_rates: Option<Vec<f64>>,
}

/// The `[report]` block: presentation knobs for the rendered report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSpec {
    /// Title template; `{dies}`, `{seed}` and `{design_word}` are
    /// substituted from the study spec.
    pub title: String,
    /// Title of the Monte-Carlo results table.
    pub table_title: String,
    /// Emit the closed-form backend-figures table (regulated backends
    /// only) before the Monte-Carlo table.
    pub backend_figures: bool,
    /// Trailing note lines, one per entry.
    pub notes: Vec<String>,
}

impl Default for ReportSpec {
    fn default() -> ReportSpec {
        ReportSpec {
            title: "Study ({dies} dies per cell, seed {seed})".to_owned(),
            table_title: "Monte-Carlo yield per backend x corner x per-cycle fault rate".to_owned(),
            backend_figures: false,
            notes: Vec::new(),
        }
    }
}

/// One expanded cell of a scenario: the matrix axes plus the labels
/// the report renders them under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellPlan {
    /// Supply backend of this cell.
    pub supply: SupplyBackendKind,
    /// Process corner of this cell.
    pub corner: ProcessCorner,
    /// Per-cycle fault rate (0.0 = clean).
    pub rate: f64,
    /// The compiled environment (corner at the study temperature).
    pub env: Environment,
    /// The compiled fault plan (`None` for rate 0.0).
    pub faults: Option<FaultPlan>,
}

/// Runtime-only knobs for a scenario run. Nothing here may change the
/// result bytes — only where the work happens and where the
/// checkpoint lives.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Execution override (e.g. a suite runner's `--jobs`). Results
    /// are bit-identical at any worker count and the value never
    /// enters the report.
    pub exec: Option<ExecConfig>,
    /// Checkpoint-file override (e.g. `--checkpoint-dir`/`<stem>.svcp`);
    /// takes precedence over the scenario's own `checkpoint` field.
    pub checkpoint: Option<PathBuf>,
}

/// One declarative study: base knobs, matrix expansion, report shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (report provenance; output file stem by
    /// convention).
    pub name: String,
    /// The `[study]` block.
    pub study: StudySpec,
    /// The `[matrix]` block.
    pub matrix: MatrixSpec,
    /// The `[report]` block.
    pub report: ReportSpec,
}

impl Scenario {
    /// A single-cell scenario with the paper defaults.
    pub fn new(name: impl Into<String>) -> Scenario {
        Scenario {
            name: name.into(),
            study: StudySpec::default(),
            matrix: MatrixSpec::default(),
            report: ReportSpec::default(),
        }
    }

    /// The supply-backend shoot-out: buck/dldo/dlr × TT/SS/FF ×
    /// fault rates {0, 0.02} — the scenario behind
    /// `docs/results/supply_shootout.txt`.
    pub fn supply_shootout() -> Scenario {
        let mut s = Scenario::new("supply-shootout");
        s.matrix.supplies = Some(vec![
            SupplyBackendKind::Buck,
            SupplyBackendKind::Dldo,
            SupplyBackendKind::Dlr,
        ]);
        s.matrix.corners = Some(vec![
            ProcessCorner::Tt,
            ProcessCorner::Ss,
            ProcessCorner::Ff,
        ]);
        s.matrix.fault_rates = Some(vec![0.0, 0.02]);
        s.report.title = "Supply-backend shoot-out ({dies} dies per cell, seed {seed})".to_owned();
        s.report.backend_figures = true;
        s.report.notes = vec![
            "Reading the table: the DLDO's one-LSB-of-charge ripple (0.15 mV pp) makes".to_owned(),
            "it electrically closest to the ideal rail, so its yields track the ideal".to_owned(),
            "study and it pays the least regulation overhead. The DLR sits between:".to_owned(),
            "quiet in steady state but slow-sampled (1 MHz), so a corrupted decision".to_owned(),
            "costs a full 20 mV excursion. The buck trades the worst ripple and the".to_owned(),
            "slowest settle for the simplest hardware story; its trough scoring is".to_owned(),
            "what cut adaptive yield below the ideal rail in the PR 4 study.".to_owned(),
        ];
        s
    }

    /// Overrides the study knobs the shared CLI flags cover. Worker
    /// count is *not* applied here — it is runtime-only; pass it via
    /// [`RunOptions::exec`].
    pub fn apply_args(&mut self, args: &StudyArgs) {
        self.study.dies = args.dies;
        self.study.seed = args.seed;
        self.study.eval = args.eval;
        self.study.solver = args.solver;
        self.study.mitigation = args.mitigation;
        if args.supply != SupplyBackendKind::default() {
            self.study.supply = args.supply;
        }
        if let Some(rate) = args.faults {
            self.study.fault_rate = Some(rate);
        }
        if let Some(batch) = args.batch {
            self.study.batch = Some(batch);
        }
        if let Some(path) = &args.checkpoint {
            self.study.checkpoint = Some(path.clone());
        }
    }

    // -----------------------------------------------------------------
    // TOML codec
    // -----------------------------------------------------------------

    /// Decodes a scenario document. Strict: unknown keys, type
    /// mismatches and out-of-range values are all [`TomlError`]s
    /// pointing at the offending line/column.
    pub fn from_toml(text: &str) -> Result<Scenario, ScenarioError> {
        let root = parse(text)?;
        check_keys(&root, &["name", "study", "matrix", "report"])?;
        let mut scenario = Scenario::new("");
        if let Some(v) = root.get("name") {
            scenario.name = v.as_str()?.to_owned();
        }
        if let Some(v) = root.get("study") {
            scenario.study = decode_study(v.as_table()?)?;
        }
        if let Some(v) = root.get("matrix") {
            scenario.matrix = decode_matrix(v.as_table()?)?;
        }
        if let Some(v) = root.get("report") {
            scenario.report = decode_report(v.as_table()?)?;
        }
        Ok(scenario)
    }

    /// Encodes the canonical full form: every `[study]` knob spelled
    /// out, axes and report blocks in declaration order.
    /// `from_toml(to_toml())` is identity on the model.
    pub fn to_toml(&self) -> String {
        let s = &self.study;
        let mut root = TomlTable::new();
        root.insert("name", Value::Str(self.name.clone()));

        let mut study = TomlTable::new();
        study.insert("dies", Value::Int(s.dies as i64));
        study.insert("seed", Value::Int(s.seed as i64));
        study.insert("tech", Value::Str(s.tech.clone()));
        study.insert("eval", Value::Str(s.eval.label().to_owned()));
        study.insert("corner", Value::Str(s.corner.name().to_owned()));
        study.insert("temp_c", Value::Float(s.temp_c));
        study.insert("variation", Value::Str(s.variation.clone()));
        study.insert("load", Value::Str(s.load.clone()));
        study.insert("min_rate_hz", Value::Float(s.min_rate_hz));
        study.insert("max_energy_fj", Value::Float(s.max_energy_fj));
        study.insert("fixed_word", Value::Int(s.fixed_word as i64));
        study.insert("design_word", Value::Int(s.design_word as i64));
        study.insert("supply", Value::Str(s.supply.label().to_owned()));
        study.insert("solver", Value::Str(solver_label(s.solver).to_owned()));
        study.insert("mitigation", Value::Bool(s.mitigation));
        if let Some(rate) = s.fault_rate {
            study.insert("fault_rate", Value::Float(rate));
        }
        if let Some(jobs) = s.jobs {
            study.insert("jobs", Value::Int(jobs as i64));
        }
        if let Some(batch) = s.batch {
            study.insert("batch", Value::Int(batch as i64));
        }
        if let Some(path) = &s.checkpoint {
            study.insert("checkpoint", Value::Str(path.clone()));
        }
        root.insert("study", Value::Table(study));

        if self.matrix != MatrixSpec::default() {
            let mut matrix = TomlTable::new();
            if let Some(supplies) = &self.matrix.supplies {
                matrix.insert(
                    "supplies",
                    str_array(supplies.iter().map(|k| k.label().to_owned())),
                );
            }
            if let Some(corners) = &self.matrix.corners {
                matrix.insert(
                    "corners",
                    str_array(corners.iter().map(|c| c.name().to_owned())),
                );
            }
            if let Some(rates) = &self.matrix.fault_rates {
                matrix.insert(
                    "fault_rates",
                    Value::Array(
                        rates
                            .iter()
                            .map(|&r| Spanned::synthetic(Value::Float(r)))
                            .collect(),
                    ),
                );
            }
            root.insert("matrix", Value::Table(matrix));
        }

        let mut report = TomlTable::new();
        report.insert("title", Value::Str(self.report.title.clone()));
        report.insert("table_title", Value::Str(self.report.table_title.clone()));
        report.insert("backend_figures", Value::Bool(self.report.backend_figures));
        if !self.report.notes.is_empty() {
            let notes: Vec<Spanned<Value>> = self
                .report
                .notes
                .iter()
                .map(|line| {
                    let mut note = TomlTable::new();
                    note.insert("text", Value::Str(line.clone()));
                    Spanned::synthetic(Value::Table(note))
                })
                .collect();
            report.insert("notes", Value::Array(notes));
        }
        root.insert("report", Value::Table(report));

        serialize(&root)
    }

    // -----------------------------------------------------------------
    // Compilation
    // -----------------------------------------------------------------

    /// The base [`StudyConfig`] the `[study]` block describes. For a
    /// matrix scenario this is the matrix base (its supply/env/faults
    /// axes are superseded by the cells); for a single-cell scenario it
    /// *is* the cell, and its checkpoint fingerprint is the one a
    /// standalone run of the same knobs would stamp.
    pub fn study_config(&self) -> StudyConfig<'static> {
        let s = &self.study;
        let tech = match s.tech.as_str() {
            "generic-65nm" => Technology::generic_65nm(),
            _ => Technology::st_130nm(),
        };
        let mut cfg = StudyConfig::new(s.dies, s.seed)
            .tech(tech)
            .env(Environment::at_corner(s.corner).with_celsius(s.temp_c))
            .variation(VariationModel::st_130nm())
            .spec(YieldSpec {
                min_rate: Hertz(s.min_rate_hz),
                max_energy_per_op: Joules::from_femtos(s.max_energy_fj),
            })
            .words(s.fixed_word, s.design_word)
            .supply_backend(s.supply)
            .solver(s.solver)
            .exec(ExecConfig::from_option(s.jobs));
        if s.eval != EvalMode::default() {
            cfg = cfg.eval_mode(s.eval);
        }
        if let Some(rate) = s.fault_rate {
            cfg = cfg.faults(FaultPlan::uniform(rate).with_mitigation(s.mitigation));
        }
        if let Some(batch) = s.batch {
            cfg = cfg.batch(batch);
        }
        if let Some(path) = &s.checkpoint {
            cfg = cfg.checkpoint(path);
        }
        cfg
    }

    /// The expanded cell list: supplies × corners × fault rates, outer
    /// to inner; each missing axis defaults to the base `[study]`
    /// value.
    pub fn cell_plans(&self) -> Vec<CellPlan> {
        let supplies = self
            .matrix
            .supplies
            .clone()
            .unwrap_or_else(|| vec![self.study.supply]);
        let corners = self
            .matrix
            .corners
            .clone()
            .unwrap_or_else(|| vec![self.study.corner]);
        let rates = self
            .matrix
            .fault_rates
            .clone()
            .unwrap_or_else(|| vec![self.study.fault_rate.unwrap_or(0.0)]);
        let mut plans = Vec::with_capacity(supplies.len() * corners.len() * rates.len());
        for &supply in &supplies {
            for &corner in &corners {
                for &rate in &rates {
                    plans.push(CellPlan {
                        supply,
                        corner,
                        rate,
                        env: Environment::at_corner(corner).with_celsius(self.study.temp_c),
                        faults: (rate > 0.0).then(|| {
                            FaultPlan::uniform(rate).with_mitigation(self.study.mitigation)
                        }),
                    });
                }
            }
        }
        plans
    }

    /// The compiled matrix: base config + expanded cells, with the
    /// runtime overrides applied.
    fn compile(&self, opts: &RunOptions) -> StudyMatrix<'static> {
        let mut base = self.study_config();
        if let Some(exec) = opts.exec {
            base = base.exec(exec);
        }
        if let Some(path) = &opts.checkpoint {
            base = base.checkpoint(path);
        }
        self.cell_plans()
            .into_iter()
            .fold(StudyMatrix::new(base), |m, p| {
                m.cell(p.supply, p.env, p.faults)
            })
    }

    /// The checkpoint fingerprint of this scenario's matrix — the
    /// stable identity stamped into report provenance and any
    /// checkpoint file.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_of(&self.compile(&RunOptions::default()).fingerprint_text())
    }

    /// The report title with `{dies}`/`{seed}`/`{design_word}`
    /// substituted.
    pub fn title(&self) -> String {
        self.report
            .title
            .replace("{dies}", &self.study.dies.to_string())
            .replace("{seed}", &self.study.seed.to_string())
            .replace("{design_word}", &self.study.design_word.to_string())
    }

    // -----------------------------------------------------------------
    // Execution
    // -----------------------------------------------------------------

    /// Runs the scenario on the fused matrix engine and assembles the
    /// [`Report`].
    ///
    /// # Errors
    ///
    /// [`StudyError`] on checkpoint damage/mismatch or cancellation —
    /// exactly the failure modes of [`StudyMatrix::try_run`].
    pub fn try_run(&self, opts: &RunOptions) -> Result<Report, StudyError> {
        let matrix = self.compile(opts);
        let fingerprint = fingerprint_of(&matrix.fingerprint_text());
        let results = matrix.try_run()?;
        let plans = self.cell_plans();

        let mut report = Report::new(self.title()).provenance(Provenance {
            scenario: self.name.clone(),
            fingerprint,
            seed: self.study.seed,
            dies: self.study.dies,
            jobs: self.study.jobs,
        });

        if self.report.backend_figures {
            let mut fig = Table::new(
                format!(
                    "Backend figures at the design word ({})",
                    self.study.design_word
                ),
                &[
                    "backend",
                    "ripple (mV pp)",
                    "settle (cycles)",
                    "regulation (fJ/cycle)",
                    "glitch droop (mV)",
                    "missed-update droop (mV)",
                ],
            );
            let mut seen: Vec<SupplyBackendKind> = Vec::new();
            for plan in &plans {
                if seen.contains(&plan.supply) {
                    continue;
                }
                seen.push(plan.supply);
                if let SupplySim::Regulated(model) = plan.supply.build_sim(self.study.solver) {
                    fig.row(&[
                        plan.supply.label().to_owned(),
                        f(model.point(self.study.design_word).ripple().millivolts(), 3),
                        model.response_cycles().to_string(),
                        f(model.regulation_energy_per_cycle().femtos(), 1),
                        f(model.comparator_glitch_droop().millivolts(), 2),
                        f(model.missed_update_droop().millivolts(), 2),
                    ]);
                }
            }
            report.table(fig);
        }

        let mut mc = Table::new(
            self.report.table_title.clone(),
            &[
                "backend",
                "corner",
                "fault rate",
                "fixed",
                "adaptive",
                "dithered",
                "mean adaptive E (fJ)",
                "tracking err (LSB)",
            ],
        );
        for (plan, result) in plans.iter().zip(&results) {
            let (summary, tracking) = match result {
                CellSummary::Yield(s) => (s, "-".to_owned()),
                CellSummary::Faults(s) => (&s.base, f(s.mean_tracking_error(), 2)),
            };
            mc.row(&[
                plan.supply.label().to_owned(),
                plan.corner.name().to_owned(),
                format!("{}", plan.rate),
                pct(summary.fixed_yield()),
                pct(summary.adaptive_yield()),
                pct(summary.dithered_yield()),
                summary
                    .mean_adaptive_energy()
                    .map_or("-".into(), |e| f(e.femtos(), 3)),
                tracking,
            ]);
            report.cells.push(cell_report(plan, result));
        }
        report.table(mc);

        if !self.report.notes.is_empty() {
            report.note(self.report.notes.iter().cloned());
        }
        Ok(report)
    }

    /// [`Scenario::try_run`], panicking on a study failure.
    ///
    /// # Panics
    ///
    /// On checkpoint damage/mismatch or cancellation.
    pub fn run(&self, opts: &RunOptions) -> Report {
        match self.try_run(opts) {
            Ok(report) => report,
            Err(e) => panic!("scenario `{}` failed: {e}", self.name),
        }
    }
}

/// One cell's machine-readable summary.
fn cell_report(plan: &CellPlan, result: &CellSummary) -> CellReport {
    let common = |s: &subvt_core::yield_study::YieldSummary| CellReport {
        supply: plan.supply.label().to_owned(),
        corner: plan.corner.name().to_owned(),
        temp_c: plan.env.temperature.celsius(),
        fault_rate: plan.rate,
        kind: "summary".to_owned(),
        dies: s.dies,
        fixed_yield: s.fixed_yield(),
        adaptive_yield: s.adaptive_yield(),
        dithered_yield: s.dithered_yield(),
        mean_adaptive_energy_fj: s.mean_adaptive_energy().map(|e| e.femtos()),
        tracking_error_lsb: None,
        recovery_energy_fj: None,
        watchdog_trips: None,
        faults_injected: None,
    };
    match result {
        CellSummary::Yield(s) => common(s),
        CellSummary::Faults(s) => CellReport {
            kind: "faults".to_owned(),
            tracking_error_lsb: Some(s.mean_tracking_error()),
            recovery_energy_fj: Some(s.mean_recovery_energy().femtos()),
            watchdog_trips: Some(s.watchdog_trips),
            faults_injected: Some(s.faults_injected),
            ..common(&s.base)
        },
    }
}

fn solver_label(solver: SolverMode) -> &'static str {
    match solver {
        SolverMode::ClosedForm => "closed-form",
        SolverMode::Rk4 => "rk4",
    }
}

fn str_array(items: impl Iterator<Item = String>) -> Value {
    Value::Array(items.map(|s| Spanned::synthetic(Value::Str(s))).collect())
}

// ---------------------------------------------------------------------
// Strict decoding
// ---------------------------------------------------------------------

/// Rejects any key not in `allowed`, pointing at the key's span.
fn check_keys(table: &TomlTable, allowed: &[&str]) -> Result<(), TomlError> {
    for (key, _) in table.entries() {
        if !allowed.contains(&key.value.as_str()) {
            return Err(TomlError::new(
                key.line,
                key.col,
                format!(
                    "unknown key `{}` (expected one of: {})",
                    key.value,
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

fn range_err(v: &Spanned<Value>, msg: impl Into<String>) -> TomlError {
    TomlError::new(v.line, v.col, msg)
}

fn positive_usize(v: &Spanned<Value>, what: &str) -> Result<usize, TomlError> {
    let raw = v.as_int()?;
    usize::try_from(raw)
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| range_err(v, format!("{what} must be a positive integer")))
}

fn decode_study(table: &TomlTable) -> Result<StudySpec, TomlError> {
    check_keys(
        table,
        &[
            "dies",
            "seed",
            "tech",
            "eval",
            "corner",
            "temp_c",
            "variation",
            "load",
            "min_rate_hz",
            "max_energy_fj",
            "fixed_word",
            "design_word",
            "supply",
            "solver",
            "fault_rate",
            "mitigation",
            "jobs",
            "batch",
            "checkpoint",
        ],
    )?;
    let mut s = StudySpec::default();
    if let Some(v) = table.get("dies") {
        s.dies = positive_usize(v, "dies")?;
    }
    if let Some(v) = table.get("seed") {
        let raw = v.as_int()?;
        s.seed =
            u64::try_from(raw).map_err(|_| range_err(v, "seed must be a non-negative integer"))?;
    }
    if let Some(v) = table.get("tech") {
        s.tech = match v.as_str()? {
            name @ ("st-130nm" | "generic-65nm") => name.to_owned(),
            other => {
                return Err(range_err(
                    v,
                    format!("unknown tech `{other}` (expected one of: st-130nm, generic-65nm)"),
                ))
            }
        };
    }
    if let Some(v) = table.get("eval") {
        s.eval = v
            .as_str()?
            .parse()
            .map_err(|e| range_err(v, format!("{e}")))?;
    }
    if let Some(v) = table.get("corner") {
        s.corner = v
            .as_str()?
            .parse()
            .map_err(|e| range_err(v, format!("{e}")))?;
    }
    if let Some(v) = table.get("temp_c") {
        s.temp_c = v.as_float()?;
    }
    if let Some(v) = table.get("variation") {
        s.variation = match v.as_str()? {
            "st-130nm" => "st-130nm".to_owned(),
            other => {
                return Err(range_err(
                    v,
                    format!("unknown variation model `{other}` (expected st-130nm)"),
                ))
            }
        };
    }
    if let Some(v) = table.get("load") {
        s.load = match v.as_str()? {
            "paper-ring" => "paper-ring".to_owned(),
            other => {
                return Err(range_err(
                    v,
                    format!("unknown load `{other}` (expected paper-ring)"),
                ))
            }
        };
    }
    if let Some(v) = table.get("min_rate_hz") {
        let rate = v.as_float()?;
        // partial_cmp: NaN must fail the bound too.
        if rate.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(range_err(v, "min_rate_hz must be positive"));
        }
        s.min_rate_hz = rate;
    }
    if let Some(v) = table.get("max_energy_fj") {
        let energy = v.as_float()?;
        if energy.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(range_err(v, "max_energy_fj must be positive"));
        }
        s.max_energy_fj = energy;
    }
    if let Some(v) = table.get("fixed_word") {
        s.fixed_word = decode_word(v, "fixed_word")?;
    }
    if let Some(v) = table.get("design_word") {
        s.design_word = decode_word(v, "design_word")?;
    }
    if let Some(v) = table.get("supply") {
        s.supply = decode_supply(v)?;
    }
    if let Some(v) = table.get("solver") {
        s.solver = match v.as_str()? {
            "closed-form" | "closed_form" => SolverMode::ClosedForm,
            "rk4" => SolverMode::Rk4,
            other => {
                return Err(range_err(
                    v,
                    format!("unknown solver `{other}` (expected one of: closed-form, rk4)"),
                ))
            }
        };
    }
    if let Some(v) = table.get("fault_rate") {
        s.fault_rate = Some(decode_rate(v)?);
    }
    if let Some(v) = table.get("mitigation") {
        s.mitigation = v.as_bool()?;
    }
    if let Some(v) = table.get("jobs") {
        s.jobs = Some(positive_usize(v, "jobs")?);
    }
    if let Some(v) = table.get("batch") {
        s.batch = Some(positive_usize(v, "batch")?);
    }
    if let Some(v) = table.get("checkpoint") {
        s.checkpoint = Some(v.as_str()?.to_owned());
    }
    Ok(s)
}

fn decode_word(v: &Spanned<Value>, what: &str) -> Result<u8, TomlError> {
    let raw = v.as_int()?;
    u8::try_from(raw)
        .ok()
        .filter(|&w| (1..=63).contains(&w))
        .ok_or_else(|| range_err(v, format!("{what} must be a DAC word in 1..=63")))
}

fn decode_supply(v: &Spanned<Value>) -> Result<SupplyBackendKind, TomlError> {
    v.as_str()?.parse().map_err(|e: String| range_err(v, e))
}

fn decode_rate(v: &Spanned<Value>) -> Result<f64, TomlError> {
    let rate = v.as_float()?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(range_err(v, "fault rate must be a probability in [0, 1]"));
    }
    Ok(rate)
}

fn decode_matrix(table: &TomlTable) -> Result<MatrixSpec, TomlError> {
    check_keys(table, &["supplies", "corners", "fault_rates"])?;
    let mut m = MatrixSpec::default();
    if let Some(v) = table.get("supplies") {
        let items = v.as_array()?;
        if items.is_empty() {
            return Err(range_err(v, "supplies must not be empty"));
        }
        m.supplies = Some(items.iter().map(decode_supply).collect::<Result<_, _>>()?);
    }
    if let Some(v) = table.get("corners") {
        let items = v.as_array()?;
        if items.is_empty() {
            return Err(range_err(v, "corners must not be empty"));
        }
        m.corners = Some(
            items
                .iter()
                .map(|item| {
                    item.as_str()?
                        .parse()
                        .map_err(|e| range_err(item, format!("{e}")))
                })
                .collect::<Result<_, _>>()?,
        );
    }
    if let Some(v) = table.get("fault_rates") {
        let items = v.as_array()?;
        if items.is_empty() {
            return Err(range_err(v, "fault_rates must not be empty"));
        }
        m.fault_rates = Some(items.iter().map(decode_rate).collect::<Result<_, _>>()?);
    }
    Ok(m)
}

fn decode_report(table: &TomlTable) -> Result<ReportSpec, TomlError> {
    check_keys(table, &["title", "table_title", "backend_figures", "notes"])?;
    let mut r = ReportSpec::default();
    if let Some(v) = table.get("title") {
        r.title = v.as_str()?.to_owned();
    }
    if let Some(v) = table.get("table_title") {
        r.table_title = v.as_str()?.to_owned();
    }
    if let Some(v) = table.get("backend_figures") {
        r.backend_figures = v.as_bool()?;
    }
    if let Some(v) = table.get("notes") {
        let mut notes = Vec::new();
        for item in v.as_array()? {
            let note = item.as_table()?;
            check_keys(note, &["text"])?;
            let text = note
                .get("text")
                .ok_or_else(|| range_err(item, "a [[report.notes]] entry needs a `text` key"))?;
            notes.push(text.as_str()?.to_owned());
        }
        r.notes = notes;
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_round_trip_through_toml() {
        let scenario = Scenario::new("demo");
        let text = scenario.to_toml();
        let back = Scenario::from_toml(&text).unwrap();
        assert_eq!(back, scenario);
    }

    #[test]
    fn shootout_round_trips_and_expands_to_18_cells() {
        let scenario = Scenario::supply_shootout();
        let back = Scenario::from_toml(&scenario.to_toml()).unwrap();
        assert_eq!(back, scenario);
        let plans = scenario.cell_plans();
        assert_eq!(plans.len(), 18);
        // exp-shootout nesting: supplies outer, corners mid, rates inner.
        assert_eq!(plans[0].supply, SupplyBackendKind::Buck);
        assert_eq!(plans[0].corner, ProcessCorner::Tt);
        assert_eq!(plans[0].rate, 0.0);
        assert!(plans[0].faults.is_none(), "rate 0.0 compiles to no plan");
        assert_eq!(plans[1].rate, 0.02);
        assert!(plans[1].faults.is_some());
        assert_eq!(plans[17].supply, SupplyBackendKind::Dlr);
        assert_eq!(plans[17].corner, ProcessCorner::Ff);
    }

    #[test]
    fn a_sparse_document_gets_the_paper_defaults() {
        let scenario = Scenario::from_toml("name = \"tiny\"\n\n[study]\ndies = 40\n").unwrap();
        assert_eq!(scenario.name, "tiny");
        assert_eq!(scenario.study.dies, 40);
        assert_eq!(scenario.study.seed, 1);
        assert_eq!(scenario.study.supply, SupplyBackendKind::Ideal);
        assert_eq!(scenario.cell_plans().len(), 1);
    }

    #[test]
    fn unknown_keys_are_rejected_with_their_line() {
        let e = Scenario::from_toml("name = \"x\"\n\n[study]\ndise = 40\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("unknown key `dise`"), "{e}");

        let e = Scenario::from_toml("[matrix]\nsupplys = [\"buck\"]\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("unknown key `supplys`"), "{e}");
    }

    #[test]
    fn type_mismatches_are_rejected_with_their_line() {
        let e = Scenario::from_toml("[study]\ndies = \"many\"\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(
            e.to_string()
                .contains("expected an integer, found a string"),
            "{e}"
        );

        let e = Scenario::from_toml("[study]\nmitigation = 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("expected a boolean"), "{e}");
    }

    #[test]
    fn out_of_range_values_are_rejected_with_their_line() {
        for (doc, needle) in [
            ("[study]\ndies = 0\n", "dies must be a positive integer"),
            ("[study]\nfault_rate = 1.5\n", "probability in [0, 1]"),
            ("[study]\nfixed_word = 99\n", "DAC word in 1..=63"),
            ("[study]\nsupply = \"battery\"\n", "unknown supply"),
            ("[study]\ncorner = \"XX\"\n", "unknown process corner"),
            ("[matrix]\nfault_rates = []\n", "must not be empty"),
        ] {
            let e = Scenario::from_toml(doc).unwrap_err();
            assert_eq!(e.line, 2, "{doc}");
            assert!(e.to_string().contains(needle), "{doc}: {e}");
        }
    }

    #[test]
    fn study_config_fingerprint_matches_the_flag_path() {
        // A scenario's single-cell config must be checkpoint-compatible
        // with the same knobs spelled as CLI flags.
        let mut args = StudyArgs::new();
        args.dies = 120;
        args.seed = 9;
        args.supply = SupplyBackendKind::Dldo;
        let mut scenario = Scenario::new("flags");
        scenario.apply_args(&args);
        assert_eq!(
            scenario.study_config().fingerprint_text("summary"),
            args.study().fingerprint_text("summary"),
        );
    }

    #[test]
    fn matrix_fingerprint_survives_the_toml_round_trip() {
        let scenario = Scenario::supply_shootout();
        let back = Scenario::from_toml(&scenario.to_toml()).unwrap();
        assert_eq!(back.fingerprint(), scenario.fingerprint());
    }

    #[test]
    fn title_substitutes_study_values() {
        let mut s = Scenario::new("t");
        s.study.dies = 42;
        s.study.seed = 7;
        s.report.title = "X ({dies} dies, seed {seed}, word {design_word})".to_owned();
        assert_eq!(s.title(), "X (42 dies, seed 7, word 11)");
    }

    #[test]
    fn runtime_options_do_not_change_report_bytes() {
        let mut s = Scenario::new("jobs-invariance");
        s.study.dies = 60;
        let base = s.run(&RunOptions::default());
        for jobs in [1usize, 4] {
            let got = s.run(&RunOptions {
                exec: Some(ExecConfig::with_jobs(jobs)),
                checkpoint: None,
            });
            assert_eq!(got.to_text(), base.to_text(), "jobs={jobs}");
            assert_eq!(got.to_json(), base.to_json(), "jobs={jobs}");
        }
    }

    #[test]
    fn fault_cells_render_tracking_and_summary_cells_do_not() {
        let mut s = Scenario::new("ladder");
        s.study.dies = 50;
        s.matrix.fault_rates = Some(vec![0.0, 0.08]);
        let report = s.run(&RunOptions::default());
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].kind, "summary");
        assert!(report.cells[0].tracking_error_lsb.is_none());
        assert_eq!(report.cells[1].kind, "faults");
        assert!(report.cells[1].tracking_error_lsb.is_some());
        assert_eq!(report.cells[1].fault_rate, 0.08);
        let prov = report.provenance.as_ref().unwrap();
        assert_eq!(prov.fingerprint, s.fingerprint());
        assert_eq!(prov.jobs, None);
    }
}
