//! Codec properties of the scenario format: parse ∘ serialize is the
//! identity on the model, the canonical encoding is a fixed point, and
//! a TOML round trip never moves a study's checkpoint fingerprint.
//!
//! Randomized over the full knob space (die counts, seeds, backends,
//! corners, fault rates, DAC words, matrix axes) with the in-tree
//! property harness; failures shrink and replay via
//! `tests/testkit-regressions.txt`.

use subvt_core::study::SupplyBackendKind;
use subvt_device::corner::ProcessCorner;
use subvt_device::tabulate::EvalMode;
use subvt_scenario::Scenario;
use subvt_testkit::prelude::*;

const SUPPLIES: [SupplyBackendKind; 4] = [
    SupplyBackendKind::Ideal,
    SupplyBackendKind::Buck,
    SupplyBackendKind::Dldo,
    SupplyBackendKind::Dlr,
];

const CORNERS: [ProcessCorner; 5] = [
    ProcessCorner::Tt,
    ProcessCorner::Ss,
    ProcessCorner::Ff,
    ProcessCorner::Sf,
    ProcessCorner::Fs,
];

/// A scenario exercising every scalar knob, driven by drawn values.
fn build(dies: usize, seed: u64, supply: usize, corner: usize, rate: f64, word: u8) -> Scenario {
    let mut s = Scenario::new("prop");
    s.study.dies = dies;
    s.study.seed = seed;
    s.study.supply = SUPPLIES[supply % SUPPLIES.len()];
    s.study.corner = CORNERS[corner % CORNERS.len()];
    s.study.eval = if seed.is_multiple_of(2) {
        EvalMode::Analytic
    } else {
        EvalMode::Tabulated
    };
    s.study.fixed_word = word;
    s.study.design_word = 1 + (word % 63);
    if rate > 0.0 {
        s.study.fault_rate = Some(rate);
    }
    s.study.mitigation = !seed.is_multiple_of(3);
    s
}

properties! {
    cases = 96;

    /// parse ∘ serialize is the identity on the scenario model, and
    /// the canonical encoding is a fixed point of the codec.
    fn toml_round_trip_is_identity(
        dies in 1usize..5000,
        seed in 0u64..1_000_000,
        supply in 0usize..4,
        corner in 0usize..5,
        rate in 0.0f64..1.0,
        word in 1u8..64,
    ) {
        let scenario = build(dies, seed, supply, corner, rate, word);
        let text = scenario.to_toml();
        let back = Scenario::from_toml(&text)
            .map_err(|e| PropError::fail(format!("canonical form rejected: {e}\n{text}")))?;
        prop_assert_eq!(&back, &scenario);
        prop_assert_eq!(back.to_toml(), text);
    }

    /// Compiling the study before and after a TOML round trip yields
    /// the same checkpoint fingerprint — a resumable `.svcp` written
    /// against the in-memory scenario replays against the re-parsed
    /// one.
    fn round_trip_preserves_checkpoint_fingerprint(
        dies in 1usize..5000,
        seed in 0u64..1_000_000,
        supply in 0usize..4,
        corner in 0usize..5,
        rate in 0.0f64..1.0,
        word in 1u8..64,
    ) {
        let scenario = build(dies, seed, supply, corner, rate, word);
        let back = Scenario::from_toml(&scenario.to_toml())
            .map_err(|e| PropError::fail(format!("canonical form rejected: {e}")))?;
        prop_assert_eq!(back.fingerprint(), scenario.fingerprint());
        let kind = if scenario.study.fault_rate.is_some() {
            "faults"
        } else {
            "summary"
        };
        prop_assert_eq!(
            back.study_config().fingerprint_text(kind),
            scenario.study_config().fingerprint_text(kind)
        );
    }

    /// Matrix expansion is the full cross product of the axes, in
    /// axis order, regardless of which axes a document pins.
    fn matrix_expansion_is_the_cross_product(
        supplies in vec(0usize..4, 1..4),
        corners in vec(0usize..5, 1..5),
        rates in vec(0.0f64..0.5, 1..4),
        pin in 0usize..8,
    ) {
        let mut s = Scenario::new("prop-matrix");
        // Each axis is pinned or left to its single-value default.
        let mut expect = 1;
        if pin & 1 != 0 {
            s.matrix.supplies =
                Some(supplies.iter().map(|&i| SUPPLIES[i]).collect());
            expect *= supplies.len();
        }
        if pin & 2 != 0 {
            s.matrix.corners =
                Some(corners.iter().map(|&i| CORNERS[i]).collect());
            expect *= corners.len();
        }
        if pin & 4 != 0 {
            s.matrix.fault_rates = Some(rates.clone());
            expect *= rates.len();
        }
        let plans = s.cell_plans();
        prop_assert_eq!(plans.len(), expect);
        let back = Scenario::from_toml(&s.to_toml())
            .map_err(|e| PropError::fail(format!("canonical form rejected: {e}")))?;
        prop_assert_eq!(back.cell_plans().len(), expect);
        prop_assert_eq!(back.fingerprint(), s.fingerprint());
    }
}

/// Malformed documents are rejected with the line of the offending
/// token — the rejection vocabulary the suite runner surfaces.
#[test]
fn rejections_carry_line_numbers() {
    for (doc, line, needle) in [
        ("name = \"x\"\n\n[study]\ndies = 0\n", 4, "positive"),
        ("[study]\nseed = \"one\"\n", 2, "expected an integer"),
        ("[study]\nfault_rate = 1.5\n", 2, "probability in [0, 1]"),
        ("[study]\nfixed_word = 77\n", 2, "1..=63"),
        ("[study]\nsupply = \"solar\"\n", 2, "unknown supply"),
        ("[report]\nnotes = 3\n", 2, "expected"),
        ("[matrix]\ncorners = []\n", 2, "must not be empty"),
        ("name = \"x\"\nname = \"y\"\n", 2, "duplicate key"),
    ] {
        let e = Scenario::from_toml(doc).expect_err(doc);
        assert_eq!(e.line, line, "{doc}: {e}");
        assert!(e.to_string().contains(needle), "{doc}: {e}");
    }
}
