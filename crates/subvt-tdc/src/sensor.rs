//! The variation sensor: the paper's novel contribution.
//!
//! Sec. II-A: "The novel variation sensor captures the variation in
//! operating conditions based on time to digital conversion. Therefore,
//! it can be used as a signature for a change in process and
//! temperature variations."
//!
//! At design time the sensor is calibrated at the *design* environment
//! (the corner the chip was signed off at): for every 6-bit voltage
//! word it records the quantizer code the delay replica should produce
//! at that word's voltage, plus the codes of the neighbouring words.
//! At run time the replica runs on the *actual* die; the measured code
//! is matched against the neighbour table, and the best-matching
//! neighbour offset is the variation signature in DC-DC LSBs
//! (18.75 mV units).

use std::fmt;

use subvt_device::constants::DCDC_LSB;
use subvt_device::delay::GateMismatch;
use subvt_device::mosfet::Environment;
use subvt_device::tabulate::{AnalyticEval, DeviceEval};
use subvt_device::technology::{GateKind, Technology};
use subvt_device::units::{Seconds, Volts};
use subvt_digital::encoder::{EncodeError, QuantizerWord};
use subvt_digital::lut::VoltageWord;

use crate::delay_line::{CellKind, DelayLine};
use crate::quantizer::{Quantizer, RefClock};

/// Sensor geometry and calibration parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorConfig {
    /// Delay-line length (the paper's quantizer has 64 stages).
    pub stages: u8,
    /// Anchor position in cell delays: the sampling instant is placed
    /// so the edge sits at this stage when the die matches the design
    /// environment.
    pub anchor_stages: f64,
    /// Ref_clk period in cell delays for each band ("varying the
    /// Ref_clk to a much lower frequency", Sec. II-A).
    pub period_stages: f64,
    /// Neighbour range of the signature table (± this many LSBs).
    pub neighbor_range: i16,
}

impl Default for SensorConfig {
    fn default() -> SensorConfig {
        SensorConfig {
            // Half-stage anchor: the edge sits mid-cell, away from the
            // metastability window of the boundary flip-flop.
            stages: 64,
            anchor_stages: 31.5,
            period_stages: 256.0,
            neighbor_range: 3,
        }
    }
}

/// Why a measurement could not be turned into a deviation.
#[derive(Debug, Clone, PartialEq)]
pub enum SenseError {
    /// The requested band's voltage is below the technology floor, so
    /// no calibration exists for it.
    BandUnusable {
        /// The offending voltage word.
        word: VoltageWord,
    },
    /// The quantizer word was not decodable (and not classifiable as a
    /// simple saturation): the double-latch failure mode.
    Unreliable(EncodeError),
}

impl fmt::Display for SenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SenseError::BandUnusable { word } => {
                write!(f, "voltage word {word} is below the sensor's usable range")
            }
            SenseError::Unreliable(e) => write!(f, "unreliable quantizer output: {e}"),
        }
    }
}

impl std::error::Error for SenseError {}

/// One calibrated measurement band (one voltage word).
#[derive(Debug, Clone, PartialEq)]
struct BandTable {
    quantizer: Quantizer,
    /// `(offset_lsb, expected_code)` at the design environment, for
    /// offsets where the code is cleanly decodable.
    neighbors: Vec<(i16, u32)>,
}

/// The calibrated TDC variation sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationSensor {
    config: SensorConfig,
    design_env: Environment,
    line: DelayLine,
    bands: Vec<Option<BandTable>>,
}

/// Voltage of a 6-bit DC-DC word: `word × 18.75 mV`.
pub fn word_voltage(word: VoltageWord) -> Volts {
    DCDC_LSB * f64::from(word)
}

/// Closest 6-bit word to a voltage.
pub fn voltage_word(v: Volts) -> VoltageWord {
    (v.volts() / DCDC_LSB.volts()).round().clamp(0.0, 63.0) as VoltageWord
}

impl VariationSensor {
    /// Calibrates a sensor against `tech` at the design environment.
    ///
    /// Bands whose voltage (or whose lowest in-range neighbour) falls
    /// below the technology's functional floor are marked unusable.
    pub fn new(
        tech: &Technology,
        design_env: Environment,
        config: SensorConfig,
    ) -> VariationSensor {
        Self::with_eval(&AnalyticEval::new(tech), design_env, config)
    }

    /// Calibrates a sensor through a [`DeviceEval`] — the tabulated
    /// variant of [`VariationSensor::new`]. With an
    /// [`AnalyticEval`] the result is bit-identical to `new`.
    pub fn with_eval(
        eval: &dyn DeviceEval,
        design_env: Environment,
        config: SensorConfig,
    ) -> VariationSensor {
        let line = DelayLine::new(config.stages, CellKind::InvNor);
        let mut bands = Vec::with_capacity(64);
        for word in 0u8..64 {
            bands.push(Self::calibrate_band(eval, design_env, &line, config, word));
        }
        VariationSensor {
            config,
            design_env,
            line,
            bands,
        }
    }

    fn calibrate_band(
        eval: &dyn DeviceEval,
        design_env: Environment,
        line: &DelayLine,
        config: SensorConfig,
        word: VoltageWord,
    ) -> Option<BandTable> {
        let v = word_voltage(word);
        let cell = line.cell_delay_with(eval, v, design_env).ok()?;
        let period = Seconds(cell.value() * config.period_stages);
        let anchor = Seconds(cell.value() * config.anchor_stages);
        let quantizer = Quantizer::new(config.stages, RefClock::square(period), anchor);
        let mut neighbors = Vec::new();
        for k in -config.neighbor_range..=config.neighbor_range {
            let w = i16::from(word) + k;
            if !(0..64).contains(&w) {
                continue;
            }
            let vn = word_voltage(w as VoltageWord);
            let Ok(cell_n) = line.cell_delay_with(eval, vn, design_env) else {
                continue;
            };
            if let Ok(code) = quantizer.sample(cell_n).encode() {
                neighbors.push((k, code));
            }
        }
        // A usable band must at least know its own code.
        if neighbors.iter().any(|&(k, _)| k == 0) {
            Some(BandTable {
                quantizer,
                neighbors,
            })
        } else {
            None
        }
    }

    /// The sensor configuration.
    pub fn config(&self) -> SensorConfig {
        self.config
    }

    /// The environment the sensor was calibrated at.
    pub fn design_env(&self) -> Environment {
        self.design_env
    }

    /// The expected (calibration) code of a band, if usable.
    pub fn expected_code(&self, word: VoltageWord) -> Option<u32> {
        self.bands
            .get(usize::from(word))?
            .as_ref()?
            .neighbors
            .iter()
            .find(|&&(k, _)| k == 0)
            .map(|&(_, c)| c)
    }

    /// Measures the quantizer code for band `word` with the replica at
    /// `actual_vdd` in the actual `env`, with die mismatch `mismatch`.
    ///
    /// # Errors
    ///
    /// [`SenseError::BandUnusable`] for uncalibrated bands;
    /// [`SenseError::Unreliable`] when the code cannot be decoded.
    pub fn measure(
        &self,
        tech: &Technology,
        word: VoltageWord,
        actual_vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<u32, SenseError> {
        let band = self.band(word)?;
        let line = self.line.clone().with_mismatch(mismatch);
        // A supply below the functional floor means the replica never
        // toggles: the flip-flops capture an empty word ("infinitely
        // slow"), not a configuration error.
        let cell = line
            .cell_delay(tech, actual_vdd, env)
            .map_err(|_| SenseError::Unreliable(EncodeError::Empty))?;
        Self::encode_cell(band, cell)
    }

    /// [`VariationSensor::measure`] through a [`DeviceEval`]: the
    /// replica delay comes from the evaluator instead of the direct
    /// analytic model.
    ///
    /// # Errors
    ///
    /// As [`VariationSensor::measure`].
    pub fn measure_with(
        &self,
        eval: &dyn DeviceEval,
        word: VoltageWord,
        actual_vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<u32, SenseError> {
        let band = self.band(word)?;
        let line = self.line.clone().with_mismatch(mismatch);
        let cell = line
            .cell_delay_with(eval, actual_vdd, env)
            .map_err(|_| SenseError::Unreliable(EncodeError::Empty))?;
        Self::encode_cell(band, cell)
    }

    /// Samples the raw thermometer word for band `word` — the
    /// quantizer output *before* encoding, so callers can corrupt or
    /// vote on it (fault injection, redundant sampling) and feed the
    /// result back through [`VariationSensor::decode`].
    ///
    /// The sample is a pure function of the operating point: repeated
    /// calls at the same arguments return the identical word, which is
    /// what makes within-cycle redundant sampling free of extra state.
    ///
    /// # Errors
    ///
    /// [`SenseError::BandUnusable`] for uncalibrated bands;
    /// [`SenseError::Unreliable`]`(`[`EncodeError::Empty`]`)` when the
    /// replica never toggles (supply below the functional floor).
    pub fn sample_with(
        &self,
        eval: &dyn DeviceEval,
        word: VoltageWord,
        actual_vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<QuantizerWord, SenseError> {
        let band = self.band(word)?;
        let line = self.line.clone().with_mismatch(mismatch);
        let cell = line
            .cell_delay_with(eval, actual_vdd, env)
            .map_err(|_| SenseError::Unreliable(EncodeError::Empty))?;
        Ok(band.quantizer.sample(cell))
    }

    /// Decodes a raw quantizer word (e.g. from
    /// [`VariationSensor::sample_with`], possibly corrupted in between)
    /// into the integer variation signature, with the same
    /// bubble-tolerant encode and out-of-range classification as
    /// [`VariationSensor::sense_with`]: for any operating point,
    /// `decode(word, sample_with(..)?)` equals `sense_with(..)`.
    ///
    /// # Errors
    ///
    /// [`SenseError::BandUnusable`] for uncalibrated bands.
    pub fn decode(&self, word: VoltageWord, sample: QuantizerWord) -> Result<i16, SenseError> {
        self.classify(
            word,
            sample
                .encode_bubble_tolerant()
                .map_err(SenseError::Unreliable),
        )
    }

    /// [`VariationSensor::decode`] without bubble repair: isolated
    /// zero bubbles make the measurement
    /// [`SenseError::Unreliable`] instead of being filled. This is the
    /// decode a non-hardened encoder would implement; the delta
    /// against [`VariationSensor::decode`] is the bubble-correction
    /// mitigation.
    ///
    /// # Errors
    ///
    /// [`SenseError::BandUnusable`] for uncalibrated bands.
    pub fn decode_strict(
        &self,
        word: VoltageWord,
        sample: QuantizerWord,
    ) -> Result<i16, SenseError> {
        self.classify(word, sample.encode().map_err(SenseError::Unreliable))
    }

    fn encode_cell(band: &BandTable, cell: Seconds) -> Result<u32, SenseError> {
        band.quantizer
            .sample(cell)
            .encode_bubble_tolerant()
            .map_err(|e| match e {
                EncodeError::Empty => SenseError::Unreliable(EncodeError::Empty),
                other => SenseError::Unreliable(other),
            })
    }

    /// Converts a measured code into a variation signature: the
    /// neighbour offset `k` (in 18.75 mV LSBs) whose design-time code
    /// best matches the measurement. A slow die reads negative (it
    /// behaves like the design corner at a lower voltage); the
    /// compensation loop applies the opposite shift.
    ///
    /// # Errors
    ///
    /// [`SenseError::BandUnusable`] for uncalibrated bands.
    pub fn deviation_lsb(&self, word: VoltageWord, code: u32) -> Result<i16, SenseError> {
        let band = self.band(word)?;
        let best = band
            .neighbors
            .iter()
            .min_by_key(|&&(k, c)| (c.abs_diff(code), k.unsigned_abs()))
            .expect("usable band has neighbors");
        Ok(best.0)
    }

    /// Fractional variant of [`VariationSensor::deviation_lsb`]:
    /// linearly interpolates the measured code on the (monotone)
    /// neighbour table, resolving variation *below* one 18.75 mV LSB.
    /// This is what enables sub-LSB compensation by supply dithering.
    ///
    /// # Errors
    ///
    /// [`SenseError::BandUnusable`] for uncalibrated bands.
    pub fn deviation_fractional(&self, word: VoltageWord, code: u32) -> Result<f64, SenseError> {
        let band = self.band(word)?;
        // Neighbours are stored in ascending k; codes ascend with k
        // (higher voltage → faster → larger code).
        let n = &band.neighbors;
        let c = f64::from(code);
        // Below/above the table: clamp to the edges.
        if c <= f64::from(n.first().expect("non-empty").1) {
            return Ok(f64::from(n.first().expect("non-empty").0));
        }
        if c >= f64::from(n.last().expect("non-empty").1) {
            return Ok(f64::from(n.last().expect("non-empty").0));
        }
        for pair in n.windows(2) {
            let (k0, c0) = pair[0];
            let (k1, c1) = pair[1];
            let (c0, c1) = (f64::from(c0), f64::from(c1));
            if (c0..=c1).contains(&c) && c1 > c0 {
                let t = (c - c0) / (c1 - c0);
                return Ok(f64::from(k0) + t * f64::from(k1 - k0));
            }
        }
        // Fallback (duplicate codes): integer answer.
        self.deviation_lsb(word, code).map(f64::from)
    }

    /// Measures and converts in one step, mapping out-of-range line
    /// states to extreme deviations: a fully-saturated line means
    /// "much faster than any neighbour", an empty line "much slower",
    /// and multiple bursts mean the line window outgrew the Ref_clk
    /// period — which in this per-band slow-clock architecture only
    /// happens when the die is far slower than calibrated.
    ///
    /// # Errors
    ///
    /// [`SenseError::BandUnusable`] for uncalibrated bands.
    pub fn sense(
        &self,
        tech: &Technology,
        word: VoltageWord,
        actual_vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<i16, SenseError> {
        self.classify(word, self.measure(tech, word, actual_vdd, env, mismatch))
    }

    /// [`VariationSensor::sense`] through a [`DeviceEval`].
    ///
    /// # Errors
    ///
    /// As [`VariationSensor::sense`].
    pub fn sense_with(
        &self,
        eval: &dyn DeviceEval,
        word: VoltageWord,
        actual_vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<i16, SenseError> {
        self.classify(
            word,
            self.measure_with(eval, word, actual_vdd, env, mismatch),
        )
    }

    /// Fractional-deviation variant of [`VariationSensor::sense`].
    ///
    /// # Errors
    ///
    /// As [`VariationSensor::sense`].
    pub fn sense_fractional(
        &self,
        tech: &Technology,
        word: VoltageWord,
        actual_vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<f64, SenseError> {
        self.classify_fractional(word, self.measure(tech, word, actual_vdd, env, mismatch))
    }

    /// [`VariationSensor::sense_fractional`] through a [`DeviceEval`].
    ///
    /// # Errors
    ///
    /// As [`VariationSensor::sense`].
    pub fn sense_fractional_with(
        &self,
        eval: &dyn DeviceEval,
        word: VoltageWord,
        actual_vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<f64, SenseError> {
        self.classify_fractional(
            word,
            self.measure_with(eval, word, actual_vdd, env, mismatch),
        )
    }

    /// [`VariationSensor::sense_with`] for a whole lane of dies
    /// sharing one band and one actual supply — the batched word-walk
    /// shape, where a cohort of dies all test the same candidate word.
    /// `out[i]` is exactly what
    /// `sense_with(eval, word, actual_vdd, env, mismatches[i])` would
    /// return; the replica-cell delays come from the evaluator's fused
    /// [`DeviceEval::gate_delay_pair_lane`] kernel, and the per-die
    /// quantize/encode/classify steps stay scalar (they are integer
    /// bit-twiddling, not float work).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != mismatches.len()`.
    ///
    /// # Errors
    ///
    /// [`SenseError::BandUnusable`] for uncalibrated bands (the band
    /// does not depend on the die, so one `Err` covers the lane).
    pub fn sense_lane_with(
        &self,
        eval: &dyn DeviceEval,
        word: VoltageWord,
        actual_vdd: Volts,
        env: Environment,
        mismatches: &[GateMismatch],
        out: &mut [Result<i16, SenseError>],
    ) -> Result<(), SenseError> {
        assert_eq!(
            mismatches.len(),
            out.len(),
            "lane output length must match the mismatch lane"
        );
        let band = self.band(word)?;
        match self.line.cell() {
            CellKind::InvNor => {
                let mut pairs = vec![(Seconds(0.0), Seconds(0.0)); mismatches.len()];
                match eval.gate_delay_pair_lane(
                    (GateKind::Inverter, GateKind::Nor2),
                    actual_vdd,
                    env,
                    mismatches,
                    1.0,
                    &mut pairs,
                ) {
                    Ok(()) => {
                        for (o, (inv, nor)) in out.iter_mut().zip(&pairs) {
                            *o = self.classify(word, Self::encode_cell(band, *inv + *nor));
                        }
                    }
                    Err(_) => {
                        // Below the functional floor the replica never
                        // toggles: every die captures an empty word —
                        // the same die-independent mapping
                        // `measure_with` applies.
                        for o in out.iter_mut() {
                            *o = self
                                .classify(word, Err(SenseError::Unreliable(EncodeError::Empty)));
                        }
                    }
                }
            }
            CellKind::Inverter => {
                for (m, o) in mismatches.iter().zip(out.iter_mut()) {
                    *o = self.sense_with(eval, word, actual_vdd, env, *m);
                }
            }
        }
        Ok(())
    }

    /// [`VariationSensor::sense_fractional_with`] for a lane of dies
    /// sharing one band but each at its *own* actual supply — the
    /// dither-settle shape, where every die walks its own voltage.
    /// `out[i]` is exactly what
    /// `sense_fractional_with(eval, word, vdds[i], env, mismatches[i])`
    /// would return; per-die below-floor supplies classify as empty
    /// words, exactly as in the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if `vdds`, `mismatches` and `out` lengths differ.
    ///
    /// # Errors
    ///
    /// [`SenseError::BandUnusable`] for uncalibrated bands.
    pub fn sense_fractional_multi_with(
        &self,
        eval: &dyn DeviceEval,
        word: VoltageWord,
        vdds: &[Volts],
        env: Environment,
        mismatches: &[GateMismatch],
        out: &mut [Result<f64, SenseError>],
    ) -> Result<(), SenseError> {
        assert_eq!(
            vdds.len(),
            mismatches.len(),
            "supply lane length must match the mismatch lane"
        );
        assert_eq!(
            vdds.len(),
            out.len(),
            "lane output length must match the supply lane"
        );
        let band = self.band(word)?;
        match self.line.cell() {
            CellKind::InvNor => {
                let mut pairs = vec![None; vdds.len()];
                eval.gate_delay_pair_multi(
                    (GateKind::Inverter, GateKind::Nor2),
                    vdds,
                    env,
                    mismatches,
                    1.0,
                    &mut pairs,
                );
                for (o, p) in out.iter_mut().zip(&pairs) {
                    let measured = match p {
                        Some((inv, nor)) => Self::encode_cell(band, *inv + *nor),
                        None => Err(SenseError::Unreliable(EncodeError::Empty)),
                    };
                    *o = self.classify_fractional(word, measured);
                }
            }
            CellKind::Inverter => {
                for ((v, m), o) in vdds.iter().zip(mismatches).zip(out.iter_mut()) {
                    *o = self.sense_fractional_with(eval, word, *v, env, *m);
                }
            }
        }
        Ok(())
    }

    /// Maps a measurement to the integer signature, classifying the
    /// out-of-range line states as extreme deviations.
    fn classify(
        &self,
        word: VoltageWord,
        measured: Result<u32, SenseError>,
    ) -> Result<i16, SenseError> {
        match measured {
            Ok(code) => self.deviation_lsb(word, code),
            Err(SenseError::Unreliable(EncodeError::Saturated)) => Ok(self.config.neighbor_range),
            Err(SenseError::Unreliable(EncodeError::Empty))
            | Err(SenseError::Unreliable(EncodeError::MultipleBursts { .. })) => {
                Ok(-self.config.neighbor_range)
            }
            Err(e) => Err(e),
        }
    }

    fn classify_fractional(
        &self,
        word: VoltageWord,
        measured: Result<u32, SenseError>,
    ) -> Result<f64, SenseError> {
        match measured {
            Ok(code) => self.deviation_fractional(word, code),
            Err(SenseError::Unreliable(EncodeError::Saturated)) => {
                Ok(f64::from(self.config.neighbor_range))
            }
            Err(SenseError::Unreliable(EncodeError::Empty))
            | Err(SenseError::Unreliable(EncodeError::MultipleBursts { .. })) => {
                Ok(-f64::from(self.config.neighbor_range))
            }
            Err(e) => Err(e),
        }
    }

    fn band(&self, word: VoltageWord) -> Result<&BandTable, SenseError> {
        self.bands
            .get(usize::from(word))
            .and_then(|b| b.as_ref())
            .ok_or(SenseError::BandUnusable { word })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_device::corner::ProcessCorner;

    fn sensor_fixture() -> (Technology, VariationSensor) {
        let tech = Technology::st_130nm();
        let sensor = VariationSensor::new(&tech, Environment::nominal(), SensorConfig::default());
        (tech, sensor)
    }

    #[test]
    fn word_voltage_round_trip() {
        assert!((word_voltage(19).millivolts() - 356.25).abs() < 1e-9);
        assert!((word_voltage(12).millivolts() - 225.0).abs() < 1e-9);
        assert_eq!(voltage_word(Volts(0.35625)), 19);
        assert_eq!(voltage_word(Volts(1.2)), 63);
        assert_eq!(voltage_word(Volts(0.0)), 0);
    }

    #[test]
    fn low_words_are_unusable_high_words_are_calibrated() {
        let (_, sensor) = sensor_fixture();
        assert!(sensor.expected_code(3).is_none());
        assert!(sensor.expected_code(19).is_some());
        assert!(sensor.expected_code(47).is_some());
    }

    #[test]
    fn expected_code_sits_at_the_anchor() {
        let (_, sensor) = sensor_fixture();
        let code = sensor.expected_code(19).unwrap();
        assert_eq!(code, 32, "edge should sit at the anchor stage");
    }

    #[test]
    fn nominal_die_reads_zero_deviation() {
        let (tech, sensor) = sensor_fixture();
        for word in [11u8, 19, 32, 47] {
            let dev = sensor
                .sense(
                    &tech,
                    word,
                    word_voltage(word),
                    Environment::nominal(),
                    GateMismatch::NOMINAL,
                )
                .unwrap();
            assert_eq!(dev, 0, "word {word}");
        }
    }

    #[test]
    fn slow_corner_reads_negative_deviation() {
        // The paper's worked example: a TT-calibrated controller on a
        // slower die sees a ~1-bit signature at word 19 (~356 mV).
        let (tech, sensor) = sensor_fixture();
        let dev = sensor
            .sense(
                &tech,
                19,
                word_voltage(19),
                Environment::at_corner(ProcessCorner::Ss),
                GateMismatch::NOMINAL,
            )
            .unwrap();
        assert!(dev < 0, "slow die must read slow, got {dev}");
        assert!(dev >= -2, "15 mV shift should be ~1 LSB, got {dev}");
    }

    #[test]
    fn fast_corner_reads_positive_deviation() {
        let (tech, sensor) = sensor_fixture();
        let dev = sensor
            .sense(
                &tech,
                19,
                word_voltage(19),
                Environment::at_corner(ProcessCorner::Ff),
                GateMismatch::NOMINAL,
            )
            .unwrap();
        assert!(dev > 0, "fast die must read fast, got {dev}");
    }

    #[test]
    fn hot_die_reads_fast_in_subthreshold() {
        let (tech, sensor) = sensor_fixture();
        let dev = sensor
            .sense(
                &tech,
                12,
                word_voltage(12),
                Environment::at_celsius(85.0),
                GateMismatch::NOMINAL,
            )
            .unwrap();
        assert!(dev > 0, "hot subthreshold logic is faster, got {dev}");
    }

    #[test]
    fn voltage_error_is_sensed_like_variation() {
        // Supplying a lower voltage than the band expects reads slow:
        // the same mechanism regulates the DC-DC output.
        let (tech, sensor) = sensor_fixture();
        let dev = sensor
            .sense(
                &tech,
                19,
                word_voltage(17),
                Environment::nominal(),
                GateMismatch::NOMINAL,
            )
            .unwrap();
        assert!(
            (-3..=-1).contains(&dev),
            "two LSBs low should read ≈ -2, got {dev}"
        );
    }

    #[test]
    fn unusable_band_reports_error() {
        let (tech, sensor) = sensor_fixture();
        let err = sensor
            .sense(
                &tech,
                2,
                word_voltage(2),
                Environment::nominal(),
                GateMismatch::NOMINAL,
            )
            .unwrap_err();
        assert!(matches!(err, SenseError::BandUnusable { word: 2 }));
        assert!(err.to_string().contains("below the sensor"));
    }

    #[test]
    fn extreme_fast_die_clamps_to_range() {
        let (tech, sensor) = sensor_fixture();
        // 200 mV above the band voltage: the line saturates.
        let dev = sensor
            .sense(
                &tech,
                19,
                Volts(word_voltage(19).volts() + 0.2),
                Environment::nominal(),
                GateMismatch::NOMINAL,
            )
            .unwrap();
        assert_eq!(dev, sensor.config().neighbor_range);
    }

    #[test]
    fn fractional_deviation_resolves_half_lsb_shifts() {
        // A die shifted by half an LSB of effective Vth reads ≈ ±0.5
        // fractionally, where the integer path rounds to 0 or ±1.
        let (tech, sensor) = sensor_fixture();
        let half = GateMismatch {
            nmos_dvth: Volts(0.009_4),
            pmos_dvth: Volts(0.009_4),
        };
        let frac = sensor
            .sense_fractional(&tech, 12, word_voltage(12), Environment::nominal(), half)
            .unwrap();
        assert!(
            (-0.85..=-0.25).contains(&frac),
            "half-LSB slow die reads {frac}"
        );
        // Nominal die reads near zero fractionally too.
        let zero = sensor
            .sense_fractional(
                &tech,
                12,
                word_voltage(12),
                Environment::nominal(),
                GateMismatch::NOMINAL,
            )
            .unwrap();
        assert!(zero.abs() < 0.2, "nominal reads {zero}");
    }

    #[test]
    fn fractional_deviation_is_monotone_in_die_shift() {
        let (tech, sensor) = sensor_fixture();
        let mut last = f64::MAX;
        for mv in [-20.0, -10.0, 0.0, 10.0, 20.0] {
            let die = GateMismatch {
                nmos_dvth: Volts::from_millivolts(mv),
                pmos_dvth: Volts::from_millivolts(mv),
            };
            let frac = sensor
                .sense_fractional(&tech, 12, word_voltage(12), Environment::nominal(), die)
                .unwrap();
            assert!(
                frac <= last + 1e-9,
                "not monotone at {mv} mV: {frac} > {last}"
            );
            last = frac;
        }
    }

    #[test]
    fn fractional_clamps_at_the_table_edges() {
        let (tech, sensor) = sensor_fixture();
        let wild = GateMismatch {
            nmos_dvth: Volts(0.2),
            pmos_dvth: Volts(0.2),
        };
        let frac = sensor
            .sense_fractional(&tech, 12, word_voltage(12), Environment::nominal(), wild)
            .unwrap();
        assert_eq!(frac, -3.0, "clamped at the neighbour range");
    }

    #[test]
    fn eval_calibration_and_sensing_match_direct_path() {
        use subvt_device::tabulate::{AnalyticEval, TabulatedEval};
        let tech = Technology::st_130nm();
        let env = Environment::nominal();
        let direct = VariationSensor::new(&tech, env, SensorConfig::default());
        let analytic = AnalyticEval::new(&tech);
        let via_analytic = VariationSensor::with_eval(&analytic, env, SensorConfig::default());
        assert_eq!(
            direct, via_analytic,
            "analytic eval must calibrate identically"
        );

        // Tabulated calibration + sensing reproduces the worked example:
        // a TT-calibrated sensor reads a slow corner as slow.
        let tabulated = TabulatedEval::new(&tech);
        let sensor = VariationSensor::with_eval(&tabulated, env, SensorConfig::default());
        let dev = sensor
            .sense_with(
                &tabulated,
                19,
                word_voltage(19),
                Environment::at_corner(ProcessCorner::Ss),
                GateMismatch::NOMINAL,
            )
            .unwrap();
        assert!((-2..0).contains(&dev), "slow die reads {dev}");
        let zero = sensor
            .sense_fractional_with(&tabulated, 19, word_voltage(19), env, GateMismatch::NOMINAL)
            .unwrap();
        assert!(zero.abs() < 0.2, "nominal die reads {zero}");
    }

    #[test]
    fn sample_then_decode_matches_sense() {
        use subvt_device::tabulate::AnalyticEval;
        let (tech, sensor) = sensor_fixture();
        let eval = AnalyticEval::new(&tech);
        for (word, env) in [
            (11u8, Environment::nominal()),
            (19, Environment::at_corner(ProcessCorner::Ss)),
            (19, Environment::at_corner(ProcessCorner::Ff)),
            (12, Environment::at_celsius(85.0)),
        ] {
            let sample = sensor
                .sample_with(&eval, word, word_voltage(word), env, GateMismatch::NOMINAL)
                .unwrap();
            let via_decode = sensor.decode(word, sample).unwrap();
            let direct = sensor
                .sense_with(&eval, word, word_voltage(word), env, GateMismatch::NOMINAL)
                .unwrap();
            assert_eq!(via_decode, direct, "word {word}");
        }
    }

    #[test]
    fn strict_decode_rejects_the_bubble_the_tolerant_path_repairs() {
        use subvt_device::tabulate::AnalyticEval;
        let (tech, sensor) = sensor_fixture();
        let eval = AnalyticEval::new(&tech);
        let sample = sensor
            .sample_with(
                &eval,
                19,
                word_voltage(19),
                Environment::nominal(),
                GateMismatch::NOMINAL,
            )
            .unwrap();
        // Punch an interior bubble into the thermometer run.
        let run = sample.leading_run();
        assert!(run >= 3, "fixture run too short: {run}");
        let bubbled = QuantizerWord::new(sample.width(), sample.bits() & !(1 << (run / 2)));
        assert_eq!(
            sensor.decode(19, bubbled).unwrap(),
            sensor.decode(19, sample).unwrap(),
            "tolerant decode repairs the bubble"
        );
        let strict = sensor.decode_strict(19, bubbled).unwrap();
        assert_ne!(
            strict,
            sensor.decode_strict(19, sample).unwrap(),
            "strict decode mis-signatures the bubbled word"
        );
    }

    #[test]
    fn sense_lane_matches_scalar_sense() {
        use subvt_device::tabulate::{AnalyticEval, TabulatedEval};
        let tech = Technology::st_130nm();
        let sensor = VariationSensor::new(&tech, Environment::nominal(), SensorConfig::default());
        let analytic = AnalyticEval::new(&tech);
        let tabulated = TabulatedEval::new(&tech);
        let evals: [&dyn DeviceEval; 2] = [&analytic, &tabulated];
        // Lane lengths covering full chunks and every ragged tail,
        // with mismatches spanning nominal, slow, fast and wild dies.
        let draws = [0.0, 0.013, -0.021, 0.2, 0.004, -0.0087, 0.0123];
        for eval in evals {
            for env in [Environment::nominal(), Environment::at_celsius(85.0)] {
                for (word, vdd) in [
                    (19u8, word_voltage(19)),
                    (12, word_voltage(13)),
                    (47, Volts(0.9)),
                ] {
                    for len in [1, 2, 3, 4, 5, 7] {
                        let mms: Vec<GateMismatch> = draws[..len]
                            .iter()
                            .map(|&d| GateMismatch {
                                nmos_dvth: Volts(d),
                                pmos_dvth: Volts(d * 0.5),
                            })
                            .collect();
                        let mut lane = vec![Ok(0i16); len];
                        sensor
                            .sense_lane_with(eval, word, vdd, env, &mms, &mut lane)
                            .unwrap();
                        for (m, got) in mms.iter().zip(&lane) {
                            let want = sensor.sense_with(eval, word, vdd, env, *m);
                            assert_eq!(*got, want, "word {word} len {len}");
                        }
                    }
                }
            }
            // Below-floor supply: every die reads empty → −range, as
            // in the scalar path.
            let mms = vec![GateMismatch::NOMINAL; 5];
            let mut lane = vec![Ok(0i16); 5];
            sensor
                .sense_lane_with(
                    eval,
                    19,
                    Volts(0.01),
                    Environment::nominal(),
                    &mms,
                    &mut lane,
                )
                .unwrap();
            for (m, got) in mms.iter().zip(&lane) {
                let want = sensor.sense_with(eval, 19, Volts(0.01), Environment::nominal(), *m);
                assert_eq!(*got, want);
            }
            // Unusable band errors for the whole lane, like each scalar
            // call would.
            assert!(sensor
                .sense_lane_with(eval, 2, Volts(0.1), Environment::nominal(), &mms, &mut lane)
                .is_err());
        }
    }

    #[test]
    fn sense_fractional_multi_matches_scalar() {
        use subvt_device::tabulate::{AnalyticEval, TabulatedEval};
        let tech = Technology::st_130nm();
        let sensor = VariationSensor::new(&tech, Environment::nominal(), SensorConfig::default());
        let analytic = AnalyticEval::new(&tech);
        let tabulated = TabulatedEval::new(&tech);
        let evals: [&dyn DeviceEval; 2] = [&analytic, &tabulated];
        let vdds = [
            word_voltage(19),
            Volts(0.01), // below the floor → empty word → −range
            Volts(0.3601),
            Volts(0.3389),
            Volts(1.18),
        ];
        let mms: Vec<GateMismatch> = [0.0, 0.0094, -0.012, 0.2, -0.0021]
            .iter()
            .map(|&d| GateMismatch {
                nmos_dvth: Volts(d),
                pmos_dvth: Volts(d),
            })
            .collect();
        for eval in evals {
            for env in [Environment::nominal(), Environment::at_celsius(-10.0)] {
                let mut lane = vec![Ok(0.0f64); vdds.len()];
                sensor
                    .sense_fractional_multi_with(eval, 19, &vdds, env, &mms, &mut lane)
                    .unwrap();
                for i in 0..vdds.len() {
                    let want = sensor.sense_fractional_with(eval, 19, vdds[i], env, mms[i]);
                    match (&lane[i], &want) {
                        (Ok(a), Ok(b)) => {
                            assert_eq!(a.to_bits(), b.to_bits(), "die {i}");
                        }
                        (a, b) => assert_eq!(a, b, "die {i}"),
                    }
                }
            }
            assert!(sensor
                .sense_fractional_multi_with(
                    eval,
                    2,
                    &vdds,
                    Environment::nominal(),
                    &mms,
                    &mut vec![Ok(0.0f64); vdds.len()]
                )
                .is_err());
        }
    }

    #[test]
    fn deviation_lookup_prefers_small_offsets_on_ties() {
        let (_, sensor) = sensor_fixture();
        let code = sensor.expected_code(19).unwrap();
        assert_eq!(sensor.deviation_lsb(19, code).unwrap(), 0);
    }
}
