//! The delay quantizer: D flip-flops sampling the Ref_clk waveform as
//! it propagates down the delay line (paper Fig. 4 and Table I).
//!
//! At a sampling instant, stage `i` of the line holds the value the
//! reference waveform had `i` cell-delays ago, so the flip-flop word is
//! a spatial snapshot of the waveform's recent history. The position of
//! the propagating edge inside the word *is* the time-to-digital
//! conversion; its movement with supply voltage gives the paper's
//! "16 shifts per 200 mV" signature, and a Ref_clk period shorter than
//! the window lets two pulses coexist in the line — the paper's
//! "data being latched twice" failure at 0.6 V.

use subvt_device::units::Seconds;
use subvt_digital::encoder::QuantizerWord;

/// The reference clock driving the TDC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefClock {
    period: Seconds,
    high_time: Seconds,
}

impl RefClock {
    /// Creates a reference clock.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < high_time < period`.
    pub fn new(period: Seconds, high_time: Seconds) -> RefClock {
        assert!(
            period.value() > 0.0 && high_time.value() > 0.0 && high_time < period,
            "need 0 < high_time < period"
        );
        RefClock { period, high_time }
    }

    /// A square wave (50 % duty) of the given period.
    pub fn square(period: Seconds) -> RefClock {
        RefClock::new(period, period / 2.0)
    }

    /// The paper's 14 ns reference input (Sec. II-A).
    pub fn paper_14ns() -> RefClock {
        RefClock::square(Seconds::from_nanos(14.0))
    }

    /// Clock period.
    pub fn period(&self) -> Seconds {
        self.period
    }

    /// High time per period.
    pub fn high_time(&self) -> Seconds {
        self.high_time
    }

    /// Waveform level at time `t` relative to a rising edge at `t = 0`
    /// (periodic for all `t`, including negative).
    pub fn level_at(&self, t: Seconds) -> bool {
        let t = t.value();
        let p = self.period.value();
        // `rem_euclid` reduces to one (at most) add for |t| < p, which
        // covers essentially every stage of every sense (the anchor is
        // a fraction of the period): for 0 ≤ t < p, `t % p == t`
        // exactly, so `rem_euclid` returns `t`; for −p < t < 0 it
        // returns exactly `t + p`. Both branches are bit-identical to
        // the general fmod path they bypass.
        let phase = if (0.0..p).contains(&t) {
            t
        } else if -p < t && t < 0.0 {
            t + p
        } else {
            t.rem_euclid(p)
        };
        phase < self.high_time.value()
    }
}

/// The quantizer: a bank of sampling flip-flops along the delay line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    stages: u8,
    ref_clk: RefClock,
    /// Sampling instant relative to a reference rising edge entering
    /// stage 0.
    sample_offset: Seconds,
}

impl Quantizer {
    /// Creates a quantizer over `stages` flip-flops.
    ///
    /// `sample_offset` anchors the sampling instant relative to a
    /// rising edge of the reference entering the line — in hardware it
    /// is set by the delay replica ahead of the quantizer plus the
    /// chosen sampling edge.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is 0 or `sample_offset` is negative.
    pub fn new(stages: u8, ref_clk: RefClock, sample_offset: Seconds) -> Quantizer {
        assert!(stages > 0, "need at least one stage");
        assert!(
            sample_offset.value() >= 0.0,
            "sample offset must be non-negative"
        );
        Quantizer {
            stages,
            ref_clk,
            sample_offset,
        }
    }

    /// Number of sampling flip-flops.
    pub fn stages(&self) -> u8 {
        self.stages
    }

    /// The reference clock.
    pub fn ref_clk(&self) -> RefClock {
        self.ref_clk
    }

    /// The sampling anchor.
    pub fn sample_offset(&self) -> Seconds {
        self.sample_offset
    }

    /// Samples the line given its per-stage delay: stage `i` holds the
    /// waveform value from `i` cell-delays before the sampling instant.
    ///
    /// # Panics
    ///
    /// Panics if `cell_delay` is not positive.
    pub fn sample(&self, cell_delay: Seconds) -> QuantizerWord {
        assert!(cell_delay.value() > 0.0, "cell delay must be positive");
        let mut bits: u64 = 0;
        for i in 0..self.stages {
            let t = Seconds(self.sample_offset.value() - f64::from(i) * cell_delay.value());
            if self.ref_clk.level_at(t) {
                bits |= 1 << i;
            }
        }
        QuantizerWord::new(self.stages, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(x: f64) -> Seconds {
        Seconds::from_nanos(x)
    }

    #[test]
    fn ref_clock_waveform() {
        let clk = RefClock::paper_14ns();
        assert!((clk.period().nanos() - 14.0).abs() < 1e-12);
        assert!(clk.level_at(ns(1.0)));
        assert!(clk.level_at(ns(6.9)));
        assert!(!clk.level_at(ns(7.1)));
        assert!(!clk.level_at(ns(13.9)));
        // Periodicity, including negative times.
        assert!(clk.level_at(ns(15.0)));
        assert!(clk.level_at(ns(-13.0)));
        assert!(!clk.level_at(ns(-1.0)));
    }

    #[test]
    fn level_at_fast_path_matches_rem_euclid() {
        // Sweep through both fast branches (|t| < period, either sign)
        // and the general fmod branch (|t| ≥ period), pinning each
        // against the reference reduction bit for bit.
        let clk = RefClock::paper_14ns();
        let p = clk.period().value();
        let high = clk.high_time().value();
        for k in -300..300 {
            let t = k as f64 * 0.097e-9;
            assert_eq!(clk.level_at(Seconds(t)), t.rem_euclid(p) < high, "t = {t}");
        }
        // Exact boundaries.
        for t in [0.0, p, -p, 2.0 * p, high, -high] {
            assert_eq!(clk.level_at(Seconds(t)), t.rem_euclid(p) < high, "t = {t}");
        }
    }

    #[test]
    fn fresh_edge_yields_leading_run() {
        // Sample 5.5 cell-delays after a rising edge entered: stages
        // 0..=5 are behind the edge (high), the rest still low.
        let clk = RefClock::square(ns(1000.0));
        let q = Quantizer::new(16, clk, ns(5.5));
        let w = q.sample(ns(1.0));
        assert_eq!(w.leading_run(), 6);
        assert_eq!(w.encode(), Ok(6));
    }

    #[test]
    fn edge_position_tracks_cell_delay() {
        // Faster cells → edge further down the line → larger code.
        let clk = RefClock::square(ns(1000.0));
        let q = Quantizer::new(64, clk, ns(30.0));
        let slow = q.sample(ns(1.0)).encode().unwrap();
        let fast = q.sample(ns(0.6)).encode().unwrap();
        assert_eq!(slow, 31);
        assert_eq!(fast, 51);
        assert!(fast > slow);
    }

    #[test]
    fn short_period_produces_multiple_bursts() {
        // Line window (64 × 0.44 ns ≈ 28 ns) spans two 14 ns periods:
        // the paper's double-latch regime at 0.6 V.
        let q = Quantizer::new(64, RefClock::paper_14ns(), ns(30.0));
        let w = q.sample(Seconds::from_picos(442.0));
        assert!(w.burst_count() >= 2, "bursts {}", w.burst_count());
        assert!(w.encode().is_err());
    }

    #[test]
    fn long_period_keeps_single_burst() {
        // Same sampling, but a slow Ref_clk (the paper's suggested fix)
        // restores a clean single-burst word.
        let cell = Seconds::from_picos(442.0);
        let period = Seconds(cell.value() * 256.0);
        let clk = RefClock::square(period);
        let q = Quantizer::new(64, clk, Seconds(cell.value() * 31.5));
        let w = q.sample(cell);
        assert_eq!(w.burst_count(), 1);
        assert_eq!(w.encode(), Ok(32));
    }

    #[test]
    fn sixteen_shifts_per_200mv_shape() {
        // With a fixed anchor, the code moves by the ratio of cell
        // delays. Using the paper's published inverter delays at 1.2 V
        // (102 ps) and 1.0 V (~139 ps from the calibrated model), a
        // 6.07 ns anchor gives the paper's "16 shifts" per 200 mV.
        let clk = RefClock::square(ns(1000.0));
        let q = Quantizer::new(64, clk, ns(6.07));
        let at_12 = q.sample(Seconds::from_picos(102.0)).encode().unwrap();
        let at_10 = q.sample(Seconds::from_picos(139.5)).encode().unwrap();
        let shifts = at_12 - at_10;
        assert!(
            (14..=18).contains(&shifts),
            "expected ~16 shifts, got {shifts} ({at_12} vs {at_10})"
        );
    }

    #[test]
    #[should_panic(expected = "cell delay must be positive")]
    fn zero_cell_delay_rejected() {
        let q = Quantizer::new(8, RefClock::paper_14ns(), ns(1.0));
        let _ = q.sample(Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "high_time < period")]
    fn bad_ref_clock_rejected() {
        let _ = RefClock::new(ns(10.0), ns(10.0));
    }
}
