//! The TDC's delay replica line.
//!
//! Paper Fig. 4: the line is a chain of "single delay cells (with an
//! inverter and nor gate delay)" running at the measured supply
//! voltage, so its per-stage delay carries the full exponential
//! process/temperature/voltage sensitivity of the subthreshold load it
//! replicates.

use subvt_device::delay::{GateMismatch, GateTiming, SupplyRangeError};
use subvt_device::mosfet::Environment;
use subvt_device::tabulate::DeviceEval;
use subvt_device::technology::{GateKind, Technology};
use subvt_device::units::{Seconds, Volts};
use subvt_sim::logic::Logic;
use subvt_sim::netlist::{GateFn, Netlist, SignalId};
use subvt_sim::time::{SimDuration, SimTime};

/// Cell flavour of the delay line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellKind {
    /// The paper's INV + NOR cell (the NOR's second pin is the enable).
    #[default]
    InvNor,
    /// A plain inverter pair (used by the calibration discussion, which
    /// quotes single-inverter delays).
    Inverter,
}

/// A delay replica line of identical cells.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayLine {
    stages: u8,
    cell: CellKind,
    /// Per-die mismatch applied to every cell (a replica is drawn with
    /// large devices, so local mismatch averages out and the global
    /// die shift dominates).
    mismatch: GateMismatch,
}

impl DelayLine {
    /// Creates a line of `stages` cells (the paper's quantizer uses 64).
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    pub fn new(stages: u8, cell: CellKind) -> DelayLine {
        assert!(stages > 0, "delay line needs at least one stage");
        DelayLine {
            stages,
            cell,
            mismatch: GateMismatch::NOMINAL,
        }
    }

    /// Returns the line with a die-level mismatch applied to its cells.
    pub fn with_mismatch(mut self, mismatch: GateMismatch) -> DelayLine {
        self.mismatch = mismatch;
        self
    }

    /// Number of stages.
    pub fn stages(&self) -> u8 {
        self.stages
    }

    /// Cell flavour.
    pub fn cell(&self) -> CellKind {
        self.cell
    }

    /// Per-stage propagation delay at the given supply and environment.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] below the technology's functional
    /// floor.
    pub fn cell_delay(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
    ) -> Result<Seconds, SupplyRangeError> {
        let timing = GateTiming::new(tech);
        match self.cell {
            CellKind::InvNor => {
                let inv =
                    timing.gate_delay_with(GateKind::Inverter, vdd, env, self.mismatch, 1.0)?;
                let nor = timing.gate_delay_with(GateKind::Nor2, vdd, env, self.mismatch, 1.0)?;
                Ok(inv + nor)
            }
            CellKind::Inverter => {
                timing.gate_delay_with(GateKind::Inverter, vdd, env, self.mismatch, 1.0)
            }
        }
    }

    /// Per-stage propagation delay through a [`DeviceEval`] (analytic
    /// or tabulated surfaces). [`DelayLine::cell_delay`] keeps the
    /// direct analytic path.
    ///
    /// The inverter+NOR₂ cell goes through the evaluator's fused
    /// [`DeviceEval::gate_delay_pair`]: both stages sit at the same
    /// (Vdd, environment, mismatch) point, so a table-backed evaluator
    /// answers them from one current interpolation. The default pair
    /// implementation is two plain `gate_delay` calls, which keeps the
    /// analytic path bit-identical to [`DelayLine::cell_delay`].
    ///
    /// # Errors
    ///
    /// As [`DelayLine::cell_delay`].
    pub fn cell_delay_with(
        &self,
        eval: &dyn DeviceEval,
        vdd: Volts,
        env: Environment,
    ) -> Result<Seconds, SupplyRangeError> {
        match self.cell {
            CellKind::InvNor => {
                let (inv, nor) = eval.gate_delay_pair(
                    (GateKind::Inverter, GateKind::Nor2),
                    vdd,
                    env,
                    self.mismatch,
                    1.0,
                )?;
                Ok(inv + nor)
            }
            CellKind::Inverter => eval.gate_delay(GateKind::Inverter, vdd, env, self.mismatch, 1.0),
        }
    }

    /// End-to-end delay of the full line.
    ///
    /// # Errors
    ///
    /// As [`DelayLine::cell_delay`].
    pub fn total_delay(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
    ) -> Result<Seconds, SupplyRangeError> {
        Ok(self.cell_delay(tech, vdd, env)? * f64::from(self.stages))
    }

    /// Deepest stage index the rising edge has passed after `elapsed`
    /// (saturating at the line length).
    ///
    /// # Errors
    ///
    /// As [`DelayLine::cell_delay`].
    pub fn edge_position(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        elapsed: Seconds,
    ) -> Result<u32, SupplyRangeError> {
        let cell = self.cell_delay(tech, vdd, env)?;
        let pos = (elapsed.value() / cell.value()).floor();
        Ok((pos.max(0.0) as u32).min(u32::from(self.stages)))
    }

    /// Builds the line structurally into a gate-level netlist for
    /// cross-validation against the analytic model. Returns the input
    /// signal and the per-stage output taps.
    ///
    /// # Errors
    ///
    /// As [`DelayLine::cell_delay`].
    pub fn build_netlist(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        netlist: &mut Netlist,
    ) -> Result<(SignalId, Vec<SignalId>), SupplyRangeError> {
        let cell = self.cell_delay(tech, vdd, env)?;
        let half = SimDuration::from_seconds(cell.value() / 2.0);
        let input = netlist.add_signal("tdc_in");
        let enable = netlist.add_signal("tdc_enable_n");
        netlist.drive(enable, Logic::Low, SimTime::ZERO);
        let mut taps = Vec::with_capacity(usize::from(self.stages));
        let mut prev = input;
        for i in 0..self.stages {
            let mid = netlist.add_signal(format!("tdc_s{i}_inv"));
            let out = netlist.add_signal(format!("tdc_s{i}"));
            // INV then NOR(.., enable_n): with enable_n low the NOR is a
            // second inversion, so each cell is non-inverting overall.
            netlist.add_gate(GateFn::Inv, &[prev], mid, half);
            netlist.add_gate(GateFn::Nor2, &[mid, enable], out, half);
            taps.push(out);
            prev = out;
        }
        Ok((input, taps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_device::corner::ProcessCorner;

    fn fixture() -> (Technology, Environment) {
        (Technology::st_130nm(), Environment::nominal())
    }

    #[test]
    fn inverter_cell_matches_published_delays() {
        let (tech, env) = fixture();
        let line = DelayLine::new(64, CellKind::Inverter);
        for (v, ps) in [(1.2, 102.0), (0.6, 442.0), (0.2, 79_430.0)] {
            let d = line.cell_delay(&tech, Volts(v), env).unwrap();
            assert!(
                (d.picos() - ps).abs() / ps < 0.05,
                "{v} V: {} ps vs {ps} ps",
                d.picos()
            );
        }
    }

    #[test]
    fn inv_nor_cell_is_slower_than_inverter() {
        let (tech, env) = fixture();
        let inv = DelayLine::new(64, CellKind::Inverter);
        let cell = DelayLine::new(64, CellKind::InvNor);
        let v = Volts(0.6);
        assert!(
            cell.cell_delay(&tech, v, env).unwrap().value()
                > inv.cell_delay(&tech, v, env).unwrap().value()
        );
    }

    #[test]
    fn total_delay_scales_with_stages() {
        let (tech, env) = fixture();
        let short = DelayLine::new(8, CellKind::InvNor);
        let long = DelayLine::new(64, CellKind::InvNor);
        let v = Volts(0.3);
        let ratio = long.total_delay(&tech, v, env).unwrap().value()
            / short.total_delay(&tech, v, env).unwrap().value();
        assert!((ratio - 8.0).abs() < 1e-9);
    }

    #[test]
    fn edge_position_saturates_at_line_end() {
        let (tech, env) = fixture();
        let line = DelayLine::new(64, CellKind::InvNor);
        let cell = line.cell_delay(&tech, Volts(0.6), env).unwrap();
        let pos = line
            .edge_position(&tech, Volts(0.6), env, cell * 10.5)
            .unwrap();
        assert_eq!(pos, 10);
        let far = line
            .edge_position(&tech, Volts(0.6), env, cell * 1000.0)
            .unwrap();
        assert_eq!(far, 64);
        let none = line
            .edge_position(&tech, Volts(0.6), env, Seconds::ZERO)
            .unwrap();
        assert_eq!(none, 0);
    }

    #[test]
    fn slow_corner_slows_the_replica() {
        let (tech, _) = fixture();
        let line = DelayLine::new(64, CellKind::InvNor);
        let v = Volts(0.25);
        let tt = line.cell_delay(&tech, v, Environment::nominal()).unwrap();
        let ss = line
            .cell_delay(&tech, v, Environment::at_corner(ProcessCorner::Ss))
            .unwrap();
        assert!(ss.value() > 1.2 * tt.value(), "tt {tt} ss {ss}");
    }

    #[test]
    fn die_mismatch_shifts_cell_delay() {
        let (tech, env) = fixture();
        let nominal = DelayLine::new(64, CellKind::InvNor);
        let slow = DelayLine::new(64, CellKind::InvNor).with_mismatch(GateMismatch {
            nmos_dvth: Volts(0.02),
            pmos_dvth: Volts(0.02),
        });
        let v = Volts(0.25);
        assert!(
            slow.cell_delay(&tech, v, env).unwrap().value()
                > nominal.cell_delay(&tech, v, env).unwrap().value()
        );
    }

    #[test]
    fn structural_netlist_agrees_with_analytic_delay() {
        // Drive a rising edge into an 8-stage structural line and check
        // the edge arrives at the last tap after ~8 cell delays.
        let (tech, env) = fixture();
        let line = DelayLine::new(8, CellKind::InvNor);
        let vdd = Volts(0.6);
        let cell = line.cell_delay(&tech, vdd, env).unwrap();
        let mut nl = Netlist::new();
        let (input, taps) = line.build_netlist(&tech, vdd, env, &mut nl).unwrap();
        nl.drive(input, Logic::Low, SimTime::ZERO);
        let settle = SimTime::ZERO + SimDuration::from_seconds(cell.value() * 20.0);
        nl.run_until(settle, 100_000);
        assert_eq!(nl.signal(*taps.last().unwrap()), Logic::Low);

        let launch = settle;
        nl.drive(input, Logic::High, launch);
        // Just before 8 cell delays: edge has not arrived.
        let before = launch + SimDuration::from_seconds(cell.value() * 7.5);
        nl.run_until(before, 100_000);
        assert_eq!(nl.signal(*taps.last().unwrap()), Logic::Low);
        // Just after: it has.
        let after = launch + SimDuration::from_seconds(cell.value() * 8.5);
        nl.run_until(after, 100_000);
        assert_eq!(nl.signal(*taps.last().unwrap()), Logic::High);
    }

    #[test]
    fn eval_variant_matches_direct_path() {
        use subvt_device::tabulate::{AnalyticEval, TabulatedEval, ACCURACY_BUDGET};
        let (tech, env) = fixture();
        let line = DelayLine::new(64, CellKind::InvNor).with_mismatch(GateMismatch {
            nmos_dvth: Volts(0.008),
            pmos_dvth: Volts(-0.005),
        });
        let analytic = AnalyticEval::new(&tech);
        let tabulated = TabulatedEval::new(&tech);
        for mv in [233.0, 356.25, 601.0] {
            let v = Volts::from_millivolts(mv);
            let direct = line.cell_delay(&tech, v, env).unwrap();
            let via_analytic = line.cell_delay_with(&analytic, v, env).unwrap();
            assert_eq!(direct.value(), via_analytic.value(), "{mv} mV");
            let via_table = line.cell_delay_with(&tabulated, v, env).unwrap();
            let rel = (via_table.value() - direct.value()).abs() / direct.value();
            assert!(rel < ACCURACY_BUDGET, "{mv} mV: rel err {rel:.2e}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_line_rejected() {
        let _ = DelayLine::new(0, CellKind::InvNor);
    }
}
