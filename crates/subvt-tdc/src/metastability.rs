//! Flip-flop metastability in the quantizer.
//!
//! Paper Sec. II-A: "The metastability associated with the flip flops
//! due to the variations are considered and incorporated in the
//! design." A flip-flop whose data input transitions within its
//! aperture of the sampling edge resolves randomly; the classic model
//! gives a failure probability `exp(−slack/τ)` for slack beyond the
//! aperture.

use subvt_rng::Rng;

use subvt_device::units::Seconds;
use subvt_digital::encoder::QuantizerWord;

use crate::quantizer::Quantizer;

/// Metastability parameters of the sampling flip-flops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetastabilityModel {
    /// Aperture: a data edge within this window of the sampling edge
    /// always produces a coin-flip outcome.
    pub aperture: Seconds,
    /// Regeneration time constant τ for the exponential tail beyond
    /// the aperture.
    pub tau: Seconds,
}

impl MetastabilityModel {
    /// Representative values for subthreshold flip-flops, where
    /// regeneration is slow (τ of a few hundred ps).
    pub fn subthreshold_default() -> MetastabilityModel {
        MetastabilityModel {
            aperture: Seconds::from_picos(50.0),
            tau: Seconds::from_picos(300.0),
        }
    }

    /// Probability that a capture with the given time slack between
    /// the data edge and the sampling edge resolves *randomly* rather
    /// than cleanly.
    ///
    /// # Panics
    ///
    /// Panics if the model's aperture or τ is not positive.
    pub fn upset_probability(&self, slack: Seconds) -> f64 {
        assert!(
            self.aperture.value() > 0.0 && self.tau.value() > 0.0,
            "aperture and tau must be positive"
        );
        let s = slack.value().abs();
        if s <= self.aperture.value() {
            1.0
        } else {
            ((self.aperture.value() - s) / self.tau.value()).exp()
        }
    }

    /// Samples the quantizer with metastable captures: each stage whose
    /// sampled waveform point lies near a transition may flip.
    ///
    /// The returned word is the ideal word with boundary bits re-drawn
    /// according to the upset probability — exactly the "bubble"
    /// artefacts the encoder's bubble tolerance exists for.
    pub fn sample_word<R: Rng + ?Sized>(
        &self,
        quantizer: &Quantizer,
        cell_delay: Seconds,
        rng: &mut R,
    ) -> QuantizerWord {
        let ideal = quantizer.sample(cell_delay);
        let clk = quantizer.ref_clk();
        let period = clk.period().value();
        let high = clk.high_time().value();
        let mut bits = ideal.bits();
        for i in 0..ideal.width() {
            let t = quantizer.sample_offset().value() - f64::from(i) * cell_delay.value();
            let phase = t.rem_euclid(period);
            // Distance to the nearest waveform transition (rising at 0,
            // falling at `high`).
            let d_rise = phase.min(period - phase);
            let d_fall = (phase - high).abs().min(period - (phase - high).abs());
            let slack = Seconds(d_rise.min(d_fall));
            if rng.gen::<f64>() < self.upset_probability(slack) {
                if rng.gen::<bool>() {
                    bits |= 1 << i;
                } else {
                    bits &= !(1 << i);
                }
            }
        }
        QuantizerWord::new(ideal.width(), bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::RefClock;
    use subvt_rng::StdRng;

    #[test]
    fn within_aperture_is_certain_upset() {
        let m = MetastabilityModel::subthreshold_default();
        assert_eq!(m.upset_probability(Seconds::ZERO), 1.0);
        assert_eq!(m.upset_probability(Seconds::from_picos(50.0)), 1.0);
        assert_eq!(m.upset_probability(Seconds::from_picos(-30.0)), 1.0);
    }

    #[test]
    fn probability_decays_exponentially_beyond_aperture() {
        let m = MetastabilityModel::subthreshold_default();
        let p1 = m.upset_probability(Seconds::from_picos(350.0));
        let p2 = m.upset_probability(Seconds::from_picos(650.0));
        // 300 ps further out = one τ = factor e.
        assert!((p1 / p2 - std::f64::consts::E).abs() < 1e-9);
        assert!(p1 < 0.5);
    }

    #[test]
    fn far_from_edges_the_word_is_clean() {
        // Huge cell delay relative to τ: only the boundary stage is at
        // risk, everything else is deterministic.
        let cell = Seconds::from_nanos(50.0);
        let clk = RefClock::square(Seconds(cell.value() * 128.0));
        let q = Quantizer::new(64, clk, Seconds(cell.value() * 32.5));
        let ideal = q.sample(cell);
        let m = MetastabilityModel::subthreshold_default();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let w = m.sample_word(&q, cell, &mut rng);
            // At most the boundary bit differs.
            let diff = (w.bits() ^ ideal.bits()).count_ones();
            assert!(diff <= 1, "diff {diff}");
        }
    }

    #[test]
    fn boundary_stage_flips_sometimes() {
        // Anchor exactly on a stage boundary: that stage samples right
        // at the edge and must flip in some trials.
        let cell = Seconds::from_nanos(1.0);
        let clk = RefClock::square(Seconds(cell.value() * 128.0));
        let q = Quantizer::new(64, clk, Seconds(cell.value() * 32.0));
        let m = MetastabilityModel {
            aperture: Seconds::from_picos(100.0),
            tau: Seconds::from_picos(300.0),
        };
        let mut rng = StdRng::seed_from_u64(3);
        let codes: Vec<u64> = (0..200)
            .map(|_| m.sample_word(&q, cell, &mut rng).bits())
            .collect();
        let distinct: std::collections::HashSet<u64> = codes.iter().copied().collect();
        assert!(distinct.len() > 1, "metastability never manifested");
    }

    #[test]
    fn bubble_tolerant_encode_repairs_most_upsets() {
        let cell = Seconds::from_nanos(1.0);
        let clk = RefClock::square(Seconds(cell.value() * 128.0));
        let q = Quantizer::new(64, clk, Seconds(cell.value() * 32.3));
        let m = MetastabilityModel::subthreshold_default();
        let mut rng = StdRng::seed_from_u64(7);
        let ideal = q.sample(cell).encode().unwrap();
        let mut ok = 0;
        let trials = 100;
        for _ in 0..trials {
            let w = m.sample_word(&q, cell, &mut rng);
            if let Ok(code) = w.encode_bubble_tolerant() {
                if code.abs_diff(ideal) <= 1 {
                    ok += 1;
                }
            }
        }
        assert!(ok > trials * 9 / 10, "only {ok}/{trials} clean");
    }
}
