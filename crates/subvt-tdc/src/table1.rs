//! Reproduction of the paper's Table I: "Supply voltage and quantizer
//! output".
//!
//! The paper feeds a 14 ns Ref_clk into the delay line and prints the
//! raw quantizer words at 1.2, 1.0, 0.8 and 0.6 V. The published hex
//! strings depend on an unpublished phase (the replica length ahead of
//! the quantizer and which clock edge samples), so the absolute
//! patterns are not derivable from the paper text; the *structure* is:
//!
//! * a single contiguous burst at high supplies whose edge moves ~16
//!   stages per 200 mV around 1.0-1.2 V (= 12.5 mV per shift);
//! * at 0.6 V the line window (64 × 442 ps ≈ 28 ns) spans two Ref_clk
//!   periods, so two pulses are latched at once and the code is
//!   unreliable — the paper's "data being latched twice".
//!
//! [`SAMPLE_ANCHOR`] is the free phase parameter, chosen so the
//! 1.2 V → 1.0 V edge shift lands on the paper's 16 stages.

use subvt_device::delay::SupplyRangeError;
use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_device::units::{Seconds, Volts};
use subvt_digital::encoder::QuantizerWord;

use crate::delay_line::{CellKind, DelayLine};
use crate::quantizer::{Quantizer, RefClock};

/// The sampling anchor reproducing the paper's 16-shift sensitivity
/// between 1.2 V and 1.0 V with the 14 ns Ref_clk.
pub const SAMPLE_ANCHOR: Seconds = Seconds(6.07e-9);

/// The supply voltages of the published table.
pub const TABLE1_VOLTAGES: [Volts; 4] = [Volts(1.2), Volts(1.0), Volts(0.8), Volts(0.6)];

/// The paper's published hex signatures, for side-by-side reporting.
pub const PAPER_SIGNATURES: [(&str, &str); 4] = [
    ("1.2V", "FE00 0000 0000 0000"),
    ("1.0V", "FFFF FE00 0000 0000"),
    ("0.8V", "01FF FFFF FF00 0000"),
    ("0.6V", "000F FFE0 001F FFC0"),
];

/// One reproduced row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Supply voltage of the measurement.
    pub vdd: Volts,
    /// Per-stage cell delay at this supply.
    pub cell_delay: Seconds,
    /// Raw 64-bit quantizer word.
    pub word: QuantizerWord,
    /// Decoded edge position, or `None` when unreliable.
    pub code: Option<u32>,
    /// Number of bursts in the word (>1 = double-latched).
    pub bursts: u32,
}

impl Table1Row {
    /// The word formatted as the paper's table formats it.
    pub fn hex(&self) -> String {
        self.word.to_table_hex()
    }
}

/// Regenerates Table I with the calibrated technology model.
///
/// # Errors
///
/// Returns [`SupplyRangeError`] if a requested voltage is below the
/// technology floor (never the case for the published voltages).
pub fn reproduce_table1(
    tech: &Technology,
    env: Environment,
) -> Result<Vec<Table1Row>, SupplyRangeError> {
    let line = DelayLine::new(64, CellKind::Inverter);
    let quantizer = Quantizer::new(64, RefClock::paper_14ns(), SAMPLE_ANCHOR);
    TABLE1_VOLTAGES
        .iter()
        .map(|&vdd| {
            let cell_delay = line.cell_delay(tech, vdd, env)?;
            let word = quantizer.sample(cell_delay);
            Ok(Table1Row {
                vdd,
                cell_delay,
                code: word.encode().ok(),
                bursts: word.burst_count(),
                word,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Table1Row> {
        reproduce_table1(&Technology::st_130nm(), Environment::nominal()).expect("in range")
    }

    #[test]
    fn high_voltage_rows_are_single_burst() {
        let rows = rows();
        assert_eq!(rows[0].bursts, 1, "1.2 V: {}", rows[0].hex());
        assert_eq!(rows[1].bursts, 1, "1.0 V: {}", rows[1].hex());
        assert!(rows[0].code.is_some());
        assert!(rows[1].code.is_some());
    }

    #[test]
    fn sixteen_shifts_from_12_to_10_volts() {
        let rows = rows();
        let c12 = rows[0].code.unwrap();
        let c10 = rows[1].code.unwrap();
        let shift = c12 - c10;
        assert!(
            (14..=18).contains(&shift),
            "expected ~16 shifts (12.5 mV each), got {shift}"
        );
    }

    #[test]
    fn point_six_volts_is_double_latched() {
        let rows = rows();
        let row06 = &rows[3];
        assert!(row06.bursts >= 2, "0.6 V word: {}", row06.hex());
        assert_eq!(row06.code, None, "0.6 V must be unreliable");
    }

    #[test]
    fn window_spans_two_periods_at_point_six() {
        // The physical reason for the double latch: 64 stages × 442 ps
        // ≈ 28 ns ≈ two 14 ns periods.
        let rows = rows();
        let span = rows[3].cell_delay.value() * 64.0;
        let periods = span / 14e-9;
        assert!((1.8..2.4).contains(&periods), "window = {periods} periods");
    }

    #[test]
    fn hex_formatting_matches_table_style() {
        for row in rows() {
            let hex = row.hex();
            assert_eq!(hex.len(), 19, "grouped 16 hex digits: {hex}");
            assert_eq!(hex.matches(' ').count(), 3);
        }
    }

    #[test]
    fn codes_decrease_with_falling_supply() {
        // Slower cells → the edge reaches fewer stages by the sampling
        // instant.
        let rows = rows();
        let c12 = rows[0].code.unwrap();
        let c10 = rows[1].code.unwrap();
        let c08 = rows[2].code;
        assert!(c12 > c10);
        if let Some(c08) = c08 {
            assert!(c10 > c08 || rows[2].bursts > 1);
        }
    }
}
